// Package lan is a learning-based approximate k-nearest-neighbor search
// engine for graph databases under graph edit distance (GED), implementing
// Peng et al., "LAN: Learning-based Approximate k-Nearest Neighbor Search
// in Graph Databases" (ICDE 2022).
//
// A LAN index combines three components built offline:
//
//   - a proximity graph over the database (an HNSW whose base layer is the
//     PG that queries route on),
//   - a neighbor-ranking model M_rk that lets the router skip GED
//     computations to unpromising PG neighbors (routing with neighbor
//     pruning), and
//   - initial-node models M_c and M_nh that start the routing inside the
//     query's GED neighborhood.
//
// All graph learning runs on compressed GNN-graphs, which provably
// preserve the uncompressed results while skipping redundant computation.
//
// Basic usage:
//
//	db := graph.NewDatabase(myGraphs)
//	index, err := lan.Build(db, trainingQueries, lan.Options{})
//	results, stats, err := index.Search(query, lan.SearchOptions{K: 10})
//
// The zero Options value picks sensible defaults for databases of a few
// thousand graphs. Build cost is dominated by proximity-graph construction
// and ground-truth distances for the training queries; both are offline
// and reported by the paper as such.
package lan

import (
	"context"
	"fmt"
	"io"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/lanstore"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/mutable"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// Storage tiers for opening a binary snapshot (Options.Store).
const (
	// StoreMMap serves queries straight off the memory-mapped snapshot:
	// candidate graphs are fetched segment-at-a-time during routing and
	// resident memory stays far below database size. The index is
	// read-only — Insert, Delete and Compact return ErrReadOnly.
	StoreMMap = "mmap"
	// StoreRAM materializes the snapshot into ordinary heap structures at
	// open; the index is then writable, exactly as if loaded with Load.
	StoreRAM = "ram"
)

// ErrReadOnly is returned by Insert, Delete and Compact on an index
// opened with the mmap store.
var ErrReadOnly = mutable.ErrReadOnly

// Errors surfaced when opening binary snapshots: the file is not a
// binary snapshot at all, was written by a newer format version than
// this build reads, or fails structural validation / checksums.
var (
	ErrNotSnapshot   = lanstore.ErrNotSnapshot
	ErrFutureVersion = lanstore.ErrFutureVersion
	ErrCorrupt       = lanstore.ErrCorrupt
)

// IsSnapshotFile reports whether path is a binary snapshot (of any
// format version — possibly one this build cannot read). Tools use it
// to route a file to OpenSnapshot versus the JSON Load path.
func IsSnapshotFile(path string) (bool, error) { return lanstore.IsSnapshot(path) }

// Options configure Build. The zero value is usable.
type Options struct {
	// M is the proximity-graph degree parameter (default 8; base layer
	// allows 2M neighbors).
	M int
	// EfConstruction is the construction beam width (default 2M).
	EfConstruction int
	// BuildMetric is the GED used during offline index construction
	// (default: the Riesen-Bunke bipartite upper bound, ged.Hungarian —
	// fast). The proximity graph inherits this metric's geometry, so
	// BuildMetric should approximate QueryMetric: pairing a loose build
	// bound with a tight query metric bends the index away from the
	// neighborhoods queries care about and costs recall. When QueryMetric
	// is a ged.Ensemble, a cheap ensemble (ged.Ensemble{BeamWidth: 2})
	// is the recommended build metric.
	BuildMetric ged.Metric
	// QueryMetric is the GED used to answer queries (default
	// ged.Hungarian; use a ged.Ensemble for higher-fidelity distances).
	QueryMetric ged.Metric
	// Layers and Dim shape the GNN models (defaults 2 and 16).
	Layers, Dim int
	// BatchPercent is the paper's y: the share of a node's neighbors
	// ranked into each pruning batch (default 20).
	BatchPercent int
	// DisableCG turns off the compressed-GNN-graph acceleration
	// (Sec. VI); leave false outside ablation studies.
	DisableCG bool
	// GammaKNN and GammaQuantile calibrate the neighborhood radius
	// gamma*: for GammaQuantile of the training queries, the
	// neighborhood contains their GammaKNN nearest neighbors (defaults
	// 20 and 0.9).
	GammaKNN      int
	GammaQuantile float64
	// Clusters, TopClusters and Samples control learned initial-node
	// selection (defaults |D|/16, 3 and 4).
	Clusters, TopClusters, Samples int
	// Epochs and LR control model training (defaults 30 and 0.005, with
	// the paper's x0.96-every-5-epochs decay).
	Epochs int
	LR     float64
	// StepSize is the routing threshold increment d_s (default 1).
	StepSize float64
	// Workers bounds the concurrency of offline index construction: the
	// proximity-graph build pool and the node-embedding precompute fan
	// out across this many goroutines (default runtime.NumCPU; 1 forces
	// sequential). The built index is bit-identical for every setting.
	Workers int
	// QueryWorkers bounds the per-query pool that evaluates routing-stage
	// GED calls concurrently (neighbor expansions, np_route batch
	// openings, HNSW descent). Default 0 (sequential) — the right setting
	// for servers that already run many queries in parallel; raise it to
	// cut single-query latency on idle multi-core machines. Results, NDC
	// and routing trajectories are bit-identical for every setting.
	QueryWorkers int
	// Seed makes builds reproducible.
	Seed int64
	// Store selects the storage tier when opening a binary snapshot with
	// OpenSnapshot: StoreMMap (the default) or StoreRAM. Build and Load
	// ignore it — their indexes are always RAM-resident.
	Store string
}

// SearchOptions configure one query.
type SearchOptions struct {
	// K is the number of neighbors to return (required).
	K int
	// Beam is the candidate pool size b; larger trades speed for recall
	// (default K).
	Beam int
	// Initial selects the entry-node strategy (default LANIS).
	Initial InitialStrategy
	// Routing selects the routing algorithm (default LANRoute).
	Routing RoutingStrategy
}

// InitialStrategy selects how the routing entry node is chosen.
type InitialStrategy = core.InitialStrategy

// Initial-node strategies.
const (
	// LANIS is the paper's learned initial selection (M_c + M_nh).
	LANIS = core.LANIS
	// HNSWIS descends the HNSW hierarchy.
	HNSWIS = core.HNSWIS
	// RandIS picks a deterministic pseudo-random entry.
	RandIS = core.RandIS
)

// RoutingStrategy selects the routing algorithm.
type RoutingStrategy = core.RoutingStrategy

// Routing strategies.
const (
	// LANRoute is np_route with the learned ranker M_rk.
	LANRoute = core.LANRoute
	// BaselineRoute explores every neighbor (Algorithm 1).
	BaselineRoute = core.BaselineRoute
	// OracleRoute is np_route with a true-distance oracle ranker.
	OracleRoute = core.OracleRoute
)

// Result is one answer: a database graph id and its distance to the
// query.
type Result struct {
	ID   int
	Dist float64
}

// Stats report a query's cost; NDC (the number of GED computations) is
// the paper's primary efficiency metric.
type Stats = core.QueryStats

// Trace is a per-query routing trace: the entry node, every routing step
// (node, neighbors ranked vs. opened, the γ threshold in force), the γ
// trajectory and per-stage wall times. Attach one to a search with
// WithTrace; recording is nil-safe and never changes results or NDC.
type Trace = obs.Trace

// NewTrace returns an empty trace recorder for the given query id.
func NewTrace(queryID string) *Trace { return obs.NewTrace(queryID) }

// WithTrace returns a context that records the search's routing decisions
// into t. Pass it to SearchContext:
//
//	t := lan.NewTrace("q1")
//	res, stats, err := index.SearchContext(lan.WithTrace(ctx, t), q, so)
//	data, _ := t.JSON()
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.With(ctx, t)
}

// TraceSpan is one node of a trace's span tree: a named slice of the
// query's wall time with nested children (store fetches, embedding
// batches) — Trace.Spans.
type TraceSpan = obs.Span

// TraceExporter asynchronously writes sampled query traces to
// size-rotated JSONL segment files; the submitting (query) path never
// blocks. Wire one into lanserve.Config.Exporter or submit traces
// directly; Close it to flush and stop the writer.
type TraceExporter = obs.Exporter

// TraceExportConfig configures NewTraceExporter; only Dir is required.
type TraceExportConfig = obs.ExportConfig

// NewTraceExporter opens (or resumes) a trace segment directory and
// starts the async writer.
func NewTraceExporter(cfg TraceExportConfig) (*TraceExporter, error) { return obs.NewExporter(cfg) }

// TraceReplayStats summarize one replay of an exported trace directory.
type TraceReplayStats = obs.ReplayStats

// ReadTraceSegments replays every exported trace under dir in export
// order, calling fn per trace (nil fn just counts). A truncated final
// record — a crash mid-write — is skipped and counted, not an error.
func ReadTraceSegments(dir string, fn func(*Trace) error) (TraceReplayStats, error) {
	return obs.ReadSegments(dir, fn)
}

// Index is a built LAN search structure. Since the mutable subsystem
// landed it is also a writable one: Insert and Delete apply streaming
// updates while searches keep running. It is safe for concurrent use
// (Search/Insert/Delete from any goroutines) as long as the configured
// metrics are concurrency-safe (the defaults are): every search pins a
// point-in-time snapshot, so it sees a frozen index no matter how many
// writes land mid-query. Indexes that received writes own a background
// edge-optimizer goroutine — call Close when done with such an index.
type Index struct {
	mut *mutable.Index
	// store backs an mmap-opened index; Close releases the mapping. Nil
	// for built, Load-ed and ram-materialized indexes.
	store *lanstore.Store
}

// engine returns the engine view of the current snapshot. Read-only
// callers only; writers go through x.mut.
func (x *Index) engine() *core.Engine { return x.mut.Snapshot().Engine }

// Build constructs the proximity graph over db and trains the LAN models
// on trainQueries (historical queries, or graphs sampled and perturbed
// from the database — see the dataset helpers). db must be numbered by
// graph.NewDatabase.
func Build(db graph.Database, trainQueries []*graph.Graph, o Options) (*Index, error) {
	eng, err := core.Build(db, trainQueries, core.Options{
		M: o.M, EfConstruction: o.EfConstruction,
		BuildMetric: o.BuildMetric, QueryMetric: o.QueryMetric,
		Layers: o.Layers, Dim: o.Dim, BatchPercent: o.BatchPercent,
		UseCG:    !o.DisableCG,
		GammaKNN: o.GammaKNN, GammaQuantile: o.GammaQuantile,
		Clusters: o.Clusters, TopClusters: o.TopClusters, Samples: o.Samples,
		Train:        trainOptions(o),
		StepSize:     o.StepSize,
		Workers:      o.Workers,
		QueryWorkers: o.QueryWorkers,
		Seed:         o.Seed,
	})
	if err != nil {
		return nil, err
	}
	mut, err := mutable.New(eng, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Index{mut: mut}, nil
}

// Search returns the approximate k nearest neighbors of q.
func (x *Index) Search(q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	return x.SearchContext(context.Background(), q, so)
}

// SearchContext is Search with cancellation: the context is threaded
// through the routing pipeline, which checks it before every GED
// computation, so an expired deadline or a canceled request stops the
// query within one distance call and returns ctx.Err(). The returned
// Stats meter the work done up to the cancellation point.
func (x *Index) SearchContext(ctx context.Context, q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	pool := pg.NewWorkerPool(x.engine().Opts.QueryWorkers)
	defer pool.Close()
	return x.searchPooled(ctx, q, so, pool)
}

// searchPooled runs one search evaluating routing-stage distances through
// the given worker pool (nil = sequential). The sharded fan-out uses it to
// share a single bounded pool across all shard searches of one query.
func (x *Index) searchPooled(ctx context.Context, q *graph.Graph, so SearchOptions, pool *pg.WorkerPool) ([]Result, Stats, error) {
	return snapshotSearch(ctx, x.mut.Snapshot(), q, so, pool)
}

// snapshotSearch answers one query against a pinned snapshot.
func snapshotSearch(ctx context.Context, snap *mutable.Snapshot, q *graph.Graph, so SearchOptions, pool *pg.WorkerPool) ([]Result, Stats, error) {
	if q == nil || so.K <= 0 {
		return nil, Stats{}, fmt.Errorf("lan: need a query graph and K > 0")
	}
	// Every member tombstoned (a shard drained by deletes, say): there is
	// nothing to return and no entry node worth routing from.
	if snap.Live == 0 {
		return nil, Stats{}, nil
	}
	res, stats, err := snap.Engine.SearchPooled(ctx, q, core.SearchOptions{
		K: so.K, Beam: so.Beam, Initial: so.Initial, Routing: so.Routing,
	}, pool)
	if err != nil {
		return nil, stats, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out, stats, nil
}

// Save writes the trained index (proximity graph, calibration, clustering
// and model parameters) to w. The database itself is not included; store
// it separately (e.g. with graph.WriteText, via Database) and re-supply
// it to Load — after inserts that means the grown database, not the one
// Build saw. An index that was never mutated serializes as format
// version 1, loadable by pre-mutation readers; a mutated one is version
// 2 and additionally carries the epoch and per-graph validity stamps.
// Save captures one consistent snapshot: writes landing concurrently
// are either fully included or fully absent.
func (x *Index) Save(w io.Writer) error {
	snap := x.mut.Snapshot()
	return snap.Engine.SaveWithState(w, snap.State())
}

// WriteTo implements io.WriterTo: it serializes the index like Save and
// reports the number of bytes written, so the snapshot composes with
// io.Copy-style plumbing (files, network conns, hash writers).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := x.Save(cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadIndex restores an index written by WriteTo (or Save) over the same
// database; it is the reader-side pair of WriteTo. The GED metrics are
// code and must be re-supplied via Options (zero-value defaults match
// Build's).
func ReadIndex(db graph.Database, r io.Reader, o Options) (*Index, error) {
	return Load(db, r, o)
}

// Load restores an index saved with Save over the same database. The GED
// metrics are code and must be re-supplied via Options (zero-value
// defaults match Build's). Version-2 snapshots restore the mutation
// state too: tombstoned graphs stay invisible to searches and the epoch
// continues where it left off.
func Load(db graph.Database, r io.Reader, o Options) (*Index, error) {
	eng, st, version, err := core.LoadWithState(db, r, core.Options{
		BuildMetric: o.BuildMetric, QueryMetric: o.QueryMetric,
		Workers: o.Workers, QueryWorkers: o.QueryWorkers,
	})
	if err != nil {
		return nil, err
	}
	mut, err := mutable.New(eng, st, version)
	if err != nil {
		return nil, err
	}
	return &Index{mut: mut}, nil
}

// SnapshotOptions configure SaveSnapshot.
type SnapshotOptions struct {
	// Precision selects how M_rk's node-embedding table is stored:
	// "f64" (the default — searches over the snapshot are bit-identical
	// to the in-memory index), "f32" (half the space) or "int8" (an
	// eighth). Quantization only perturbs the learned neighbor ranking —
	// every distance in the results is still an exact float64 GED — so
	// recall degrades gracefully; measure it with lan-bench before
	// shipping int8.
	Precision string
}

func quantOf(precision string) (lanstore.Quant, error) {
	switch precision {
	case "", "f64":
		return lanstore.QuantF64, nil
	case "f32":
		return lanstore.QuantF32, nil
	case "int8":
		return lanstore.QuantInt8, nil
	}
	return "", fmt.Errorf("lan: unknown embedding precision %q (want f64, f32 or int8)", precision)
}

// SaveSnapshot writes the index as a self-contained binary snapshot
// (format version 3): unlike Save, the database travels inside the file,
// and the layout is designed to be memory-mapped — OpenSnapshot with the
// mmap store serves queries from it without materializing the database
// in RAM. The write is atomic (temp file + rename). Like Save it
// captures one consistent point-in-time state. An index opened with the
// mmap store cannot be re-saved; open with StoreRAM to materialize it
// first.
func (x *Index) SaveSnapshot(path string, so SnapshotOptions) error {
	quant, err := quantOf(so.Precision)
	if err != nil {
		return err
	}
	snap := x.mut.Snapshot()
	return core.SaveSnapshotV3(path, snap.Engine, snap.State(), quant)
}

// OpenSnapshot opens a binary snapshot written by SaveSnapshot. The
// database is inside the file — nothing else is re-supplied, though the
// GED metrics (code, not data) come from Options as with Load.
//
// Options.Store selects the tier: StoreMMap (default) serves queries
// off the mapping with resident memory far below database size and
// returns a read-only index; StoreRAM verifies and materializes
// everything, returning a writable index indistinguishable from Load's.
// With full-precision embeddings both tiers return bit-identical
// results, stats and routing trajectories.
//
// Call Close when done: for an mmap index it releases the mapping, and
// the index must not be searched afterwards.
func OpenSnapshot(path string, o Options) (*Index, error) {
	mmap := true
	switch o.Store {
	case "", StoreMMap:
	case StoreRAM:
		mmap = false
	default:
		return nil, fmt.Errorf("lan: unknown store %q (want %q or %q)", o.Store, StoreRAM, StoreMMap)
	}
	eng, st, store, err := core.OpenSnapshotV3(path, core.Options{
		BuildMetric: o.BuildMetric, QueryMetric: o.QueryMetric,
		Workers: o.Workers, QueryWorkers: o.QueryWorkers,
	}, mmap)
	if err != nil {
		return nil, err
	}
	var mut *mutable.Index
	if mmap {
		mut, err = mutable.NewReadOnly(eng, st, core.SnapshotVersionV3)
	} else {
		mut, err = mutable.New(eng, st, core.SnapshotVersionV3)
	}
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	return &Index{mut: mut, store: store}, nil
}

// Len returns the number of live (searchable) graphs: inserts grow it,
// deletes shrink it. The id space itself only grows — deleted ids are
// never reused.
func (x *Index) Len() int { return x.mut.Len() }

// GammaStar returns the calibrated neighborhood radius gamma*.
func (x *Index) GammaStar() float64 { return x.engine().GammaStar }

// Graph returns the indexed graph with the given id (including
// tombstoned ones — ids stay resolvable forever). On an mmap-opened
// index the graph is decoded from the snapshot on each call; hold the
// returned value rather than re-fetching in a loop.
func (x *Index) Graph(id int) *graph.Graph {
	e := x.engine()
	if id < 0 || id >= len(e.DB) {
		return nil
	}
	if g := e.DB[id]; g != nil {
		return g
	}
	// mmap husk: the database lives in the snapshot store.
	return e.Graphs.Graph(id)
}

// Database returns the current database view: Build's graphs followed by
// every insert, tombstoned members included. Persist it alongside Save's
// snapshot (e.g. with graph.WriteText) and re-supply it to Load.
func (x *Index) Database() graph.Database { return x.engine().DB }

// Insert adds g to the index and returns its assigned id. The graph is
// cloned and wired into the proximity graph incrementally — candidate
// beams, the diversity heuristic and degree caps all match batch
// construction, and the insertion level derives deterministically from
// (Seed, id) — then queued for background edge optimization. Cost is a
// candidate-beam search, not a rebuild; concurrent searches keep
// serving their pinned snapshots and observe the insert on their next
// query.
func (x *Index) Insert(g *graph.Graph) (int, error) { return x.mut.Insert(g) }

// Delete tombstones graph id: it vanishes from results of all
// subsequent searches, but its vertex keeps routing traffic (soft
// deletion via validity epochs), so recall around it does not crater.
// The freed neighborhood is queued for background edge repair; Compact
// reclaims heavily-deleted graphs' edges in bulk.
func (x *Index) Delete(id int) error { return x.mut.Delete(id) }

// Compact detaches tombstoned vertices from the proximity graph,
// bridging their live neighbors so routes through them survive. Ids
// never shift. Returns the number of vertices detached.
func (x *Index) Compact() (int, error) { return x.mut.Compact() }

// Quiesce synchronously drains the pending edge-optimization work.
// After it returns (absent concurrent writes), search quality matches
// what the background optimizer would eventually converge to.
func (x *Index) Quiesce() { x.mut.Quiesce() }

// Close stops the background edge optimizer (started lazily by the
// first write) and waits for it to exit; writes are rejected afterwards.
// On an index opened with the mmap store it also releases the mapping —
// such an index must not be searched after Close. For purely in-memory
// indexes reads keep working. Safe to call more than once.
func (x *Index) Close() error {
	err := x.mut.Close()
	if x.store != nil {
		if cerr := x.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Epoch returns the index's mutation epoch: 0 for a never-mutated
// index, incremented by every applied insert, delete, compaction and
// optimizer pass. Result caches keyed by query content should fold the
// epoch into their keys — see lan-serve — so entries expire exactly
// when the index changes.
func (x *Index) Epoch() uint64 { return x.mut.Epoch() }

// FormatVersion reports the snapshot format version: the version the
// index was loaded from, or for in-memory indexes the version Save
// would write now (1 until the first mutation, 2 after).
func (x *Index) FormatVersion() int {
	if v := x.mut.LoadedVersion(); v > 0 {
		return v
	}
	if x.mut.Epoch() > 0 {
		return 2
	}
	return 1
}

// IndexSnapshot is a pinned point-in-time read view of an Index.
// Searches against it return bit-identical results, stats and NDC for
// the snapshot's whole lifetime, no matter what writes land on the
// parent index — the serving-side primitive for consistent reads.
type IndexSnapshot struct {
	snap *mutable.Snapshot
}

// Snapshot pins the current state of the index for isolated reads.
func (x *Index) Snapshot() *IndexSnapshot {
	return &IndexSnapshot{snap: x.mut.Snapshot()}
}

// Epoch returns the mutation epoch this snapshot was published at.
func (s *IndexSnapshot) Epoch() uint64 { return s.snap.Epoch }

// Len returns the number of live graphs in this snapshot.
func (s *IndexSnapshot) Len() int { return s.snap.Live }

// Search answers a query against the pinned state.
func (s *IndexSnapshot) Search(q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	return s.SearchContext(context.Background(), q, so)
}

// SearchContext is Search with cancellation, against the pinned state.
func (s *IndexSnapshot) SearchContext(ctx context.Context, q *graph.Graph, so SearchOptions) ([]Result, Stats, error) {
	pool := pg.NewWorkerPool(s.snap.Engine.Opts.QueryWorkers)
	defer pool.Close()
	return snapshotSearch(ctx, s.snap, q, so, pool)
}

func trainOptions(o Options) (t models.TrainOptions) {
	t.Epochs = o.Epochs
	t.LR = o.LR
	return t
}
