// Scalability: sharded search over a growing database (Sec. VII-D).
//
// The paper scales to a million graphs by splitting the database into
// equal-size shards and running the k-ANN search on each shard
// sequentially, merging the per-shard answers. This example builds one
// LAN index per shard of a SYN-style database at increasing sizes and
// shows query time growing linearly with the data, which is the property
// Fig. 9 reports.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
)

func main() {
	log.SetFlags(0)

	gen := graph.NewGenerator(404)
	labels := []string{"L0", "L1", "L2", "L3", "L4"}

	makeDB := func(n int) graph.Database {
		var gs []*graph.Graph
		for c := 0; len(gs) < n; c++ {
			seed := gen.RandomConnected(8+c%6, 14+c%6, labels, 0.1)
			gs = append(gs, seed)
			for i := 1; i < 12 && len(gs) < n; i++ {
				gs = append(gs, gen.Mutate(seed, 1+i%3, labels))
			}
		}
		return graph.NewDatabase(gs)
	}

	const shardSize = 120
	fmt.Printf("%8s %8s %14s %10s\n", "graphs", "shards", "query time", "k-NN GED")
	for _, scale := range []int{120, 240, 360, 480} {
		db := makeDB(scale)

		// Shard and index each shard independently (this is also how the
		// index parallelizes across machines).
		var indexes []*lan.Index
		var shards []graph.Database
		for start := 0; start < len(db); start += shardSize {
			end := start + shardSize
			if end > len(db) {
				end = len(db)
			}
			var part []*graph.Graph
			for _, g := range db[start:end] {
				part = append(part, g.Clone())
			}
			shard := graph.NewDatabase(part)
			var train []*graph.Graph
			for i := 0; i < 16; i++ {
				train = append(train, gen.Mutate(shard[(i*7)%len(shard)], i%3, labels))
			}
			idx, err := lan.Build(shard, train, lan.Options{Dim: 10, Epochs: 3, GammaKNN: 8, Seed: int64(start)})
			if err != nil {
				log.Fatal(err)
			}
			indexes = append(indexes, idx)
			shards = append(shards, shard)
		}

		// One query, searched on every shard sequentially; answers merged.
		query := gen.Mutate(db[scale/2], 2, labels)
		start := time.Now()
		type hit struct {
			shard, id int
			dist      float64
		}
		var all []hit
		for si, idx := range indexes {
			res, _, err := idx.Search(query, lan.SearchOptions{K: 5, Beam: 16})
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range res {
				all = append(all, hit{si, r.ID, r.Dist})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].dist < all[j].dist {
				return true
			}
			if all[i].dist > all[j].dist {
				return false
			}
			if all[i].shard != all[j].shard {
				return all[i].shard < all[j].shard
			}
			return all[i].id < all[j].id
		})
		elapsed := time.Since(start)
		_ = shards
		fmt.Printf("%8d %8d %14s %10.0f\n", scale, len(indexes), elapsed.Round(time.Microsecond), all[0].dist)
	}
	fmt.Println("\nquery time grows linearly with the shard count — the paper's Fig. 9 behavior.")
}
