// Code-clone detection: the paper's software-engineering motivation.
//
// The control flow of a code fragment is a labeled graph; plagiarized or
// cloned code produces control-flow graphs (CFGs) within a small edit
// distance of the original even after renaming and light restructuring.
// This example indexes a corpus of CFGs, then checks suspect fragments
// against it: a nearest neighbor within a small GED flags a likely clone.
package main

import (
	"fmt"
	"log"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

// cloneThreshold is the GED under which a match is reported as a clone.
// Distances come from the ensemble protocol below (exact when feasible,
// else the best of three approximations), so a handful of edits stays a
// handful of GED units even on regular chain-shaped CFGs where single
// bipartite bounds are loose.
const cloneThreshold = 8

func main() {
	log.SetFlags(0)

	// A corpus of control-flow graphs: block-level opcodes as labels,
	// chains with branches and loops, in families (the same function
	// compiled/edited over versions).
	gen := graph.NewGenerator(99)
	ops := []string{"entry", "assign", "call", "branch", "loop", "ret", "throw", "cmp"}
	var corpus []*graph.Graph
	for fn := 0; fn < 25; fn++ {
		original := gen.CFGLike(12+fn%14, ops, 0.25)
		corpus = append(corpus, original)
		for version := 1; version < 7; version++ {
			corpus = append(corpus, gen.Mutate(original, 1+version%3, ops))
		}
	}
	db := graph.NewDatabase(corpus)
	fmt.Printf("CFG corpus: %d functions, avg %.1f basic blocks\n", len(db), db.Stats().AvgNodes)

	var history []*graph.Graph
	for i := 0; i < 30; i++ {
		history = append(history, gen.Mutate(db[(i*13)%len(db)], i%3, ops))
	}
	metric := ged.Ensemble{ExactBudget: 150, BeamWidth: 4}
	index, err := lan.Build(db, history, lan.Options{
		Dim: 12, Epochs: 5, GammaKNN: 8, Seed: 5,
		QueryMetric: metric,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Suspect fragments: one disguised clone (renamed + one edit), one
	// heavier rewrite, one genuinely original function.
	suspects := map[string]*graph.Graph{
		"lightly disguised clone": gen.Mutate(db[88], 2, ops),
		"heavy rewrite":           gen.Mutate(db[120], 6, ops),
		"original work":           gen.CFGLike(18, ops, 0.25),
	}

	for name, cfg := range suspects {
		matches, stats, err := index.Search(cfg, lan.SearchOptions{K: 3, Beam: 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsuspect %q (%d blocks, %d GED computations):\n", name, cfg.N(), stats.NDC)
		flagged := false
		for _, m := range matches {
			verdict := "distinct"
			if m.Dist <= cloneThreshold {
				verdict = "LIKELY CLONE"
				flagged = true
			}
			fmt.Printf("  function %3d at GED %.0f  [%s]\n", m.ID, m.Dist, verdict)
		}
		if !flagged {
			fmt.Printf("  -> no clone found within GED %d\n", cloneThreshold)
		}
	}
}
