// Cheminformatics: virtual screening by structural similarity.
//
// The scenario mirrors the paper's motivating application: a registry of
// compound structures (here the AIDS antiviral-screen simulator) and a
// chemist with a candidate molecule who wants the most similar registered
// compounds — molecules with similar graph structure tend to have similar
// function. The example builds a LAN index once, screens a panel of query
// compounds, and reports how much GED computation the learned index saved
// over scanning the registry.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

func main() {
	log.SetFlags(0)

	// A compound registry shaped like the AIDS screen data: molecule
	// skeletons over a 12-element alphabet, grouped into scaffold
	// families.
	gen := graph.NewGenerator(2024)
	elements := []string{"C", "N", "O", "S", "P", "F", "Cl", "Br", "I", "Na", "Si", "B"}
	var compounds []*graph.Graph
	for family := 0; family < 30; family++ {
		scaffold := gen.MoleculeLike(18+family%12, 2+family%3, elements, 0.5)
		compounds = append(compounds, scaffold)
		for variant := 1; variant < 12; variant++ {
			compounds = append(compounds, gen.Mutate(scaffold, 1+variant%4, elements))
		}
	}
	registry := graph.NewDatabase(compounds)
	st := registry.Stats()
	fmt.Printf("compound registry: %d molecules, avg %.1f atoms, %d element types\n",
		st.Graphs, st.AvgNodes, st.NumLabels)

	// Historical queries train the routing models.
	var history []*graph.Graph
	for i := 0; i < 40; i++ {
		history = append(history, gen.Mutate(registry[(i*31)%len(registry)], i%3, elements))
	}

	start := time.Now()
	index, err := lan.Build(registry, history, lan.Options{
		Dim: 16, Epochs: 5, GammaKNN: 12,
		// Screening wants faithful distances: exact GED when feasible,
		// best-of-three approximations otherwise (the paper's protocol).
		QueryMetric: ged.Ensemble{ExactBudget: 200, BeamWidth: 4},
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("screening index built in %s\n\n", time.Since(start).Round(time.Millisecond))

	// Screen a panel of candidate molecules.
	panel := []*graph.Graph{
		gen.Mutate(registry[17], 1, elements),  // near-duplicate of a registered compound
		gen.Mutate(registry[200], 4, elements), // a modified scaffold
		gen.MoleculeLike(20, 2, elements, 0.5), // a novel structure
	}
	names := []string{"near-duplicate", "modified scaffold", "novel structure"}

	var totalNDC int
	for i, candidate := range panel {
		hits, stats, err := index.Search(candidate, lan.SearchOptions{K: 5, Beam: 24})
		if err != nil {
			log.Fatal(err)
		}
		totalNDC += stats.NDC
		fmt.Printf("candidate %d (%s, %d atoms):\n", i+1, names[i], candidate.N())
		for rank, hit := range hits {
			fmt.Printf("  #%d compound %3d  GED %.0f\n", rank+1, hit.ID, hit.Dist)
		}
		fmt.Printf("  (%d GED computations, %s)\n\n", stats.NDC, stats.Total.Round(time.Millisecond))
	}
	fmt.Printf("screened %d candidates with %d GED computations total;\n", len(panel), totalNDC)
	fmt.Printf("a linear scan would have needed %d.\n", len(panel)*len(registry))
}
