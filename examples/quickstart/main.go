// Quickstart: build a LAN index over a small synthetic molecule database
// and answer one k-ANN query, printing the answers next to the exact
// brute-force ranking so you can see the approximation quality.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

func main() {
	log.SetFlags(0)

	// 1. Assemble a database: 200 molecule-like graphs in clusters, the
	// shape a real chemical registry has (families of related compounds).
	gen := graph.NewGenerator(7)
	labels := []string{"C", "N", "O", "S", "P"}
	var gs []*graph.Graph
	for c := 0; c < 20; c++ {
		seed := gen.MoleculeLike(12+c%8, 2, labels, 0.4)
		gs = append(gs, seed)
		for i := 1; i < 10; i++ {
			gs = append(gs, gen.Mutate(seed, 1+i%3, labels))
		}
	}
	db := graph.NewDatabase(gs)
	fmt.Printf("database: %d graphs (avg %.1f nodes)\n", len(db), db.Stats().AvgNodes)

	// 2. A training workload: lightly perturbed database members, the
	// same distribution real historical queries would have.
	var train []*graph.Graph
	for i := 0; i < 30; i++ {
		train = append(train, gen.Mutate(db[(i*17)%len(db)], i%3, labels))
	}

	// 3. Build: constructs the proximity graph and trains the neighbor
	// ranking and initial-selection models (offline, one-off).
	index, err := lan.Build(db, train, lan.Options{Dim: 12, Epochs: 5, GammaKNN: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built (gamma* = %.0f)\n", index.GammaStar())

	// 4. Query: a new molecule, searched with k = 5.
	query := gen.Mutate(db[42], 2, labels)
	results, stats, err := index.Search(query, lan.SearchOptions{K: 5, Beam: 16})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nLAN answers (NDC = %d, %.1fms):\n", stats.NDC, float64(stats.Total.Microseconds())/1000)
	for _, r := range results {
		fmt.Printf("  graph %3d at GED %.0f\n", r.ID, r.Dist)
	}

	// 5. Compare with the exact answer (brute force over all 200 graphs —
	// what LAN avoids doing).
	type pair struct {
		id int
		d  float64
	}
	exact := make([]pair, len(db))
	for i, g := range db {
		exact[i] = pair{i, ged.Hungarian(g, query)}
	}
	sort.Slice(exact, func(i, j int) bool {
		// Strict < / > comparisons only: ties fall through to the id
		// tie-break, keeping the baseline ranking deterministic.
		if exact[i].d < exact[j].d {
			return true
		}
		if exact[i].d > exact[j].d {
			return false
		}
		return exact[i].id < exact[j].id
	})
	fmt.Printf("\nbrute force (%d distance computations):\n", len(db))
	for _, p := range exact[:5] {
		fmt.Printf("  graph %3d at GED %.0f\n", p.id, p.d)
	}
}
