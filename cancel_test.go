package lan

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

// notifyMetric wraps the GED metric so tests can learn when a search has
// reached its first distance computation (to cancel mid-flight) and slow
// the remaining ones enough that an un-checked cancellation would be
// obvious as a multi-second stall. It starts disarmed, so index building
// runs at full speed; arm/disarm are safe against concurrent searches.
type notifyMetric struct {
	inner   ged.Metric
	mu      sync.Mutex
	started chan struct{}
	delay   time.Duration
}

// arm slows every subsequent distance computation by delay and returns a
// channel closed when the next one begins.
func (m *notifyMetric) arm(delay time.Duration) <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = make(chan struct{})
	m.delay = delay
	return m.started
}

func (m *notifyMetric) disarm() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started = nil
	m.delay = 0
}

func (m *notifyMetric) Distance(a, b *graph.Graph) float64 {
	m.mu.Lock()
	if m.started != nil {
		close(m.started)
		m.started = nil
	}
	d := m.delay
	m.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return m.inner.Distance(a, b)
}

var cancelFixture struct {
	once    sync.Once
	idx     *Index
	sharded *ShardedIndex
	metric  *notifyMetric
	query   *graph.Graph
	err     error
}

// cancelIndexes builds a three-shard index over a tiny database, driven by
// a notifyMetric. The plain-Index cancellation paths are exercised through
// shard 0 (a *Index over a third of the database) so the fixture pays for
// one build; kept -short-fast so the race-mode CI leg covers these tests.
func cancelIndexes(t *testing.T) (*Index, *ShardedIndex, *notifyMetric, *graph.Graph) {
	t.Helper()
	f := &cancelFixture
	f.once.Do(func() {
		spec := dataset.AIDS(0.002)
		db := spec.Generate()
		queries := dataset.Workload(db, spec, 12, 3)
		f.metric = &notifyMetric{inner: ged.MetricFunc(ged.Hungarian)}
		f.sharded, f.err = BuildSharded(db, queries, ShardedOptions{
			ShardSize: (len(db) + 2) / 3,
			Parallel:  2,
			Options:   Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 1, QueryMetric: f.metric},
		})
		if f.err != nil {
			return
		}
		f.idx = f.sharded.shards[0]
		f.query = queries[0]
	})
	if f.err != nil {
		t.Fatalf("building cancel fixture: %v", f.err)
	}
	return f.idx, f.sharded, f.metric, f.query
}

func TestSearchContextPreCanceled(t *testing.T) {
	idx, sharded, _, q := cancelIndexes(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := idx.SearchContext(ctx, q, SearchOptions{K: 3, Beam: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Index err = %v; want context.Canceled", err)
	}
	_, _, err := sharded.SearchContext(ctx, q, SearchOptions{K: 3, Beam: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ShardedIndex err = %v; want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("sharded error %q does not identify the failing shard", err)
	}
}

func TestSearchContextMidFlightCancel(t *testing.T) {
	idx, _, metric, q := cancelIndexes(t)
	started := metric.arm(500 * time.Microsecond)
	defer metric.disarm()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var canceledAt time.Time
	go func() {
		_, _, err := idx.SearchContext(ctx, q, SearchOptions{K: 3, Beam: 32})
		done <- err
	}()
	<-started // the search is inside its first distance computation
	canceledAt = time.Now()
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
		// Prompt return: at most a handful of in-flight distance
		// computations after cancel, not the whole beam search.
		if elapsed := time.Since(canceledAt); elapsed > 2*time.Second {
			t.Fatalf("search returned %s after cancel", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search never returned after cancellation")
	}
}

func TestSearchContextDeadline(t *testing.T) {
	idx, _, metric, q := cancelIndexes(t)
	metric.arm(2 * time.Millisecond)
	defer metric.disarm()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := idx.SearchContext(ctx, q, SearchOptions{K: 3, Beam: 32})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded", err)
	}
}

// TestShardedCancelNoGoroutineLeak cancels a sharded fan-out mid-flight and
// verifies every shard goroutine exits: SearchContext must not return while
// workers it spawned are still running.
func TestShardedCancelNoGoroutineLeak(t *testing.T) {
	_, sharded, metric, q := cancelIndexes(t)
	metric.arm(500 * time.Microsecond)
	defer metric.disarm()

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, _, err := sharded.SearchContext(ctx, q, SearchOptions{K: 3, Beam: 32})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
	}

	// Allow the cancel-timer goroutines above to wind down, then insist the
	// count returns to its starting point.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
