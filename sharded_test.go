package lan

import (
	"fmt"
	"sync"
	"testing"

	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/pg"
)

func toPGResults(res []Result) []pg.Result {
	out := make([]pg.Result, len(res))
	for i, r := range res {
		out[i] = pg.Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

func TestShardedIndexMatchesGlobalTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds global and sharded indexes (~20s)")
	}
	spec := dataset.AIDS(0.005)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 20, 3)
	train, _, test := dataset.Split(queries)

	sharded, err := BuildSharded(db, train, ShardedOptions{
		ShardSize: 80,
		Options:   Options{M: 5, Dim: 8, GammaKNN: 5, Epochs: 2, Seed: 4},
	})
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	if sharded.Len() != len(db) {
		t.Fatalf("Len = %d; want %d", sharded.Len(), len(db))
	}
	if sharded.Shards() < 2 {
		t.Fatalf("expected multiple shards, got %d", sharded.Shards())
	}

	for qi, q := range test {
		res, stats, err := sharded.Search(q, SearchOptions{K: 5, Beam: 16})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if len(res) != 5 {
			t.Fatalf("query %d: %d results", qi, len(res))
		}
		if stats.NDC <= 0 {
			t.Fatalf("query %d: no NDC", qi)
		}
		// Global ids must resolve and be sorted by distance.
		for i, r := range res {
			if r.ID < 0 || r.ID >= len(db) {
				t.Fatalf("query %d: id %d out of range", qi, r.ID)
			}
			if i > 0 && res[i-1].Dist > r.Dist {
				t.Fatalf("query %d: unsorted %v", qi, res)
			}
		}
	}
}

func TestShardedSearchRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a multi-shard index (~18s)")
	}
	spec := dataset.AIDS(0.005)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 20, 3)
	train, _, test := dataset.Split(queries)
	sharded, err := BuildSharded(db, train, ShardedOptions{
		ShardSize: 80,
		Options:   Options{M: 5, Dim: 8, GammaKNN: 5, Epochs: 2, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exercise the sharding machinery with the deterministic strategies so
	// the assertion is about fan-out/merge, not learned-model quality.
	eng := sharded.shards[0].engine()
	var recall float64
	for _, q := range test {
		truth := dataset.BruteForceKNN(db, q, eng.Opts.QueryMetric, 5)
		res, _, err := sharded.Search(q, SearchOptions{K: 5, Beam: 48, Initial: HNSWIS, Routing: BaselineRoute})
		if err != nil {
			t.Fatal(err)
		}
		recall += dataset.Recall(toPGResults(res), truth)
	}
	recall /= float64(len(test))
	if recall < 0.8 {
		t.Fatalf("sharded recall@5 = %.3f < 0.8", recall)
	}
	t.Logf("sharded recall@5 = %.3f", recall)
}

func TestShardedValidation(t *testing.T) {
	if _, err := BuildSharded(nil, nil, ShardedOptions{}); err == nil {
		t.Fatal("empty db accepted")
	}
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 3)
	sharded, err := BuildSharded(db, queries, ShardedOptions{
		ShardSize: 1000, // one shard
		Options:   Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 1 {
		t.Fatalf("shards = %d; want 1", sharded.Shards())
	}
	if _, _, err := sharded.Search(nil, SearchOptions{K: 1}); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, _, err := sharded.Search(queries[0], SearchOptions{}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

// TestShardedConcurrentSearches is the -short-mode (and therefore race-mode)
// coverage of the multi-shard fan-out: a tiny database split into several
// shards, searched from multiple goroutines at once, must agree with a
// sequential search of the same index.
func TestShardedConcurrentSearches(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 3)
	sharded, err := BuildSharded(db, queries, ShardedOptions{
		ShardSize: (len(db) + 2) / 3, // force three shards
		Parallel:  2,
		Options:   Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 3 {
		t.Fatalf("shards = %d; want 3", sharded.Shards())
	}

	q := queries[0]
	want, _, err := sharded.Search(q, SearchOptions{K: 5, Beam: 8})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := sharded.Search(q, SearchOptions{K: 5, Beam: 8})
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("got %d results; want %d", len(got), len(want))
				return
			}
			for j := range got {
				if got[j].ID != want[j].ID {
					errs <- fmt.Errorf("result %d: id %d != %d", j, got[j].ID, want[j].ID)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
