package lan

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lansearch/lan/ged"
)

// snapshotPath saves idx as a v3 binary snapshot in a temp dir.
func snapshotPath(t *testing.T, idx *Index, so SnapshotOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.lansnap")
	if err := idx.SaveSnapshot(path, so); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	return path
}

func TestSnapshotRoundTripBothTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index end to end")
	}
	idx, db, test := buildSmallIndex(t)
	path := snapshotPath(t, idx, SnapshotOptions{})

	if snap, err := IsSnapshotFile(path); err != nil || !snap {
		t.Fatalf("IsSnapshotFile = %v, %v; want true", snap, err)
	}

	so := SearchOptions{K: 4, Beam: 10}
	for _, store := range []string{StoreRAM, StoreMMap} {
		opened, err := OpenSnapshot(path, Options{Store: store})
		if err != nil {
			t.Fatalf("OpenSnapshot(%s): %v", store, err)
		}
		if opened.Len() != len(db) {
			t.Fatalf("%s: Len = %d; want %d", store, opened.Len(), len(db))
		}
		if opened.FormatVersion() != 3 {
			t.Fatalf("%s: FormatVersion = %d; want 3", store, opened.FormatVersion())
		}
		for qi, q := range test {
			want, wantStats, err := idx.Search(q, so)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := opened.Search(q, so)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s query %d: results diverge from the index that wrote the snapshot\nwant: %v\ngot:  %v", store, qi, want, got)
			}
			if wantStats.NDC != gotStats.NDC {
				t.Fatalf("%s query %d: NDC %d != %d", store, qi, gotStats.NDC, wantStats.NDC)
			}
		}
		if err := opened.Close(); err != nil {
			t.Fatalf("%s: Close: %v", store, err)
		}
	}
}

func TestSnapshotMMapIsReadOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index end to end")
	}
	idx, _, test := buildSmallIndex(t)
	path := snapshotPath(t, idx, SnapshotOptions{})

	mm, err := OpenSnapshot(path, Options{}) // mmap is the default tier
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if _, err := mm.Insert(test[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert on mmap index: err = %v; want ErrReadOnly", err)
	}
	if err := mm.Delete(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on mmap index: err = %v; want ErrReadOnly", err)
	}
	if _, err := mm.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact on mmap index: err = %v; want ErrReadOnly", err)
	}
	// Searches still serve.
	if res, _, err := mm.Search(test[0], SearchOptions{K: 3, Beam: 8}); err != nil || len(res) != 3 {
		t.Fatalf("Search on mmap index: res=%v err=%v", res, err)
	}

	// The same snapshot opened on the RAM tier accepts writes.
	ram, err := OpenSnapshot(path, Options{Store: StoreRAM})
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()
	if _, err := ram.Insert(test[0]); err != nil {
		t.Fatalf("Insert on ram-materialized index: %v", err)
	}
}

func TestSnapshotPrecisionOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index end to end")
	}
	idx, _, test := buildSmallIndex(t)
	if err := idx.SaveSnapshot(filepath.Join(t.TempDir(), "x.lansnap"), SnapshotOptions{Precision: "f16"}); err == nil {
		t.Fatal("unknown precision accepted")
	}
	for _, prec := range []string{"f32", "int8"} {
		path := snapshotPath(t, idx, SnapshotOptions{Precision: prec})
		opened, err := OpenSnapshot(path, Options{})
		if err != nil {
			t.Fatalf("%s: %v", prec, err)
		}
		res, _, err := opened.Search(test[0], SearchOptions{K: 3, Beam: 8})
		if err != nil || len(res) != 3 {
			t.Fatalf("%s: res=%v err=%v", prec, res, err)
		}
		// Quantization perturbs only the learned ranking: result distances
		// stay exact float64 GEDs of the returned graphs under the default
		// query metric.
		for _, r := range res {
			if exact := ged.Hungarian(opened.Graph(r.ID), test[0]); r.Dist != exact {
				t.Fatalf("%s: result %d dist %v != exact GED %v", prec, r.ID, r.Dist, exact)
			}
		}
		opened.Close()
	}
}

func TestOpenSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.lansnap")
	if err := os.WriteFile(garbage, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(garbage, Options{}); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("garbage: err = %v; want ErrNotSnapshot", err)
	}
	if snap, err := IsSnapshotFile(garbage); err != nil || snap {
		t.Fatalf("IsSnapshotFile(garbage) = %v, %v; want false", snap, err)
	}
	if _, err := OpenSnapshot(filepath.Join(dir, "x.lansnap"), Options{Store: "floppy"}); err == nil {
		t.Fatal("unknown store accepted")
	}
}
