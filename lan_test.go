package lan

import (
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

func buildSmallIndex(t *testing.T) (*Index, graph.Database, []*graph.Graph) {
	t.Helper()
	spec := dataset.AIDS(0.003)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 16, 9)
	train, _, test := dataset.Split(queries)
	idx, err := Build(db, train, Options{M: 5, Dim: 8, GammaKNN: 10, Epochs: 2, Seed: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx, db, test
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index end to end")
	}
	idx, db, test := buildSmallIndex(t)
	if idx.Len() != len(db) {
		t.Fatalf("Len = %d; want %d", idx.Len(), len(db))
	}
	if idx.GammaStar() <= 0 {
		t.Fatalf("GammaStar = %v", idx.GammaStar())
	}
	res, stats, err := idx.Search(test[0], SearchOptions{K: 3, Beam: 10})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	if stats.NDC <= 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	// Returned ids resolve to graphs and distances are consistent.
	for _, r := range res {
		g := idx.Graph(r.ID)
		if g == nil || g.ID != r.ID {
			t.Fatalf("Graph(%d) wrong", r.ID)
		}
	}
}

func TestSearchArgumentValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index")
	}
	idx, _, test := buildSmallIndex(t)
	if _, _, err := idx.Search(nil, SearchOptions{K: 3}); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, _, err := idx.Search(test[0], SearchOptions{}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestStrategyConstantsWireThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index per strategy")
	}
	idx, _, test := buildSmallIndex(t)
	for _, is := range []InitialStrategy{LANIS, HNSWIS, RandIS} {
		for _, rt := range []RoutingStrategy{LANRoute, BaselineRoute, OracleRoute} {
			res, _, err := idx.Search(test[1], SearchOptions{K: 2, Beam: 6, Initial: is, Routing: rt})
			if err != nil || len(res) != 2 {
				t.Fatalf("is=%v rt=%v: res=%v err=%v", is, rt, res, err)
			}
		}
	}
}
