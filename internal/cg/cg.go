// Package cg implements the paper's Sec. VI: GNN-graphs, the compressed
// GNN-graph (CG, Definition 2, built by WL labeling per Algorithm 5), and
// cross-graph learning over CGs (Definition 3). The raw GNN-graph of
// Sec. III-D is represented as the trivial compression in which every node
// is its own group, so a single forward implementation covers both
// Definition 1 (raw cross-graph learning) and Definition 3 (compressed),
// and Theorem 2's equality can be checked directly.
//
// Note on fidelity: Definition 3's attention (Eq. 10) keys on the
// aggregated message t rather than the previous-layer embedding; taken
// literally that breaks the equality claimed by Theorem 2 against
// Definition 1 (Eq. 6), which keys on h^{l-1}. We follow the theorem:
// attention is keyed on previous-level embeddings, computed once per
// previous-level group and shared by all its refinements — this preserves
// the complexity bound of Theorem 3.
package cg

import (
	"sort"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
)

// Vocab maps node labels to dense feature indices. Labels not present when
// the vocabulary was built share a single out-of-vocabulary bucket.
type Vocab struct {
	index map[string]int
	size  int
}

// NewVocab builds a vocabulary from the labels occurring in db, plus one
// out-of-vocabulary bucket.
func NewVocab(db graph.Database) *Vocab {
	set := make(map[string]bool)
	for _, g := range db {
		for _, l := range g.Labels() {
			set[l] = true
		}
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	v := &Vocab{index: make(map[string]int, len(labels))}
	for i, l := range labels {
		v.index[l] = i
	}
	v.size = len(labels) + 1 // +1 OOV bucket
	return v
}

// NewVocabFromLabels rebuilds a vocabulary from an explicit label list —
// the persisted form of NewVocab's scan, so a snapshot loader can
// reconstruct the exact vocabulary without touching the database. Labels
// are deduplicated and sorted, making the result independent of input
// order.
func NewVocabFromLabels(labels []string) *Vocab {
	set := make(map[string]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	uniq := make([]string, 0, len(set))
	for l := range set {
		uniq = append(uniq, l)
	}
	sort.Strings(uniq)
	v := &Vocab{index: make(map[string]int, len(uniq))}
	for i, l := range uniq {
		v.index[l] = i
	}
	v.size = len(uniq) + 1 // +1 OOV bucket
	return v
}

// Labels returns the vocabulary's labels in index order (excluding the
// OOV bucket) — the list NewVocabFromLabels round-trips.
func (v *Vocab) Labels() []string {
	out := make([]string, v.size-1)
	for l, i := range v.index {
		out[i] = l
	}
	return out
}

// Size returns the one-hot dimension (#labels + 1 OOV).
func (v *Vocab) Size() int { return v.size }

// Index returns the feature index of label (OOV bucket if unseen).
func (v *Vocab) Index(label string) int {
	if i, ok := v.index[label]; ok {
		return i
	}
	return v.size - 1
}

// Compressed is a compressed GNN-graph: L+1 levels of node groups with
// weighted aggregation edges between consecutive levels.
type Compressed struct {
	Levels []Level
	// N is the number of nodes of the underlying graph (readout
	// normalization and Theorem 2 bookkeeping).
	N int
}

// Level holds the groups at one level of a compressed GNN-graph.
type Level struct {
	// Size[i] is |g| — how many original nodes group i contains.
	Size []float64
	// Feature[i] is the label feature index of group i (level 0 only).
	Feature []int
	// Parent[i] is the index of the previous-level group containing
	// group i's members (levels >= 1). Well defined because WL classes
	// refine: equal labels at level l imply equal labels at level l-1.
	Parent []int
	// In[i] lists the weighted aggregation edges from previous-level
	// groups into group i (levels >= 1), including the GIN self term.
	In [][]autograd.Lin
}

// Groups returns the number of groups at level l.
func (c *Compressed) Groups(l int) int { return len(c.Levels[l].Size) }

// Depth returns L, the number of convolution layers the CG supports.
func (c *Compressed) Depth() int { return len(c.Levels) - 1 }

// Build constructs the compressed GNN-graph of g for an L-layer GNN by WL
// labeling (Algorithm 5). Theorem 4: grouping by WL classes is the optimum
// grouping that preserves embedding equality.
func Build(g *graph.Graph, L int, vocab *Vocab) *Compressed {
	wl := graph.WL(g, L)
	c := &Compressed{N: g.N(), Levels: make([]Level, L+1)}

	// groupOf[l][u] = group index of node u at level l. WL class ids are
	// dense per level already, but not necessarily contiguous from 0 for
	// this graph alone (joint labeling); remap to local dense ids.
	groupOf := make([][]int, L+1)
	for l := 0; l <= L; l++ {
		remap := make(map[int]int)
		groupOf[l] = make([]int, g.N())
		for u := 0; u < g.N(); u++ {
			cls := wl.Labels[l][u]
			id, ok := remap[cls]
			if !ok {
				id = len(remap)
				remap[cls] = id
			}
			groupOf[l][u] = id
		}
		ng := len(remap)
		lv := &c.Levels[l]
		lv.Size = make([]float64, ng)
		rep := make([]int, ng) // a representative node per group
		for i := range rep {
			rep[i] = -1
		}
		for u := 0; u < g.N(); u++ {
			gi := groupOf[l][u]
			lv.Size[gi]++
			if rep[gi] == -1 {
				rep[gi] = u
			}
		}
		if l == 0 {
			lv.Feature = make([]int, ng)
			for i, u := range rep {
				lv.Feature[i] = vocab.Index(g.Label(u))
			}
		} else {
			lv.Parent = make([]int, ng)
			lv.In = make([][]autograd.Lin, ng)
			for i, u := range rep {
				lv.Parent[i] = groupOf[l-1][u]
				// Weighted in-edges per Algorithm 5: |N(u) ∩ group| for
				// each previous-level group, +1 for u's own group.
				w := make(map[int]float64)
				w[groupOf[l-1][u]]++ // self term
				for _, v := range g.Neighbors(u) {
					w[groupOf[l-1][v]]++
				}
				ins := make([]autograd.Lin, 0, len(w))
				for from, weight := range w {
					ins = append(ins, autograd.Lin{Row: from, W: weight})
				}
				sort.Slice(ins, func(a, b int) bool { return ins[a].Row < ins[b].Row })
				lv.In[i] = ins
			}
		}
	}
	return c
}

// BuildRaw constructs the uncompressed GNN-graph of g (Sec. III-D) in the
// same representation: every node is its own group at every level. Forward
// passes over it implement Definition 1 exactly.
func BuildRaw(g *graph.Graph, L int, vocab *Vocab) *Compressed {
	n := g.N()
	c := &Compressed{N: n, Levels: make([]Level, L+1)}
	for l := 0; l <= L; l++ {
		lv := &c.Levels[l]
		lv.Size = make([]float64, n)
		for i := range lv.Size {
			lv.Size[i] = 1
		}
		if l == 0 {
			lv.Feature = make([]int, n)
			for u := 0; u < n; u++ {
				lv.Feature[u] = vocab.Index(g.Label(u))
			}
			continue
		}
		lv.Parent = make([]int, n)
		lv.In = make([][]autograd.Lin, n)
		for u := 0; u < n; u++ {
			lv.Parent[u] = u
			ins := make([]autograd.Lin, 0, g.Degree(u)+1)
			ins = append(ins, autograd.Lin{Row: u, W: 1})
			for _, v := range g.Neighbors(u) {
				ins = append(ins, autograd.Lin{Row: v, W: 1})
			}
			sort.Slice(ins, func(a, b int) bool { return ins[a].Row < ins[b].Row })
			lv.In[u] = ins
		}
	}
	return c
}

// Cost summarizes the work of one cross-graph forward pass in the units of
// Theorem 3: aggregation edges, attention pairs, and transformed rows.
type Cost struct {
	// AggEdges is Σ_l |E_l| over both CGs: weighted-sum terms in Eq. 8.
	AggEdges int
	// AttnPairs is Σ_l |V_{l-1}(G*)| x |V_{l-1}(Q*)|: attention score
	// evaluations (Eq. 10), both directions.
	AttnPairs int
	// MatmulRows is Σ_l (|V_l(G*)| + |V_l(Q*)|): rows multiplied by W^l,
	// the bottleneck HAG cannot reduce.
	MatmulRows int
}

// CrossCost returns the Theorem-3 cost of cross-graph learning between two
// compressed (or raw) GNN-graphs.
func CrossCost(a, b *Compressed) Cost {
	var c Cost
	L := a.Depth()
	for l := 1; l <= L; l++ {
		for _, ins := range a.Levels[l].In {
			c.AggEdges += len(ins)
		}
		for _, ins := range b.Levels[l].In {
			c.AggEdges += len(ins)
		}
		c.AttnPairs += 2 * a.Groups(l-1) * b.Groups(l-1)
		c.MatmulRows += a.Groups(l) + b.Groups(l)
	}
	return c
}

// Total returns a single comparable scalar: the sum of all cost terms.
func (c Cost) Total() int { return c.AggEdges + c.AttnPairs + c.MatmulRows }
