package cg

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
)

// Config describes the shape of a (cross-)graph network.
type Config struct {
	// Layers is L, the number of graph convolution layers.
	Layers int
	// Dim is the hidden embedding dimension of every layer l >= 1.
	Dim int
	// Vocab provides the level-0 one-hot input features.
	Vocab *Vocab
}

// EmbedDim returns the dimension of a single-graph embedding.
func (c Config) EmbedDim() int { return c.Dim }

// CrossDim returns the dimension of a cross-graph embedding h_G || h_Q.
func (c Config) CrossDim() int { return 2 * c.Dim }

// CrossModel is the GMN-style cross-graph network of Sec. III-E: at every
// layer each node aggregates its (compressed) graph neighborhood (Eq. 4/8)
// and attends over all nodes of the other graph (Eq. 5-6 / 9-10). It runs
// on Compressed inputs; feeding BuildRaw inputs yields Definition 1 and
// feeding Build inputs yields Definition 3.
type CrossModel struct {
	Cfg Config
	W   []*autograd.Value // W[l]: d_{l-1} x Dim, l = 1..Layers
	A1  []*autograd.Value // a = A1 || A2 split so scores decompose into an outer sum
	A2  []*autograd.Value
}

// NewCrossModel registers the model's parameters under prefix.
func NewCrossModel(p *nn.Params, prefix string, cfg Config, rng *rand.Rand) *CrossModel {
	if cfg.Layers < 1 || cfg.Dim < 1 || cfg.Vocab == nil {
		panic(fmt.Sprintf("cg: bad config %+v", cfg))
	}
	m := &CrossModel{Cfg: cfg}
	din := cfg.Vocab.Size()
	for l := 1; l <= cfg.Layers; l++ {
		std := math.Sqrt(2.0 / float64(din+cfg.Dim))
		m.W = append(m.W, p.Add(fmt.Sprintf("%s.W%d", prefix, l), mat.Randn(din, cfg.Dim, std, rng)))
		m.A1 = append(m.A1, p.Add(fmt.Sprintf("%s.a1_%d", prefix, l), mat.Randn(din, 1, std, rng)))
		m.A2 = append(m.A2, p.Add(fmt.Sprintf("%s.a2_%d", prefix, l), mat.Randn(din, 1, std, rng)))
		din = cfg.Dim
	}
	return m
}

// inputFeatures builds the constant level-0 one-hot feature matrix of c.
func inputFeatures(c *Compressed, vocabSize int) *autograd.Value {
	lv := c.Levels[0]
	m := mat.New(len(lv.Feature), vocabSize)
	for i, f := range lv.Feature {
		m.Set(i, f, 1)
	}
	return autograd.Const(m)
}

// logSizes returns the constant 1xN row of log group sizes used to fold
// the |q| weights of Eq. 10 into a plain softmax.
func logSizes(sizes []float64) *autograd.Value {
	m := mat.New(1, len(sizes))
	for i, s := range sizes {
		m.Data[i] = math.Log(s)
	}
	return autograd.Const(m)
}

// Forward computes the cross-graph embedding h_G || h_Q (1 x 2*Dim) of two
// compressed (or raw) GNN-graphs. Theorem 2: the result is identical for
// Build(g) and BuildRaw(g) inputs.
func (m *CrossModel) Forward(cgG, cgQ *Compressed) *autograd.Value {
	if cgG.Depth() < m.Cfg.Layers || cgQ.Depth() < m.Cfg.Layers {
		panic(fmt.Sprintf("cg: CG depth %d/%d < model layers %d", cgG.Depth(), cgQ.Depth(), m.Cfg.Layers))
	}
	hg := inputFeatures(cgG, m.Cfg.Vocab.Size())
	hq := inputFeatures(cgQ, m.Cfg.Vocab.Size())
	for l := 1; l <= m.Cfg.Layers; l++ {
		w, a1, a2 := m.W[l-1], m.A1[l-1], m.A2[l-1]
		lvG, lvQ := cgG.Levels[l], cgQ.Levels[l]
		szGprev := cgG.Levels[l-1].Size
		szQprev := cgQ.Levels[l-1].Size

		// Attention both ways over previous-level groups (Eq. 9-10 with
		// group-size weights folded into the softmax as log terms).
		kg1 := autograd.MatMul(hg, a1)
		kg2 := autograd.Transpose(autograd.MatMul(hg, a2))
		kq1 := autograd.MatMul(hq, a1)
		kq2 := autograd.Transpose(autograd.MatMul(hq, a2))

		scoresG := autograd.AddRowBroadcast(autograd.OuterSum(kg1, kq2), logSizes(szQprev))
		muGprev := autograd.MatMul(autograd.SoftmaxRows(scoresG), hq)
		scoresQ := autograd.AddRowBroadcast(autograd.OuterSum(kq1, kg2), logSizes(szGprev))
		muQprev := autograd.MatMul(autograd.SoftmaxRows(scoresQ), hg)

		// Aggregate (Eq. 8), add the cross message of the parent group,
		// transform, activate (Eq. 7).
		tG := autograd.LinearCombRows(hg, lvG.In)
		tQ := autograd.LinearCombRows(hq, lvQ.In)
		preG := autograd.Add(tG, autograd.GatherRows(muGprev, lvG.Parent))
		preQ := autograd.Add(tQ, autograd.GatherRows(muQprev, lvQ.Parent))
		hg = autograd.ReLU(autograd.MatMul(preG, w))
		hq = autograd.ReLU(autograd.MatMul(preQ, w))
	}
	// Weighted mean readout over the last level (group sizes restore the
	// per-node mean of Definition 1).
	outG := autograd.WeightedMeanRows(hg, cgG.Levels[m.Cfg.Layers].Size)
	outQ := autograd.WeightedMeanRows(hq, cgQ.Levels[m.Cfg.Layers].Size)
	return autograd.ConcatCols(outG, outQ)
}

// GINModel is a plain GIN encoder (Sec. III-C, Eq. 1) over compressed (or
// raw) GNN-graphs: the CrossModel without the cross-attention term. It is
// used for offline graph embeddings (clustering, the L2route baseline).
type GINModel struct {
	Cfg Config
	W   []*autograd.Value
}

// NewGINModel registers a GIN encoder's parameters under prefix.
func NewGINModel(p *nn.Params, prefix string, cfg Config, rng *rand.Rand) *GINModel {
	if cfg.Layers < 1 || cfg.Dim < 1 || cfg.Vocab == nil {
		panic(fmt.Sprintf("cg: bad config %+v", cfg))
	}
	m := &GINModel{Cfg: cfg}
	din := cfg.Vocab.Size()
	for l := 1; l <= cfg.Layers; l++ {
		std := math.Sqrt(2.0 / float64(din+cfg.Dim))
		m.W = append(m.W, p.Add(fmt.Sprintf("%s.W%d", prefix, l), mat.Randn(din, cfg.Dim, std, rng)))
		din = cfg.Dim
	}
	return m
}

// Forward computes the graph embedding h_G (1 x Dim).
func (m *GINModel) Forward(c *Compressed) *autograd.Value {
	h := inputFeatures(c, m.Cfg.Vocab.Size())
	for l := 1; l <= m.Cfg.Layers; l++ {
		t := autograd.LinearCombRows(h, c.Levels[l].In)
		h = autograd.ReLU(autograd.MatMul(t, m.W[l-1]))
	}
	return autograd.WeightedMeanRows(h, c.Levels[m.Cfg.Layers].Size)
}

// Embed computes the embedding without building an autodiff tape (the
// inference path; equals Forward's output).
func (m *GINModel) Embed(c *Compressed) []float64 {
	h := inferInput(c, m.Cfg.Vocab.Size())
	for l := 1; l <= m.Cfg.Layers; l++ {
		lv := c.Levels[l]
		pre := mat.New(len(lv.In), h.Cols)
		for i := range lv.In {
			row := pre.Row(i)
			for _, e := range lv.In[i] {
				src := h.Row(e.Row)
				for k, v := range src {
					row[k] += e.W * v
				}
			}
		}
		h = mat.Mul(pre, m.W[l-1].Data)
		for i, v := range h.Data {
			if v < 0 {
				h.Data[i] = 0
			}
		}
	}
	return weightedMean(h, c.Levels[m.Cfg.Layers].Size)
}
