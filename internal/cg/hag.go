package cg

import (
	"sort"

	"github.com/lansearch/lan/internal/autograd"
)

// HAG is the comparison baseline of Sec. VI (Jia et al., KDD 2020): it
// leaves the GNN-graph uncompressed but eliminates redundant *additions*
// in neighborhood aggregation by introducing auxiliary sum nodes for
// frequently co-occurring source pairs. Because every original node still
// flows through W^l individually, HAG reduces AggEdges but neither
// AttnPairs nor MatmulRows — which is why it cannot speed up cross-graph
// learning (Fig. 12).
type HAG struct {
	// Base is the raw GNN-graph the plan optimizes.
	Base *Compressed
	// Aux[l] lists, per layer l >= 1, the auxiliary sum nodes to
	// prepend-compute over the previous level's rows; an aux combo may
	// reference earlier aux rows at indices >= Groups(l-1).
	Aux [][][]autograd.Lin
	// In[l] is the rewritten aggregation for layer l, whose Lin.Row may
	// reference aux rows.
	In [][][]autograd.Lin
}

// BuildHAG constructs a HAG aggregation plan for g with at most maxAux
// auxiliary nodes per layer, greedily extracting the most frequent
// unweighted source pair as in the original HAG search.
func BuildHAG(raw *Compressed, maxAux int) *HAG {
	h := &HAG{Base: raw}
	L := raw.Depth()
	h.Aux = make([][][]autograd.Lin, L+1)
	h.In = make([][][]autograd.Lin, L+1)
	for l := 1; l <= L; l++ {
		in := make([][]autograd.Lin, len(raw.Levels[l].In))
		for i, terms := range raw.Levels[l].In {
			in[i] = append([]autograd.Lin(nil), terms...)
		}
		var aux [][]autograd.Lin
		base := raw.Groups(l - 1)
		for len(aux) < maxAux {
			pair, count := mostFrequentPair(in)
			if count < 2 {
				break
			}
			auxRow := base + len(aux)
			aux = append(aux, []autograd.Lin{{Row: pair[0], W: 1}, {Row: pair[1], W: 1}})
			for i, terms := range in {
				in[i] = substitutePair(terms, pair, auxRow)
			}
		}
		h.Aux[l] = aux
		h.In[l] = in
	}
	return h
}

// mostFrequentPair finds the unordered pair of unit-weight sources that
// co-occurs in the most aggregation lists.
func mostFrequentPair(in [][]autograd.Lin) ([2]int, int) {
	counts := make(map[[2]int]int)
	for _, terms := range in {
		var rows []int
		for _, t := range terms {
			if t.W == 1 {
				rows = append(rows, t.Row)
			}
		}
		sort.Ints(rows)
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				counts[[2]int{rows[i], rows[j]}]++
			}
		}
	}
	var best [2]int
	bestCount := 0
	for p, c := range counts {
		if c > bestCount || (c == bestCount && (p[0] < best[0] || (p[0] == best[0] && p[1] < best[1]))) {
			best, bestCount = p, c
		}
	}
	return best, bestCount
}

// substitutePair rewrites terms to use auxRow in place of the two
// unit-weight sources pair[0], pair[1] when both are present.
func substitutePair(terms []autograd.Lin, pair [2]int, auxRow int) []autograd.Lin {
	i0, i1 := -1, -1
	for i, t := range terms {
		if t.W == 1 {
			if t.Row == pair[0] {
				i0 = i
			} else if t.Row == pair[1] {
				i1 = i
			}
		}
	}
	if i0 == -1 || i1 == -1 {
		return terms
	}
	out := make([]autograd.Lin, 0, len(terms)-1)
	for i, t := range terms {
		if i != i0 && i != i1 {
			out = append(out, t)
		}
	}
	return append(out, autograd.Lin{Row: auxRow, W: 1})
}

// AggEdges returns the aggregation additions of the plan (aux construction
// included), comparable with Cost.AggEdges of the unoptimized graph.
func (h *HAG) AggEdges() int {
	total := 0
	for l := 1; l <= h.Base.Depth(); l++ {
		for _, a := range h.Aux[l] {
			total += len(a)
		}
		for _, terms := range h.In[l] {
			total += len(terms)
		}
	}
	return total
}

// Aggregate computes layer l's aggregation t over prev (the previous
// level's embeddings) honoring the plan's auxiliary nodes.
func (h *HAG) Aggregate(l int, prev *autograd.Value) *autograd.Value {
	full := prev
	if len(h.Aux[l]) > 0 {
		// Aux combos may reference earlier aux rows, so extend one at a
		// time.
		for _, combo := range h.Aux[l] {
			auxRow := autograd.LinearCombRows(full, [][]autograd.Lin{combo})
			full = autograd.ConcatRows(full, auxRow)
		}
	}
	return autograd.LinearCombRows(full, h.In[l])
}

// ForwardCross runs the cross-graph model m over two HAG plans; the result
// equals m.Forward over the underlying raw GNN-graphs.
func ForwardCross(m *CrossModel, hg, hq *HAG) *autograd.Value {
	cgG, cgQ := hg.Base, hq.Base
	vg := inputFeatures(cgG, m.Cfg.Vocab.Size())
	vq := inputFeatures(cgQ, m.Cfg.Vocab.Size())
	for l := 1; l <= m.Cfg.Layers; l++ {
		w, a1, a2 := m.W[l-1], m.A1[l-1], m.A2[l-1]
		szGprev := cgG.Levels[l-1].Size
		szQprev := cgQ.Levels[l-1].Size

		kg1 := autograd.MatMul(vg, a1)
		kg2 := autograd.Transpose(autograd.MatMul(vg, a2))
		kq1 := autograd.MatMul(vq, a1)
		kq2 := autograd.Transpose(autograd.MatMul(vq, a2))

		scoresG := autograd.AddRowBroadcast(autograd.OuterSum(kg1, kq2), logSizes(szQprev))
		muGprev := autograd.MatMul(autograd.SoftmaxRows(scoresG), vq)
		scoresQ := autograd.AddRowBroadcast(autograd.OuterSum(kq1, kg2), logSizes(szGprev))
		muQprev := autograd.MatMul(autograd.SoftmaxRows(scoresQ), vg)

		tG := hg.Aggregate(l, vg)
		tQ := hq.Aggregate(l, vq)
		preG := autograd.Add(tG, autograd.GatherRows(muGprev, cgG.Levels[l].Parent))
		preQ := autograd.Add(tQ, autograd.GatherRows(muQprev, cgQ.Levels[l].Parent))
		vg = autograd.ReLU(autograd.MatMul(preG, w))
		vq = autograd.ReLU(autograd.MatMul(preQ, w))
	}
	outG := autograd.WeightedMeanRows(vg, cgG.Levels[m.Cfg.Layers].Size)
	outQ := autograd.WeightedMeanRows(vq, cgQ.Levels[m.Cfg.Layers].Size)
	return autograd.ConcatCols(outG, outQ)
}
