package cg

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
)

func testDB(seed int64, n int) graph.Database {
	gen := graph.NewGenerator(seed)
	labels := []string{"A", "B", "C", "D"}
	var gs []*graph.Graph
	for i := 0; i < n; i++ {
		gs = append(gs, gen.MoleculeLike(5+i%12, 1+i%3, labels, 0.4))
	}
	return graph.NewDatabase(gs)
}

func TestVocab(t *testing.T) {
	db := testDB(1, 5)
	v := NewVocab(db)
	if v.Size() < 2 {
		t.Fatalf("vocab too small: %d", v.Size())
	}
	if v.Index("A") == v.Index("B") {
		t.Fatalf("distinct labels collided")
	}
	if v.Index("__unseen__") != v.Size()-1 {
		t.Fatalf("OOV index = %d; want %d", v.Index("__unseen__"), v.Size()-1)
	}
}

func TestBuildPaperExampleFig2(t *testing.T) {
	// Fig. 2(a): G = star with center v0 (label A) and leaves v1..v3
	// (label B) — plus the paper's edges make it a path-ish shape; we use
	// the star: all three leaves share labels and neighborhoods, so every
	// level has exactly 2 groups (Fig. 4(a)).
	g := graph.New(-1)
	v0 := g.AddNode("A")
	for i := 0; i < 3; i++ {
		vi := g.AddNode("B")
		g.MustAddEdge(v0, vi)
	}
	vocab := NewVocab(graph.Database{g})
	c := Build(g, 2, vocab)
	for l := 0; l <= 2; l++ {
		if got := c.Groups(l); got != 2 {
			t.Fatalf("level %d groups = %d; want 2", l, got)
		}
	}
	// Center group has size 1, leaf group 3.
	sizes := c.Levels[0].Size
	if !(sizes[0] == 1 && sizes[1] == 3) && !(sizes[0] == 3 && sizes[1] == 1) {
		t.Fatalf("level-0 sizes = %v", sizes)
	}
	// The center aggregates itself once and three leaves (weight 3); the
	// edge weights per Algorithm 5 must reflect that.
	var centerIn []autograd.Lin
	for i := range c.Levels[1].Size {
		if c.Levels[1].Size[i] == 1 {
			centerIn = c.Levels[1].In[i]
		}
	}
	wsum := 0.0
	for _, e := range centerIn {
		wsum += e.W
	}
	if wsum != 4 { // self (1) + three leaves (3)
		t.Fatalf("center in-weights sum = %v; want 4", wsum)
	}
}

func TestBuildGroupCountsMatchWL(t *testing.T) {
	// Theorem 4: groups per level == WL classes per level.
	db := testDB(2, 10)
	vocab := NewVocab(db)
	for _, g := range db {
		wl := graph.WL(g, 3)
		c := Build(g, 3, vocab)
		for l := 0; l <= 3; l++ {
			classes := make(map[int]bool)
			for _, cl := range wl.Labels[l] {
				classes[cl] = true
			}
			if c.Groups(l) != len(classes) {
				t.Fatalf("graph %d level %d: %d groups, %d WL classes", g.ID, l, c.Groups(l), len(classes))
			}
		}
	}
}

func TestBuildRawShape(t *testing.T) {
	db := testDB(3, 3)
	vocab := NewVocab(db)
	g := db[0]
	c := BuildRaw(g, 2, vocab)
	for l := 0; l <= 2; l++ {
		if c.Groups(l) != g.N() {
			t.Fatalf("raw level %d groups = %d; want %d", l, c.Groups(l), g.N())
		}
	}
	// In-list of node u must have degree+1 unit edges.
	for u := 0; u < g.N(); u++ {
		ins := c.Levels[1].In[u]
		if len(ins) != g.Degree(u)+1 {
			t.Fatalf("node %d has %d in-edges; want %d", u, len(ins), g.Degree(u)+1)
		}
		for _, e := range ins {
			if e.W != 1 {
				t.Fatalf("raw edge weight %v", e.W)
			}
		}
	}
}

func TestCompressedNeverLargerThanRaw(t *testing.T) {
	// Corollary 1 at the structural level.
	db := testDB(4, 12)
	vocab := NewVocab(db)
	for _, g := range db {
		c := Build(g, 3, vocab)
		r := BuildRaw(g, 3, vocab)
		for l := 0; l <= 3; l++ {
			if c.Groups(l) > r.Groups(l) {
				t.Fatalf("graph %d level %d: compressed %d > raw %d", g.ID, l, c.Groups(l), r.Groups(l))
			}
		}
		cc := CrossCost(c, c)
		rc := CrossCost(r, r)
		if cc.AggEdges > rc.AggEdges || cc.AttnPairs > rc.AttnPairs || cc.MatmulRows > rc.MatmulRows {
			t.Fatalf("graph %d: compressed cost %+v exceeds raw %+v", g.ID, cc, rc)
		}
	}
}

func newTestModel(t *testing.T, db graph.Database, layers, dim int) (*CrossModel, *Vocab) {
	t.Helper()
	vocab := NewVocab(db)
	p := nn.NewParams()
	m := NewCrossModel(p, "m", Config{Layers: layers, Dim: dim, Vocab: vocab}, rand.New(rand.NewSource(99)))
	return m, vocab
}

func TestTheorem2CompressedEqualsRaw(t *testing.T) {
	db := testDB(5, 8)
	m, vocab := newTestModel(t, db, 3, 8)
	for i := 0; i < len(db); i++ {
		for j := i + 1; j < len(db); j++ {
			g, q := db[i], db[j]
			raw := m.Forward(BuildRaw(g, 3, vocab), BuildRaw(q, 3, vocab))
			comp := m.Forward(Build(g, 3, vocab), Build(q, 3, vocab))
			if d := mat.MaxAbsDiff(raw.Data, comp.Data); d > 1e-9 {
				t.Fatalf("pair (%d,%d): |raw - compressed| = %v", i, j, d)
			}
		}
	}
}

func TestTheorem2MixedInputs(t *testing.T) {
	// Raw G with compressed Q must still match (the two sides are
	// independent groupings of the same computation).
	db := testDB(6, 4)
	m, vocab := newTestModel(t, db, 2, 6)
	g, q := db[0], db[1]
	a := m.Forward(BuildRaw(g, 2, vocab), Build(q, 2, vocab))
	b := m.Forward(Build(g, 2, vocab), BuildRaw(q, 2, vocab))
	if d := mat.MaxAbsDiff(a.Data, b.Data); d > 1e-9 {
		t.Fatalf("mixed inputs diverge: %v", d)
	}
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	db := testDB(7, 3)
	m, vocab := newTestModel(t, db, 2, 5)
	c0, c1 := Build(db[0], 2, vocab), Build(db[1], 2, vocab)
	out := m.Forward(c0, c1)
	if out.Data.Rows != 1 || out.Data.Cols != 10 {
		t.Fatalf("cross embedding shape %dx%d; want 1x10", out.Data.Rows, out.Data.Cols)
	}
	out2 := m.Forward(c0, c1)
	if mat.MaxAbsDiff(out.Data, out2.Data) != 0 {
		t.Fatalf("forward not deterministic")
	}
}

func TestCrossModelGradientsFlow(t *testing.T) {
	db := testDB(8, 2)
	vocab := NewVocab(db)
	p := nn.NewParams()
	m := NewCrossModel(p, "m", Config{Layers: 2, Dim: 4, Vocab: vocab}, rand.New(rand.NewSource(1)))
	out := m.Forward(Build(db[0], 2, vocab), Build(db[1], 2, vocab))
	loss := autograd.SumSquares(out)
	autograd.Backward(loss)
	for _, name := range p.Names() {
		v := p.Get(name)
		if v.Grad == nil {
			t.Fatalf("parameter %s received no gradient", name)
		}
	}
	// At least the first-layer W must have a nonzero gradient.
	if p.Get("m.W1").Grad.Norm2() == 0 {
		t.Fatalf("first-layer gradient identically zero")
	}
}

func TestCrossModelTrainsToSeparateClasses(t *testing.T) {
	// Tiny end-to-end learnability check: classify whether Q is a mutation
	// of G (positive) or an unrelated graph (negative).
	gen := graph.NewGenerator(42)
	labels := []string{"A", "B", "C"}
	var db []*graph.Graph
	for i := 0; i < 8; i++ {
		db = append(db, gen.MoleculeLike(8, 1, labels, 0.3))
	}
	vocab := NewVocab(graph.NewDatabase(db))
	p := nn.NewParams()
	rng := rand.New(rand.NewSource(5))
	m := NewCrossModel(p, "m", Config{Layers: 2, Dim: 8, Vocab: vocab}, rng)
	head := nn.NewMLP(p, "head", []int{16, 8, 1}, rng)
	opt := nn.NewAdam(0.01)

	type pair struct {
		a, b *Compressed
		y    float64
	}
	var pairs []pair
	for i := 0; i < 8; i++ {
		g := db[i]
		mut := gen.Mutate(g, 1, labels)
		far := gen.MoleculeLike(8, 1, labels, 0.3)
		pairs = append(pairs,
			pair{Build(g, 2, vocab), Build(mut, 2, vocab), 1},
			pair{Build(g, 2, vocab), Build(far, 2, vocab), 0},
		)
	}
	var loss float64
	for epoch := 0; epoch < 60; epoch++ {
		p.ZeroGrad()
		total := 0.0
		for _, pr := range pairs {
			emb := m.Forward(pr.a, pr.b)
			logit := head.Apply(emb)
			l := autograd.BCEWithLogits(logit, mat.FromSlice(1, 1, []float64{pr.y}))
			autograd.Backward(l)
			total += l.Data.At(0, 0)
		}
		opt.Step(p)
		loss = total / float64(len(pairs))
	}
	if loss > 0.45 {
		t.Fatalf("cross model failed to fit toy task: loss %v", loss)
	}
}

func TestCrossCostAccounting(t *testing.T) {
	db := testDB(9, 2)
	vocab := NewVocab(db)
	a := BuildRaw(db[0], 2, vocab)
	b := BuildRaw(db[1], 2, vocab)
	c := CrossCost(a, b)
	n0, n1 := db[0].N(), db[1].N()
	wantAttn := 2 * 2 * n0 * n1 // two layers, both directions
	if c.AttnPairs != wantAttn {
		t.Fatalf("AttnPairs = %d; want %d", c.AttnPairs, wantAttn)
	}
	wantRows := 2 * (n0 + n1)
	if c.MatmulRows != wantRows {
		t.Fatalf("MatmulRows = %d; want %d", c.MatmulRows, wantRows)
	}
	wantAgg := 2 * (n0 + 2*db[0].M() + n1 + 2*db[1].M())
	if c.AggEdges != wantAgg {
		t.Fatalf("AggEdges = %d; want %d", c.AggEdges, wantAgg)
	}
	if c.Total() != c.AggEdges+c.AttnPairs+c.MatmulRows {
		t.Fatalf("Total inconsistent")
	}
}

func TestGINModelEmbedding(t *testing.T) {
	db := testDB(10, 4)
	vocab := NewVocab(db)
	p := nn.NewParams()
	m := NewGINModel(p, "gin", Config{Layers: 2, Dim: 6, Vocab: vocab}, rand.New(rand.NewSource(2)))
	e0 := m.Embed(Build(db[0], 2, vocab))
	if len(e0) != 6 {
		t.Fatalf("embedding dim %d; want 6", len(e0))
	}
	// Compressed == raw for plain GIN too.
	e0raw := m.Embed(BuildRaw(db[0], 2, vocab))
	for i := range e0 {
		if math.Abs(e0[i]-e0raw[i]) > 1e-9 {
			t.Fatalf("GIN compressed != raw at %d: %v vs %v", i, e0[i], e0raw[i])
		}
	}
	// Same graph twice -> same embedding; different graphs (generically)
	// differ.
	e0b := m.Embed(Build(db[0], 2, vocab))
	for i := range e0 {
		if e0[i] != e0b[i] {
			t.Fatalf("embedding not deterministic")
		}
	}
}

func TestHAGEquivalenceAndSavings(t *testing.T) {
	db := testDB(11, 6)
	m, vocab := newTestModel(t, db, 2, 6)
	for i := 0; i+1 < len(db); i += 2 {
		g, q := db[i], db[i+1]
		rawG, rawQ := BuildRaw(g, 2, vocab), BuildRaw(q, 2, vocab)
		hg, hq := BuildHAG(rawG, 8), BuildHAG(rawQ, 8)
		want := m.Forward(rawG, rawQ)
		got := ForwardCross(m, hg, hq)
		if d := mat.MaxAbsDiff(want.Data, got.Data); d > 1e-9 {
			t.Fatalf("pair %d: HAG forward differs by %v", i, d)
		}
		// The plan never increases aggregation work.
		rawEdges := 0
		for l := 1; l <= 2; l++ {
			for _, ins := range rawG.Levels[l].In {
				rawEdges += len(ins)
			}
		}
		if hg.AggEdges() > rawEdges {
			t.Fatalf("HAG increased agg edges: %d > %d", hg.AggEdges(), rawEdges)
		}
	}
}

func TestHAGFindsSharingInDenseGraph(t *testing.T) {
	// A complete graph has maximal neighbor overlap: HAG must save edges.
	g := graph.New(-1)
	for i := 0; i < 6; i++ {
		g.AddNode("X")
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.MustAddEdge(i, j)
		}
	}
	vocab := NewVocab(graph.Database{g})
	raw := BuildRaw(g, 2, vocab)
	h := BuildHAG(raw, 16)
	rawEdges := 0
	for l := 1; l <= 2; l++ {
		for _, ins := range raw.Levels[l].In {
			rawEdges += len(ins)
		}
	}
	if h.AggEdges() >= rawEdges {
		t.Fatalf("HAG saved nothing on K6: %d >= %d", h.AggEdges(), rawEdges)
	}
}

func TestConfigValidation(t *testing.T) {
	p := nn.NewParams()
	rng := rand.New(rand.NewSource(0))
	for i, bad := range []Config{
		{Layers: 0, Dim: 4, Vocab: &Vocab{size: 3}},
		{Layers: 2, Dim: 0, Vocab: &Vocab{size: 3}},
		{Layers: 2, Dim: 4, Vocab: nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: no panic", i)
				}
			}()
			NewCrossModel(p, "x", bad, rng)
		}()
	}
}

func TestInferMatchesForward(t *testing.T) {
	db := testDB(21, 8)
	m, vocab := newTestModel(t, db, 3, 8)
	for i := 0; i+1 < len(db); i += 2 {
		cgG := Build(db[i], 3, vocab)
		cgQ := Build(db[i+1], 3, vocab)
		want := m.Forward(cgG, cgQ).Data.Data
		got := m.Infer(cgG, cgQ)
		if len(got) != len(want) {
			t.Fatalf("pair %d: dim %d vs %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("pair %d: Infer[%d] = %v; Forward = %v", i, j, got[j], want[j])
			}
		}
		// Raw inputs too.
		rawWant := m.Forward(BuildRaw(db[i], 3, vocab), BuildRaw(db[i+1], 3, vocab)).Data.Data
		rawGot := m.Infer(BuildRaw(db[i], 3, vocab), BuildRaw(db[i+1], 3, vocab))
		for j := range rawWant {
			if math.Abs(rawGot[j]-rawWant[j]) > 1e-9 {
				t.Fatalf("pair %d raw: Infer[%d] diverges", i, j)
			}
		}
	}
}

func TestInferValueUsableByHeads(t *testing.T) {
	db := testDB(22, 2)
	m, vocab := newTestModel(t, db, 2, 6)
	v := m.InferValue(Build(db[0], 2, vocab), Build(db[1], 2, vocab))
	if v.Data.Rows != 1 || v.Data.Cols != 12 {
		t.Fatalf("InferValue shape %dx%d", v.Data.Rows, v.Data.Cols)
	}
	if v.RequiresGrad() {
		t.Fatal("inference value should not require grad")
	}
}

func TestBatchEmbedMatchesEmbed(t *testing.T) {
	// More graphs than one batch chunk, so the chunked path is exercised.
	db := testDB(31, batchChunk+9)
	vocab := NewVocab(db)
	p := nn.NewParams()
	m := NewGINModel(p, "gin", Config{Layers: 2, Dim: 6, Vocab: vocab}, rand.New(rand.NewSource(5)))
	cs := make([]*Compressed, len(db))
	for i, g := range db {
		cs[i] = Build(g, 2, vocab)
	}
	for _, workers := range []int{1, 4} {
		got := m.BatchEmbed(cs, workers)
		if len(got) != len(cs) {
			t.Fatalf("workers=%d: %d embeddings for %d graphs", workers, len(got), len(cs))
		}
		for i, c := range cs {
			want := m.Embed(c)
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers=%d graph %d: BatchEmbed[%d]=%v Embed=%v", workers, i, j, got[i][j], want[j])
				}
			}
		}
	}
	if out := m.BatchEmbed(nil, 2); len(out) != 0 {
		t.Fatalf("BatchEmbed(nil) = %v", out)
	}
}

func TestGINEmbedMatchesForward(t *testing.T) {
	db := testDB(23, 6)
	vocab := NewVocab(db)
	p := nn.NewParams()
	m := NewGINModel(p, "gin", Config{Layers: 3, Dim: 7, Vocab: vocab}, rand.New(rand.NewSource(2)))
	for _, g := range db {
		c := Build(g, 3, vocab)
		want := m.Forward(c).Data.Data
		got := m.Embed(c)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("graph %d: Embed[%d]=%v Forward=%v", g.ID, j, got[j], want[j])
			}
		}
	}
}
