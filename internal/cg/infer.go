package cg

import (
	"math"

	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/mat"
)

// Infer computes the same cross-graph embedding as Forward using plain
// matrix kernels, without building an autodiff tape. Routing calls the
// model hundreds of times per query, so the inference path avoids the
// per-op graph-node allocations of training; InferMatchesForward pins the
// two paths to each other.
func (m *CrossModel) Infer(cgG, cgQ *Compressed) []float64 {
	hg := inferInput(cgG, m.Cfg.Vocab.Size())
	hq := inferInput(cgQ, m.Cfg.Vocab.Size())
	for l := 1; l <= m.Cfg.Layers; l++ {
		w := m.W[l-1].Data
		a1 := m.A1[l-1].Data
		a2 := m.A2[l-1].Data
		lvG, lvQ := cgG.Levels[l], cgQ.Levels[l]
		szG, szQ := cgG.Levels[l-1].Size, cgQ.Levels[l-1].Size

		kg1 := mat.Mul(hg, a1)
		kg2 := mat.Mul(hg, a2)
		kq1 := mat.Mul(hq, a1)
		kq2 := mat.Mul(hq, a2)

		muG := inferAttention(kg1, kq2, hq, szQ)
		muQ := inferAttention(kq1, kg2, hg, szG)

		hg = inferLayer(hg, muG, lvG, w)
		hq = inferLayer(hq, muQ, lvQ, w)
	}
	outG := weightedMean(hg, cgG.Levels[m.Cfg.Layers].Size)
	outQ := weightedMean(hq, cgQ.Levels[m.Cfg.Layers].Size)
	return append(outG, outQ...)
}

// inferInput builds the one-hot level-0 features.
func inferInput(c *Compressed, vocabSize int) *mat.Matrix {
	lv := c.Levels[0]
	h := mat.New(len(lv.Feature), vocabSize)
	for i, f := range lv.Feature {
		h.Set(i, f, 1)
	}
	return h
}

// inferAttention computes mu rows: softmax over the other side's groups
// with size weights, then the weighted combination of its embeddings.
func inferAttention(selfKey, otherKey *mat.Matrix, other *mat.Matrix, otherSize []float64) *mat.Matrix {
	n := selfKey.Rows
	mo := otherKey.Rows
	mu := mat.New(n, other.Cols)
	logw := make([]float64, mo)
	for j, s := range otherSize {
		logw[j] = math.Log(s)
	}
	scores := make([]float64, mo)
	for i := 0; i < n; i++ {
		base := selfKey.At(i, 0)
		maxScore := math.Inf(-1)
		for j := 0; j < mo; j++ {
			scores[j] = base + otherKey.At(j, 0) + logw[j]
			if scores[j] > maxScore {
				maxScore = scores[j]
			}
		}
		sum := 0.0
		for j := range scores {
			scores[j] = math.Exp(scores[j] - maxScore)
			sum += scores[j]
		}
		murow := mu.Row(i)
		for j := 0; j < mo; j++ {
			alpha := scores[j] / sum
			if alpha == 0 {
				continue
			}
			orow := other.Row(j)
			for k, v := range orow {
				murow[k] += alpha * v
			}
		}
	}
	return mu
}

// inferLayer aggregates the previous level, adds the parent's cross
// message, multiplies by W and applies ReLU.
func inferLayer(prev, mu *mat.Matrix, lv Level, w *mat.Matrix) *mat.Matrix {
	n := len(lv.In)
	pre := mat.New(n, prev.Cols)
	for i := 0; i < n; i++ {
		row := pre.Row(i)
		for _, e := range lv.In[i] {
			src := prev.Row(e.Row)
			for k, v := range src {
				row[k] += e.W * v
			}
		}
		murow := mu.Row(lv.Parent[i])
		for k, v := range murow {
			row[k] += v
		}
	}
	out := mat.Mul(pre, w)
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

func weightedMean(h *mat.Matrix, sizes []float64) []float64 {
	out := make([]float64, h.Cols)
	total := 0.0
	for i, s := range sizes {
		total += s
		row := h.Row(i)
		for k, v := range row {
			out[k] += s * v
		}
	}
	for k := range out {
		out[k] /= total
	}
	return out
}

// InferValue wraps Infer's output as a constant autograd value so
// inference-time heads can reuse the training-path code.
func (m *CrossModel) InferValue(cgG, cgQ *Compressed) *autograd.Value {
	e := m.Infer(cgG, cgQ)
	return autograd.Const(mat.FromSlice(1, len(e), e))
}
