package cg

import (
	"runtime"
	"sync"

	"github.com/lansearch/lan/internal/mat"
)

// batchChunk is the number of graphs stacked into one matrix product per
// layer. Large enough that the W multiply crosses the mat package's
// parallel/tiling thresholds, small enough that a chunk's activations
// stay cache-resident.
const batchChunk = 64

// BatchEmbed computes Embed for every compressed graph, stacking the
// per-layer aggregation rows of a chunk of graphs into one matrix so each
// layer costs one blocked multiply instead of len(cs) small ones. Chunks
// are distributed over workers goroutines (<= 0 means GOMAXPROCS). Every
// returned embedding is bit-identical to Embed(cs[i]): the stacked
// product computes each output row with the same ascending-k accumulation
// as the per-graph product, and the aggregation and readout reuse the
// same code. The index build calls this once over the whole database.
func (m *GINModel) BatchEmbed(cs []*Compressed, workers int) [][]float64 {
	out := make([][]float64, len(cs))
	if len(cs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type span struct{ lo, hi int }
	var spans []span
	for lo := 0; lo < len(cs); lo += batchChunk {
		hi := lo + batchChunk
		if hi > len(cs) {
			hi = len(cs)
		}
		spans = append(spans, span{lo, hi})
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers < 2 {
		for _, s := range spans {
			m.embedChunk(cs[s.lo:s.hi], out[s.lo:s.hi])
		}
		return out
	}
	ch := make(chan span)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range ch {
				m.embedChunk(cs[s.lo:s.hi], out[s.lo:s.hi])
			}
		}()
	}
	for _, s := range spans {
		ch <- s
	}
	close(ch)
	wg.Wait()
	return out
}

// embedChunk embeds one chunk: the graphs' rows live stacked in a single
// matrix per layer, split back into per-graph views (slices of the shared
// backing array) for the aggregation and readout.
func (m *GINModel) embedChunk(cs []*Compressed, out [][]float64) {
	vocab := m.Cfg.Vocab.Size()
	offs := make([]int, len(cs)+1)
	for i, c := range cs {
		offs[i+1] = offs[i] + len(c.Levels[0].Feature)
	}
	big := mat.New(offs[len(cs)], vocab)
	hs := make([]*mat.Matrix, len(cs))
	for i, c := range cs {
		view := &mat.Matrix{Rows: offs[i+1] - offs[i], Cols: vocab, Data: big.Data[offs[i]*vocab : offs[i+1]*vocab]}
		for r, f := range c.Levels[0].Feature {
			view.Row(r)[f] = 1
		}
		hs[i] = view
	}
	for l := 1; l <= m.Cfg.Layers; l++ {
		cols := hs[0].Cols
		for i, c := range cs {
			offs[i+1] = offs[i] + len(c.Levels[l].In)
		}
		pre := mat.New(offs[len(cs)], cols)
		for i, c := range cs {
			h := hs[i]
			for r, terms := range c.Levels[l].In {
				row := pre.Data[(offs[i]+r)*cols : (offs[i]+r+1)*cols]
				for _, e := range terms {
					src := h.Row(e.Row)
					for k, v := range src {
						row[k] += e.W * v
					}
				}
			}
		}
		big = mat.Mul(pre, m.W[l-1].Data)
		for i, v := range big.Data {
			if v < 0 {
				big.Data[i] = 0
			}
		}
		for i := range cs {
			hs[i] = &mat.Matrix{Rows: offs[i+1] - offs[i], Cols: big.Cols, Data: big.Data[offs[i]*big.Cols : offs[i+1]*big.Cols]}
		}
	}
	for i, c := range cs {
		out[i] = weightedMean(hs[i], c.Levels[m.Cfg.Layers].Size)
	}
}
