package obs

import (
	"sync"

	"github.com/lansearch/lan/ged"
)

// QueryMetrics is the engine-level query-cost family set, shared by every
// binary that runs searches (lan-bench, lan-serve, lan-search). The
// fields are resolved once at registration, so recording is a handful of
// atomic adds per query.
type QueryMetrics struct {
	// Queries counts completed (non-errored) searches.
	Queries *Counter
	// NDC* split the paper's primary cost metric — distance computations —
	// by pipeline stage: initial-node selection, np_route/beam batch
	// opens, and l2route's GED verification.
	NDCInitial *Counter
	NDCRouting *Counter
	NDCVerify  *Counter
	// PruningRatio is the fraction of ranked neighbors whose distance was
	// never computed (np_route's whole point).
	PruningRatio *Histogram
	// GammaSteps is the length of the γ-threshold trajectory (np_route
	// supersteps per query).
	GammaSteps *Histogram
	// BatchesOpened and RankerCalls meter the learned ranker's work.
	BatchesOpened *Counter
	RankerCalls   *Counter
	// DistCacheHits/Misses meter the per-query distance memo; the hit
	// ratio is hits/(hits+misses).
	DistCacheHits   *Counter
	DistCacheMisses *Counter
}

var (
	queryOnce    sync.Once
	queryMetrics *QueryMetrics
)

// Query returns the process-wide query-cost metrics, registering them on
// the default registry on first use.
func Query() *QueryMetrics {
	queryOnce.Do(func() {
		r := Default()
		queryMetrics = &QueryMetrics{
			Queries: r.Counter("lan_query_searches_total",
				"Completed k-ANN searches."),
			NDCInitial: r.Counter("lan_query_ndc_initial_total",
				"Distance computations spent in initial-node selection."),
			NDCRouting: r.Counter("lan_query_ndc_routing_total",
				"Distance computations spent opening neighbor batches during routing."),
			NDCVerify: r.Counter("lan_query_ndc_verify_total",
				"Distance computations spent in l2route GED verification."),
			PruningRatio: r.Histogram("lan_query_pruning_ratio",
				"Per-query fraction of ranked neighbors whose distance was pruned.",
				LinBuckets(0.1, 0.1, 9)),
			GammaSteps: r.Histogram("lan_route_gamma_steps",
				"Per-query length of the γ-threshold trajectory (np_route supersteps).",
				ExpBuckets(1, 2, 10)),
			BatchesOpened: r.Counter("lan_route_batches_opened_total",
				"Neighbor batches whose distances were computed during routing."),
			RankerCalls: r.Counter("lan_route_ranker_calls_total",
				"Per-node neighbor-ranking invocations during routing (learned or oracle)."),
			DistCacheHits: r.Counter("lan_distcache_hits_total",
				"Per-query distance-memo lookups served without a GED call."),
			DistCacheMisses: r.Counter("lan_distcache_misses_total",
				"Per-query distance-memo lookups that paid a GED call."),
		}
		r.CounterFunc("lan_ged_beam_arena_reused_total",
			"GED beam-kernel invocations served by a pooled arena.",
			func() uint64 { reused, _ := ged.BeamKernelStats(); return reused })
		r.CounterFunc("lan_ged_beam_arena_allocated_total",
			"GED beam-kernel arenas allocated because the pool was empty.",
			func() uint64 { _, allocated := ged.BeamKernelStats(); return allocated })
	})
	return queryMetrics
}

// BuildMetrics meters offline index construction.
type BuildMetrics struct {
	Builds *Counter
	// Seconds observes one value per completed build.
	Seconds *Histogram
	// IndexGraphs is the database size of the most recent build.
	IndexGraphs *Gauge
}

var (
	buildOnce    sync.Once
	buildMetrics *BuildMetrics
)

// Build returns the process-wide build metrics, registering them on the
// default registry on first use.
func Build() *BuildMetrics {
	buildOnce.Do(func() {
		r := Default()
		buildMetrics = &BuildMetrics{
			Builds: r.Counter("lan_build_runs_total",
				"Completed index+model builds."),
			Seconds: r.Histogram("lan_build_seconds",
				"Wall time of one index+model build.",
				ExpBuckets(0.01, 4, 12)),
			IndexGraphs: r.Gauge("lan_build_index_graphs",
				"Database size of the most recent build."),
		}
	})
	return buildMetrics
}
