package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceRecordingAndJSON(t *testing.T) {
	tr := NewTrace("q1")
	tr.SetConfig("lan", "lan", 5, 10)
	tr.SetEntry(42)
	tr.Step(42, 3.5, 8, 2, -1, 2)
	tr.Step(17, 2.0, 6, 3, 4, 5)
	tr.Gamma(4)
	tr.Gamma(5)
	init := tr.StartSpan("initial")
	tr.RecordSpan("embed", time.Time{}, 300*time.Microsecond, 0, 1)
	tr.EndSpan(init, 2)
	routing := tr.StartSpan("routing")
	tr.RecordSpan("store_fetch", time.Time{}, 120*time.Microsecond, 0, 6)
	tr.EndSpan(routing, 3)
	shard := NewTrace("shard-0")
	tr.AddShard(shard)
	tr.Finalize(5, 5, 4*time.Millisecond)

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, data)
	}
	if got.QueryID != "q1" || got.Initial != "lan" || got.Routing != "lan" || got.K != 5 || got.Beam != 10 {
		t.Errorf("config lost: %+v", &got)
	}
	if got.Entry != 42 || len(got.Steps) != 2 || got.Steps[1].Node != 17 || got.Steps[1].Gamma != 4 {
		t.Errorf("steps lost: %+v", got.Steps)
	}
	if len(got.Gammas) != 2 || got.Gammas[1] != 5 {
		t.Errorf("gammas lost: %v", got.Gammas)
	}
	if len(got.Spans) != 2 || got.Spans[0].Name != "initial" || got.Spans[1].Name != "routing" {
		t.Errorf("spans lost: %+v", got.Spans)
	}
	if len(got.Spans) == 2 {
		if got.Spans[0].NDC != 2 || got.Spans[1].NDC != 3 {
			t.Errorf("span NDC lost: %+v %+v", got.Spans[0], got.Spans[1])
		}
		if len(got.Spans[0].Children) != 1 || got.Spans[0].Children[0].Name != "embed" || got.Spans[0].Children[0].US != 300 {
			t.Errorf("child span lost: %+v", got.Spans[0].Children)
		}
		if len(got.Spans[1].Children) != 1 || got.Spans[1].Children[0].N != 6 {
			t.Errorf("store_fetch child lost: %+v", got.Spans[1].Children)
		}
	}
	if len(got.Shards) != 1 || got.Shards[0].QueryID != "shard-0" {
		t.Errorf("shards lost: %+v", got.Shards)
	}
	if got.NDC != 5 || got.Results != 5 || got.TotalUS != 4000 {
		t.Errorf("totals lost: %+v", &got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.SetConfig("lan", "lan", 1, 1)
	tr.SetEntry(0)
	tr.Step(0, 0, 0, 0, 0, 0)
	tr.Gamma(0)
	sp := tr.StartSpan("x")
	tr.RecordSpan("y", time.Now(), 0, 0, 0)
	tr.EndSpan(sp, 0)
	tr.EndSpan(NewTrace("t2").StartSpan("z"), 0) // nil trace, live span
	tr.AddShard(NewTrace("s"))
	tr.Finalize(0, 0, 0)
	data, err := tr.JSON()
	if err != nil || string(data) != "null" {
		t.Fatalf("nil JSON = %q, %v; want null, nil", data, err)
	}
	if From(context.Background()) != nil {
		t.Fatal("From on a bare context should be nil")
	}
	if ctx := context.Background(); With(ctx, nil) != ctx {
		t.Fatal("With(nil) should return ctx unchanged")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("q")
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("From did not recover the attached trace")
	}
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	r := NewTraceRing(2)
	a, b, c := NewTrace("a"), NewTrace("b"), NewTrace("c")
	r.Add(a)
	if got := r.Last(); len(got) != 1 || got[0] != a {
		t.Fatalf("after one add: %v", got)
	}
	r.Add(b)
	r.Add(c) // evicts a
	got := r.Last()
	if len(got) != 2 || got[0] != c || got[1] != b {
		t.Fatalf("Last = [%s %s]; want [c b] (newest first)",
			got[0].QueryID, got[1].QueryID)
	}

	var nilRing *TraceRing
	nilRing.Add(a)
	if nilRing.Last() != nil {
		t.Fatal("nil ring returned traces")
	}
	if NewTraceRing(0) != nil || NewTraceRing(-1) != nil {
		t.Fatal("non-positive capacity should yield the nil (disabled) ring")
	}
	r.Add(nil) // nil traces are dropped, not stored
	if got := r.Last(); len(got) != 2 {
		t.Fatalf("nil Add changed the ring: %v", got)
	}
}

// TestTraceDisabledZeroAlloc pins the disabled-tracing contract: a context
// without a trace costs no allocations to interrogate, and every recording
// method on the resulting nil trace is free.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		tr := From(ctx)
		tr.SetConfig("lan", "lan", 10, 20)
		tr.SetEntry(1)
		tr.Step(1, 2.0, 3, 4, 5.0, 6)
		tr.Gamma(1.0)
		sp := tr.StartSpan("routing")
		tr.RecordSpan("store_fetch", start, time.Millisecond, 0, 4)
		tr.EndSpan(sp, 1)
		tr.Finalize(1, 1, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing costs %v allocs/op; want 0", allocs)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := From(ctx)
		tr.Step(i, 1.0, 4, 2, 3.0, i)
		tr.Gamma(1.0)
	}
}
