package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fullTrace builds a trace exercising every exported field, including a
// nested span tree — the round-trip fixture.
func fullTrace(id string) *Trace {
	tr := NewTrace(id)
	tr.SetConfig("lan", "lan", 5, 10)
	tr.SetEntry(42)
	tr.Step(42, 3.5, 8, 2, -1, 2)
	tr.Step(17, 2.0, 6, 3, 4, 5)
	tr.Gamma(4)
	tr.Gamma(5)
	init := tr.StartSpan("initial")
	tr.RecordSpan("embed", time.Now(), 250*time.Microsecond, 0, 1)
	tr.EndSpan(init, 2)
	routing := tr.StartSpan("routing")
	tr.RecordSpan("store_fetch", time.Now(), 80*time.Microsecond, 0, 7)
	tr.RecordSpan("embed", time.Now(), 120*time.Microsecond, 0, 6)
	tr.EndSpan(routing, 3)
	tr.Event("insert", 7, 3)
	shard := NewTrace(id + "-s0")
	shard.SetEntry(1)
	tr.AddShard(shard)
	tr.Finalize(5, 5, 4*time.Millisecond)
	return tr
}

// TestExportRoundTripGolden pins the export format: every field written
// (spans and their children included) is read back byte-identically, the
// golden contract lan-trace and lan-train -from-traces depend on.
func TestExportRoundTripGolden(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	want := fullTrace("q-golden")
	exp.Submit(want)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Trace
	stats, err := ReadSegments(dir, func(tr *Trace) error { got = append(got, tr); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 || stats.Traces != 1 || stats.Truncated != 0 {
		t.Fatalf("replay stats = %+v; want 1 segment, 1 trace, 0 truncated", stats)
	}
	wantJSON, _ := want.JSON()
	gotJSON, _ := got[0].JSON()
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("round-trip lost fields:\nwrote %s\nread  %s", wantJSON, gotJSON)
	}
	// Spot-check the span tree specifically: the learning pipeline keys on
	// these fields surviving export.
	g := got[0]
	if len(g.Spans) != 2 || g.Spans[1].Name != "routing" || g.Spans[1].NDC != 3 {
		t.Fatalf("span forest lost: %+v", g.Spans)
	}
	if len(g.Spans[1].Children) != 2 || g.Spans[1].Children[0].Name != "store_fetch" || g.Spans[1].Children[0].N != 7 {
		t.Errorf("span children lost: %+v", g.Spans[1].Children)
	}
}

// TestExportSegmentHeader pins the versioned header line and the refusal
// of future versions.
func TestExportSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	exp.Submit(fullTrace("q1"))
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentFiles(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments = %v, %v", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	var hdr segmentHeader
	if err := json.Unmarshal([]byte(first), &hdr); err != nil || hdr.Format != segmentFormat || hdr.Version != segmentVersion {
		t.Fatalf("bad header line %q: %+v, %v", first, hdr, err)
	}

	// A future version must be refused, not misread.
	futurePath := filepath.Join(dir, "traces-900000.jsonl")
	future := fmt.Sprintf("{\"format\":%q,\"version\":%d}\n", segmentFormat, segmentVersion+1)
	if err := os.WriteFile(futurePath, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegmentFile(futurePath, nil); err == nil || !strings.Contains(err.Error(), "newer than this reader") {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestExportRotation writes through a tiny segment cap and checks the
// records land across multiple segments with no loss, replayed in order.
func TestExportRotation(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, MaxSegmentBytes: 512, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		exp.Submit(fullTrace(fmt.Sprintf("q%03d", i)))
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	var ids []string
	stats, err := ReadSegments(dir, func(tr *Trace) error { ids = append(ids, tr.QueryID); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Traces != n {
		t.Fatalf("replayed %d traces; want %d (stats %+v)", stats.Traces, n, stats)
	}
	if stats.Segments < 2 {
		t.Fatalf("expected rotation across segments, got %d segment(s)", stats.Segments)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("q%03d", i); id != want {
			t.Fatalf("replay order broken at %d: %s != %s", i, id, want)
		}
	}
	if exp.exported.Value() != n || exp.segments.Value() != uint64(stats.Segments) {
		t.Errorf("counters: exported %d segments %d; want %d/%d", exp.exported.Value(), exp.segments.Value(), n, stats.Segments)
	}
}

// TestExportRestartContinuesNumbering pins that a new exporter over an
// existing directory appends new segments instead of clobbering old ones.
func TestExportRestartContinuesNumbering(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 2; round++ {
		exp, err := NewExporter(ExportConfig{Dir: dir, Registry: NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		exp.Submit(fullTrace(fmt.Sprintf("round%d", round)))
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := ReadSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 2 || stats.Traces != 2 {
		t.Fatalf("restart clobbered segments: %+v", stats)
	}
}

// TestExportTruncatedTail replays a segment whose final record was cut
// mid-write: the corrupt tail must be skipped and counted, every complete
// record before it preserved, with no error.
func TestExportTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		exp.Submit(fullTrace(fmt.Sprintf("q%d", i)))
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentFiles(dir)
	if len(names) != 1 {
		t.Fatalf("want one segment, got %v", names)
	}
	// Chop the file mid-way through the final record, simulating a crash.
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 40
	if err := os.WriteFile(names[0], data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	var ids []string
	stats, err := ReadSegments(dir, func(tr *Trace) error { ids = append(ids, tr.QueryID); return nil })
	if err != nil {
		t.Fatalf("truncated tail must not error: %v", err)
	}
	if stats.Traces != n-1 || stats.Truncated != 1 {
		t.Fatalf("stats = %+v; want %d traces and 1 truncated tail", stats, n-1)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("q%d", i); id != want {
			t.Fatalf("complete records perturbed: %v", ids)
		}
	}

	// Corruption in the middle (complete records after it) is an error.
	lines := strings.Split(string(data), "\n")
	lines[2] = lines[2][:len(lines[2])/2] // damage record 2 of 5
	if err := os.WriteFile(names[0], []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegmentFile(names[0], nil); err == nil {
		t.Fatal("mid-file corruption replayed without error")
	}
}

// TestExportConcurrentSubmit hammers one exporter from many goroutines
// (the shared-pool churn shape) under -race: no lost complete records, no
// data races, drops only ever counted, never blocking.
func TestExportConcurrentSubmit(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, MaxSegmentBytes: 4 << 10, QueueDepth: 16, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exp.Submit(fullTrace(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	wg.Wait()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadSegments(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Traces + int(exp.dropped.Value())
	if total != writers*per {
		t.Fatalf("exported %d + dropped %d != submitted %d", stats.Traces, exp.dropped.Value(), writers*per)
	}
	if stats.Traces == 0 {
		t.Fatal("everything dropped; queue never drained")
	}
	// Submit after Close must be a silent no-op.
	exp.Submit(fullTrace("late"))
}

// TestExportSampling pins the deterministic hash sampler: the same query
// id always gets the same verdict, rates are honored roughly, and the
// slow-query override exports regardless.
func TestExportSampling(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, Sample: 0.5, SlowUS: 1000, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	in, out := 0, 0
	for i := 0; i < 1000; i++ {
		tr := &Trace{QueryID: fmt.Sprintf("q%d", i)}
		first := exp.sampled(tr)
		if first != exp.sampled(tr) {
			t.Fatal("sampling verdict not deterministic per id")
		}
		if first {
			in++
		} else {
			out++
		}
	}
	if in < 400 || in > 600 {
		t.Errorf("0.5 sampling kept %d/1000", in)
	}
	slow := &Trace{QueryID: "slowpoke", TotalUS: 5000}
	if !exp.sampled(slow) {
		t.Error("slow query not force-sampled")
	}
	// Sample 0 with a slow threshold: only slow queries pass.
	exp2, err := NewExporter(ExportConfig{Dir: t.TempDir(), Sample: 0, SlowUS: 1000, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	if exp2.sampled(&Trace{QueryID: "fast", TotalUS: 10}) {
		t.Error("sample 0 exported a fast query")
	}
	if !exp2.sampled(slow) {
		t.Error("sample 0 suppressed a slow query")
	}
}

// TestLookupExported resolves a trace id from segments on disk — the
// /debug/trace/<id> fallback path.
func TestLookupExported(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewExporter(ExportConfig{Dir: dir, Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	exp.Submit(fullTrace("q-a"))
	exp.Submit(fullTrace("q-b"))
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LookupExported(dir, "q-b")
	if err != nil || got == nil || got.QueryID != "q-b" {
		t.Fatalf("LookupExported = %v, %v", got, err)
	}
	if miss, err := LookupExported(dir, "q-zzz"); err != nil || miss != nil {
		t.Fatalf("missing id returned %v, %v", miss, err)
	}
}
