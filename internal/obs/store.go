package obs

import "sync"

// StoreMetrics meters the pluggable graph-storage tier: snapshot opens,
// candidate fetches and the bytes they decode. The fields are resolved
// once at registration, so the mmap fetch path records with a couple of
// atomic adds.
type StoreMetrics struct {
	// Opens counts snapshot stores opened (one per Open call).
	Opens *Counter
	// MappedBytes is the total size of currently-open snapshot mappings.
	MappedBytes *Gauge
	// GraphFetches counts graphs decoded out of snapshot segments;
	// FetchBatches counts the batched fetch calls that produced them
	// (GraphFetches/FetchBatches is the achieved batching factor).
	GraphFetches *Counter
	FetchBatches *Counter
	// GraphBytes counts graph-segment bytes decoded.
	GraphBytes *Counter
	// EmbeddingReads counts node-embedding rows served from the snapshot.
	EmbeddingReads *Counter
}

var (
	storeOnce    sync.Once
	storeMetrics *StoreMetrics
)

// Store returns the process-wide storage-tier metrics, registering them
// on the default registry on first use.
func Store() *StoreMetrics {
	storeOnce.Do(func() {
		r := Default()
		storeMetrics = &StoreMetrics{
			Opens: r.Counter("lan_store_opens_total",
				"Snapshot stores opened."),
			MappedBytes: r.Gauge("lan_store_mapped_bytes",
				"Total size of currently-open snapshot mappings."),
			GraphFetches: r.Counter("lan_store_graph_fetches_total",
				"Graphs decoded from snapshot segments."),
			FetchBatches: r.Counter("lan_store_fetch_batches_total",
				"Batched candidate-fetch calls against snapshot stores."),
			GraphBytes: r.Counter("lan_store_graph_bytes_total",
				"Graph-segment bytes decoded from snapshot stores."),
			EmbeddingReads: r.Counter("lan_store_embedding_reads_total",
				"Node-embedding rows served from snapshot stores."),
		}
	})
	return storeMetrics
}
