package obs

import "sync"

// MutateMetrics is the write-path family set of the mutable index:
// streaming inserts, soft deletes and the background edge optimizer.
type MutateMetrics struct {
	// Inserts and Deletes count applied writes (a rejected write — bad
	// id, nil graph — records nothing).
	Inserts *Counter
	Deletes *Counter
	// OptimizerPasses counts budgeted edge-repair passes of the
	// background optimizer, including those driven synchronously by
	// Quiesce.
	OptimizerPasses *Counter
	// ApplySeconds observes the wall time of one applied write, snapshot
	// publication included — the latency bound the write path promises
	// (no full-rebuild work per op).
	ApplySeconds *Histogram
}

var (
	mutateOnce    sync.Once
	mutateMetrics *MutateMetrics
)

// Mutate returns the process-wide write-path metrics, registering them
// on the default registry on first use.
func Mutate() *MutateMetrics {
	mutateOnce.Do(func() {
		r := Default()
		mutateMetrics = &MutateMetrics{
			Inserts: r.Counter("lan_mutate_inserts_total",
				"Graphs inserted into a mutable index."),
			Deletes: r.Counter("lan_mutate_deletes_total",
				"Graphs soft-deleted (tombstoned) in a mutable index."),
			OptimizerPasses: r.Counter("lan_mutate_optimizer_passes_total",
				"Budgeted edge-optimizer repair passes."),
			ApplySeconds: r.Histogram("lan_mutate_apply_seconds",
				"Wall time to apply one insert or delete, snapshot publication included.",
				ExpBuckets(1e-5, 4, 12)),
		}
	})
	return mutateMetrics
}
