package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

var processOnce sync.Once

// RegisterProcess installs the process-level families on the default
// registry: runtime gauges (goroutines, heap bytes, GC pause total,
// uptime) and the lan_build_info constant gauge carrying the module
// version and VCS revision from the binary's build info. Idempotent;
// every binary that exposes /metrics calls it once at startup.
func RegisterProcess() {
	processOnce.Do(func() {
		r := Default()
		started := time.Now()
		r.GaugeFunc("lan_process_goroutines",
			"Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		r.GaugeFunc("lan_process_heap_bytes",
			"Bytes of allocated heap objects.",
			func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.HeapAlloc)
			})
		r.CounterFunc("lan_process_gc_pause_ns_total",
			"Cumulative stop-the-world GC pause time in nanoseconds.",
			func() uint64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return ms.PauseTotalNs
			})
		r.GaugeFunc("lan_process_uptime_seconds",
			"Seconds since the process registered its metrics.",
			func() float64 { return time.Since(started).Seconds() })
		r.Info("lan_build_info",
			"Build metadata of the running binary.", buildInfoLabels())
	})
}

// buildInfoLabels extracts version/revision labels from the embedded
// build info; binaries built outside a module context report "unknown".
func buildInfoLabels() [][2]string {
	version, revision, modified := "unknown", "unknown", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	labels := [][2]string{
		{"go_version", runtime.Version()},
		{"version", version},
		{"revision", revision},
	}
	if modified != "" {
		labels = append(labels, [2]string{"modified", modified})
	}
	return labels
}
