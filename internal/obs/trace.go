package obs

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Trace is one query's routing trace: the entry node, every routing step
// (current node, neighbors ranked vs. opened, the threshold in force),
// the γ trajectory, and a hierarchical span tree attributing wall time
// and NDC to pipeline stages and their children (store fetches, model
// embeddings). A Trace is attached to a query via With and recovered by
// the routing pipeline via From; every recording method is safe to call
// on a nil *Trace and does nothing there, which is the disabled-tracing
// fast path (pinned at zero allocations by TestTraceDisabledZeroAlloc).
//
// Recording methods are mutex-guarded so a sharded fan-out or a pooled
// distance stage can share one trace without racing; a single-shard query
// records from its own goroutine only and never contends.
type Trace struct {
	QueryID string `json:"query_id"`
	Initial string `json:"initial,omitempty"`
	Routing string `json:"routing,omitempty"`
	K       int    `json:"k,omitempty"`
	Beam    int    `json:"beam,omitempty"`
	Entry   int    `json:"entry"`

	// Steps are the explored nodes in exploration order.
	Steps []TraceStep `json:"steps,omitempty"`
	// Gammas is the γ-threshold trajectory of np_route's supersteps.
	Gammas []float64 `json:"gammas,omitempty"`
	// Spans is the span forest of the query's pipeline stages in execution
	// order; child spans attribute time within their parent stage.
	Spans []*Span `json:"spans,omitempty"`
	// Shards holds the per-shard sub-traces of a sharded search, in shard
	// order.
	Shards []*Trace `json:"shards,omitempty"`
	// Events are write-path events (insert/delete/compact) when the trace
	// belongs to a mutation rather than a query.
	Events []TraceEvent `json:"events,omitempty"`

	NDC     int   `json:"ndc"`
	Results int   `json:"results"`
	TotalUS int64 `json:"total_us"`

	mu sync.Mutex
	// start anchors span offsets on the monotonic clock; set by NewTrace,
	// zero on hand-built or decoded traces (offsets then record as 0).
	start time.Time
	// open is the stack of spans started but not yet ended; leaf spans
	// recorded while a stage is open attach to the innermost one.
	open []*Span
}

// TraceStep records one exploration step: the node whose neighborhood was
// expanded, its distance to the query, how many neighbors the ranker saw
// vs. how many had their distance computed (opened), the threshold in
// force (γ in np_route's superstep phase, the current node's distance in
// the greedy phase, -1 where no threshold applies) and the cumulative NDC
// after the step.
type TraceStep struct {
	Node   int     `json:"node"`
	Dist   float64 `json:"dist"`
	Ranked int     `json:"ranked"`
	Opened int     `json:"opened"`
	Gamma  float64 `json:"gamma"`
	NDC    int     `json:"ndc"`
}

// Span is one node of the trace's span tree: a named slice of the query's
// wall time with its start offset from the trace's creation (monotonic
// clock), its duration, the NDC charged within it, an optional batch size
// (store fetches, embedding batches) and nested children.
type Span struct {
	Name string `json:"name"`
	// StartUS is the span's start offset from the trace's creation, in
	// microseconds on the monotonic clock.
	StartUS int64 `json:"start_us"`
	// US is the span's duration in microseconds.
	US int64 `json:"us"`
	// NDC is the number of distance computations charged to this span.
	NDC int `json:"ndc,omitempty"`
	// N is the span's batch size where one applies: graphs fetched in a
	// store_fetch, neighbors encoded in an embed.
	N int `json:"n,omitempty"`
	// Children are the sub-spans recorded while this span was open.
	Children []*Span `json:"children,omitempty"`
}

// TraceEvent is one write-path event: the operation kind ("insert",
// "delete", "compact"), the graph id it touched, and the index epoch
// after it applied.
type TraceEvent struct {
	Kind  string `json:"kind"`
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
}

// NewTrace returns an empty trace for the given query id, anchored on the
// monotonic clock so span offsets are meaningful.
func NewTrace(queryID string) *Trace { return &Trace{QueryID: queryID, start: time.Now()} }

// traceKey is the context key for the attached trace. An empty struct
// converts to an interface without allocating, so the disabled-path
// lookup is allocation-free.
type traceKey struct{}

// With attaches t to the context. A nil trace returns ctx unchanged.
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// From returns the trace attached to ctx, or nil when tracing is
// disabled. Stages extract the trace once at entry and nil-check it per
// record, which is the whole per-query overhead when tracing is off.
//
//lan:hotpath
func From(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SetConfig records the query's search knobs. Nil-safe.
func (t *Trace) SetConfig(initial, routing string, k, beam int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Initial, t.Routing, t.K, t.Beam = initial, routing, k, beam
	t.mu.Unlock()
}

// SetEntry records the routing entry node. Nil-safe.
func (t *Trace) SetEntry(node int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Entry = node
	t.mu.Unlock()
}

// Step records one exploration step. Nil-safe.
//
//lan:hotpath
func (t *Trace) Step(node int, dist float64, ranked, opened int, gamma float64, ndc int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Steps = append(t.Steps, TraceStep{Node: node, Dist: dist, Ranked: ranked, Opened: opened, Gamma: gamma, NDC: ndc})
	t.mu.Unlock()
}

// Gamma appends one value of the γ-threshold trajectory. Nil-safe.
//
//lan:hotpath
func (t *Trace) Gamma(g float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Gammas = append(t.Gammas, g)
	t.mu.Unlock()
}

// sinceStartLocked returns the current offset from the trace's creation
// in microseconds (0 on hand-built traces without a clock anchor).
// Callers hold t.mu.
func (t *Trace) sinceStartLocked() int64 {
	if t.start.IsZero() {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

// attachLocked appends s under the innermost open span, or at the root
// when no stage is open. Callers hold t.mu.
func (t *Trace) attachLocked(s *Span) {
	if n := len(t.open); n > 0 {
		parent := t.open[n-1]
		parent.Children = append(parent.Children, s)
		return
	}
	t.Spans = append(t.Spans, s)
}

// StartSpan opens a named span: subsequent spans (started or recorded)
// nest under it until EndSpan. Nil-safe (returns nil, which EndSpan and
// the other span methods accept).
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{Name: name, StartUS: t.sinceStartLocked()}
	t.attachLocked(s)
	t.open = append(t.open, s)
	t.mu.Unlock()
	return s
}

// EndSpan closes s, stamping its duration and the NDC charged within it.
// Nil-safe on both the trace and the span. Spans left open above s (a
// caller that forgot to end a child) are closed implicitly, unstamped.
func (t *Trace) EndSpan(s *Span, ndc int) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	s.US = t.sinceStartLocked() - s.StartUS
	s.NDC = ndc
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s {
			t.open = t.open[:i]
			break
		}
	}
	t.mu.Unlock()
}

// RecordSpan attaches one completed leaf span — a store fetch, an
// embedding batch — under the currently open stage (or at the root when
// none is open). start/d are the leaf's own wall-clock measurements; n is
// its batch size (0 to omit). Nil-safe.
func (t *Trace) RecordSpan(name string, start time.Time, d time.Duration, ndc, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	off := int64(0)
	if !t.start.IsZero() && !start.IsZero() {
		off = start.Sub(t.start).Microseconds()
	}
	t.attachLocked(&Span{Name: name, StartUS: off, US: d.Microseconds(), NDC: ndc, N: n})
	t.mu.Unlock()
}

// Event records one write-path event. Nil-safe.
func (t *Trace) Event(kind string, id int, epoch uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Events = append(t.Events, TraceEvent{Kind: kind, ID: id, Epoch: epoch})
	t.mu.Unlock()
}

// AddShard appends one shard's sub-trace. Nil-safe (on either side).
func (t *Trace) AddShard(shard *Trace) {
	if t == nil || shard == nil {
		return
	}
	t.mu.Lock()
	t.Shards = append(t.Shards, shard)
	t.mu.Unlock()
}

// Finalize stamps the query's totals. Nil-safe.
func (t *Trace) Finalize(ndc, results int, total time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.NDC, t.Results, t.TotalUS = ndc, results, total.Microseconds()
	t.mu.Unlock()
}

// JSON renders the trace as a single JSON document. Nil-safe ("null").
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(t)
}

// TraceRing is a bounded ring of the most recent traces (the store behind
// lan-serve's /debug/trace/last). Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
}

// NewTraceRing returns a ring holding the last n traces (n <= 0 returns
// nil, the disabled ring — Add and Last are nil-safe).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		return nil
	}
	return &TraceRing{buf: make([]*Trace, 0, n)}
}

// Add inserts a trace, evicting the oldest when full. Nil-safe on both
// the ring and the trace.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.mu.Unlock()
}

// Get returns the stored trace with the given query id (the most recent
// one when ids repeat), or nil when absent. Nil-safe — the exemplar
// lookup path behind /debug/trace/<id>.
func (r *TraceRing) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	for _, t := range r.Last() {
		if t.QueryID == id {
			return t
		}
	}
	return nil
}

// Last returns the stored traces, most recent first. Nil-safe.
func (r *TraceRing) Last() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	// The newest element sits just before next (once the ring has wrapped);
	// walk backwards from there.
	for i := 0; i < len(r.buf); i++ {
		j := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[j])
	}
	return out
}
