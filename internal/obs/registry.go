// Package obs is the unified observability layer: a process-wide metrics
// registry (counters, gauges, fixed-bucket histograms — atomic and
// allocation-free on the hot path) plus a per-query trace recorder that is
// threaded through the routing pipeline via context.Context. It replaces
// the private metric code that used to live in lanserve and the ad-hoc
// per-query accounting in core, so lan-bench, lan-serve and lan-train all
// export the same metric families in the Prometheus text exposition
// format.
//
// Naming convention (enforced by the metricname analyzer): every metric is
// lan_<subsystem>_<name>_<unit> — lowercase snake case starting with
// "lan"; counters end in _total, nothing else does. Each name is
// registered at exactly one call site per package.
//
// Registries are cheap; a process typically uses the shared Default()
// registry for engine-level families and per-component registries (e.g.
// one per lanserve.Server) for families whose lifetime is the component's.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named metric families and renders them in the
// Prometheus text exposition format. All methods are safe for concurrent
// use; the collectors it hands out are lock-free.
type Registry struct {
	mu         sync.Mutex
	collectors map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{collectors: make(map[string]collector)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry shared by the engine-level
// families (query cost, build cost, process state).
func Default() *Registry { return defaultRegistry }

// collector is one registered metric family.
type collector interface {
	help() string
	kind() string // "counter", "gauge" or "histogram"
	write(w io.Writer, name string)
}

// register installs c under name. Registering the same name twice is a
// programmer error caught statically by the metricname analyzer; at
// runtime a second registration with the same kind returns the existing
// collector (idempotence keeps e.g. repeated engine constructions safe)
// and a kind mismatch panics.
func (r *Registry) register(name string, c collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.collectors[name]; ok {
		if old.kind() != c.kind() {
			//lint:allow libpanic kind-mismatch re-registration is a programmer error; idempotent same-kind path documented above
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, c.kind(), old.kind()))
		}
		return old
	}
	r.collectors[name] = c
	return c
}

// Counter registers (or returns the existing) monotonically increasing
// counter. Counter names end in _total by convention.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{h: help}).(*Counter)
}

// CounterVec registers a counter family partitioned by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, &CounterVec{h: help, label: label}).(*CounterVec)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (for counters maintained elsewhere, e.g. package ged's
// arena statistics).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &counterFunc{h: help, fn: fn})
}

// Gauge registers (or returns the existing) integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{h: help}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{h: help, fn: fn})
}

// Histogram registers (or returns the existing) fixed-bucket cumulative
// histogram. bounds are ascending upper bounds; +Inf is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, newHistogram(help, bounds)).(*Histogram)
}

// Info registers a constant value-1 gauge carrying its payload in labels
// (the lan_build_info idiom). labels render in the given order.
func (r *Registry) Info(name, help string, labels [][2]string) {
	r.register(name, &info{h: help, labels: labels})
}

// WriteTo renders every registered family, sorted by name, in the
// Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.collectors))
	for name := range r.collectors {
		names = append(names, name)
	}
	sort.Strings(names)
	cs := make([]collector, len(names))
	for i, name := range names {
		cs[i] = r.collectors[name]
	}
	r.mu.Unlock()

	cw := &countingWriter{w: w}
	for i, name := range names {
		c := cs[i]
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s %s\n", name, c.help(), name, c.kind())
		c.write(cw, name)
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	h string
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) help() string { return c.h }
func (c *Counter) kind() string { return "counter" }
func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// CounterVec is a counter family partitioned by one label. With resolves a
// label value to its counter, creating it on first use; hot paths resolve
// once at setup time and hold the *Counter.
type CounterVec struct {
	h     string
	label string
	mu    sync.Mutex
	m     map[string]*Counter
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

func (v *CounterVec) help() string { return v.h }
func (v *CounterVec) kind() string { return "counter" }
func (v *CounterVec) write(w io.Writer, name string) {
	v.mu.Lock()
	values := make([]string, 0, len(v.m))
	for value := range v.m {
		values = append(values, value)
	}
	sort.Strings(values)
	counters := make([]*Counter, len(values))
	for i, value := range values {
		counters[i] = v.m[value]
	}
	v.mu.Unlock()
	for i, value := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, value, counters[i].Value())
	}
}

type counterFunc struct {
	h  string
	fn func() uint64
}

func (c *counterFunc) help() string { return c.h }
func (c *counterFunc) kind() string { return "counter" }
func (c *counterFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.fn())
}

// Gauge is an integer gauge.
type Gauge struct {
	h string
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) help() string { return g.h }
func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

type gaugeFunc struct {
	h  string
	fn func() float64
}

func (g *gaugeFunc) help() string { return g.h }
func (g *gaugeFunc) kind() string { return "gauge" }
func (g *gaugeFunc) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.fn()))
}

type info struct {
	h      string
	labels [][2]string
}

func (i *info) help() string { return i.h }
func (i *info) kind() string { return "gauge" }
func (i *info) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s{", name)
	for j, kv := range i.labels {
		if j > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "%s=%q", kv[0], kv[1])
	}
	fmt.Fprint(w, "} 1\n")
}

// Histogram is a Prometheus-style cumulative histogram with fixed bucket
// bounds. Observe is lock-free and allocation-free: bucket counts are
// atomic and the sum is maintained by compare-and-swap on its float bits.
//
// A histogram can optionally carry exemplars: ObserveExemplar retains the
// trace id of a recent observation per bucket, and the exposition renders
// it in the OpenMetrics exemplar syntax so a p99 bucket links straight to
// an exported trace (resolve it via /debug/trace/<id> or lan-trace).
type Histogram struct {
	h      string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
	// exemplars[i] is the most recent exemplar observed into bucket i
	// (nil until ObserveExemplar lands one there).
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
}

func newHistogram(help string, bounds []float64) *Histogram {
	return &Histogram{
		h: help, bounds: bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveExemplar records one value and retains traceID as the exemplar
// of the bucket the value lands in. An empty traceID degrades to a plain
// Observe. The exemplar store is one atomic pointer per bucket (last
// writer wins), so the call stays lock-free; it does allocate the
// exemplar record, which is why only traced observations go through it —
// the untraced hot path keeps using Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
}

// Exemplar returns the retained trace id and value of the bucket with the
// given index (0..len(bounds), the last being +Inf), or ok=false when
// that bucket has none.
func (h *Histogram) Exemplar(bucket int) (traceID string, value float64, ok bool) {
	if bucket < 0 || bucket >= len(h.exemplars) {
		return "", 0, false
	}
	e := h.exemplars[bucket].Load()
	if e == nil {
		return "", 0, false
	}
	return e.traceID, e.value, true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile returns the value at quantile q (0..1) estimated from the
// bucket upper bounds — the same estimate Prometheus' histogram_quantile
// gives, good enough for tests and status pages.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func (h *Histogram) help() string { return h.h }
func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) write(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", name, formatFloat(b), cum)
		h.writeExemplar(w, i)
		fmt.Fprintln(w)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d", name, cum)
	h.writeExemplar(w, len(h.bounds))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// writeExemplar appends bucket i's exemplar in the OpenMetrics syntax
// (` # {trace_id="..."} <value>`); buckets without one render unchanged,
// keeping the exposition plain Prometheus text until exemplars exist.
func (h *Histogram) writeExemplar(w io.Writer, i int) {
	if e := h.exemplars[i].Load(); e != nil {
		fmt.Fprintf(w, " # {trace_id=%q} %s", e.traceID, formatFloat(e.value))
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpBuckets returns n histogram upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinBuckets returns n histogram upper bounds start, start+step, ...
func LinBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}
