package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lan_test_events_total", "Events.")
	c.Inc()
	c.Add(2)
	v := r.CounterVec("lan_test_errors_total", "Errors by code.", "code")
	v.With("429").Inc()
	v.With("504").Inc()
	r.CounterFunc("lan_test_pulls_total", "Pulls.", func() uint64 { return 7 })
	g := r.Gauge("lan_test_depth", "Depth.")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	r.GaugeFunc("lan_test_ratio", "Ratio.", func() float64 { return 0.25 })
	r.Info("lan_test_build_info", "Build metadata.", [][2]string{{"version", "v1"}, {"rev", "abc"}})
	h := r.Histogram("lan_test_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP lan_test_events_total Events.\n# TYPE lan_test_events_total counter\nlan_test_events_total 3\n",
		`lan_test_errors_total{code="429"} 1`,
		`lan_test_errors_total{code="504"} 1`,
		"lan_test_pulls_total 7",
		"# TYPE lan_test_depth gauge\nlan_test_depth 3\n",
		"lan_test_ratio 0.25",
		`lan_test_build_info{version="v1",rev="abc"} 1`,
		"# TYPE lan_test_seconds histogram",
		`lan_test_seconds_bucket{le="1"} 1`,
		`lan_test_seconds_bucket{le="2"} 2`,
		`lan_test_seconds_bucket{le="+Inf"} 3`,
		"lan_test_seconds_sum 12\n",
		"lan_test_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families render sorted by name: depth before events before ratio.
	if strings.Index(out, "lan_test_depth") > strings.Index(out, "lan_test_events_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegisterIdempotentSameKind(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lan_test_once_total", "Once.")
	b := r.Counter("lan_test_once_total", "Twice — returns the first collector.")
	if a != b {
		t.Fatal("re-registering the same counter returned a new collector")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("the two handles do not share state")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("lan_test_kind_total", "A counter.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("lan_test_kind_total", "Now a gauge.")
}

// TestHistogramQuantile pins the bucket-bound quantile estimate that the
// serving layer's status assertions rely on (formerly a lanserve test;
// the histogram moved here).
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("test", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v; want 0", got)
	}
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v; want 2 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("p99 = %v; want +Inf (overflow bucket)", got)
	}
	if got, want := h.Count(), uint64(6); got != want {
		t.Errorf("count = %d; want %d", got, want)
	}
	if got, want := h.Sum(), 113.7; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v; want %v", got, want)
	}
	if got, want := h.Mean(), 113.7/6; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v; want %v", got, want)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 6 {
		t.Errorf("count after NaN = %d; want 6", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram("test", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*per); got != want {
		t.Errorf("count = %d; want %d", got, want)
	}
	if got, want := h.Sum(), float64(workers*per); got != want {
		t.Errorf("sum = %v; want %v (CAS lost updates)", got, want)
	}
}

func TestBuckets(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %v; want %v", i, exp[i], want)
		}
	}
	lin := LinBuckets(0.1, 0.1, 3)
	for i, want := range []float64{0.1, 0.2, 0.3} {
		if math.Abs(lin[i]-want) > 1e-12 {
			t.Fatalf("LinBuckets[%d] = %v; want %v", i, lin[i], want)
		}
	}
}

func TestFormatFloatRendersIntegersBare(t *testing.T) {
	// lanserve's exact-string metric assertions depend on 10.0 rendering
	// as "10".
	if got := formatFloat(10); got != "10" {
		t.Errorf("formatFloat(10) = %q; want \"10\"", got)
	}
	if got := formatFloat(0.9); got != "0.9" {
		t.Errorf("formatFloat(0.9) = %q; want \"0.9\"", got)
	}
}

// TestHistogramExemplars pins the exemplar lifecycle: only traced
// observations land exemplars, the newest one per bucket wins, lookup by
// bucket works, and the exposition carries the OpenMetrics exemplar
// suffix on exactly the buckets that hold one.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lan_test_ex_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5) // untraced: no exemplar
	h.ObserveExemplar(1.5, "q-mid")
	h.ObserveExemplar(1.7, "q-mid2") // same bucket: replaces q-mid
	h.ObserveExemplar(10, "q-slow")

	if id, v, ok := h.Exemplar(0); ok {
		t.Errorf("untraced bucket holds exemplar %q=%v", id, v)
	}
	if id, v, ok := h.Exemplar(1); !ok || id != "q-mid2" || v != 1.7 {
		t.Errorf("bucket 1 exemplar = %q,%v,%v; want q-mid2,1.7", id, v, ok)
	}
	if id, _, ok := h.Exemplar(2); !ok || id != "q-slow" {
		t.Errorf("overflow bucket exemplar = %q,%v; want q-slow", id, ok)
	}
	if _, _, ok := h.Exemplar(-1); ok {
		t.Error("out-of-range bucket returned an exemplar")
	}
	if _, _, ok := h.Exemplar(3); ok {
		t.Error("out-of-range bucket returned an exemplar")
	}

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lan_test_ex_seconds_bucket{le="2"} 3 # {trace_id="q-mid2"} 1.7`,
		`lan_test_ex_seconds_bucket{le="+Inf"} 4 # {trace_id="q-slow"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing exemplar %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="1"} 1 #`) {
		t.Errorf("untraced bucket rendered an exemplar:\n%s", out)
	}
	// Exemplars count as observations: sum and count include them.
	if !strings.Contains(out, "lan_test_ex_seconds_count 4") {
		t.Errorf("count missing exemplar observations:\n%s", out)
	}
}
