package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Trace export: a durable, crash-tolerant JSONL pipeline for per-query
// traces. An Exporter drains a bounded queue on one background goroutine
// into size-rotated segment files; the query path only ever does a
// non-blocking channel send, so a slow disk drops traces (counted in
// lan_obs_trace_dropped_total) instead of slowing searches. Each segment
// opens with a versioned header line so replay can reject formats it does
// not understand, and replay tolerates a truncated final record — the
// shape a crash mid-write leaves behind.

// segmentFormat and segmentVersion identify the export format in each
// segment's header line. Bump the version on incompatible record changes;
// ReadSegmentFile refuses headers from the future.
const (
	segmentFormat  = "lan.trace"
	segmentVersion = 1
)

// segmentHeader is the first line of every segment file.
type segmentHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Segment int    `json:"segment"`
}

// ExportConfig configures an Exporter. Dir is required; everything else
// has a serving-safe default.
type ExportConfig struct {
	// Dir is the segment directory (created if absent).
	Dir string
	// MaxSegmentBytes rotates to a new segment file once the current one
	// reaches this size (default 64 MiB).
	MaxSegmentBytes int64
	// QueueDepth bounds the async hand-off queue; Submit drops (and
	// counts) traces when it is full (default 256).
	QueueDepth int
	// Sample is the probabilistic sampling rate in [0,1] (default 1 =
	// export everything). The decision hashes the trace's query id, so it
	// is deterministic per query and needs no RNG.
	Sample float64
	// SlowUS, when positive, exports every trace whose TotalUS reaches it
	// regardless of Sample (always-sample-slow-queries).
	SlowUS int64
	// Registry receives the lan_obs_trace_* counters (default Default()).
	Registry *Registry
}

// Exporter writes sampled traces to size-rotated JSONL segment files from
// a single background goroutine. Submit never blocks; Close flushes and
// stops. Safe for concurrent use.
type Exporter struct {
	cfg ExportConfig

	ch   chan *Trace
	done chan struct{}

	dropped  *Counter
	exported *Counter
	segments *Counter
	failed   *Counter

	mu     sync.Mutex // guards closed (Submit vs Close)
	closed bool

	// Writer-goroutine state; never touched by other goroutines.
	seq     int
	file    *os.File
	w       *bufio.Writer
	written int64
}

// NewExporter creates Dir if needed, picks the next free segment number
// (so restarts append new segments instead of clobbering old ones) and
// starts the writer goroutine.
func NewExporter(cfg ExportConfig) (*Exporter, error) {
	if cfg.Dir == "" {
		return nil, errors.New("obs: ExportConfig.Dir is required")
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Sample <= 0 && cfg.SlowUS <= 0 {
		cfg.Sample = 1
	}
	if cfg.Sample > 1 {
		cfg.Sample = 1
	}
	if cfg.Registry == nil {
		cfg.Registry = Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	seq, err := nextSegmentSeq(cfg.Dir)
	if err != nil {
		return nil, err
	}
	r := cfg.Registry
	e := &Exporter{
		cfg:      cfg,
		ch:       make(chan *Trace, cfg.QueueDepth),
		done:     make(chan struct{}),
		seq:      seq,
		dropped:  r.Counter("lan_obs_trace_dropped_total", "Traces dropped because the export queue was full (the query path never blocks on the trace disk)."),
		exported: r.Counter("lan_obs_trace_exported_total", "Traces durably written to JSONL segments."),
		segments: r.Counter("lan_obs_trace_segments_total", "Trace segment files opened (one per rotation)."),
		failed:   r.Counter("lan_obs_trace_write_errors_total", "Trace records lost to segment write or rotation errors."),
	}
	go e.run()
	return e, nil
}

// Dir returns the segment directory the exporter writes to.
func (e *Exporter) Dir() string { return e.cfg.Dir }

// Submit offers one finalized trace for export. It decides sampling,
// then enqueues without blocking: a full queue drops the trace and
// increments lan_obs_trace_dropped_total. Nil-safe on both sides; calling
// after Close is a no-op.
func (e *Exporter) Submit(t *Trace) {
	if e == nil || t == nil {
		return
	}
	if !e.sampled(t) {
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	select {
	case e.ch <- t:
	default:
		e.dropped.Inc()
	}
	e.mu.Unlock()
}

// sampled applies the probabilistic sampling knob plus the slow-query
// override. The decision hashes the query id (FNV-1a), so it is
// deterministic for a given id and free of shared RNG state.
func (e *Exporter) sampled(t *Trace) bool {
	if e.cfg.SlowUS > 0 && t.TotalUS >= e.cfg.SlowUS {
		return true
	}
	if e.cfg.Sample >= 1 {
		return true
	}
	if e.cfg.Sample <= 0 {
		return false
	}
	h := uint64(1469598103934665603)
	for i := 0; i < len(t.QueryID); i++ {
		h ^= uint64(t.QueryID[i])
		h *= 1099511628211
	}
	// FNV's high bits mix poorly over short, similar ids; finish with an
	// avalanche pass so the sampled fraction tracks the knob.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11)/float64(1<<53) < e.cfg.Sample
}

// Close stops accepting traces, drains the queue, flushes and closes the
// current segment. Safe to call twice; nil-safe.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ch)
	e.mu.Unlock()
	<-e.done
	var err error
	if e.w != nil {
		err = e.w.Flush()
	}
	if e.file != nil {
		if cerr := e.file.Close(); err == nil {
			err = cerr
		}
		e.file = nil
		e.w = nil
	}
	return err
}

// run is the writer goroutine: it drains the queue until Close closes it.
func (e *Exporter) run() {
	defer close(e.done)
	for t := range e.ch {
		e.writeTrace(t)
	}
}

// writeTrace appends one record, rotating first when the current segment
// is full. Each record is flushed so segments are readable (modulo a
// truncated tail) even while the process is alive or after a crash.
func (e *Exporter) writeTrace(t *Trace) {
	data, err := t.JSON()
	if err != nil {
		e.failed.Inc()
		return
	}
	if e.file != nil && e.written+int64(len(data))+1 > e.cfg.MaxSegmentBytes {
		e.w.Flush()
		e.file.Close()
		e.file, e.w = nil, nil
	}
	if e.file == nil {
		if err := e.openSegment(); err != nil {
			e.failed.Inc()
			return
		}
	}
	n, err := e.w.Write(append(data, '\n'))
	e.written += int64(n)
	if err == nil {
		err = e.w.Flush()
	}
	if err != nil {
		e.failed.Inc()
		return
	}
	e.exported.Inc()
}

// openSegment starts segment e.seq: creates the file and writes the
// versioned header line.
func (e *Exporter) openSegment() error {
	path := filepath.Join(e.cfg.Dir, segmentName(e.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	hdr, err := json.Marshal(segmentHeader{Format: segmentFormat, Version: segmentVersion, Segment: e.seq})
	if err != nil {
		f.Close()
		return err
	}
	n, err := w.Write(append(hdr, '\n'))
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		f.Close()
		return err
	}
	e.file, e.w, e.written = f, w, int64(n)
	e.seq++
	e.segments.Inc()
	return nil
}

// segmentName formats the file name of segment seq.
func segmentName(seq int) string { return fmt.Sprintf("traces-%06d.jsonl", seq) }

// nextSegmentSeq returns one past the highest existing segment number in
// dir, so a restarted process appends rather than overwrites.
func nextSegmentSeq(dir string) (int, error) {
	names, err := segmentFiles(dir)
	if err != nil {
		return 0, err
	}
	next := 0
	for _, name := range names {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(name), "traces-%d.jsonl", &seq); err == nil && seq >= next {
			next = seq + 1
		}
	}
	return next, nil
}

// segmentFiles lists dir's segment files in segment order.
func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, en := range entries {
		name := en.Name()
		if en.IsDir() || !strings.HasPrefix(name, "traces-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	return names, nil
}

// ReplayStats summarizes one replay pass over exported segments.
type ReplayStats struct {
	// Segments is the number of segment files read.
	Segments int
	// Traces is the number of complete trace records decoded.
	Traces int
	// Truncated counts segments whose final record was cut short (a crash
	// mid-write); the partial record is skipped, not an error.
	Truncated int
}

// ReadSegments replays every trace in dir's segments in write order,
// invoking fn per decoded trace. A truncated final record in any segment
// is skipped and counted in the returned stats; corruption anywhere else
// is an error. fn returning an error aborts the replay.
func ReadSegments(dir string, fn func(*Trace) error) (ReplayStats, error) {
	var stats ReplayStats
	names, err := segmentFiles(dir)
	if err != nil {
		return stats, err
	}
	for _, name := range names {
		s, err := ReadSegmentFile(name, fn)
		stats.Segments += s.Segments
		stats.Traces += s.Traces
		stats.Truncated += s.Truncated
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// ReadSegmentFile replays one segment file. The header line is validated
// (format and version); each following line decodes to one Trace. A
// malformed or partial record at the very end of the file is counted as
// truncation and skipped — that is what an interrupted write leaves — but
// a malformed record with complete records after it is corruption and an
// error.
func ReadSegmentFile(path string, fn func(*Trace) error) (ReplayStats, error) {
	var stats ReplayStats
	f, err := os.Open(path)
	if err != nil {
		return stats, err
	}
	defer f.Close()
	stats.Segments = 1

	r := bufio.NewReader(f)
	line, err := readLine(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Empty or header-truncated segment: treat as all-truncated.
			stats.Truncated = 1
			return stats, nil
		}
		return stats, err
	}
	var hdr segmentHeader
	if jerr := json.Unmarshal(line, &hdr); jerr != nil || hdr.Format != segmentFormat {
		return stats, fmt.Errorf("%s: not a lan.trace segment (bad header)", path)
	}
	if hdr.Version > segmentVersion {
		return stats, fmt.Errorf("%s: segment version %d is newer than this reader (%d)", path, hdr.Version, segmentVersion)
	}

	var pendingErr error // decode error held until we know whether it is the tail
	for {
		line, err := readLine(r)
		if errors.Is(err, io.EOF) && len(line) == 0 {
			if pendingErr != nil {
				stats.Truncated = 1
			}
			return stats, nil
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return stats, err
		}
		if pendingErr != nil {
			// A record decoded as garbage but was not the last line: real
			// corruption, not a crash tail.
			return stats, pendingErr
		}
		if len(line) == 0 {
			continue
		}
		t := new(Trace)
		if jerr := json.Unmarshal(line, t); jerr != nil {
			pendingErr = fmt.Errorf("%s: corrupt trace record: %v", path, jerr)
			if errors.Is(err, io.EOF) {
				stats.Truncated = 1
				return stats, nil
			}
			continue
		}
		stats.Traces++
		if fn != nil {
			if ferr := fn(t); ferr != nil {
				return stats, ferr
			}
		}
		if errors.Is(err, io.EOF) {
			return stats, nil
		}
	}
}

// readLine reads one newline-delimited line (newline stripped). At EOF
// the final unterminated bytes, if any, are returned with io.EOF.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, err
}

// LookupExported scans dir's segments for the most recent trace with the
// given query id (the /debug/trace/<id> fallback when the in-memory ring
// has evicted it). Returns nil when absent.
func LookupExported(dir, id string) (*Trace, error) {
	var found *Trace
	_, err := ReadSegments(dir, func(t *Trace) error {
		if t.QueryID == id {
			found = t
		}
		return nil
	})
	return found, err
}
