package obs

import (
	"sync/atomic"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

// TimedMetric wraps a ged.Metric and accumulates wall time spent in
// Distance. The counter is atomic because a query-worker pool calls
// Distance from several goroutines at once (pg.DistCache.Prefetch);
// Prefetch's merge barrier ensures every worker's contribution lands
// before the search reads the total.
type TimedMetric struct {
	M       ged.Metric
	elapsed atomic.Int64 // nanoseconds
}

// NewTimedMetric wraps m.
func NewTimedMetric(m ged.Metric) *TimedMetric { return &TimedMetric{M: m} }

// Distance computes m's distance and meters its wall time.
func (t *TimedMetric) Distance(a, b *graph.Graph) float64 {
	start := time.Now()
	d := t.M.Distance(a, b)
	t.elapsed.Add(int64(time.Since(start)))
	return d
}

// Elapsed returns the accumulated Distance wall time.
func (t *TimedMetric) Elapsed() time.Duration {
	return time.Duration(t.elapsed.Load())
}
