package route

import (
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/pg"
)

func clusteredDB(seed int64, clusters, perCluster int) graph.Database {
	gen := graph.NewGenerator(seed)
	labels := []string{"C", "N", "O", "S"}
	var gs []*graph.Graph
	for c := 0; c < clusters; c++ {
		base := gen.MoleculeLike(9+c%5, 1, labels, 0.4)
		gs = append(gs, base)
		for i := 1; i < perCluster; i++ {
			gs = append(gs, gen.Mutate(base, 1+i%3, labels))
		}
	}
	return graph.NewDatabase(gs)
}

func buildIndex(t *testing.T, db graph.Database, seed int64) *pg.HNSW {
	t.Helper()
	h, err := pg.Build(db, pg.BuildConfig{M: 5, EfConstruction: 12, Seed: seed})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func sameResults(a, b []pg.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resultsNoWorse reports whether every rank of got is at least as close as
// the corresponding rank of want.
func resultsNoWorse(got, want []pg.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Dist > want[i].Dist {
			return false
		}
	}
	return true
}

// TestTheorem1OracleEquivalence is the paper's central correctness claim:
// with an oracle ranker and the same entry and beam, np_route matches the
// baseline's results while saving distance computations.
//
// Tie caveat: Theorem 1 implicitly assumes distinct distances. With
// integer GEDs ties are common, and the Algorithm-3 re-qualification sweep
// re-adds tied unexplored nodes that the baseline evicted permanently (the
// paper's own tie-break ranks unexplored above explored at equal
// distance), so np_route can explore a few extra nodes — and then returns
// results at least as good as the baseline's. We therefore assert: results
// are never worse at any rank, identical on a large majority of queries,
// and aggregate NDC strictly drops.
func TestTheorem1OracleEquivalence(t *testing.T) {
	metric := ged.MetricFunc(ged.Hungarian)
	var totalBase, totalNp, queries, identical int
	for seed := int64(0); seed < 6; seed++ {
		db := clusteredDB(seed, 8, 8)
		h := buildIndex(t, db, seed)
		gen := graph.NewGenerator(seed + 100)
		labels := []string{"C", "N", "O", "S"}
		for qi := 0; qi < 6; qi++ {
			q := gen.Mutate(db[(qi*13)%len(db)], 1+qi%3, labels)
			for _, cfg := range []struct{ k, b int }{{1, 4}, {5, 10}, {10, 25}} {
				entry := (qi * 7) % len(db)

				cBase := pg.NewDistCache(metric, db, q)
				wantRes, wantStats := pg.BeamSearch(h.PG, cBase, entry, cfg.k, cfg.b)

				cNp := pg.NewDistCache(metric, db, q)
				oracle := &OracleRanker{Cache: cNp, BatchPercent: 20}
				gotRes, gotStats := Route(h.PG, cNp, oracle, entry, Config{K: cfg.k, Beam: cfg.b})

				if !resultsNoWorse(gotRes, wantRes) {
					t.Fatalf("seed %d query %d k=%d b=%d: np results worse than baseline\n np: %v\n bs: %v",
						seed, qi, cfg.k, cfg.b, gotRes, wantRes)
				}
				if sameResults(gotRes, wantRes) {
					identical++
				}
				if gotStats.NDC > wantStats.NDC+wantStats.NDC/4+5 {
					t.Fatalf("seed %d query %d k=%d b=%d: NDC %d far above baseline %d",
						seed, qi, cfg.k, cfg.b, gotStats.NDC, wantStats.NDC)
				}
				totalBase += wantStats.NDC
				totalNp += gotStats.NDC
				queries++
			}
		}
	}
	if totalNp >= totalBase {
		t.Fatalf("aggregate NDC not reduced: np %d >= baseline %d", totalNp, totalBase)
	}
	if float64(identical) < 0.7*float64(queries) {
		t.Fatalf("only %d/%d queries returned identical results", identical, queries)
	}
	t.Logf("identical results on %d/%d queries; aggregate NDC baseline %d vs np %d (%.2fx)",
		identical, queries, totalBase, totalNp, float64(totalBase)/float64(totalNp))
}

func TestNpRouteSavesNDCOnAverage(t *testing.T) {
	metric := ged.MetricFunc(ged.Hungarian)
	db := clusteredDB(42, 12, 10)
	h := buildIndex(t, db, 42)
	gen := graph.NewGenerator(7)
	labels := []string{"C", "N", "O", "S"}

	var baseNDC, npNDC int
	for qi := 0; qi < 12; qi++ {
		q := gen.Mutate(db[(qi*11)%len(db)], 1, labels)
		entry := (qi * 5) % len(db)
		cb := pg.NewDistCache(metric, db, q)
		_, sb := pg.BeamSearch(h.PG, cb, entry, 5, 12)
		cn := pg.NewDistCache(metric, db, q)
		_, sn := Route(h.PG, cn, &OracleRanker{Cache: cn, BatchPercent: 20}, entry, Config{K: 5, Beam: 12})
		baseNDC += sb.NDC
		npNDC += sn.NDC
	}
	if npNDC >= baseNDC {
		t.Fatalf("np_route saved nothing: %d >= %d", npNDC, baseNDC)
	}
	t.Logf("NDC: baseline %d, np_route %d (%.2fx reduction)", baseNDC, npNDC, float64(baseNDC)/float64(npNDC))
}

func TestSplitBatches(t *testing.T) {
	ranked := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	b := SplitBatches(ranked, 20)
	if len(b) != 5 {
		t.Fatalf("batches = %v", b)
	}
	for i, batch := range b {
		if len(batch) != 2 {
			t.Fatalf("batch %d size %d", i, len(batch))
		}
	}
	// Order preserved across batches.
	if b[0][0] != 9 || b[4][1] != 0 {
		t.Fatalf("order lost: %v", b)
	}
	// Uneven split: ceil sizing.
	b = SplitBatches([]int{1, 2, 3}, 50)
	if len(b) != 2 || len(b[0]) != 2 || len(b[1]) != 1 {
		t.Fatalf("uneven split = %v", b)
	}
	// Degenerate percents fall back to 20.
	if got := SplitBatches(ranked, 0); len(got) != 5 {
		t.Fatalf("percent=0 split = %v", got)
	}
	if got := SplitBatches(ranked, 200); len(got) != 5 {
		t.Fatalf("percent=200 split = %v", got)
	}
	if SplitBatches(nil, 20) != nil {
		t.Fatal("empty input should give nil")
	}
	// 100%: single batch.
	if got := SplitBatches(ranked, 100); len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("percent=100 split = %v", got)
	}
}

func TestOracleBatchesSortedByTrueDistance(t *testing.T) {
	metric := ged.MetricFunc(ged.Hungarian)
	db := clusteredDB(3, 5, 6)
	q := graph.NewGenerator(5).Mutate(db[0], 2, []string{"C", "N", "O", "S"})
	c := pg.NewDistCache(metric, db, q)
	oracle := &OracleRanker{Cache: c, BatchPercent: 25}
	neighbors := []int{3, 17, 8, 22, 11, 5, 29, 1}
	batches := oracle.Batches(0, neighbors, 0)
	var flat []int
	for _, b := range batches {
		flat = append(flat, b...)
	}
	if len(flat) != len(neighbors) {
		t.Fatalf("lost neighbors: %v", batches)
	}
	for i := 1; i < len(flat); i++ {
		di := metric.Distance(db[flat[i-1]], q)
		dj := metric.Distance(db[flat[i]], q)
		if di > dj {
			t.Fatalf("batch order violates true distances at %d: %v > %v", i, di, dj)
		}
	}
	// Ranking must not have charged the cache.
	if c.NDC() != 0 {
		t.Fatalf("oracle charged %d NDC", c.NDC())
	}
}

func TestRouteSingleNodeDB(t *testing.T) {
	g := graph.NewGenerator(1).MoleculeLike(6, 0, []string{"A", "B"}, 0.3)
	db := graph.NewDatabase([]*graph.Graph{g})
	p := &pg.PG{DB: db, Adj: [][]int{nil}}
	q := graph.NewGenerator(2).MoleculeLike(5, 0, []string{"A", "B"}, 0.3)
	c := pg.NewDistCache(ged.MetricFunc(ged.VJ), db, q)
	res, stats := Route(p, c, &OracleRanker{Cache: c}, 0, Config{K: 3, Beam: 4})
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("res = %v", res)
	}
	if stats.NDC != 1 {
		t.Fatalf("NDC = %d; want 1", stats.NDC)
	}
}

func TestRouteConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.defaults()
	if cfg.K != 1 || cfg.Beam != 1 || cfg.StepSize != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = Config{K: 10, Beam: 5}
	cfg.defaults()
	if cfg.Beam != 10 {
		t.Fatalf("beam not raised to k: %+v", cfg)
	}
}

func TestRouteStatsPopulated(t *testing.T) {
	metric := ged.MetricFunc(ged.Hungarian)
	db := clusteredDB(9, 6, 6)
	h := buildIndex(t, db, 9)
	q := graph.NewGenerator(11).Mutate(db[4], 2, []string{"C", "N", "O", "S"})
	c := pg.NewDistCache(metric, db, q)
	_, stats := Route(h.PG, c, &OracleRanker{Cache: c, BatchPercent: 20}, 0, Config{K: 5, Beam: 10})
	if stats.NDC <= 0 || stats.Explored <= 0 || stats.RankerCalls <= 0 || stats.BatchesOpened <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.RankerCalls < stats.Explored {
		t.Fatalf("fewer ranker calls (%d) than explored nodes (%d)", stats.RankerCalls, stats.Explored)
	}
}

// TestFullExplorationRankerMatchesBaselineExactly uses a single 100% batch:
// np_route degenerates to the baseline and NDC must be equal, not just <=.
func TestFullExplorationRankerMatchesBaselineExactly(t *testing.T) {
	metric := ged.MetricFunc(ged.Hungarian)
	db := clusteredDB(21, 6, 8)
	h := buildIndex(t, db, 21)
	gen := graph.NewGenerator(3)
	labels := []string{"C", "N", "O", "S"}
	for qi := 0; qi < 5; qi++ {
		q := gen.Mutate(db[qi*7%len(db)], 2, labels)
		entry := qi % len(db)

		cb := pg.NewDistCache(metric, db, q)
		wantRes, _ := pg.BeamSearch(h.PG, cb, entry, 5, 10)

		cn := pg.NewDistCache(metric, db, q)
		all := RankerFunc(func(node int, neighbors []int, d float64) [][]int {
			return SplitBatches(append([]int(nil), neighbors...), 100)
		})
		gotRes, _ := Route(h.PG, cn, all, entry, Config{K: 5, Beam: 10})
		if !sameResults(gotRes, wantRes) {
			t.Fatalf("query %d: 100%%-batch np_route != baseline\n np: %v\n bs: %v", qi, gotRes, wantRes)
		}
	}
}
