// Package route implements the paper's Sec. IV: routing with neighbor
// pruning on a proximity graph (np_route, Algorithms 2-4). At each routing
// step the current node's PG-neighbors are ranked into batches of y% each
// by a Ranker — an oracle or a learned model — and batches are opened
// lazily under a growing GED threshold, so distances to unpromising
// neighbors are never computed. With an oracle ranker the search results
// provably equal the baseline beam search while NDC never increases
// (Lemma 1, Theorem 1).
package route

import (
	"context"
	"sort"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/order"
	"github.com/lansearch/lan/internal/pg"
)

// Ranker orders the PG-neighbors of a node by predicted proximity to the
// query and partitions them into batches (B_0 holds the predicted-closest
// y% and so on). dCurrent is the known distance from the query to the node
// whose neighbors are ranked — learned rankers use it to fall back to a
// single batch outside the query's neighborhood. Rankers are constructed
// per query, so implementations may close over per-search state (the
// learned ranker caches the query's compressed GNN-graph this way; see
// models.NeighborRanker.Ranker).
type Ranker interface {
	Batches(node int, neighbors []int, dCurrent float64) [][]int
}

// RankerFunc adapts a function to the Ranker interface.
type RankerFunc func(node int, neighbors []int, dCurrent float64) [][]int

// Batches implements Ranker.
func (f RankerFunc) Batches(node int, neighbors []int, dCurrent float64) [][]int {
	return f(node, neighbors, dCurrent)
}

// OracleRanker ranks neighbors by their true distance to the query without
// charging distance computations — the idealized ranker of Sec. IV-A used
// to analyze np_route. BatchPercent is the paper's y (default 20).
type OracleRanker struct {
	Cache        *pg.DistCache // read-only view of the database and query
	BatchPercent int
	// RankMetric, when set, replaces the cache's metric for ranking.
	// Wall-clock benchmarks set a cheap approximation here so that the
	// hypothetical "negligible time" of the oracle is not simulated with
	// the full query metric; correctness analyses leave it nil.
	RankMetric ged.Metric
}

// Batches implements Ranker by true-distance sorting. The neighbor
// graphs are fetched from the cache's store in one batch and each
// ranking distance is evaluated once before the sort, so a disk-backed
// store pays one segment read per ranked neighbor, not one per
// comparison.
func (o *OracleRanker) Batches(node int, neighbors []int, dCurrent float64) [][]int {
	ranked := append([]int(nil), neighbors...)
	metric := o.RankMetric
	if metric == nil {
		metric = o.Cache.Metric
	}
	graphs := o.Cache.Store.FetchGraphs(neighbors, nil)
	d := make(map[int]float64, len(neighbors))
	for i, id := range neighbors {
		d[id] = metric.Distance(graphs[i], o.Cache.Q)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return order.ByDistThenID(d[ranked[i]], ranked[i], d[ranked[j]], ranked[j])
	})
	return SplitBatches(ranked, o.BatchPercent)
}

// SplitBatches partitions an already-ranked neighbor list into batches of
// percent% each (at least one neighbor per batch).
func SplitBatches(ranked []int, percent int) [][]int {
	if percent <= 0 || percent > 100 {
		percent = 20
	}
	n := len(ranked)
	if n == 0 {
		return nil
	}
	size := (n*percent + 99) / 100
	if size < 1 {
		size = 1
	}
	var batches [][]int
	for i := 0; i < n; i += size {
		end := i + size
		if end > n {
			end = n
		}
		batches = append(batches, ranked[i:end])
	}
	return batches
}

// Config holds np_route's parameters.
type Config struct {
	// K is the number of answers.
	K int
	// Beam is b, the candidate pool size.
	Beam int
	// StepSize is d_s, the threshold increment between supersteps
	// (default 1 — GED is integral under unit costs).
	StepSize float64
	// Pool, when non-nil, evaluates each opened batch's distances
	// concurrently. Algorithm 3 computes every distance of a batch before
	// the gamma check, so prefetching a whole batch leaves the routing
	// trajectory, results and NDC bit-identical to the sequential run (see
	// pg.DistCache.Prefetch). With a pool, cancellation is checked per
	// batch rather than per distance.
	Pool *pg.WorkerPool
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 1
	}
	if c.Beam < c.K {
		c.Beam = c.K
	}
	if c.StepSize <= 0 {
		c.StepSize = 1
	}
}

// Stats reports the routing effort.
type Stats struct {
	// NDC is the number of distance computations.
	NDC int
	// Explored counts nodes whose neighbors were (partially) explored.
	Explored int
	// RankerCalls counts neighbor-ranking invocations (model inferences
	// happen inside these).
	RankerCalls int
	// BatchesOpened counts opened neighbor batches across all nodes.
	BatchesOpened int
	// Ranked counts neighbors handed to the ranker; Opened counts
	// neighbors whose batch was opened (distance computed). 1 -
	// Opened/Ranked is the prune rate — the fraction of ranked neighbors
	// np_route never paid a distance for.
	Ranked int
	Opened int
	// GammaSteps is the number of stage-2 supersteps (the length of the
	// γ-threshold trajectory).
	GammaSteps int
}

// nodeState tracks the batch progress of one PG node during a query.
type nodeState struct {
	batches [][]int
	opened  int
}

// router carries the per-query state of np_route.
type router struct {
	ctx    context.Context
	pg     *pg.PG
	cache  *pg.DistCache
	ranker Ranker
	cfg    Config

	w        *pg.Pool
	states   map[int]*nodeState
	explored []int // exploration order
	stats    Stats
	trace    *obs.Trace // nil when tracing is disabled
	err      error      // first cancellation error; set once, then unwind
}

// canceled records and reports context cancellation. Every distance-paying
// loop checks it so an expired deadline stops the routing within one GED
// call.
func (r *router) canceled() bool {
	if r.err != nil {
		return true
	}
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return true
	}
	return false
}

// state lazily ranks and batches the neighbors of node id.
func (r *router) state(id int, dCurrent float64) *nodeState {
	if s, ok := r.states[id]; ok {
		return s
	}
	neighbors := r.pg.Neighbors(id)
	s := &nodeState{batches: r.ranker.Batches(id, neighbors, dCurrent)}
	r.stats.RankerCalls++
	r.stats.Ranked += len(neighbors)
	r.states[id] = s
	return s
}

// farthestOpened returns the largest known distance among the members of
// the opened batches of s (-inf when none opened).
func (r *router) farthestOpened(s *nodeState) (float64, bool) {
	found := false
	far := 0.0
	for _, b := range s.batches[:s.opened] {
		for _, id := range b {
			if d := r.cache.Dist(id); !found || d > far {
				far, found = d, true
			}
		}
	}
	return far, found
}

// openBatch computes distances for batch j of s and adds its members to W.
// It returns true when the batch contains a member with d >= gamma (the
// caller must stop opening) or the query is canceled. Every member's
// distance is needed regardless of where the threshold is hit, so the
// batch is prefetched as a whole when a pool is configured.
func (r *router) openBatch(s *nodeState, j int, gamma float64) bool {
	if r.cfg.Pool != nil {
		if r.canceled() {
			return true
		}
		r.cache.Prefetch(s.batches[j], r.cfg.Pool)
	}
	hitThreshold := false
	for _, id := range s.batches[j] {
		if r.canceled() {
			return true
		}
		d := r.cache.Dist(id)
		r.w.Add(id, d)
		if d >= gamma {
			hitThreshold = true
		}
	}
	s.opened = j + 1
	r.stats.BatchesOpened++
	r.stats.Opened += len(s.batches[j])
	return hitThreshold
}

// rankExpl is Algorithm 4: open further batches of node id while the
// farthest already-known opened neighbor is still below gamma, stopping
// after the first batch that reaches it.
func (r *router) rankExpl(id int, gamma, dCurrent float64) {
	if r.canceled() {
		return
	}
	s := r.state(id, dCurrent)
	if far, ok := r.farthestOpened(s); ok && far >= gamma {
		return
	}
	for j := s.opened; j < len(s.batches); j++ {
		if r.openBatch(s, j, gamma) {
			return
		}
	}
}

// allQualiNeigh is Algorithm 3: make sure every neighbor of explored node
// id with distance below gamma is in W — re-adding known members of opened
// batches and opening new batches as needed.
func (r *router) allQualiNeigh(id int, gamma float64) {
	if r.canceled() {
		return
	}
	s := r.states[id] // explored nodes always have state
	for j := 0; j < s.opened; j++ {
		hit := false
		for _, nb := range s.batches[j] {
			d := r.cache.Dist(nb) // known: batch was opened
			r.w.Add(nb, d)
			if d >= gamma {
				hit = true
			}
		}
		if hit {
			return
		}
	}
	for j := s.opened; j < len(s.batches); j++ {
		if r.openBatch(s, j, gamma) {
			return
		}
	}
}

// markExplored stamps a node as explored in both the pool and the order
// log, and records the step in the query trace (gamma is the pruning
// threshold that was in force while this node's batches were opened).
func (r *router) markExplored(id int, gamma float64) {
	r.w.MarkExplored(id)
	r.explored = append(r.explored, id)
	r.stats.Explored++
	if r.trace != nil {
		s := r.states[id]
		ranked, opened := 0, 0
		for j, b := range s.batches {
			ranked += len(b)
			if j < s.opened {
				opened += len(b)
			}
		}
		// Lookup, not Dist: trace recording must not perturb NDC or the
		// memo's hit accounting.
		d, _ := r.cache.Lookup(id)
		r.trace.Step(id, d, ranked, opened, gamma, r.cache.NDC())
	}
}

// Route runs np_route (Algorithm 2) from the given entry node and returns
// the k-ANNs with routing statistics.
func Route(p *pg.PG, cache *pg.DistCache, ranker Ranker, entry int, cfg Config) ([]pg.Result, Stats) {
	res, stats, _ := RouteContext(context.Background(), p, cache, ranker, entry, cfg)
	return res, stats
}

// RouteContext is Route with cancellation: the context is checked before
// every distance computation, so an expired deadline stops the routing
// within one GED call. On cancellation it returns ctx.Err() along with the
// statistics accumulated so far.
func RouteContext(ctx context.Context, p *pg.PG, cache *pg.DistCache, ranker Ranker, entry int, cfg Config) ([]pg.Result, Stats, error) {
	cfg.defaults()
	r := &router{
		ctx: ctx, pg: p, cache: cache, ranker: ranker, cfg: cfg,
		w: pg.NewPool(), states: make(map[int]*nodeState),
		trace: obs.From(ctx),
	}
	r.trace.SetEntry(entry)
	r.w.TrackAlive(cfg.K, p.Dead)

	// Stage 1 (Lines 1-12): greedy descent without backtracking until the
	// first local optimum.
	r.w.Add(entry, cache.Dist(entry))
	cur, _ := r.w.Best()
	for !r.w.Explored(cur.ID) && !r.canceled() {
		r.rankExpl(cur.ID, cur.Dist, cur.Dist)
		r.markExplored(cur.ID, cur.Dist)
		r.w.Resize(cfg.Beam)
		cur, _ = r.w.Best()
	}

	// Stage 2 (Lines 13-29): backtracking supersteps under a growing
	// threshold gamma.
	flo, _ := r.w.Best()
	gamma := flo.Dist + cfg.StepSize
	for r.err == nil {
		r.stats.GammaSteps++
		r.trace.Gamma(gamma)
		for _, id := range append([]int(nil), r.explored...) {
			r.allQualiNeigh(id, gamma)
		}
		r.w.Resize(cfg.Beam)
		if r.w.AllExplored() || r.canceled() {
			break
		}
		for {
			c, ok := r.w.NextUnexploredWithin(gamma)
			if !ok || r.canceled() {
				break
			}
			r.rankExpl(c.ID, gamma, c.Dist)
			r.markExplored(c.ID, gamma)
			r.w.Resize(cfg.Beam)
		}
		gamma += cfg.StepSize
	}

	r.stats.NDC = cache.NDC()
	if r.err != nil {
		return nil, r.stats, r.err
	}
	// Tombstoned vertices routed like any other; they are dropped only
	// here, at result assembly (nil Dead on immutable indexes filters
	// nothing).
	return r.w.TopKAlive(cfg.K, p.Dead), r.stats, nil
}
