package cluster

import (
	"math/rand"
	"testing"
)

func TestFitKMeansRandMatchesSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	points := make([][]float64, 40)
	for i := range points {
		points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}

	seeded, err := FitKMeans(points, 4, 20, 5)
	if err != nil {
		t.Fatalf("FitKMeans: %v", err)
	}
	injected, err := FitKMeansRand(points, 4, 20, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("FitKMeansRand: %v", err)
	}

	if len(seeded.Assign) != len(injected.Assign) {
		t.Fatalf("assignment lengths differ: %d vs %d", len(seeded.Assign), len(injected.Assign))
	}
	for i := range seeded.Assign {
		if seeded.Assign[i] != injected.Assign[i] {
			t.Fatalf("point %d: seeded cluster %d, injected cluster %d", i, seeded.Assign[i], injected.Assign[i])
		}
	}
}
