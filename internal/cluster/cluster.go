// Package cluster provides the offline clustering used by the optimized
// initial-node selection (Sec. V-B2): graph embeddings plus KMeans. The
// paper uses node2vec-style embeddings; as a deterministic, training-free
// stand-in we embed each graph by its normalized label histogram augmented
// with degree and size statistics, which captures the same
// coarse-structure signal GED clusters on. A learned GIN embedding can be
// plugged in instead via Embedder.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cg"
)

// Embedder maps a graph to a fixed-dimension vector.
type Embedder interface {
	Embed(g *graph.Graph) []float64
	Dim() int
}

// FeatureEmbedder is the deterministic structural embedder: normalized
// label histogram over a vocabulary, degree histogram (capped), and
// normalized size features.
type FeatureEmbedder struct {
	Vocab *cg.Vocab
	// MaxDegree caps the degree histogram (default 8).
	MaxDegree int
	// SizeScale normalizes node/edge counts (default 50).
	SizeScale float64
}

// NewFeatureEmbedder builds an embedder over db's label vocabulary.
func NewFeatureEmbedder(db graph.Database) *FeatureEmbedder {
	return NewFeatureEmbedderVocab(cg.NewVocab(db))
}

// NewFeatureEmbedderVocab builds an embedder over an existing vocabulary
// — the snapshot-load path, which must not scan a (possibly disk-backed)
// database.
func NewFeatureEmbedderVocab(v *cg.Vocab) *FeatureEmbedder {
	return &FeatureEmbedder{Vocab: v, MaxDegree: 8, SizeScale: 50}
}

// Dim returns the embedding dimension.
func (e *FeatureEmbedder) Dim() int { return e.Vocab.Size() + e.MaxDegree + 1 + 2 }

// Embed implements Embedder.
func (e *FeatureEmbedder) Embed(g *graph.Graph) []float64 {
	v := make([]float64, e.Dim())
	n := float64(g.N())
	if n == 0 {
		return v
	}
	for u := 0; u < g.N(); u++ {
		v[e.Vocab.Index(g.Label(u))] += 1 / n
		d := g.Degree(u)
		if d > e.MaxDegree {
			d = e.MaxDegree
		}
		v[e.Vocab.Size()+d] += 1 / n
	}
	base := e.Vocab.Size() + e.MaxDegree + 1
	v[base] = n / e.SizeScale
	v[base+1] = float64(g.M()) / e.SizeScale
	return v
}

// KMeans is a fitted clustering.
type KMeans struct {
	Centroids [][]float64
	// Assign[i] is the cluster of input point i.
	Assign []int
	// Members[c] lists the point indices of cluster c.
	Members [][]int
}

// K returns the number of clusters.
func (k *KMeans) K() int { return len(k.Centroids) }

// FitKMeans clusters points into k groups with Lloyd's algorithm and
// kmeans++-style seeding, deterministic under seed.
func FitKMeans(points [][]float64, k int, iters int, seed int64) (*KMeans, error) {
	return FitKMeansRand(points, k, iters, rand.New(rand.NewSource(seed)))
}

// FitKMeansRand is FitKMeans with an injected randomness source (must be
// non-nil), for callers that thread one reproducible stream through a
// whole pipeline.
func FitKMeansRand(points [][]float64, k int, iters int, rng *rand.Rand) (*KMeans, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d", k)
	}
	if k > len(points) {
		k = len(points)
	}
	if iters <= 0 {
		iters = 25
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d; want %d", i, len(p), dim)
		}
	}

	// kmeans++ seeding.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clonePoint(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; seed the rest randomly.
			centroids = append(centroids, clonePoint(points[rng.Intn(len(points))]))
			continue
		}
		x := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			x -= d
			if x <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, clonePoint(points[idx]))
	}

	assign := make([]int, len(points))
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, len(centroids))
		sums := make([][]float64, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = clonePoint(points[rng.Intn(len(points))])
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	km := &KMeans{Centroids: centroids, Assign: assign, Members: make([][]int, len(centroids))}
	for i, c := range assign {
		km.Members[c] = append(km.Members[c], i)
	}
	return km, nil
}

// Nearest returns the centroid closest to p.
func (k *KMeans) Nearest(p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range k.Centroids {
		if d := sqDist(p, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Inertia returns the within-cluster sum of squared distances of the
// fitted points.
func (k *KMeans) Inertia(points [][]float64) float64 {
	total := 0.0
	for i, p := range points {
		total += sqDist(p, k.Centroids[k.Assign[i]])
	}
	return total
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p []float64) []float64 { return append([]float64(nil), p...) }
