package cluster

import (
	"math"
	"testing"

	"github.com/lansearch/lan/graph"
)

func TestFeatureEmbedderBasics(t *testing.T) {
	gen := graph.NewGenerator(1)
	labels := []string{"A", "B", "C"}
	db := graph.NewDatabase([]*graph.Graph{
		gen.MoleculeLike(8, 1, labels, 0.3),
		gen.MoleculeLike(12, 2, labels, 0.3),
	})
	e := NewFeatureEmbedder(db)
	v := e.Embed(db[0])
	if len(v) != e.Dim() {
		t.Fatalf("dim mismatch: %d vs %d", len(v), e.Dim())
	}
	// Label histogram part sums to 1, degree part sums to 1.
	sumLabels, sumDeg := 0.0, 0.0
	for i := 0; i < e.Vocab.Size(); i++ {
		sumLabels += v[i]
	}
	for i := 0; i <= e.MaxDegree; i++ {
		sumDeg += v[e.Vocab.Size()+i]
	}
	if math.Abs(sumLabels-1) > 1e-9 || math.Abs(sumDeg-1) > 1e-9 {
		t.Fatalf("histograms not normalized: %v %v", sumLabels, sumDeg)
	}
	// Same graph -> same embedding; empty graph -> zero vector.
	v2 := e.Embed(db[0])
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("not deterministic")
		}
	}
	z := e.Embed(graph.New(-1))
	for _, x := range z {
		if x != 0 {
			t.Fatalf("empty graph embedding nonzero: %v", z)
		}
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two tight blobs in 2D.
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{0 + float64(i%5)*0.01, 0})
		points = append(points, []float64{10 + float64(i%5)*0.01, 10})
	}
	km, err := FitKMeans(points, 2, 50, 1)
	if err != nil {
		t.Fatalf("FitKMeans: %v", err)
	}
	if km.K() != 2 {
		t.Fatalf("K = %d", km.K())
	}
	// All even indices in one cluster, all odd in the other.
	for i := 2; i < len(points); i += 2 {
		if km.Assign[i] != km.Assign[0] {
			t.Fatalf("blob A split")
		}
	}
	for i := 3; i < len(points); i += 2 {
		if km.Assign[i] != km.Assign[1] {
			t.Fatalf("blob B split")
		}
	}
	if km.Assign[0] == km.Assign[1] {
		t.Fatalf("blobs merged")
	}
	// Members consistent with Assign.
	total := 0
	for c, ms := range km.Members {
		total += len(ms)
		for _, i := range ms {
			if km.Assign[i] != c {
				t.Fatalf("Members/Assign inconsistent")
			}
		}
	}
	if total != len(points) {
		t.Fatalf("members cover %d of %d", total, len(points))
	}
	// Nearest maps blob points to their centroid.
	if km.Nearest([]float64{0.1, 0.1}) != km.Assign[0] {
		t.Fatalf("Nearest wrong")
	}
	if km.Inertia(points) > 1.0 {
		t.Fatalf("inertia too high: %v", km.Inertia(points))
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := FitKMeans(nil, 2, 10, 0); err == nil {
		t.Fatal("no error for empty input")
	}
	if _, err := FitKMeans([][]float64{{1}}, 0, 10, 0); err == nil {
		t.Fatal("no error for k=0")
	}
	if _, err := FitKMeans([][]float64{{1}, {1, 2}}, 1, 10, 0); err == nil {
		t.Fatal("no error for ragged input")
	}
	// k > n clamps.
	km, err := FitKMeans([][]float64{{1}, {2}}, 5, 10, 0)
	if err != nil || km.K() != 2 {
		t.Fatalf("clamp failed: %v %v", km, err)
	}
	// Identical points do not crash (zero total in seeding).
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	if _, err := FitKMeans(same, 2, 10, 0); err != nil {
		t.Fatalf("identical points: %v", err)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	var points [][]float64
	gen := graph.NewGenerator(3)
	db := graph.Database{}
	for i := 0; i < 30; i++ {
		db = append(db, gen.MoleculeLike(6+i%8, 1, []string{"A", "B", "C"}, 0.3))
	}
	db = graph.NewDatabase(db)
	e := NewFeatureEmbedder(db)
	for _, g := range db {
		points = append(points, e.Embed(g))
	}
	a, _ := FitKMeans(points, 4, 20, 7)
	b, _ := FitKMeans(points, 4, 20, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed, different assignment")
		}
	}
}

func TestClusteringGroupsMutants(t *testing.T) {
	// Mutants of the same seed graph should mostly land together.
	gen := graph.NewGenerator(5)
	labels := []string{"A", "B", "C", "D"}
	var gs []*graph.Graph
	for c := 0; c < 4; c++ {
		base := gen.MoleculeLike(8+8*c, 1, labels, 0.4)
		for i := 0; i < 10; i++ {
			gs = append(gs, gen.Mutate(base, 1, labels))
		}
	}
	db := graph.NewDatabase(gs)
	e := NewFeatureEmbedder(db)
	points := make([][]float64, len(db))
	for i, g := range db {
		points[i] = e.Embed(g)
	}
	km, err := FitKMeans(points, 4, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	// For each true cluster, the majority assignment should cover >= 60%.
	for c := 0; c < 4; c++ {
		counts := make(map[int]int)
		for i := 0; i < 10; i++ {
			counts[km.Assign[c*10+i]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		if max < 6 {
			t.Fatalf("true cluster %d scattered: %v", c, counts)
		}
	}
}
