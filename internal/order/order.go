// Package order centralizes the deterministic orderings the search and
// evaluation layers sort results by. The paper's Lemma 1 / Theorem 1
// exactness argument assumes a total, reproducible order over candidate
// distances; scattering ad-hoc float comparisons across comparators is
// how that silently breaks (and is why the floatcmp analyzer bans float
// equality in library code). Every ordering here is built from Cmp, which
// uses only < and > — no floating-point equality test — so ties are
// whatever is left after both strict comparisons fail, exactly the
// semantics sort.Slice needs.
//
// NaN never legitimately appears in GED distances; Cmp treats it as
// equal to everything, which keeps comparators total rather than
// panicking mid-sort.
package order

// Cmp compares two float64s, returning -1 when a sorts before b, +1 when
// after, and 0 on a tie.
func Cmp(a, b float64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// ByDistThenID reports whether result (d1, id1) sorts before (d2, id2)
// under the canonical ascending-distance order with ascending-id
// tie-break. All k-NN result lists use this order, which is what makes
// runs byte-for-byte reproducible.
func ByDistThenID(d1 float64, id1 int, d2 float64, id2 int) bool {
	if c := Cmp(d1, d2); c != 0 {
		return c < 0
	}
	return id1 < id2
}

// ByScoreThenID reports whether (s1, id1) sorts before (s2, id2) under
// descending score with ascending-id tie-break — the order model scores
// are ranked in.
func ByScoreThenID(s1 float64, id1 int, s2 float64, id2 int) bool {
	if c := Cmp(s1, s2); c != 0 {
		return c > 0
	}
	return id1 < id2
}
