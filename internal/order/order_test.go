package order

import (
	"math"
	"sort"
	"testing"
)

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b float64
		want int
	}{
		{1, 2, -1},
		{2, 1, 1},
		{1.5, 1.5, 0},
		{0, math.Copysign(0, -1), 0},
		{math.Inf(-1), 1, -1},
		{math.Inf(1), 1, 1},
		{math.NaN(), 1, 0},
		{1, math.NaN(), 0},
		{math.NaN(), math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Cmp(c.a, c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d; want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestByDistThenID(t *testing.T) {
	if !ByDistThenID(1, 9, 2, 0) {
		t.Error("smaller distance must sort first regardless of id")
	}
	if ByDistThenID(2, 0, 1, 9) {
		t.Error("larger distance must sort last regardless of id")
	}
	if !ByDistThenID(1.5, 3, 1.5, 7) {
		t.Error("ties must break by ascending id")
	}
	if ByDistThenID(1.5, 7, 1.5, 3) {
		t.Error("ties must break by ascending id (reverse)")
	}
	if ByDistThenID(1.5, 4, 1.5, 4) {
		t.Error("an element must not sort before itself (strict weak order)")
	}
}

func TestByScoreThenID(t *testing.T) {
	if !ByScoreThenID(0.9, 5, 0.1, 0) {
		t.Error("higher score must sort first")
	}
	if !ByScoreThenID(0.5, 2, 0.5, 6) {
		t.Error("ties must break by ascending id")
	}
	if ByScoreThenID(0.5, 6, 0.5, 2) {
		t.Error("ties must break by ascending id (reverse)")
	}
}

// TestSortDeterminism pins that a shuffled (dist, id) slice always sorts
// to the same sequence — the reproducibility property the routing layer
// relies on.
func TestSortDeterminism(t *testing.T) {
	type item struct {
		id int
		d  float64
	}
	base := []item{{3, 1.0}, {1, 1.0}, {2, 0.5}, {0, 2.0}, {4, 0.5}}
	permutations := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	want := []int{2, 4, 1, 3, 0}
	for _, perm := range permutations {
		items := make([]item, len(base))
		for i, p := range perm {
			items[i] = base[p]
		}
		sort.Slice(items, func(i, j int) bool {
			return ByDistThenID(items[i].d, items[i].id, items[j].d, items[j].id)
		})
		for i, w := range want {
			if items[i].id != w {
				t.Fatalf("perm %v: sorted ids %v; want %v", perm, items, want)
			}
		}
	}
}
