package autograd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lansearch/lan/internal/mat"
)

// numGrad computes the central-difference gradient of f() with respect to
// the entries of leaf, where f rebuilds the graph and returns the scalar
// loss value.
func numGrad(leaf *mat.Matrix, f func() float64) *mat.Matrix {
	const h = 1e-6
	g := mat.New(leaf.Rows, leaf.Cols)
	for i := range leaf.Data {
		orig := leaf.Data[i]
		leaf.Data[i] = orig + h
		fp := f()
		leaf.Data[i] = orig - h
		fm := f()
		leaf.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad builds the graph with build (which must return the scalar
// loss), runs Backward, and compares each leaf's analytic gradient with
// finite differences.
func checkGrad(t *testing.T, name string, leaves []*Value, build func() *Value) {
	t.Helper()
	for _, leaf := range leaves {
		leaf.ZeroGrad()
	}
	loss := build()
	Backward(loss)
	for li, leaf := range leaves {
		want := numGrad(leaf.Data, func() float64 { return build().Data.At(0, 0) })
		if leaf.Grad == nil {
			t.Fatalf("%s: leaf %d has nil grad", name, li)
		}
		if d := mat.MaxAbsDiff(leaf.Grad, want); d > 1e-4 {
			t.Fatalf("%s: leaf %d grad mismatch %v\n got %v\nwant %v", name, li, d, leaf.Grad, want)
		}
	}
}

func randVal(rng *rand.Rand, r, c int) *Value {
	return Param(mat.Randn(r, c, 1, rng))
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randVal(rng, 3, 4)
	b := randVal(rng, 4, 2)
	checkGrad(t, "matmul", []*Value{a, b}, func() *Value {
		return Sum(MatMul(a, b))
	})
}

func TestGradAddScaleReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randVal(rng, 3, 3)
	b := randVal(rng, 3, 3)
	checkGrad(t, "add-scale-relu", []*Value{a, b}, func() *Value {
		return Sum(ReLU(Scale(Add(a, b), 1.5)))
	})
}

func TestGradSigmoidTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randVal(rng, 2, 5)
	checkGrad(t, "sigmoid", []*Value{a}, func() *Value {
		return Sum(Sigmoid(a))
	})
	checkGrad(t, "tanh", []*Value{a}, func() *Value {
		return Sum(Tanh(a))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randVal(rng, 3, 4)
	w := mat.Randn(4, 2, 1, rng) // project so the loss depends nonuniformly
	checkGrad(t, "softmax", []*Value{a}, func() *Value {
		return Sum(MatMul(SoftmaxRows(a), Const(w)))
	})
}

func TestGradConcatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randVal(rng, 3, 2)
	b := randVal(rng, 3, 3)
	w := mat.Randn(5, 1, 1, rng)
	checkGrad(t, "concat", []*Value{a, b}, func() *Value {
		return Sum(MatMul(ConcatCols(a, b), Const(w)))
	})
}

func TestGradOuterSum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randVal(rng, 4, 1)
	b := randVal(rng, 1, 3)
	w := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "outersum", []*Value{a, b}, func() *Value {
		return Sum(MatMul(SoftmaxRows(OuterSum(a, b)), Const(w)))
	})
}

func TestGradAddRowBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randVal(rng, 4, 3)
	b := randVal(rng, 1, 3)
	checkGrad(t, "rowbroadcast", []*Value{a, b}, func() *Value {
		return Sum(ReLU(AddRowBroadcast(a, b)))
	})
}

func TestGradWeightedMeanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randVal(rng, 4, 3)
	w := []float64{1, 3, 2, 1}
	proj := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "wmean", []*Value{a}, func() *Value {
		return Sum(MatMul(WeightedMeanRows(a, w), Const(proj)))
	})
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randVal(rng, 4, 3)
	idx := []int{2, 0, 2, 1} // repeated row: gradients must accumulate
	proj := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "gather", []*Value{a}, func() *Value {
		return Sum(MatMul(GatherRows(a, idx), Const(proj)))
	})
}

func TestGradMulElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randVal(rng, 3, 3)
	b := randVal(rng, 3, 3)
	checkGrad(t, "mul", []*Value{a, b}, func() *Value {
		return Sum(Mul(a, b))
	})
}

func TestGradSumSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randVal(rng, 2, 3)
	checkGrad(t, "sumsquares", []*Value{a}, func() *Value {
		return SumSquares(a)
	})
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randVal(rng, 5, 1)
	targets := mat.FromSlice(5, 1, []float64{1, 0, 1, 1, 0})
	checkGrad(t, "bce", []*Value{a}, func() *Value {
		return BCEWithLogits(a, targets)
	})
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randVal(rng, 4, 1)
	targets := mat.Randn(4, 1, 1, rng)
	checkGrad(t, "mse", []*Value{a}, func() *Value {
		return MSE(a, targets)
	})
}

func TestGradDiamondReuse(t *testing.T) {
	// A value used by two paths must receive the sum of both gradients.
	rng := rand.New(rand.NewSource(14))
	a := randVal(rng, 2, 2)
	checkGrad(t, "diamond", []*Value{a}, func() *Value {
		left := ReLU(a)
		right := Sigmoid(a)
		return Sum(Add(left, right))
	})
}

func TestGradDeepComposite(t *testing.T) {
	// A miniature cross-graph-attention-shaped network.
	rng := rand.New(rand.NewSource(15))
	hg := randVal(rng, 4, 3) // "graph node embeddings"
	hq := randVal(rng, 3, 3) // "query node embeddings"
	a1 := randVal(rng, 3, 1)
	a2 := randVal(rng, 3, 1)
	w := randVal(rng, 3, 2)
	targets := mat.FromSlice(4, 1, []float64{1, 0, 0, 1})
	proj := mat.Randn(2, 1, 1, rng)
	checkGrad(t, "composite", []*Value{hg, hq, a1, a2, w}, func() *Value {
		scores := OuterSum(MatMul(hg, a1), Transpose(MatMul(hq, a2)))
		alpha := SoftmaxRows(scores)
		mu := MatMul(alpha, hq)
		h := ReLU(MatMul(Add(hg, mu), w))
		logits := MatMul(h, Const(proj))
		return BCEWithLogits(logits, targets)
	})
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-scalar Backward")
		}
	}()
	Backward(Param(mat.New(2, 2)))
}

func TestConstGetsNoGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c := Const(mat.Randn(2, 2, 1, rng))
	p := randVal(rng, 2, 2)
	loss := Sum(Mul(c, p))
	Backward(loss)
	if c.Grad != nil {
		t.Fatalf("const received gradient")
	}
	if p.Grad == nil {
		t.Fatalf("param missing gradient")
	}
	if c.RequiresGrad() || !p.RequiresGrad() {
		t.Fatalf("RequiresGrad flags wrong")
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randVal(rng, 2, 2)
	loss1 := Sum(p)
	Backward(loss1)
	first := p.Grad.Clone()
	loss2 := Sum(p)
	Backward(loss2)
	want := mat.Scale(first, 2)
	if mat.MaxAbsDiff(p.Grad, want) > 1e-12 {
		t.Fatalf("grads did not accumulate: %v vs %v", p.Grad, want)
	}
	p.ZeroGrad()
	if p.Grad.Norm2() != 0 {
		t.Fatalf("ZeroGrad failed")
	}
}

func TestSoftmaxRowsNumericallyStable(t *testing.T) {
	a := Const(mat.FromSlice(1, 3, []float64{1000, 1001, 1002}))
	out := SoftmaxRows(a)
	sum := 0.0
	for _, v := range out.Data.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", out.Data)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax rows sum to %v", sum)
	}
}

func TestGradGatherCols(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randVal(rng, 3, 5)
	proj := mat.Randn(2, 1, 1, rng)
	checkGrad(t, "gathercols", []*Value{a}, func() *Value {
		return Sum(MatMul(GatherCols(a, 1, 3), Const(proj)))
	})
}

func TestGradConcatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randVal(rng, 2, 3)
	b := randVal(rng, 4, 3)
	proj := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "concatrows", []*Value{a, b}, func() *Value {
		return Sum(MatMul(ConcatRows(a, b), Const(proj)))
	})
}

func TestGradLinearCombRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randVal(rng, 4, 3)
	combos := [][]Lin{
		{{Row: 0, W: 1}, {Row: 2, W: 3}},
		{{Row: 1, W: -2}},
		{{Row: 0, W: 1}, {Row: 1, W: 1}, {Row: 3, W: 0.5}},
	}
	proj := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "lincomb", []*Value{a}, func() *Value {
		return Sum(MatMul(LinearCombRows(a, combos), Const(proj)))
	})
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randVal(rng, 3, 2)
	proj := mat.Randn(3, 1, 1, rng)
	checkGrad(t, "transpose", []*Value{a}, func() *Value {
		return Sum(MatMul(Transpose(a), Const(proj)))
	})
}
