// Package autograd implements a small reverse-mode automatic
// differentiation engine over dense matrices. It provides exactly the
// operations needed by the library's graph neural networks: linear maps,
// elementwise nonlinearities, softmax attention, concatenation, weighted
// readouts and binary cross-entropy — each with a hand-written backward
// rule verified against finite differences in the tests.
package autograd

import (
	"fmt"
	"math"

	"github.com/lansearch/lan/internal/mat"
)

// Value is a node in the computation graph: a matrix plus an optional
// gradient and backward rule.
type Value struct {
	Data *mat.Matrix
	Grad *mat.Matrix // allocated lazily; nil until backward touches it

	requiresGrad bool
	parents      []*Value
	backward     func() // propagates v.Grad into parents' Grads
}

// Param wraps a matrix as a trainable leaf (gradients accumulate).
func Param(m *mat.Matrix) *Value {
	return &Value{Data: m, requiresGrad: true}
}

// Const wraps a matrix as a non-trainable leaf.
func Const(m *mat.Matrix) *Value {
	return &Value{Data: m}
}

// RequiresGrad reports whether gradients flow into v.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

func (v *Value) grad() *mat.Matrix {
	if v.Grad == nil {
		v.Grad = mat.New(v.Data.Rows, v.Data.Cols)
	}
	return v.Grad
}

// ZeroGrad clears the gradient of v.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

func newNode(data *mat.Matrix, parents ...*Value) *Value {
	rg := false
	for _, p := range parents {
		if p.requiresGrad {
			rg = true
			break
		}
	}
	return &Value{Data: data, requiresGrad: rg, parents: parents}
}

// Backward runs reverse-mode differentiation from v, which must be a 1x1
// scalar. Gradients accumulate into every reachable Value that requires
// grad.
func Backward(v *Value) {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d", v.Data.Rows, v.Data.Cols))
	}
	order := topo(v)
	v.grad().Set(0, 0, 1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.requiresGrad {
			n.backward()
		}
	}
}

// topo returns the nodes reachable from v in topological order (parents
// before children).
func topo(v *Value) []*Value {
	var order []*Value
	seen := make(map[*Value]bool)
	var visit func(n *Value)
	visit = func(n *Value) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(v)
	return order
}

// MatMul returns a * b.
func MatMul(a, b *Value) *Value {
	out := newNode(mat.Mul(a.Data, b.Data), a, b)
	out.backward = func() {
		if a.requiresGrad {
			tmp := mat.GetScratch(out.Grad.Rows, b.Data.Rows)
			a.grad().AddInPlace(mat.MulTInto(tmp, out.Grad, b.Data)) // dA = dOut * Bᵀ
			mat.PutScratch(tmp)
		}
		if b.requiresGrad {
			tmp := mat.GetScratch(a.Data.Cols, out.Grad.Cols)
			b.grad().AddInPlace(mat.TMulInto(tmp, a.Data, out.Grad)) // dB = Aᵀ * dOut
			mat.PutScratch(tmp)
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	out := newNode(mat.Add(a.Data, b.Data), a, b)
	out.backward = func() {
		if a.requiresGrad {
			a.grad().AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			b.grad().AddInPlace(out.Grad)
		}
	}
	return out
}

// AddRowBroadcast returns a + b where b is a 1xC row added to every row of
// the RxC matrix a.
func AddRowBroadcast(a, b *Value) *Value {
	if b.Data.Rows != 1 || b.Data.Cols != a.Data.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: AddRowBroadcast %dx%d + %dx%d", a.Data.Rows, a.Data.Cols, b.Data.Rows, b.Data.Cols))
	}
	data := a.Data.Clone()
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for j, v := range b.Data.Row(0) {
			row[j] += v
		}
	}
	out := newNode(data, a, b)
	out.backward = func() {
		if a.requiresGrad {
			a.grad().AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			g := b.grad().Row(0)
			for i := 0; i < out.Grad.Rows; i++ {
				for j, v := range out.Grad.Row(i) {
					g[j] += v
				}
			}
		}
	}
	return out
}

// OuterSum returns the RxC matrix out[i][j] = a[i][0] + b[0][j] from a
// column vector a (Rx1) and row vector b (1xC).
func OuterSum(a, b *Value) *Value {
	if a.Data.Cols != 1 || b.Data.Rows != 1 {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: OuterSum wants Rx1 and 1xC, got %dx%d and %dx%d", a.Data.Rows, a.Data.Cols, b.Data.Rows, b.Data.Cols))
	}
	r, c := a.Data.Rows, b.Data.Cols
	data := mat.New(r, c)
	for i := 0; i < r; i++ {
		ai := a.Data.At(i, 0)
		row := data.Row(i)
		for j, bj := range b.Data.Row(0) {
			row[j] = ai + bj
		}
	}
	out := newNode(data, a, b)
	out.backward = func() {
		if a.requiresGrad {
			g := a.grad()
			for i := 0; i < r; i++ {
				s := 0.0
				for _, v := range out.Grad.Row(i) {
					s += v
				}
				g.Data[i] += s
			}
		}
		if b.requiresGrad {
			g := b.grad().Row(0)
			for i := 0; i < r; i++ {
				for j, v := range out.Grad.Row(i) {
					g[j] += v
				}
			}
		}
	}
	return out
}

// Scale returns s * a for a constant s.
func Scale(a *Value, s float64) *Value {
	out := newNode(mat.Scale(a.Data, s), a)
	out.backward = func() {
		if a.requiresGrad {
			a.grad().AddScaledInPlace(out.Grad, s)
		}
	}
	return out
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Value) *Value {
	data := a.Data.Clone()
	for i, v := range data.Data {
		if v < 0 {
			data.Data[i] = 0
		}
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i, v := range a.Data.Data {
			if v > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Value) *Value {
	data := a.Data.Clone()
	for i, v := range data.Data {
		data.Data[i] = 1 / (1 + math.Exp(-v))
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i, s := range out.Data.Data {
			g.Data[i] += out.Grad.Data[i] * s * (1 - s)
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	data := a.Data.Clone()
	for i, v := range data.Data {
		data.Data[i] = math.Tanh(v)
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i, t := range out.Data.Data {
			g.Data[i] += out.Grad.Data[i] * (1 - t*t)
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row.
func SoftmaxRows(a *Value) *Value {
	data := mat.New(a.Data.Rows, a.Data.Cols)
	for i := 0; i < a.Data.Rows; i++ {
		src := a.Data.Row(i)
		dst := data.Row(i)
		max := math.Inf(-1)
		for _, v := range src {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range src {
			e := math.Exp(v - max)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i := 0; i < a.Data.Rows; i++ {
			p := out.Data.Row(i)
			dout := out.Grad.Row(i)
			dot := 0.0
			for j, pj := range p {
				dot += pj * dout[j]
			}
			grow := g.Row(i)
			for j, pj := range p {
				grow[j] += pj * (dout[j] - dot)
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Value) *Value {
	out := newNode(mat.Transpose(a.Data), a)
	out.backward = func() {
		if a.requiresGrad {
			a.grad().AddInPlace(mat.Transpose(out.Grad))
		}
	}
	return out
}

// ConcatCols returns [a | b] with matching row counts.
func ConcatCols(a, b *Value) *Value {
	if a.Data.Rows != b.Data.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: ConcatCols rows %d vs %d", a.Data.Rows, b.Data.Rows))
	}
	r := a.Data.Rows
	ca, cb := a.Data.Cols, b.Data.Cols
	data := mat.New(r, ca+cb)
	for i := 0; i < r; i++ {
		copy(data.Row(i)[:ca], a.Data.Row(i))
		copy(data.Row(i)[ca:], b.Data.Row(i))
	}
	out := newNode(data, a, b)
	out.backward = func() {
		for i := 0; i < r; i++ {
			row := out.Grad.Row(i)
			if a.requiresGrad {
				g := a.grad().Row(i)
				for j := 0; j < ca; j++ {
					g[j] += row[j]
				}
			}
			if b.requiresGrad {
				g := b.grad().Row(i)
				for j := 0; j < cb; j++ {
					g[j] += row[ca+j]
				}
			}
		}
	}
	return out
}

// ConcatRows stacks a on top of b (matching column counts).
func ConcatRows(a, b *Value) *Value {
	if a.Data.Cols != b.Data.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: ConcatRows cols %d vs %d", a.Data.Cols, b.Data.Cols))
	}
	ra, rb := a.Data.Rows, b.Data.Rows
	data := mat.New(ra+rb, a.Data.Cols)
	copy(data.Data[:ra*a.Data.Cols], a.Data.Data)
	copy(data.Data[ra*a.Data.Cols:], b.Data.Data)
	out := newNode(data, a, b)
	out.backward = func() {
		if a.requiresGrad {
			for i := 0; i < ra; i++ {
				g := a.grad().Row(i)
				for j, v := range out.Grad.Row(i) {
					g[j] += v
				}
			}
		}
		if b.requiresGrad {
			for i := 0; i < rb; i++ {
				g := b.grad().Row(i)
				for j, v := range out.Grad.Row(ra + i) {
					g[j] += v
				}
			}
		}
	}
	return out
}

// WeightedMeanRows returns the 1xC row (Σᵢ wᵢ·a[i,:]) / Σᵢ wᵢ for constant
// non-negative weights w, one per row of a. It is the CG readout of
// Definition 3 (weights are group sizes) and, with unit weights, the plain
// mean-pool readout.
func WeightedMeanRows(a *Value, w []float64) *Value {
	if len(w) != a.Data.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: WeightedMeanRows %d weights for %d rows", len(w), a.Data.Rows))
	}
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	if total == 0 {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic("autograd: WeightedMeanRows zero total weight")
	}
	data := mat.New(1, a.Data.Cols)
	for i, wi := range w {
		row := a.Data.Row(i)
		for j, v := range row {
			data.Data[j] += wi * v
		}
	}
	for j := range data.Data {
		data.Data[j] /= total
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		dout := out.Grad.Row(0)
		for i, wi := range w {
			f := wi / total
			grow := g.Row(i)
			for j, v := range dout {
				grow[j] += f * v
			}
		}
	}
	return out
}

// Sum returns the 1x1 sum of all elements of a.
func Sum(a *Value) *Value {
	s := 0.0
	for _, v := range a.Data.Data {
		s += v
	}
	out := newNode(mat.FromSlice(1, 1, []float64{s}), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		a.grad().AddScaledInPlace(onesLike(a.Data), out.Grad.At(0, 0))
	}
	return out
}

// SumSquares returns the 1x1 sum of squared elements (for L2 penalties).
func SumSquares(a *Value) *Value {
	s := 0.0
	for _, v := range a.Data.Data {
		s += v * v
	}
	out := newNode(mat.FromSlice(1, 1, []float64{s}), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		a.grad().AddScaledInPlace(a.Data, 2*out.Grad.At(0, 0))
	}
	return out
}

// Mul returns the elementwise product a ⊙ b.
func Mul(a, b *Value) *Value {
	out := newNode(mat.Hadamard(a.Data, b.Data), a, b)
	out.backward = func() {
		if a.requiresGrad {
			a.grad().AddInPlace(mat.Hadamard(out.Grad, b.Data))
		}
		if b.requiresGrad {
			b.grad().AddInPlace(mat.Hadamard(out.Grad, a.Data))
		}
	}
	return out
}

// GatherCols returns the column slice a[:, from:to).
func GatherCols(a *Value, from, to int) *Value {
	if from < 0 || to > a.Data.Cols || from >= to {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("autograd: GatherCols [%d, %d) of %d cols", from, to, a.Data.Cols))
	}
	w := to - from
	data := mat.New(a.Data.Rows, w)
	for i := 0; i < a.Data.Rows; i++ {
		copy(data.Row(i), a.Data.Row(i)[from:to])
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i := 0; i < a.Data.Rows; i++ {
			grow := g.Row(i)
			for j, v := range out.Grad.Row(i) {
				grow[from+j] += v
			}
		}
	}
	return out
}

// GatherRows returns the matrix whose i-th row is a's row idx[i]. Rows may
// repeat; gradients scatter-add back.
func GatherRows(a *Value, idx []int) *Value {
	data := mat.New(len(idx), a.Data.Cols)
	for i, r := range idx {
		copy(data.Row(i), a.Data.Row(r))
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i, r := range idx {
			grow := g.Row(r)
			for j, v := range out.Grad.Row(i) {
				grow[j] += v
			}
		}
	}
	return out
}

// Lin is one term of a row linear combination: weight W applied to source
// row Row.
type Lin struct {
	Row int
	W   float64
}

// LinearCombRows returns the matrix whose i-th row is the weighted sum
// Σ combos[i][k].W * a[combos[i][k].Row, :]. It is the sparse aggregation
// primitive behind GNN message passing on (compressed) GNN-graphs.
func LinearCombRows(a *Value, combos [][]Lin) *Value {
	data := mat.New(len(combos), a.Data.Cols)
	for i, terms := range combos {
		dst := data.Row(i)
		for _, t := range terms {
			src := a.Data.Row(t.Row)
			for j, v := range src {
				dst[j] += t.W * v
			}
		}
	}
	out := newNode(data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.grad()
		for i, terms := range combos {
			dout := out.Grad.Row(i)
			for _, t := range terms {
				grow := g.Row(t.Row)
				for j, v := range dout {
					grow[j] += t.W * v
				}
			}
		}
	}
	return out
}

// BCEWithLogits returns the 1x1 mean binary cross-entropy between logits
// and constant targets in {0,1}, computed in the numerically stable form
// max(x,0) - x*t + log(1+exp(-|x|)).
func BCEWithLogits(logits *Value, targets *mat.Matrix) *Value {
	logits.Data.SameShapeOrPanic(targets)
	n := float64(len(targets.Data))
	loss := 0.0
	for i, x := range logits.Data.Data {
		t := targets.Data[i]
		loss += math.Max(x, 0) - x*t + math.Log1p(math.Exp(-math.Abs(x)))
	}
	loss /= n
	out := newNode(mat.FromSlice(1, 1, []float64{loss}), logits)
	out.backward = func() {
		if !logits.requiresGrad {
			return
		}
		g := logits.grad()
		scale := out.Grad.At(0, 0) / n
		for i, x := range logits.Data.Data {
			s := 1 / (1 + math.Exp(-x))
			g.Data[i] += scale * (s - targets.Data[i])
		}
	}
	return out
}

// MSE returns the 1x1 mean squared error between pred and constant targets.
func MSE(pred *Value, targets *mat.Matrix) *Value {
	pred.Data.SameShapeOrPanic(targets)
	n := float64(len(targets.Data))
	loss := 0.0
	for i, x := range pred.Data.Data {
		d := x - targets.Data[i]
		loss += d * d
	}
	loss /= n
	out := newNode(mat.FromSlice(1, 1, []float64{loss}), pred)
	out.backward = func() {
		if !pred.requiresGrad {
			return
		}
		g := pred.grad()
		scale := 2 * out.Grad.At(0, 0) / n
		for i, x := range pred.Data.Data {
			g.Data[i] += scale * (x - targets.Data[i])
		}
	}
	return out
}

func onesLike(m *mat.Matrix) *mat.Matrix {
	o := mat.New(m.Rows, m.Cols)
	for i := range o.Data {
		o.Data[i] = 1
	}
	return o
}
