package pg

import (
	"context"
	"sort"

	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/order"
)

// Candidate is an entry of the pool W: a database graph and its distance
// to the query.
type Candidate struct {
	ID   int
	Dist float64
}

// Pool is the candidate priority pool W shared by the baseline routing
// (Algorithm 1) and np_route (Algorithm 2), with the paper's tie-breaking:
// ascending distance; on ties an unexplored node outranks an explored one,
// two explored nodes rank by recency of exploration, and two unexplored
// nodes rank by smaller id. Exploration state is remembered for the whole
// query, so nodes dropped from W stay explored if they return.
type Pool struct {
	items []Candidate
	inW   map[int]bool
	// exploredSeq[id] is the exploration timestamp (1, 2, ...); absent
	// means unexplored.
	exploredSeq map[int]int
	seq         int

	// Survivor tracking (TrackAlive): on indexes with tombstones, the
	// best surviveK live candidates ever added are kept here, immune to
	// Resize evictions. Soft-deleted vertices route like any other and
	// compete for beam slots, so a neighborhood dense with tombstones
	// could otherwise crowd every live answer out of W before the final
	// alive filter runs.
	surviveK  int
	dead      []bool
	survivors []Candidate
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{inW: make(map[int]bool), exploredSeq: make(map[int]int)}
}

// TrackAlive arms survivor tracking for a query against an index with
// tombstones: every live candidate added from now on competes for a slot
// in a k-sized result accumulator that Resize cannot evict from. Must be
// called before the first Add. A nil dead disarms (no overhead, and
// TopKAlive stays bit-identical to TopK).
func (p *Pool) TrackAlive(k int, dead []bool) {
	if dead == nil || k <= 0 {
		return
	}
	p.surviveK, p.dead = k, dead
}

// Add inserts id into W unless already present.
func (p *Pool) Add(id int, dist float64) {
	if p.inW[id] {
		return
	}
	p.inW[id] = true
	p.items = append(p.items, Candidate{ID: id, Dist: dist})
	if p.surviveK > 0 && (id >= len(p.dead) || !p.dead[id]) {
		p.addSurvivor(Candidate{ID: id, Dist: dist})
	}
}

// addSurvivor keeps c in the sorted k-best accumulator of live
// candidates. Candidates evicted from W and re-Added later arrive here
// again with the same distance (the metric is deterministic), so an
// existing entry is left alone.
func (p *Pool) addSurvivor(c Candidate) {
	pos := sort.Search(len(p.survivors), func(i int) bool {
		s := p.survivors[i]
		return !order.ByDistThenID(s.Dist, s.ID, c.Dist, c.ID)
	})
	if pos < len(p.survivors) && p.survivors[pos].ID == c.ID {
		return
	}
	if pos >= p.surviveK {
		return
	}
	if len(p.survivors) < p.surviveK {
		p.survivors = append(p.survivors, Candidate{})
	}
	copy(p.survivors[pos+1:], p.survivors[pos:])
	p.survivors[pos] = c
}

// MarkExplored stamps id with the next exploration timestamp.
func (p *Pool) MarkExplored(id int) {
	p.seq++
	p.exploredSeq[id] = p.seq
}

// Explored reports whether id has ever been explored in this query.
func (p *Pool) Explored(id int) bool {
	_, ok := p.exploredSeq[id]
	return ok
}

// less implements the paper's resize priority.
func (p *Pool) less(a, b Candidate) bool {
	if c := order.Cmp(a.Dist, b.Dist); c != 0 {
		return c < 0
	}
	sa, ea := p.exploredSeq[a.ID]
	sb, eb := p.exploredSeq[b.ID]
	switch {
	case ea != eb:
		return !ea // unexplored first
	case ea && eb:
		return sa > sb // more recently explored first
	default:
		return a.ID < b.ID
	}
}

// Resize keeps the b highest-priority candidates. less is a strict total
// order (distance ties break on exploration state and then id), so the
// kept set is unique and a partial selection of the b best is equivalent
// to the full sort this used to do — Resize runs after every exploration
// step, and no reader depends on the internal item order (Best,
// NextUnexplored and TopK impose their own).
//
//lan:hotpath
func (p *Pool) Resize(b int) {
	if len(p.items) <= b {
		return
	}
	if b > 0 {
		p.selectBest(b)
	}
	for _, c := range p.items[b:] {
		delete(p.inW, c.ID)
	}
	p.items = p.items[:b]
}

// selectBest partitions items so positions [0, b) hold the b best under
// less, via Hoare-partition quickselect (expected linear time, no
// allocation).
func (p *Pool) selectBest(b int) {
	lo, hi := 0, len(p.items)-1
	for lo < hi {
		pivot := p.items[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for p.less(p.items[i], pivot) {
				i++
			}
			for p.less(pivot, p.items[j]) {
				j--
			}
			if i <= j {
				p.items[i], p.items[j] = p.items[j], p.items[i]
				i++
				j--
			}
		}
		// items[lo..j] <= pivot <= items[i..hi]; narrow to the side that
		// still straddles the boundary b.
		switch {
		case b <= j:
			hi = j
		case b >= i:
			lo = i
		default:
			return
		}
	}
}

// Best returns the candidate with the smallest distance (ties by id)
// regardless of exploration state, or ok=false on an empty pool.
func (p *Pool) Best() (Candidate, bool) {
	best := Candidate{}
	found := false
	for _, c := range p.items {
		if !found || order.ByDistThenID(c.Dist, c.ID, best.Dist, best.ID) {
			best = c
			found = true
		}
	}
	return best, found
}

// NextUnexplored returns the unexplored candidate with the smallest
// distance (ties by id), or ok=false.
func (p *Pool) NextUnexplored() (Candidate, bool) {
	best := Candidate{}
	found := false
	for _, c := range p.items {
		if p.Explored(c.ID) {
			continue
		}
		if !found || order.ByDistThenID(c.Dist, c.ID, best.Dist, best.ID) {
			best = c
			found = true
		}
	}
	return best, found
}

// NextUnexploredWithin is NextUnexplored restricted to distance <= gamma.
func (p *Pool) NextUnexploredWithin(gamma float64) (Candidate, bool) {
	c, ok := p.NextUnexplored()
	if !ok || c.Dist > gamma {
		return Candidate{}, false
	}
	return c, true
}

// AllExplored reports whether every candidate in W has been explored.
func (p *Pool) AllExplored() bool {
	_, ok := p.NextUnexplored()
	return !ok
}

// TopK returns the k best candidates by (distance, id).
func (p *Pool) TopK(k int) []Result {
	return topK(p.items, k)
}

// TopKAlive is TopK restricted to nodes not marked in dead: soft-deleted
// vertices route like any other but never surface as answers. A nil dead
// filters nothing, so the result is bit-identical to TopK on immutable
// indexes. When TrackAlive armed survivor tracking, the answer comes from
// the accumulator, which has seen every live candidate the query ever
// evaluated — including ones tombstone-heavy neighborhoods pushed out of
// the beam.
func (p *Pool) TopKAlive(k int, dead []bool) []Result {
	if dead == nil {
		return topK(p.items, k)
	}
	if p.surviveK > 0 {
		return topK(p.survivors, k)
	}
	alive := make([]Candidate, 0, len(p.items))
	for _, c := range p.items {
		if c.ID < len(dead) && dead[c.ID] {
			continue
		}
		alive = append(alive, c)
	}
	return topK(alive, k)
}

// BeamSearch is Algorithm 1: the baseline greedy routing on the proximity
// graph. It starts at entry, explores the unexplored pool node closest to
// the query, computes distances for all its PG neighbors, and keeps the
// best b candidates, stopping when every pool member is explored. It
// returns the k best along with search statistics.
func BeamSearch(p *PG, c *DistCache, entry, k, b int) ([]Result, Stats) {
	res, stats, _ := BeamSearchContext(context.Background(), p, c, entry, k, b)
	return res, stats
}

// BeamSearchContext is BeamSearch with cancellation: the context is checked
// between distance computations (the expensive unit of work), so an expired
// deadline stops the routing within one GED call. On cancellation it returns
// ctx.Err() along with the statistics accumulated so far.
func BeamSearchContext(ctx context.Context, p *PG, c *DistCache, entry, k, b int) ([]Result, Stats, error) {
	return BeamSearchPooled(ctx, p, c, entry, k, b, nil)
}

// BeamSearchPooled is BeamSearchContext with each expansion's neighbor
// distances prefetched through pool. All of an expanded node's neighbors
// are needed before the pool resize, so there is no early exit to preserve:
// the routing trajectory, results and NDC are identical to the sequential
// run for any pool (see DistCache.Prefetch). With a non-nil pool,
// cancellation is checked per expansion rather than per distance.
func BeamSearchPooled(ctx context.Context, p *PG, c *DistCache, entry, k, b int, pool *WorkerPool) ([]Result, Stats, error) {
	trace := obs.From(ctx)
	w := NewPool()
	w.TrackAlive(k, p.Dead)
	w.Add(entry, c.Dist(entry))
	trace.SetEntry(entry)
	explored := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, Stats{NDC: c.NDC(), Explored: explored}, err
		}
		cur, ok := w.NextUnexplored()
		if !ok {
			break
		}
		ns := p.Neighbors(cur.ID)
		ndcBefore := c.NDC()
		if pool != nil {
			c.Prefetch(ns, pool)
			for _, nb := range ns {
				w.Add(nb, c.Dist(nb))
			}
		} else {
			for _, nb := range ns {
				if err := ctx.Err(); err != nil {
					return nil, Stats{NDC: c.NDC(), Explored: explored}, err
				}
				w.Add(nb, c.Dist(nb))
			}
		}
		w.MarkExplored(cur.ID)
		explored++
		// Algorithm 1 opens every neighbor, so ranked == opened-candidates;
		// -1 marks "no pruning threshold in force".
		trace.Step(cur.ID, cur.Dist, len(ns), c.NDC()-ndcBefore, -1, c.NDC())
		w.Resize(b)
	}
	return w.TopKAlive(k, p.Dead), Stats{NDC: c.NDC(), Explored: explored}, nil
}

// searchLayer is the standard ef-search used during index construction:
// greedy best-first expansion bounded by an ef-sized result set, over an
// arbitrary adjacency function. When pool is non-nil the unvisited
// neighbors of each expanded node are prefetched concurrently; the merge
// back into the cache is ordered, so the search trajectory — and hence
// the built index — is identical to the sequential run.
func searchLayer(c *DistCache, neighbors func(int) []int, entry int, ef int, pool *WorkerPool) []Candidate {
	visited := map[int]bool{entry: true}
	entryCand := Candidate{ID: entry, Dist: c.Dist(entry)}
	cands := []Candidate{entryCand}   // frontier, ascending
	results := []Candidate{entryCand} // best ef, ascending
	var batch []int
	for len(cands) > 0 {
		cur := cands[0]
		cands = cands[1:]
		worst := results[len(results)-1]
		if cur.Dist > worst.Dist && len(results) >= ef {
			break
		}
		batch = batch[:0]
		for _, nb := range neighbors(cur.ID) {
			if !visited[nb] {
				batch = append(batch, nb)
			}
		}
		c.Prefetch(batch, pool)
		for _, nb := range batch {
			visited[nb] = true
			d := c.Dist(nb)
			if len(results) < ef || d < results[len(results)-1].Dist {
				nc := Candidate{ID: nb, Dist: d}
				cands = insertAsc(cands, nc)
				results = insertAsc(results, nc)
				if len(results) > ef {
					results = results[:ef]
				}
			}
		}
	}
	return results
}

func insertAsc(s []Candidate, c Candidate) []Candidate {
	i := sort.Search(len(s), func(i int) bool {
		// The first element strictly after c in the canonical order.
		return order.ByDistThenID(c.Dist, c.ID, s[i].Dist, s[i].ID)
	})
	s = append(s, Candidate{})
	copy(s[i+1:], s[i:])
	s[i] = c
	return s
}
