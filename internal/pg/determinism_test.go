package pg

import (
	"reflect"
	"testing"

	"github.com/lansearch/lan/ged"
)

// TestParallelBuildBitIdentical pins the tentpole guarantee: a build with
// a worker pool produces exactly the same HNSW — base adjacency, upper
// layers, level assignment, entry point — as the sequential build, for
// several seeds. Run under -race this also exercises the prefetch fan-out
// for data races (the test is -short friendly so race CI covers it).
func TestParallelBuildBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		db := clusteredDB(seed, 6, 6)
		cfg := BuildConfig{M: 4, EfConstruction: 12, Seed: seed}

		cfg.Workers = 1
		seq, err := Build(db, cfg)
		if err != nil {
			t.Fatalf("seed %d sequential Build: %v", seed, err)
		}
		cfg.Workers = 4
		par, err := Build(db, cfg)
		if err != nil {
			t.Fatalf("seed %d parallel Build: %v", seed, err)
		}

		if !reflect.DeepEqual(seq.PG.Adj, par.PG.Adj) {
			t.Errorf("seed %d: base-layer adjacency differs between Workers=1 and Workers=4", seed)
		}
		if !reflect.DeepEqual(seq.Upper, par.Upper) {
			t.Errorf("seed %d: upper layers differ between Workers=1 and Workers=4", seed)
		}
		if !reflect.DeepEqual(seq.Level, par.Level) {
			t.Errorf("seed %d: level assignment differs between Workers=1 and Workers=4", seed)
		}
		if seq.Entry != par.Entry {
			t.Errorf("seed %d: entry %d (Workers=1) vs %d (Workers=4)", seed, seq.Entry, par.Entry)
		}
	}
}

// TestPrefetchMatchesSequentialNDC checks that Prefetch leaves the cache
// in exactly the state sequential Dist calls would: same memo, same NDC,
// including when the batch holds duplicates and already-known ids.
func TestPrefetchMatchesSequentialNDC(t *testing.T) {
	db := clusteredDB(9, 3, 4)
	metric := ged.MetricFunc(ged.Hungarian)
	seqCache := NewDistCache(metric, db, db[0])
	for _, id := range []int{1, 2, 3, 1, 2, 5} {
		seqCache.Dist(id)
	}

	pool := NewWorkerPool(4)
	defer pool.Close()
	parCache := NewDistCache(metric, db, db[0])
	parCache.Dist(1) // pre-known id must be skipped by the prefetch
	parCache.Prefetch([]int{1, 2, 3, 1, 2, 5}, pool)

	if seqCache.NDC() != parCache.NDC() {
		t.Fatalf("NDC %d sequential vs %d prefetched", seqCache.NDC(), parCache.NDC())
	}
	for _, id := range []int{1, 2, 3, 5} {
		if !parCache.Known(id) {
			t.Fatalf("id %d not memoized after Prefetch", id)
		}
		if seqCache.Dist(id) != parCache.Dist(id) {
			t.Fatalf("distance to %d differs", id)
		}
	}
}
