// Package pg implements proximity-graph indexes over a graph database in
// the GED metric space: a flat navigable-small-world graph (the PG the
// paper routes on), the hierarchical HNSW baseline with its descent-based
// initial node selection, and the baseline greedy beam routing of
// Algorithm 1 with the paper's exact tie-breaking rules.
package pg

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/order"
)

// PG is a flat proximity graph: node i is db[i]; Adj[i] lists its
// neighbors sorted by id.
type PG struct {
	DB  graph.Database
	Adj [][]int
	// Dead marks soft-deleted nodes (validity-epoch tombstones of the
	// mutable index). Dead nodes stay in the adjacency so routing can
	// travel through them, but they are filtered out of results. A nil
	// Dead — every index built by Build — filters nothing.
	Dead []bool
}

// Alive reports whether node id may appear in results. Nodes beyond the
// Dead slice (inserted after the tombstone snapshot was taken) are alive.
func (p *PG) Alive(id int) bool {
	return id >= len(p.Dead) || !p.Dead[id]
}

// Neighbors returns the PG neighbors of node id.
func (p *PG) Neighbors(id int) []int { return p.Adj[id] }

// Len returns the number of indexed graphs.
func (p *PG) Len() int { return len(p.DB) }

// Validate checks index invariants: symmetric sorted adjacency within
// range.
func (p *PG) Validate() error {
	if len(p.Adj) != len(p.DB) {
		return fmt.Errorf("pg: %d adjacency lists for %d graphs", len(p.Adj), len(p.DB))
	}
	for u, ns := range p.Adj {
		for i, v := range ns {
			if v < 0 || v >= len(p.DB) || v == u {
				return fmt.Errorf("pg: node %d has bad neighbor %d", u, v)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("pg: adjacency of %d not strictly sorted", u)
			}
			if !containsSorted(p.Adj[v], u) {
				return fmt.Errorf("pg: edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	return nil
}

func containsSorted(ns []int, v int) bool {
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// DistCache evaluates distances from one query to database graphs exactly
// once, counting the number of distance computations (NDC). A fresh cache
// is used per query; it is not safe for concurrent use. Candidate graphs
// are fetched through Store, so the same search code runs against the
// RAM-resident database or an mmap-backed snapshot.
type DistCache struct {
	Metric ged.Metric
	Q      *graph.Graph
	Store  GraphStore

	memo    map[int]float64
	ndc     int
	hits    int
	scratch []*graph.Graph // reused FetchGraphs destination
}

// NewDistCache returns a cache for distances between q and members of db.
func NewDistCache(metric ged.Metric, db graph.Database, q *graph.Graph) *DistCache {
	return NewDistCacheStore(metric, NewRAMStore(db), q)
}

// NewDistCacheStore is NewDistCache over an arbitrary GraphStore.
func NewDistCacheStore(metric ged.Metric, store GraphStore, q *graph.Graph) *DistCache {
	return &DistCache{Metric: metric, Q: q, Store: store, memo: make(map[int]float64)}
}

// GraphAt fetches the database graph with the given id through the store.
func (c *DistCache) GraphAt(id int) *graph.Graph { return c.Store.Graph(id) }

// Dist returns d(Q, db[id]), computing it at most once.
func (c *DistCache) Dist(id int) float64 {
	if d, ok := c.memo[id]; ok {
		c.hits++
		return d
	}
	d := c.Metric.Distance(c.Store.Graph(id), c.Q)
	c.memo[id] = d
	c.ndc++
	return d
}

// Prefetch computes the distances to ids that are not yet memoized,
// fetching the pending graphs from the store in one batch and fanning the
// GED evaluations across pool (when non-nil), then merging the results
// into the memo in the ids' order. Because Dist is a pure function of
// (Q, id), prefetching then reading is indistinguishable from sequential
// evaluation: the memo contents and the NDC count come out identical. The
// cache itself stays single-threaded — only the metric calls run
// concurrently, over graphs the single-threaded batch fetch already
// materialized.
func (c *DistCache) Prefetch(ids []int, pool *WorkerPool) {
	var pending []int
	for _, id := range ids {
		if _, ok := c.memo[id]; ok {
			continue
		}
		dup := false
		for _, p := range pending {
			if p == id {
				dup = true
				break
			}
		}
		if !dup {
			pending = append(pending, id)
		}
	}
	if len(pending) == 0 {
		return
	}
	graphs := c.Store.FetchGraphs(pending, c.scratch[:0])
	c.scratch = graphs[:0]
	if pool == nil || len(pending) < 2 {
		for i, id := range pending {
			d := c.Metric.Distance(graphs[i], c.Q)
			c.memo[id] = d
			c.ndc++
		}
		return
	}
	out := make([]float64, len(pending))
	var wg sync.WaitGroup
	wg.Add(len(pending))
	for i := range pending {
		i := i
		pool.submit(func() {
			defer wg.Done()
			out[i] = c.Metric.Distance(graphs[i], c.Q)
		})
	}
	wg.Wait()
	for i, id := range pending {
		c.memo[id] = out[i]
		c.ndc++
	}
}

// Known reports whether the distance to id has already been computed.
func (c *DistCache) Known(id int) bool {
	_, ok := c.memo[id]
	return ok
}

// Lookup returns the memoized distance to id without computing, counting
// or hit-metering anything. Observability code (trace recording) reads
// distances through it so that tracing cannot perturb NDC or the memo's
// hit accounting.
func (c *DistCache) Lookup(id int) (float64, bool) {
	d, ok := c.memo[id]
	return d, ok
}

// NDC returns the number of distance computations performed so far.
func (c *DistCache) NDC() int { return c.ndc }

// Hits returns the number of Dist calls served from the memo.
func (c *DistCache) Hits() int { return c.hits }

// Result is one k-ANN answer: a database graph id and its distance to the
// query.
type Result struct {
	ID   int
	Dist float64
}

// Stats aggregates the per-query search effort.
type Stats struct {
	// NDC is the number of GED computations.
	NDC int
	// Explored is the number of PG nodes whose neighborhood was (at least
	// partially) expanded.
	Explored int
}

// topK converts a candidate pool into the k best results (ascending
// distance, ties by id).
func topK(cands []Candidate, k int) []Result {
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		return order.ByDistThenID(sorted[i].Dist, sorted[i].ID, sorted[j].Dist, sorted[j].ID)
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	out := make([]Result, len(sorted))
	for i, c := range sorted {
		out[i] = Result{ID: c.ID, Dist: c.Dist}
	}
	return out
}
