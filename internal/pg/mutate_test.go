package pg

import (
	"testing"

	"github.com/lansearch/lan/graph"
)

// incrementalIndex builds an HNSW over the first built of db's graphs and
// wires the rest in through the Mutator, returning the index and the id
// the incremental phase started at.
func incrementalIndex(t *testing.T, db graph.Database, built int) (*HNSW, int) {
	t.Helper()
	h, err := Build(db[:built], BuildConfig{M: 6, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	h.PG.DB = db // the database grows first; the graph catches up per insert
	mu := NewMutator(h, nil, 6, 16)
	for id := built; id < len(db); id++ {
		mu.Insert(id, DeterministicLevel(1, id, 6))
	}
	return h, built
}

func TestDeterministicLevelProperties(t *testing.T) {
	// Same (seed, id, m) always gives the same level, independent of call
	// order or history.
	for _, id := range []int{0, 1, 7, 1000, 1 << 20} {
		a := DeterministicLevel(42, id, 8)
		b := DeterministicLevel(42, id, 8)
		if a != b || a < 0 {
			t.Fatalf("id %d: levels %d, %d", id, a, b)
		}
	}
	// The distribution matches batch construction's exponential: most ids
	// land on the base layer, and high levels are rare.
	counts := map[int]int{}
	for id := 0; id < 4096; id++ {
		counts[DeterministicLevel(7, id, 8)]++
	}
	if frac := float64(counts[0]) / 4096; frac < 0.7 {
		t.Fatalf("level-0 fraction = %.2f; want the exponential's bulk", frac)
	}
	if len(counts) < 2 {
		t.Fatal("no id ever left the base layer")
	}
	// Different seeds reshuffle the hierarchy.
	same := 0
	for id := 0; id < 256; id++ {
		if DeterministicLevel(1, id, 8) == DeterministicLevel(2, id, 8) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("levels identical across seeds")
	}
}

func TestMutatorInsertPreservesInvariants(t *testing.T) {
	db := clusteredDB(3, 8, 8)
	h, _ := incrementalIndex(t, db, len(db)/2)

	if err := h.PG.Validate(); err != nil {
		t.Fatalf("Validate after incremental inserts: %v", err)
	}
	if h.PG.Len() != len(db) {
		t.Fatalf("Len = %d; want %d", h.PG.Len(), len(db))
	}
	// Degree caps hold for incremental insertions exactly as for batch.
	for u, ns := range h.PG.Adj {
		if len(ns) > 12 {
			t.Fatalf("node %d degree %d > 2M", u, len(ns))
		}
		if len(ns) == 0 {
			t.Fatalf("node %d wired with no edges", u)
		}
	}
	for l, up := range h.Upper {
		for u, ns := range up {
			if len(ns) > 6 {
				t.Fatalf("layer %d node %d degree %d > M", l+1, u, len(ns))
			}
		}
	}
	// The base layer stays one connected component: routing can reach
	// every inserted node.
	seen := make([]bool, len(db))
	stack := []int{h.Entry}
	seen[h.Entry] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range h.PG.Adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != len(db) {
		t.Fatalf("layer 0 has %d reachable of %d after inserts", count, len(db))
	}
}

func TestMutatorCopyOnWrite(t *testing.T) {
	db := clusteredDB(5, 6, 8)
	built := len(db) - 8
	h, err := Build(db[:built], BuildConfig{M: 6, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.PG.DB = db
	mu := NewMutator(h, nil, 6, 16)

	// A reader's snapshot: the outer slice copied, the inner neighbor
	// slices shared. COW requires those inner slices to stay frozen.
	pinned := make([][]int, built)
	copy(pinned, h.PG.Adj)
	want := make([][]int, built)
	for u, ns := range pinned {
		want[u] = append([]int(nil), ns...)
	}

	for id := built; id < len(db); id++ {
		mu.Insert(id, DeterministicLevel(1, id, 6))
	}
	for u := 0; u < built/2; u++ {
		mu.Reselect(u)
	}
	mu.Detach(built, func(v int) bool { return v != built })

	for u := range pinned {
		if len(pinned[u]) != len(want[u]) {
			t.Fatalf("node %d: pinned slice header changed length", u)
		}
		for i := range pinned[u] {
			if pinned[u][i] != want[u][i] {
				t.Fatalf("node %d: pinned neighbors edited in place (%v != %v)", u, pinned[u], want[u])
			}
		}
	}
}

func TestMutatorDetachBridgesAndStrips(t *testing.T) {
	db := clusteredDB(9, 6, 8)
	h, _ := incrementalIndex(t, db, len(db)/2)

	u := h.Entry // hardest case: detach the entry vertex
	liveNeighbors := append([]int(nil), h.PG.Adj[u]...)
	mu := &Mutator{H: h, EfConstruction: 16}
	mu.Detach(u, func(v int) bool { return v != u })

	if len(h.PG.Adj[u]) != 0 {
		t.Fatalf("detached node keeps base edges: %v", h.PG.Adj[u])
	}
	for l, up := range h.Upper {
		if _, ok := up[u]; ok {
			t.Fatalf("detached node still on layer %d", l+1)
		}
		for v, ns := range up {
			for _, w := range ns {
				if w == u {
					t.Fatalf("layer %d node %d still points at detached %d", l+1, v, u)
				}
			}
		}
	}
	for v, ns := range h.PG.Adj {
		for _, w := range ns {
			if w == u {
				t.Fatalf("node %d still points at detached %d", v, u)
			}
		}
	}
	if err := h.PG.Validate(); err != nil {
		t.Fatalf("Validate after Detach: %v", err)
	}
	// The ex-neighbors were bridged pairwise (subject to degree caps), so
	// none of them is stranded.
	for _, v := range liveNeighbors {
		if len(h.PG.Adj[v]) == 0 {
			t.Fatalf("ex-neighbor %d stranded by Detach", v)
		}
	}
}

func TestMutatorReselectKeepsEveryoneConnected(t *testing.T) {
	db := clusteredDB(11, 6, 8)
	h, _ := incrementalIndex(t, db, len(db)/2)

	ndc := 0
	for u := range h.PG.Adj {
		ndc += (&Mutator{H: h, EfConstruction: 16}).Reselect(u)
	}
	if ndc <= 0 {
		t.Fatal("Reselect charged no distance computations")
	}
	if err := h.PG.Validate(); err != nil {
		t.Fatalf("Validate after Reselect sweep: %v", err)
	}
	for u, ns := range h.PG.Adj {
		if len(ns) == 0 {
			t.Fatalf("node %d stranded by Reselect (connectivity guard failed)", u)
		}
		if len(ns) > 12 {
			t.Fatalf("node %d degree %d > 2M after Reselect", u, len(ns))
		}
	}
}

func TestTrackAliveSurvivesBeamEviction(t *testing.T) {
	// A neighborhood dense with tombstones can fill the whole beam with
	// dead candidates; live answers evicted by Resize must still surface.
	dead := make([]bool, 10)
	for id := 0; id < 8; id++ {
		dead[id] = true // 0..7 tombstoned, 8 and 9 live
	}
	p := NewPool()
	p.TrackAlive(2, dead)
	p.Add(8, 50)
	p.Add(9, 60)
	for id := 0; id < 8; id++ {
		p.Add(id, float64(id)) // much closer, all dead
	}
	p.Resize(4) // beam now holds only dead candidates
	got := p.TopKAlive(2, dead)
	if len(got) != 2 || got[0] != (Result{ID: 8, Dist: 50}) || got[1] != (Result{ID: 9, Dist: 60}) {
		t.Fatalf("TopKAlive after eviction = %+v; want live 8, 9", got)
	}
	// Re-adding an evicted live candidate must not duplicate it.
	p.Add(8, 50)
	if got := p.TopKAlive(2, dead); len(got) != 2 || got[0].ID != 8 || got[1].ID != 9 {
		t.Fatalf("TopKAlive after re-add = %+v", got)
	}
}

func TestTopKAliveFiltersTombstones(t *testing.T) {
	p := NewPool()
	for id, d := range []float64{5, 1, 3, 2, 4} {
		p.Add(id, d)
	}
	dead := []bool{false, true, false, false, false} // kill the closest
	got := p.TopKAlive(2, dead)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 2 {
		t.Fatalf("TopKAlive = %+v; want ids 3, 2", got)
	}
	// nil dead must be byte-for-byte the plain top-k path.
	plain := p.TopKAlive(2, nil)
	want := topK(p.items, 2)
	if len(plain) != len(want) {
		t.Fatalf("nil-dead TopKAlive diverges from TopK: %+v vs %+v", plain, want)
	}
	for i := range want {
		if plain[i] != want[i] {
			t.Fatalf("nil-dead TopKAlive diverges at %d: %+v vs %+v", i, plain[i], want[i])
		}
	}
}
