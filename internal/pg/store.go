package pg

import "github.com/lansearch/lan/graph"

// GraphStore abstracts "fetch these candidate graphs" so the search and
// routing layers can run against either the RAM-resident database or an
// mmap-backed snapshot. Implementations must be safe for concurrent
// readers (one search runs per goroutine, but snapshot views share a
// store) and must return graphs that are never mutated by the store
// afterwards.
//
// FetchGraphs is the batched form: it appends the graphs for ids to dst
// and returns the extended slice, letting a disk-backed store translate
// one candidate batch into segment-at-a-time reads instead of per-graph
// pointer chasing. Callers own dst and reuse it across batches to keep
// the hot path allocation-free.
type GraphStore interface {
	// Len returns the number of stored graphs.
	Len() int
	// Graph returns the graph with the given id (ids are dense, 0-based).
	Graph(id int) *graph.Graph
	// FetchGraphs appends the graphs for ids to dst, in order.
	FetchGraphs(ids []int, dst []*graph.Graph) []*graph.Graph
}

// RAMStore is the heap-resident GraphStore: fetches are slice lookups
// into the in-memory database.
type RAMStore struct {
	DB graph.Database
}

// NewRAMStore wraps an in-memory database as a GraphStore.
func NewRAMStore(db graph.Database) RAMStore { return RAMStore{DB: db} }

// Len implements GraphStore.
func (s RAMStore) Len() int { return len(s.DB) }

// Graph implements GraphStore.
func (s RAMStore) Graph(id int) *graph.Graph { return s.DB[id] }

// FetchGraphs implements GraphStore.
func (s RAMStore) FetchGraphs(ids []int, dst []*graph.Graph) []*graph.Graph {
	for _, id := range ids {
		dst = append(dst, s.DB[id])
	}
	return dst
}
