package pg

import "sync"

// WorkerPool is a fixed set of goroutines that evaluate closures for the
// duration of one index build or one query. Spawning goroutines per
// candidate batch would churn the scheduler at every insertion or batch
// opening; the pool amortizes that over the whole unit of work.
//
// A nil *WorkerPool is valid everywhere one is accepted and means
// "evaluate sequentially on the calling goroutine".
type WorkerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewWorkerPool starts n worker goroutines. For n <= 1 it returns nil —
// the sequential pool — so callers can plumb a worker count straight
// through without special-casing.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 1 {
		return nil
	}
	p := &WorkerPool{jobs: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues one job; it blocks until a worker is free to take it.
func (p *WorkerPool) submit(job func()) { p.jobs <- job }

// Close stops the workers after the queued jobs drain. Closing a nil pool
// is a no-op.
func (p *WorkerPool) Close() {
	if p == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
