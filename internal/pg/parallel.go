package pg

import "sync"

// workerPool is a fixed set of goroutines that evaluate closures for the
// duration of one index build. Spawning goroutines per candidate batch
// would churn the scheduler at every insertion; the pool amortizes that
// over the whole build.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// newWorkerPool starts n worker goroutines.
func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues one job; it blocks until a worker is free to take it.
func (p *workerPool) submit(job func()) { p.jobs <- job }

// close stops the workers after the queued jobs drain.
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
