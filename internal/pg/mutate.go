package pg

import (
	"context"
	"math"
	"sort"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/order"
)

// Mutator applies incremental writes to a built HNSW under a
// copy-on-write discipline: every edge edit builds a fresh neighbor
// slice and assigns it into the writer-owned adjacency, never touching
// a slice in place. Published snapshots hold their own copies of the
// outer Adj slice (and cloned Upper maps), so a reader that captured
// the index before an edit keeps seeing the exact pre-edit neighbor
// lists — the mutable package's epoch-pinned reads rely on this.
//
// A Mutator is single-writer: the owning index serializes calls under
// its write lock. It shares the HNSW's memoizing build metric, so
// repeated optimizer passes over the same region get cheaper over time.
type Mutator struct {
	H *HNSW
	// EfConstruction is the candidate-beam width for incremental inserts
	// (same role as BuildConfig.EfConstruction).
	EfConstruction int
	// Pool, when non-nil, fans candidate-beam distance prefetches out
	// (DistCache.Prefetch); edits are bit-identical for any pool.
	Pool *WorkerPool
}

// NewMutator prepares h for incremental mutation. Indexes restored by
// core.Load carry no build metric or degree parameter (batch
// construction is over), so the mutator re-arms them: metric and m must
// match the values the index was built with for edits to preserve its
// geometry.
func NewMutator(h *HNSW, metric ged.Metric, m, efConstruction int) *Mutator {
	if h.buildMetric == nil {
		if metric == nil {
			metric = ged.MetricFunc(ged.Hungarian)
		}
		h.buildMetric = ged.NewCounter(metric) // memoizes by (ID, ID)
	}
	if h.m <= 0 {
		h.m = m
	}
	if efConstruction <= 0 {
		efConstruction = 2 * h.m
	}
	return &Mutator{H: h, EfConstruction: efConstruction}
}

// DeterministicLevel derives the HNSW level of node id from (seed, id)
// via a splitmix-style hash feeding the same exponential distribution
// batch construction draws from (mL = 1/ln m). Hashing instead of
// consuming a shared RNG keeps an insert's level independent of every
// other write, so replaying the same inserts always rebuilds the same
// hierarchy.
func DeterministicLevel(seed int64, id, m int) int {
	x := uint64(seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53) // uniform [0, 1)
	mL := 1 / math.Log(float64(m))
	return int(-math.Log(1-u) * mL)
}

// Insert wires node id (its graph already appended to the database, its
// level already chosen) into every layer, mirroring batch insertion:
// greedy descent above the node's level, then per-layer candidate-beam
// search, diversity selection and symmetric connection. Write
// application carries no context on purpose: it is atomic by design —
// cancelling mid-edit would leave a half-wired vertex — and its cost is
// bounded by the beam width, not by a query's unbounded search.
func (mu *Mutator) Insert(id, level int) {
	h := mu.H
	for len(h.PG.Adj) <= id {
		h.PG.Adj = append(h.PG.Adj, nil)
		h.Level = append(h.Level, 0)
	}
	h.Level[id] = level
	for len(h.Upper) < level {
		h.Upper = append(h.Upper, make(map[int][]int))
	}
	if id == 0 {
		h.Entry = 0
		return
	}

	c := NewDistCache(h.buildMetric, h.PG.DB, h.PG.DB[id])
	ep := h.Entry
	top := h.Level[h.Entry]
	for l := top; l > level; l-- {
		ep = h.greedyStep(context.Background(), l, ep, c, mu.Pool) //lint:allow ctxprop write application is atomic by design; cancelling mid-edit would leave a half-wired vertex
	}
	start := level
	if start > top {
		start = top
	}
	for l := start; l >= 0; l-- {
		results := searchLayer(c, h.layerNeighbors(l), ep, mu.EfConstruction, mu.Pool)
		for _, r := range h.selectNeighbors(c, results, h.maxDegree(l)) {
			mu.connect(l, id, r.ID)
		}
		if len(results) > 0 {
			ep = results[0].ID
		}
	}
	if level > h.Level[h.Entry] {
		h.Entry = id
	}
}

// Reselect re-runs neighbor selection for node u over its current
// neighbors plus their neighbors (the 2-hop candidate set), rewiring
// the base layer to the diverse subset — the continuous edge
// optimization that repairs neighborhoods churned by inserts and
// deletes. It returns the number of distance computations charged, so
// the caller can meter a pass against its work budget. Like Insert it
// carries no context: a pass is atomic and budget-bounded.
func (mu *Mutator) Reselect(u int) int {
	h := mu.H
	if u < 0 || u >= len(h.PG.Adj) {
		return 0
	}
	current := h.PG.Adj[u]
	if len(current) == 0 {
		return 0
	}
	seen := map[int]bool{u: true}
	var candIDs []int
	add := func(v int) {
		if !seen[v] {
			seen[v] = true
			candIDs = append(candIDs, v)
		}
	}
	for _, v := range current {
		add(v)
	}
	for _, v := range current {
		for _, w := range h.PG.Adj[v] {
			add(w)
		}
	}
	c := NewDistCache(h.buildMetric, h.PG.DB, h.PG.DB[u])
	c.Prefetch(candIDs, mu.Pool)
	cands := make([]Candidate, len(candIDs))
	for i, v := range candIDs {
		cands[i] = Candidate{ID: v, Dist: c.Dist(v)}
	}
	sort.Slice(cands, func(i, j int) bool {
		return order.ByDistThenID(cands[i].Dist, cands[i].ID, cands[j].Dist, cands[j].ID)
	})
	selected := h.selectNeighbors(c, cands, h.maxDegree(0))
	want := make(map[int]bool, len(selected))
	for _, s := range selected {
		want[s.ID] = true
	}
	for _, v := range current {
		if want[v] {
			continue
		}
		// Dropping (u, v) must not strand v: keep the edge when it is v's
		// last one (connectivity outranks diversity).
		if len(h.PG.Adj[v]) <= 1 {
			continue
		}
		mu.removeDirected(0, u, v)
		mu.removeDirected(0, v, u)
	}
	for _, s := range selected {
		mu.connect(0, u, s.ID)
	}
	return c.NDC()
}

// Detach disconnects node u (a tombstoned vertex) from every layer:
// its live neighbors are pairwise bridged on the base layer so routes
// that traveled through u survive, then all of u's edges are removed.
// The node remains in the database as an edgeless husk — ids never
// shift. Like Insert it carries no context: detaching is atomic and its
// cost is bounded by u's degree.
func (mu *Mutator) Detach(u int, alive func(int) bool) {
	h := mu.H
	if u < 0 || u >= len(h.PG.Adj) {
		return
	}
	top := h.Level[u]
	if top > h.MaxLevel() {
		top = h.MaxLevel()
	}
	for l := top; l >= 0; l-- {
		ns := mu.layerAdj(l, u)
		if l == 0 {
			var live []int
			for _, v := range ns {
				if alive(v) {
					live = append(live, v)
				}
			}
			for i, v := range live {
				for _, w := range live[i+1:] {
					mu.connect(0, v, w)
				}
			}
		}
		for _, v := range ns {
			mu.removeDirected(l, v, u)
		}
		if l == 0 {
			h.PG.Adj[u] = nil
		} else {
			delete(h.Upper[l-1], u)
		}
	}
}

// layerAdj returns u's neighbor slice on layer l. Callers must treat it
// as read-only (it may be shared with published snapshots).
func (mu *Mutator) layerAdj(l, u int) []int {
	if l == 0 {
		return mu.H.PG.Adj[u]
	}
	return mu.H.Upper[l-1][u]
}

// setAdj installs a fresh neighbor slice for u on layer l.
func (mu *Mutator) setAdj(l, u int, ns []int) {
	if l == 0 {
		mu.H.PG.Adj[u] = ns
	} else {
		mu.H.Upper[l-1][u] = ns
	}
}

// connect adds the undirected edge (a, b) on layer l — the
// copy-on-write counterpart of HNSW.connect. Unlike batch insertion,
// where the first endpoint is always a fresh under-capacity node,
// mutation bridges vertices that may both be full: a's shrink can drop
// b again before b ever links back, which would leave the half-edge
// (b, a) dangling. The PG is undirected, so a one-sided survivor is
// removed.
func (mu *Mutator) connect(l, a, b int) {
	if a == b {
		return
	}
	mu.addDirected(l, a, b)
	mu.addDirected(l, b, a)
	ab := hasNeighbor(mu.layerAdj(l, a), b)
	ba := hasNeighbor(mu.layerAdj(l, b), a)
	if ab != ba {
		if ab {
			mu.removeDirected(l, a, b)
		} else {
			mu.removeDirected(l, b, a)
		}
	}
}

// hasNeighbor reports whether the sorted neighbor list ns contains v.
func hasNeighbor(ns []int, v int) bool {
	pos := sort.SearchInts(ns, v)
	return pos < len(ns) && ns[pos] == v
}

// addDirected adds v to u's neighbors on layer l, shrinking u back to
// the degree cap with the diversity heuristic. Unlike HNSW.addDirected
// it never writes into the existing slice: the new list is always a
// fresh allocation, so snapshots holding the old one are untouched.
func (mu *Mutator) addDirected(l, u, v int) {
	h := mu.H
	ns := mu.layerAdj(l, u)
	pos := sort.SearchInts(ns, v)
	if pos < len(ns) && ns[pos] == v {
		return
	}
	grown := make([]int, len(ns)+1)
	copy(grown, ns[:pos])
	grown[pos] = v
	copy(grown[pos+1:], ns[pos:])
	var dropped []int
	if cap := h.maxDegree(l); len(grown) > cap {
		grown, dropped = h.shrink(u, grown, cap) // builds fresh slices
	}
	mu.setAdj(l, u, grown)
	for _, w := range dropped {
		mu.removeDirected(l, w, u)
	}
}

// removeDirected drops v from u's neighbors on layer l, copy-on-write.
func (mu *Mutator) removeDirected(l, u, v int) {
	ns := mu.layerAdj(l, u)
	pos := sort.SearchInts(ns, v)
	if pos >= len(ns) || ns[pos] != v {
		return
	}
	shrunk := make([]int, 0, len(ns)-1)
	shrunk = append(shrunk, ns[:pos]...)
	shrunk = append(shrunk, ns[pos+1:]...)
	mu.setAdj(l, u, shrunk)
}
