package pg

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBuildWithInjectedRNGMatchesSeed(t *testing.T) {
	db := clusteredDB(3, 4, 5)

	seeded, err := Build(db, BuildConfig{M: 4, EfConstruction: 12, Seed: 11})
	if err != nil {
		t.Fatalf("Build(seed): %v", err)
	}
	injected, err := Build(db, BuildConfig{M: 4, EfConstruction: 12, RNG: rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatalf("Build(rng): %v", err)
	}

	if !reflect.DeepEqual(seeded.PG.Adj, injected.PG.Adj) {
		t.Fatalf("base-layer adjacency differs between Seed and equivalent injected RNG")
	}
	if !reflect.DeepEqual(seeded.Level, injected.Level) {
		t.Fatalf("level assignment differs between Seed and equivalent injected RNG")
	}
}
