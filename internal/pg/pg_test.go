package pg

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
)

// clusteredDB builds a database of c clusters: each cluster is a seed
// molecule plus per-cluster mutants, so the GED landscape has genuine
// neighborhood structure.
func clusteredDB(seed int64, clusters, perCluster int) graph.Database {
	gen := graph.NewGenerator(seed)
	labels := []string{"C", "N", "O", "S"}
	var gs []*graph.Graph
	for c := 0; c < clusters; c++ {
		base := gen.MoleculeLike(10+c%6, 1, labels, 0.4)
		gs = append(gs, base)
		for i := 1; i < perCluster; i++ {
			gs = append(gs, gen.Mutate(base, 1+i%3, labels))
		}
	}
	return graph.NewDatabase(gs)
}

func buildTestIndex(t *testing.T, db graph.Database) *HNSW {
	t.Helper()
	h, err := Build(db, BuildConfig{M: 6, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func bruteForceKNN(metric ged.Metric, db graph.Database, q *graph.Graph, k int) []Result {
	res := make([]Result, len(db))
	for i, g := range db {
		res[i] = Result{ID: i, Dist: metric.Distance(g, q)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].ID < res[j].ID
	})
	return res[:k]
}

func recallAt(got, want []Result) float64 {
	wantSet := make(map[int]bool, len(want))
	for _, r := range want {
		wantSet[r.ID] = true
	}
	hit := 0
	for _, r := range got {
		if wantSet[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestBuildValidatesAndConnects(t *testing.T) {
	db := clusteredDB(1, 8, 8)
	h := buildTestIndex(t, db)
	if err := h.PG.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.PG.Len() != len(db) {
		t.Fatalf("Len = %d; want %d", h.PG.Len(), len(db))
	}
	// Base layer must be a single connected component for routing to be
	// able to reach everything (overwhelmingly likely with M=6).
	seen := make([]bool, len(db))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range h.PG.Adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != len(db) {
		t.Fatalf("layer 0 has %d reachable of %d", count, len(db))
	}
	// Degree caps respected.
	for u, ns := range h.PG.Adj {
		if len(ns) > 12 {
			t.Fatalf("node %d degree %d > 2M", u, len(ns))
		}
	}
	for l, up := range h.Upper {
		for u, ns := range up {
			if len(ns) > 6 {
				t.Fatalf("layer %d node %d degree %d > M", l+1, u, len(ns))
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, BuildConfig{}); err == nil {
		t.Fatal("no error for empty database")
	}
	g := graph.New(5) // wrong ID
	g.AddNode("A")
	if _, err := Build(graph.Database{g}, BuildConfig{}); err == nil {
		t.Fatal("no error for unnumbered database")
	}
}

func TestBeamSearchFindsPlantedNeighbors(t *testing.T) {
	db := clusteredDB(2, 10, 10)
	h := buildTestIndex(t, db)
	gen := graph.NewGenerator(77)
	labels := []string{"C", "N", "O", "S"}
	metric := ged.MetricFunc(ged.Hungarian)

	recallSum := 0.0
	queries := 10
	for i := 0; i < queries; i++ {
		q := gen.Mutate(db[(i*10)%len(db)], 1, labels)
		c := NewDistCache(metric, db, q)
		entry := h.EntryPoint(c)
		got, stats := BeamSearch(h.PG, c, entry, 10, 40)
		if len(got) != 10 {
			t.Fatalf("query %d: %d results", i, len(got))
		}
		if stats.NDC <= 0 || stats.Explored <= 0 {
			t.Fatalf("query %d: empty stats %+v", i, stats)
		}
		want := bruteForceKNN(metric, db, q, 10)
		recallSum += recallAt(got, want)
	}
	if avg := recallSum / float64(queries); avg < 0.8 {
		t.Fatalf("avg recall@10 = %v; want >= 0.8", avg)
	}
}

func TestBeamSearchLargerBeamHigherRecallOrEqualNDC(t *testing.T) {
	db := clusteredDB(3, 8, 8)
	h := buildTestIndex(t, db)
	gen := graph.NewGenerator(5)
	labels := []string{"C", "N", "O", "S"}
	metric := ged.MetricFunc(ged.Hungarian)
	q := gen.Mutate(db[3], 2, labels)

	c1 := NewDistCache(metric, db, q)
	_, s1 := BeamSearch(h.PG, c1, 0, 5, 2)
	c2 := NewDistCache(metric, db, q)
	_, s2 := BeamSearch(h.PG, c2, 0, 5, 30)
	if s2.NDC < s1.NDC {
		t.Fatalf("wider beam used fewer NDC: %d < %d", s2.NDC, s1.NDC)
	}
}

func TestBeamSearchResultsSortedAndUnique(t *testing.T) {
	db := clusteredDB(4, 6, 6)
	h := buildTestIndex(t, db)
	q := graph.NewGenerator(9).MoleculeLike(10, 1, []string{"C", "N"}, 0.3)
	c := NewDistCache(ged.MetricFunc(ged.Hungarian), db, q)
	got, _ := BeamSearch(h.PG, c, 0, 8, 16)
	seen := make(map[int]bool)
	for i, r := range got {
		if seen[r.ID] {
			t.Fatalf("duplicate result %d", r.ID)
		}
		seen[r.ID] = true
		if i > 0 && got[i-1].Dist > r.Dist {
			t.Fatalf("results not sorted: %v", got)
		}
	}
}

func TestDistCacheCountsOnce(t *testing.T) {
	db := clusteredDB(5, 2, 3)
	calls := 0
	metric := ged.MetricFunc(func(a, b *graph.Graph) float64 {
		calls++
		return ged.VJ(a, b)
	})
	q := db[0]
	c := NewDistCache(metric, db, q)
	c.Dist(1)
	c.Dist(1)
	c.Dist(2)
	if calls != 2 || c.NDC() != 2 {
		t.Fatalf("calls=%d NDC=%d; want 2, 2", calls, c.NDC())
	}
	if !c.Known(1) || c.Known(3) {
		t.Fatalf("Known wrong")
	}
}

func TestPoolTieBreaking(t *testing.T) {
	p := NewPool()
	// byPriority ranks the pool's items under the resize order (Resize
	// itself only partitions, it no longer promises sorted items).
	byPriority := func() []Candidate {
		s := append([]Candidate(nil), p.items...)
		sort.Slice(s, func(i, j int) bool { return p.less(s[i], s[j]) })
		return s
	}
	p.Add(5, 1.0)
	p.Add(3, 1.0)
	p.Add(7, 0.5)
	// Unexplored ties: smaller id first.
	if s := byPriority(); s[0].ID != 7 || s[1].ID != 3 || s[2].ID != 5 {
		t.Fatalf("order = %v", s)
	}
	// Mark 3 explored: unexplored 5 outranks it at the same distance.
	p.MarkExplored(3)
	if s := byPriority(); s[1].ID != 5 || s[2].ID != 3 {
		t.Fatalf("explored tie-break wrong: %v", s)
	}
	// Two explored at the same distance: more recent first.
	p.MarkExplored(5)
	if s := byPriority(); s[1].ID != 5 || s[2].ID != 3 {
		t.Fatalf("recency tie-break wrong: %v", s)
	}
	// Resize drops the lowest priority and removes membership.
	p.Resize(2)
	if len(p.items) != 2 || p.inW[3] {
		t.Fatalf("resize wrong: %v inW=%v", p.items, p.inW)
	}
	// Re-adding a dropped node keeps its explored state.
	p.Add(3, 1.0)
	if !p.Explored(3) {
		t.Fatalf("explored state lost on re-add")
	}
	// Best considers explored nodes too.
	if c, ok := p.Best(); !ok || c.ID != 7 {
		t.Fatalf("Best = %v, %v", c, ok)
	}
}

func TestPoolNextUnexplored(t *testing.T) {
	p := NewPool()
	if _, ok := p.NextUnexplored(); ok {
		t.Fatal("empty pool returned a candidate")
	}
	if _, ok := p.Best(); ok {
		t.Fatal("empty pool returned a best")
	}
	p.Add(2, 3.0)
	p.Add(9, 1.0)
	c, ok := p.NextUnexplored()
	if !ok || c.ID != 9 {
		t.Fatalf("NextUnexplored = %v, %v", c, ok)
	}
	if _, ok := p.NextUnexploredWithin(0.5); ok {
		t.Fatal("gamma filter failed")
	}
	if c, ok := p.NextUnexploredWithin(1.0); !ok || c.ID != 9 {
		t.Fatalf("within gamma = %v, %v", c, ok)
	}
	p.MarkExplored(9)
	p.MarkExplored(2)
	if !p.AllExplored() {
		t.Fatal("AllExplored false after exploring everything")
	}
}

func TestEntryPointDescendsToNearbyNode(t *testing.T) {
	db := clusteredDB(6, 10, 10)
	h := buildTestIndex(t, db)
	metric := ged.MetricFunc(ged.Hungarian)
	gen := graph.NewGenerator(11)
	labels := []string{"C", "N", "O", "S"}

	// The HNSW entry point should on average be closer than a random node.
	rng := rand.New(rand.NewSource(3))
	var entrySum, randSum float64
	for i := 0; i < 10; i++ {
		q := gen.Mutate(db[rng.Intn(len(db))], 2, labels)
		c := NewDistCache(metric, db, q)
		ep := h.EntryPoint(c)
		entrySum += c.Dist(ep)
		randSum += c.Dist(rng.Intn(len(db)))
	}
	if entrySum > randSum {
		t.Fatalf("HNSW entry (avg %v) no better than random (avg %v)", entrySum/10, randSum/10)
	}
}

func TestSearchLayerReturnsAscending(t *testing.T) {
	db := clusteredDB(7, 4, 6)
	h := buildTestIndex(t, db)
	q := db[0]
	c := NewDistCache(ged.MetricFunc(ged.VJ), db, q)
	res := searchLayer(c, h.PG.Neighbors, 5, 8, nil)
	if len(res) == 0 {
		t.Fatal("empty result")
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatalf("not ascending: %v", res)
		}
	}
}
