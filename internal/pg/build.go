package pg

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/order"
)

// BuildConfig controls proximity-graph construction.
type BuildConfig struct {
	// M is the target out-degree on upper layers; layer 0 allows 2M.
	M int
	// EfConstruction is the candidate-beam width during insertion.
	EfConstruction int
	// Metric computes GED during construction (typically an approximation
	// such as ged.Hungarian — construction is offline).
	Metric ged.Metric
	// Seed drives the level assignment when RNG is nil.
	Seed int64
	// RNG, when non-nil, is the injected randomness source for level
	// assignment and connectivity-repair sampling; it takes precedence
	// over Seed.
	RNG *rand.Rand
	// Workers bounds the goroutines evaluating candidate-beam GED
	// distances concurrently (default runtime.NumCPU(); 1 disables the
	// pool). The built index is bit-identical across worker counts:
	// distances are pure functions prefetched in parallel but merged in
	// fixed candidate order, and all RNG-driven decisions stay on the
	// inserting goroutine.
	Workers int
}

func (c *BuildConfig) defaults() {
	if c.M <= 0 {
		c.M = 8
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 2 * c.M
	}
	if c.Metric == nil {
		c.Metric = ged.MetricFunc(ged.Hungarian)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
}

// HNSW is a hierarchical navigable small world index: PG holds the dense
// layer 0 (the proximity graph LAN routes on); Upper holds the sparse
// navigation layers used by the HNSW baseline and its initial-node
// selection.
type HNSW struct {
	PG *PG
	// Upper[l-1] is the adjacency of layer l (l >= 1).
	Upper []map[int][]int
	// Level[i] is the top layer of node i.
	Level []int
	// Entry is the entry node at the top layer.
	Entry int

	m           int
	buildMetric ged.Metric
	// pool fans distance prefetches out during construction; nil outside
	// Build (and when Workers == 1), making every prefetch sequential.
	pool *WorkerPool
}

// MaxLevel returns the highest populated layer.
func (h *HNSW) MaxLevel() int { return len(h.Upper) }

// Build constructs an HNSW index over db. Distances between database
// members are memoized, so the build performs each pairwise GED at most
// once. Candidate-beam distances are evaluated across cfg.Workers
// goroutines; the result is bit-identical to a Workers=1 build.
func Build(db graph.Database, cfg BuildConfig) (*HNSW, error) {
	cfg.defaults()
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("pg: %w", err)
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	mL := 1 / math.Log(float64(cfg.M))

	h := &HNSW{
		PG:          &PG{DB: db, Adj: make([][]int, len(db))},
		Level:       make([]int, len(db)),
		Entry:       0,
		m:           cfg.M,
		buildMetric: ged.NewCounter(cfg.Metric), // memoizes by (ID, ID)
	}
	if cfg.Workers > 1 {
		h.pool = NewWorkerPool(cfg.Workers)
		defer func() {
			h.pool.Close()
			h.pool = nil
		}()
	}

	for i := range db {
		level := int(-math.Log(1-rng.Float64()) * mL)
		h.Level[i] = level
		for len(h.Upper) < level {
			h.Upper = append(h.Upper, make(map[int][]int))
		}
		if i == 0 {
			continue
		}
		h.insert(i, level, cfg.EfConstruction)
		if level > h.Level[h.Entry] {
			h.Entry = i
		}
	}
	h.repairConnectivity(rng)
	return h, nil
}

// repairConnectivity stitches the base layer into one component. Degree
// pruning of an undirected PG can sever sparse clusters (the original
// HNSW tolerates this by keeping directed edges); since routing must be
// able to reach every graph, we repeatedly join the smallest component to
// the rest through (approximately) its closest cross pair, sampling
// candidates to bound the offline cost. Repair edges bypass the degree
// cap.
func (h *HNSW) repairConnectivity(rng *rand.Rand) {
	const sampleCap = 32
	for {
		comps := h.baseComponents()
		if len(comps) <= 1 {
			return
		}
		// Smallest component joins the others.
		smallest := 0
		for i, c := range comps {
			if len(c) < len(comps[smallest]) {
				smallest = i
			}
		}
		var rest []int
		for i, c := range comps {
			if i != smallest {
				rest = append(rest, c...)
			}
		}
		from := sampleNodes(comps[smallest], sampleCap, rng)
		to := sampleNodes(rest, sampleCap, rng)
		bu, bv, bd := -1, -1, 0.0
		for _, u := range from {
			c := NewDistCache(h.buildMetric, h.PG.DB, h.PG.DB[u])
			c.Prefetch(to, h.pool)
			for _, v := range to {
				if d := c.Dist(v); bu == -1 || d < bd {
					bu, bv, bd = u, v, d
				}
			}
		}
		h.PG.Adj[bu] = insertSorted(h.PG.Adj[bu], bv)
		h.PG.Adj[bv] = insertSorted(h.PG.Adj[bv], bu)
	}
}

// baseComponents returns the connected components of layer 0.
func (h *HNSW) baseComponents() [][]int {
	n := len(h.PG.DB)
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, v := range h.PG.Adj[comp[i]] {
				if !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func sampleNodes(nodes []int, cap int, rng *rand.Rand) []int {
	if len(nodes) <= cap {
		return nodes
	}
	out := append([]int(nil), nodes...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[:cap]
}

func insertSorted(ns []int, v int) []int {
	pos := sort.SearchInts(ns, v)
	if pos < len(ns) && ns[pos] == v {
		return ns
	}
	ns = append(ns, 0)
	copy(ns[pos+1:], ns[pos:])
	ns[pos] = v
	return ns
}

// insert adds node i (already assigned its level) to all of its layers.
func (h *HNSW) insert(i, level, efConstruction int) {
	c := NewDistCache(h.buildMetric, h.PG.DB, h.PG.DB[i])
	ep := h.Entry
	top := h.Level[h.Entry]

	// Greedy descent through the layers above the new node's level.
	// Index construction is offline and deliberately uncancellable until
	// the mutable index lands; the query path gets a real ctx instead.
	for l := top; l > level; l-- {
		ep = h.greedyStep(context.Background(), l, ep, c, h.pool) //lint:allow ctxprop offline build descent; uncancellable by design until the mutable index lands
	}

	// Ef-search and connect on each layer from min(level, top) down to 0.
	start := level
	if start > top {
		start = top
	}
	for l := start; l >= 0; l-- {
		results := searchLayer(c, h.layerNeighbors(l), ep, efConstruction, h.pool)
		for _, r := range h.selectNeighbors(c, results, h.maxDegree(l)) {
			h.connect(l, i, r.ID)
		}
		if len(results) > 0 {
			ep = results[0].ID
		}
	}
}

// selectNeighbors is the HNSW neighbor-selection heuristic (Malkov &
// Yashunin, Alg. 4): walk the candidates in ascending distance from the
// base point and keep one only if it is closer to the base than to every
// already-kept neighbor. On clustered data this preserves the long-range
// edges that plain closest-M selection prunes away, which is what keeps
// the base layer navigable between GED clusters. Skipped candidates
// backfill remaining slots (keepPrunedConnections).
func (h *HNSW) selectNeighbors(c *DistCache, cands []Candidate, m int) []Candidate {
	if len(cands) <= m {
		return cands
	}
	kept := make([]Candidate, 0, m)
	var skipped []Candidate
	for _, cand := range cands {
		if len(kept) >= m {
			break
		}
		diverse := true
		for _, k := range kept {
			if h.pairDist(cand.ID, k.ID) < cand.Dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, cand)
		} else {
			skipped = append(skipped, cand)
		}
	}
	for _, cand := range skipped {
		if len(kept) >= m {
			break
		}
		kept = append(kept, cand)
	}
	return kept
}

// pairDist returns the build-metric distance between two database graphs
// (memoized by the counting build metric).
func (h *HNSW) pairDist(a, b int) float64 {
	return h.buildMetric.Distance(h.PG.DB[a], h.PG.DB[b])
}

// maxDegree returns the degree cap of layer l: 2M on the base layer, M
// above (the standard HNSW heuristic).
func (h *HNSW) maxDegree(l int) int {
	if l == 0 {
		return 2 * h.m
	}
	return h.m
}

// layerNeighbors returns the adjacency function of layer l.
func (h *HNSW) layerNeighbors(l int) func(int) []int {
	if l == 0 {
		return h.PG.Neighbors
	}
	up := h.Upper[l-1]
	return func(id int) []int { return up[id] }
}

// greedyStep runs greedy search to the local optimum on layer l from ep.
// Each step's neighbor distances are prefetched through pool (the build
// pool during construction, a per-query pool at search time). A cancelled
// ctx stops the descent at the current node: the result is still a valid
// entry point (just a worse one), and the caller's own ctx check decides
// whether the search proceeds.
func (h *HNSW) greedyStep(ctx context.Context, l, ep int, c *DistCache, pool *WorkerPool) int {
	neighbors := h.layerNeighbors(l)
	for {
		if ctx.Err() != nil {
			return ep
		}
		best := ep
		bd := c.Dist(ep)
		ns := neighbors(ep)
		c.Prefetch(ns, pool)
		for _, nb := range ns {
			if d := c.Dist(nb); d < bd {
				best, bd = nb, d
			}
		}
		if best == ep {
			return ep
		}
		ep = best
	}
}

// connect adds the undirected edge (a, b) on layer l, shrinking either
// endpoint back to the degree cap by dropping the farthest neighbors.
func (h *HNSW) connect(l, a, b int) {
	if a == b {
		return
	}
	h.addDirected(l, a, b)
	h.addDirected(l, b, a)
}

func (h *HNSW) addDirected(l, u, v int) {
	var ns []int
	if l == 0 {
		ns = h.PG.Adj[u]
	} else {
		ns = h.Upper[l-1][u]
	}
	pos := sort.SearchInts(ns, v)
	if pos < len(ns) && ns[pos] == v {
		return
	}
	ns = append(ns, 0)
	copy(ns[pos+1:], ns[pos:])
	ns[pos] = v
	var dropped []int
	if cap := h.maxDegree(l); len(ns) > cap {
		ns, dropped = h.shrink(u, ns, cap)
	}
	if l == 0 {
		h.PG.Adj[u] = ns
	} else {
		h.Upper[l-1][u] = ns
	}
	// The PG is undirected: pruning u's side must drop the reverse edges.
	for _, w := range dropped {
		h.removeDirected(l, w, u)
	}
}

func (h *HNSW) removeDirected(l, u, v int) {
	var ns []int
	if l == 0 {
		ns = h.PG.Adj[u]
	} else {
		ns = h.Upper[l-1][u]
	}
	pos := sort.SearchInts(ns, v)
	if pos >= len(ns) || ns[pos] != v {
		return
	}
	ns = append(ns[:pos], ns[pos+1:]...)
	if l == 0 {
		h.PG.Adj[u] = ns
	} else {
		h.Upper[l-1][u] = ns
	}
}

// shrink prunes u's neighbor list back to cap with the same diversity
// heuristic as insertion; it returns the kept set sorted by id plus the
// dropped nodes.
func (h *HNSW) shrink(u int, ns []int, cap int) (kept, dropped []int) {
	c := NewDistCache(h.buildMetric, h.PG.DB, h.PG.DB[u])
	c.Prefetch(ns, h.pool)
	cands := make([]Candidate, len(ns))
	for i, v := range ns {
		cands[i] = Candidate{ID: v, Dist: c.Dist(v)}
	}
	sort.Slice(cands, func(i, j int) bool {
		return order.ByDistThenID(cands[i].Dist, cands[i].ID, cands[j].Dist, cands[j].ID)
	})
	selected := h.selectNeighbors(c, cands, cap)
	keptSet := make(map[int]bool, len(selected))
	for _, s := range selected {
		keptSet[s.ID] = true
		kept = append(kept, s.ID)
	}
	for _, v := range ns {
		if !keptSet[v] {
			dropped = append(dropped, v)
		}
	}
	sort.Ints(kept)
	return kept, dropped
}

// EntryPoint implements HNSW's initial node selection (HNSW_IS): greedy
// descent from the top layer down to layer 1, charging its distance
// computations to c. The returned node seeds the layer-0 routing.
func (h *HNSW) EntryPoint(c *DistCache) int {
	return h.EntryPointPooled(context.Background(), c, nil)
}

// EntryPointPooled is EntryPoint with cancellation and with each descent
// step's neighbor distances prefetched through pool. The descent — and
// the charged NDC — is identical to the sequential EntryPoint for any
// pool (see DistCache.Prefetch). On cancellation the descent stops early
// and the current node is returned; the caller's ctx check decides what
// happens next.
func (h *HNSW) EntryPointPooled(ctx context.Context, c *DistCache, pool *WorkerPool) int {
	ep := h.Entry
	for l := h.Level[h.Entry]; l >= 1; l-- {
		ep = h.greedyStep(ctx, l, ep, c, pool)
	}
	return ep
}
