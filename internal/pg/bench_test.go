package pg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Build benchmarks: sequential vs pooled construction over the clustered
// generator database. On multi-core hardware the Workers>1 runs show the
// candidate-beam GED fan-out; on a single core they bound the pool's
// overhead (the built index is identical either way).
func BenchmarkBuild(b *testing.B) {
	db := clusteredDB(1, 8, 8)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(db, BuildConfig{M: 6, EfConstruction: 16, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sortResize is the pre-quickselect Resize: full sort, then truncate. It
// is the semantic reference for BenchmarkPoolResize and the equivalence
// test below.
func (p *Pool) sortResize(b int) {
	sort.Slice(p.items, func(i, j int) bool { return p.less(p.items[i], p.items[j]) })
	if len(p.items) > b {
		for _, c := range p.items[b:] {
			delete(p.inW, c.ID)
		}
		p.items = p.items[:b]
	}
}

// fillPool populates a pool the way one beam exploration step does: the
// surviving b candidates plus one expanded node's neighbor fan-in.
func fillPool(rng *rand.Rand, b, extra int) *Pool {
	p := NewPool()
	for len(p.items) < b+extra {
		id := rng.Intn(10 * (b + extra))
		p.Add(id, float64(rng.Intn(12)))
		if rng.Intn(3) == 0 {
			p.MarkExplored(id)
		}
	}
	return p
}

func TestResizeMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		b := 1 + rng.Intn(24)
		extra := rng.Intn(32)
		seed := rng.Int63()
		quick := fillPool(rand.New(rand.NewSource(seed)), b, extra)
		ref := fillPool(rand.New(rand.NewSource(seed)), b, extra)
		quick.Resize(b)
		ref.sortResize(b)
		// The kept set is unique (less is a strict total order), so both
		// must retain exactly the same candidates and membership.
		if len(quick.items) != len(ref.items) {
			t.Fatalf("trial %d: kept %d vs %d", trial, len(quick.items), len(ref.items))
		}
		for _, c := range ref.items {
			if !quick.inW[c.ID] {
				t.Fatalf("trial %d: candidate %d kept by reference, dropped by quickselect", trial, c.ID)
			}
		}
		if len(quick.inW) != len(ref.inW) {
			t.Fatalf("trial %d: membership %d vs %d", trial, len(quick.inW), len(ref.inW))
		}
	}
}

// Resize benchmarks at serving beam widths: each iteration rebuilds the
// pool state one exploration step sees (b survivors + a neighbor fan-in of
// 2M=12) and shrinks it back to b.
func BenchmarkPoolResize(b *testing.B) {
	for _, width := range []int{8, 16, 64} {
		for _, impl := range []string{"quickselect", "sort"} {
			b.Run(fmt.Sprintf("b=%d/%s", width, impl), func(b *testing.B) {
				rng := rand.New(rand.NewSource(7))
				pools := make([]*Pool, 64)
				for i := range pools {
					pools[i] = fillPool(rng, width, 12)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Copy a prebuilt pool (items and membership both shrink
					// during Resize) so the timed loop measures only the
					// resize itself; the copy cost is identical for both
					// implementations.
					src := pools[i%len(pools)]
					inW := make(map[int]bool, len(src.inW))
					for id := range src.inW {
						inW[id] = true
					}
					p := &Pool{items: append([]Candidate(nil), src.items...),
						inW: inW, exploredSeq: src.exploredSeq}
					if impl == "quickselect" {
						p.Resize(width)
					} else {
						p.sortResize(width)
					}
				}
			})
		}
	}
}
