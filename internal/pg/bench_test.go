package pg

import (
	"fmt"
	"testing"
)

// Build benchmarks: sequential vs pooled construction over the clustered
// generator database. On multi-core hardware the Workers>1 runs show the
// candidate-beam GED fan-out; on a single core they bound the pool's
// overhead (the built index is identical either way).
func BenchmarkBuild(b *testing.B) {
	db := clusteredDB(1, 8, 8)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(db, BuildConfig{M: 6, EfConstruction: 16, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
