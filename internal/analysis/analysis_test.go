package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestFixtures runs every analyzer over its golden fixture directory and
// checks the reported findings against the fixtures' `// want "substr"`
// annotations: each annotated line must produce a finding containing the
// substring, and no unannotated line may produce one. Every fixture also
// carries a //lint:allow-suppressed violation, so these tests pin both
// the detection and the suppression path.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{AtomicField, "atomicfield"},
		{FloatCmp, "floatcmp"},
		{GlobalRand, "globalrand"},
		{GlobalRand, "globalrand_main"},
		{GoLeak, "goleak"},
		{HotAlloc, "hotalloc"},
		{LibPanic, "libpanic"},
		{MatDim, "matdim"},
		{MetricName, "metricname"},
		{SlogQID, "lanserveslog"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			runFixture(t, tc.analyzer, tc.fixture)
		})
	}
}

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	pkg, err := checkPackage(fset, fixtureImporter(t, fset), "fixture/"+fixture, dir, names)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{a})

	wants := fixtureWants(t, fset, pkg)
	seen := make(map[int]bool)
	for _, f := range findings {
		want, ok := wants[f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("finding %q at line %d does not contain %q", f.Message, f.Pos.Line, want)
		}
		seen[f.Pos.Line] = true
	}
	for line, want := range wants {
		if !seen[line] {
			t.Errorf("missing finding at %s line %d (want %q)", fixture, line, want)
		}
	}
}

// fixtureWants extracts `// want "substr"` annotations, keyed by line.
func fixtureWants(t *testing.T, fset *token.FileSet, pkg *Package) map[int]string {
	t.Helper()
	wants := make(map[int]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				quoted := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				substr := strings.Trim(quoted, `"`)
				if substr == "" {
					t.Fatalf("empty want annotation at %s", fset.Position(c.Pos()))
				}
				wants[fset.Position(c.Pos()).Line] = substr
			}
		}
	}
	return wants
}

// fixtureExports caches the export-data lookup shared by all fixture
// loads; the fixtures only import the stdlib and internal/mat.
var fixtureExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

func fixtureImporter(t *testing.T, fset *token.FileSet) types.Importer {
	t.Helper()
	fixtureExports.once.Do(func() {
		cmd := exec.Command("go", "list", "-deps", "-export", "-f",
			"{{if .Export}}{{.ImportPath}} {{.Export}}{{end}}",
			"context", "fmt", "log/slog", "math/rand", "sort", "sync", "sync/atomic", matPkgPath, obsPkgPath)
		out, err := cmd.Output()
		if err != nil {
			fixtureExports.err = fmt.Errorf("go list -export: %v", err)
			return
		}
		fixtureExports.m = make(map[string]string)
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if path, file, ok := strings.Cut(line, " "); ok {
				fixtureExports.m[path] = file
			}
		}
	})
	if fixtureExports.err != nil {
		t.Fatal(fixtureExports.err)
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := fixtureExports.m[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q, which the test importer does not provide", path)
		}
		return os.Open(f)
	})
}

// loadSource type-checks a single import-free source string as a package.
func loadSource(t *testing.T, path, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := checkPackage(fset, nil, path, dir, []string{"src.go"})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestSuppressionRequiresMatchingName pins that an allow comment for one
// analyzer does not silence another, and that a matching one does.
func TestSuppressionRequiresMatchingName(t *testing.T) {
	const src = `package fixture

func pair() (float64, float64) { return 1, 2 }

func wrongName() bool {
	a, b := pair()
	//lint:allow libpanic wrong name on purpose
	return a == b
}

func rightName() bool {
	a, b := pair()
	//lint:allow floatcmp suppressed on purpose
	return a == b
}
`
	pkg := loadSource(t, "fixture/suppression", src)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the wrong-name one: %v", len(findings), findings)
	}
	if got := findings[0].Pos.Line; got != 8 {
		t.Errorf("finding at line %d, want line 8 (the mismatched allow)", got)
	}
}

// TestByName covers analyzer selection.
func TestByName(t *testing.T) {
	as, err := ByName("floatcmp, matdim")
	if err != nil || len(as) != 2 || as[0] != FloatCmp || as[1] != MatDim {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName(empty) should fail")
	}
}

// TestLoadRealPackages smoke-tests the go-list-backed loader against this
// module's own packages (the same path cmd/lan-lint exercises).
func TestLoadRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping loader round-trip in -short mode")
	}
	pkgs, err := Load("../..", []string{"./internal/mat", "./graph"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without types or files", p.Path)
		}
	}
}
