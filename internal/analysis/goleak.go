package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak requires every `go` statement to be provably bounded. A goroutine
// that nothing waits for or cancels is how parallel speedups turn into
// leaks and shutdown races, so each spawn must match one of the accepted
// shapes:
//
//   - the goroutine body calls (sync.WaitGroup).Done — the
//     fan-out-then-Wait idiom every parallel section in this repo uses,
//     including the pg.WorkerPool workers;
//   - the body's top-level loop is `for ... := range ch` over a channel —
//     the worker drains a channel and exits when it is closed;
//   - the body selects on <-ctx.Done() — a context-cancellable loop;
//   - the body receives from a `chan struct{}` — the close-to-shutdown
//     stop-channel idiom (e.g. the mutable index's background edge
//     optimizer: `select { case <-x.stop: return; case <-x.kick: }`),
//     where closing the channel releases every receiver;
//   - the body is exactly one channel send — the single-shot
//     result-delivery goroutine (e.g. `go func() { errc <- srv.Serve(ln) }()`),
//     which terminates after one statement.
//
// `go name(...)` spawns are resolved through the call graph and the named
// function's body is held to the same shapes. Anything else needs
// //lint:allow goleak <reason> explaining what bounds the goroutine.
var GoLeak = &Analyzer{
	Name:      "goleak",
	Doc:       "every go statement must be tied to a WaitGroup, worker pool, or cancellable loop with a provable exit",
	RunGlobal: runGoLeak,
}

func runGoLeak(p *GlobalPass) {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				g, ok := x.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
					if !goroutineBounded(pkg.Info, lit.Body) {
						p.Reportf(pkg, g.Pos(), "goroutine has no provable exit: tie it to a sync.WaitGroup, a channel-range loop, <-ctx.Done(), or a close-managed stop channel")
					}
					return true
				}
				callee := staticCallee(pkg.Info, g.Call)
				node := p.Graph.NodeOf(callee)
				if node == nil {
					p.Reportf(pkg, g.Pos(), "goroutine target cannot be resolved statically, so its exit cannot be proven; spawn a named module function or a func literal")
					return true
				}
				if !goroutineBounded(node.Pkg.Info, node.Decl.Body) {
					p.Reportf(pkg, g.Pos(), "goroutine %s has no provable exit: tie it to a sync.WaitGroup, a channel-range loop, <-ctx.Done(), or a close-managed stop channel", node.Name())
				}
				return true
			})
		}
	}
}

// goroutineBounded reports whether body matches one of the accepted
// goroutine shapes.
func goroutineBounded(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 1 {
		if _, isSend := body.List[0].(*ast.SendStmt); isSend {
			return true
		}
	}
	bounded := false
	ast.Inspect(body, func(x ast.Node) bool {
		if bounded {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if isMethodOn(info, x, "sync", "WaitGroup", "Done") {
				bounded = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() != "<-" {
				break
			}
			// A receive from ctx.Done() anywhere in the body (select case
			// or bare wait) counts as cancellable.
			if call, isCall := ast.Unparen(x.X).(*ast.CallExpr); isCall {
				if isMethodOn(info, call, "context", "Context", "Done") {
					bounded = true
				}
				break
			}
			// A receive from a `chan struct{}` is the stop-channel
			// shutdown idiom: the owner closes the channel and every
			// receiver unblocks. Data channels carry payloads, so the
			// empty element type is what distinguishes a lifecycle signal
			// from a drain loop that might never see a close.
			if isStopChanRecv(info, x.X) {
				bounded = true
			}
		}
		return !bounded
	})
	return bounded
}

// isStopChanRecv reports whether expr is a receivable channel of empty
// structs — the conventional stop/quit signal type.
func isStopChanRecv(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	ch, isChan := tv.Type.Underlying().(*types.Chan)
	if !isChan || ch.Dir() == types.SendOnly {
		return false
	}
	st, isStruct := ch.Elem().Underlying().(*types.Struct)
	return isStruct && st.NumFields() == 0
}

// isMethodOn reports whether call invokes method name on the named type
// typeName from package pkgPath (receiver pointerness ignored).
func isMethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
