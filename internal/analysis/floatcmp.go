package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqFuncs is the approved epsilon-helper allowlist: functions whose
// whole purpose is float comparison may use == / != internally (typically
// to short-circuit the exact-equality fast path before a tolerance check).
// Everywhere else a float equality decides something — and in this
// codebase that something is usually a Lemma-1 tie-break on GED distances
// — so it must either go through one of these helpers or carry an explicit
// //lint:allow floatcmp justification.
var FloatEqFuncs = map[string]bool{
	"almostEqual": true,
	"approxEqual": true,
	"epsEqual":    true,
	"feq":         true,
	"withinTol":   true,
}

// FloatCmp flags == and != between floating-point expressions, and
// sort.Slice calls whose comparator is a bare float < / > with no
// tie-break. Lemma 1 and Theorem 1 (routing exactness) reduce to
// comparisons between accumulated GED values; bitwise equality on
// computed float64s is order-of-evaluation dependent, and an unstable
// sort keyed only on such floats leaves the order of tied elements to the
// sorting algorithm — both silently break those guarantees.
//
// Equality comparisons are exempt when either operand is a compile-time
// constant (sentinel checks such as `d == 0` compare against exact
// values, not accumulated ones) and inside the FloatEqFuncs epsilon
// helpers. Sort comparators are exempt when they break ties (any body
// beyond a single bare float comparison) or when the sort is stable
// (sort.SliceStable's output is deterministic for any comparator).
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between computed floating-point expressions and tie-blind float comparators in sort.Slice (distance tie-breaks must be deliberate)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEq(pass, n)
			case *ast.CallExpr:
				checkFloatSort(pass, n)
			}
			return true
		})
	}
}

func checkFloatEq(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	x, y := pass.Info.Types[be.X], pass.Info.Types[be.Y]
	if !isFloat(x.Type) || !isFloat(y.Type) {
		return
	}
	// Constants (literals and named) are exact values; comparing a
	// computed float against one is a sentinel check, not a
	// tie-break between two accumulated results.
	if x.Value != nil || y.Value != nil {
		return
	}
	if FloatEqFuncs[enclosingFuncName(pass.Files, be.Pos())] {
		return
	}
	pass.Reportf(be.OpPos, "floating-point %s between computed values; use an epsilon helper or justify with //lint:allow floatcmp", be.Op)
}

// checkFloatSort flags sort.Slice(x, func(i, j int) bool { return a < b })
// where a and b are computed floats: the sort is unstable, so tied
// elements land in algorithm-dependent order. The fix is a deterministic
// tie-break (internal/order's ByDistThenID / Cmp chains) or
// sort.SliceStable.
func checkFloatSort(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Slice" {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || !usesPackage(pass.Info, pkg, "sort") {
		return
	}
	if len(call.Args) != 2 {
		return
	}
	fn, ok := call.Args[1].(*ast.FuncLit)
	if !ok || fn.Body == nil || len(fn.Body.List) != 1 {
		return
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	be, ok := ret.Results[0].(*ast.BinaryExpr)
	if !ok || (be.Op != token.LSS && be.Op != token.GTR) {
		return
	}
	x, y := pass.Info.Types[be.X], pass.Info.Types[be.Y]
	if !isFloat(x.Type) || !isFloat(y.Type) || x.Value != nil || y.Value != nil {
		return
	}
	pass.Reportf(be.OpPos, "sort.Slice comparator orders by a float alone; ties land in algorithm-dependent order — add a tie-break (internal/order) or use sort.SliceStable")
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
