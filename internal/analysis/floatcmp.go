package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqFuncs is the approved epsilon-helper allowlist: functions whose
// whole purpose is float comparison may use == / != internally (typically
// to short-circuit the exact-equality fast path before a tolerance check).
// Everywhere else a float equality decides something — and in this
// codebase that something is usually a Lemma-1 tie-break on GED distances
// — so it must either go through one of these helpers or carry an explicit
// //lint:allow floatcmp justification.
var FloatEqFuncs = map[string]bool{
	"almostEqual": true,
	"approxEqual": true,
	"epsEqual":    true,
	"feq":         true,
	"withinTol":   true,
}

// FloatCmp flags == and != between floating-point expressions. Lemma 1
// and Theorem 1 (routing exactness) reduce to comparisons between
// accumulated GED values; bitwise equality on computed float64s is
// order-of-evaluation dependent and silently breaks those guarantees.
//
// Comparisons are exempt when either operand is a compile-time constant
// (sentinel checks such as `d == 0` compare against exact values, not
// accumulated ones) and inside the FloatEqFuncs epsilon helpers.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between computed floating-point expressions (distance tie-breaks must be deliberate)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			// Constants (literals and named) are exact values; comparing a
			// computed float against one is a sentinel check, not a
			// tie-break between two accumulated results.
			if x.Value != nil || y.Value != nil {
				return true
			}
			if FloatEqFuncs[enclosingFuncName(pass.Files, be.Pos())] {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s between computed values; use an epsilon helper or justify with //lint:allow floatcmp", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
