package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
}

// Load resolves the given package patterns (e.g. "./...") relative to dir
// with the go command, then parses and type-checks every matched
// non-standard package from source. `go list -deps` emits packages in
// dependency order (dependencies before dependents), so in-module imports
// are satisfied with the already-source-checked *types.Package of the
// dependency rather than its export data; standard-library imports come
// from compiler export data produced by `go list -export`. Source-checking
// the whole module under one importer gives every type and object a single
// identity across packages — the property the call-graph layer
// (callgraph.go) and the module-wide analyzers rely on to match a function
// or struct field seen from two different packages. Only non-test Go files
// are loaded: the analyzers enforce library invariants, and tests
// legitimately use panics, exact float expectations and ad-hoc RNG
// seeding.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Export,Standard,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var metas []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listedPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.Standard {
			metas = append(metas, m)
		}
	}

	fset := token.NewFileSet()
	exp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := &moduleImporter{export: exp, checked: make(map[string]*types.Package)}

	var pkgs []*Package
	for _, m := range metas {
		pkg, err := checkPackage(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.checked[m.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleImporter satisfies in-module imports with the source-checked
// *types.Package recorded by Load (dependency order guarantees it exists
// by the time a dependent asks for it) and everything else — the standard
// library — from export data. Returning the same *types.Package for every
// importer of a module package is what keeps object identity: a *types.Func
// or struct-field *types.Var observed from two different packages is one
// pointer, so the call graph and the module-wide analyzers can use plain
// map keys instead of fragile name matching.
type moduleImporter struct {
	export  types.Importer
	checked map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.export.Import(path)
}

// checkPackage parses the named files and type-checks them as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
