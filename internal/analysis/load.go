package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
}

// Load resolves the given package patterns (e.g. "./...") relative to dir
// with the go command, then parses and type-checks every matched
// non-standard package from source. Imports — both stdlib and in-module —
// are satisfied from compiler export data produced by `go list -export`,
// so each package is checked independently without re-checking its
// dependency sources. Only non-test Go files are loaded: the analyzers
// enforce library invariants, and tests legitimately use panics, exact
// float expectations and ad-hoc RNG seeding.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Export,Standard,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var metas []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listedPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.Standard {
			metas = append(metas, m)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, m := range metas {
		pkg, err := checkPackage(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses the named files and type-checks them as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
