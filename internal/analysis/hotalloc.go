package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces zero allocation in //lan:hotpath regions. The marked
// functions — the GED beam kernel, the trace fast path, the mat Into
// kernels, the top-k candidate-pool maintenance — are the per-step inner
// loops whose 0 allocs/op the benchmarks pin dynamically; this analyzer
// pins the same invariant statically, so an accidental allocation fails
// `make lint` instead of waiting for someone to re-run the benchmarks.
//
// The hot region is the annotated functions plus everything they
// statically call inside the module. Within it the analyzer flags the
// constructs that always or typically allocate:
//
//   - make, new, map and slice literals, and closures (func literals);
//   - append, except the amortized self-growth form x = append(x, ...)
//     (same base expression on both sides, slicing allowed), which reuses
//     capacity in steady state;
//   - conversions that copy (to a slice type, or slice<->string);
//   - fmt calls (allocate and box);
//   - interface boxing at call sites: passing a non-pointer-shaped,
//     non-zero-size value as an interface argument heap-allocates it.
//
// Arguments of panic(...) calls are skipped: the invariant is about the
// steady-state loop, and the error-formatting on a programmer-error panic
// path may allocate freely. Deliberate warm-up allocations (arena growth
// on first use, pool misses) carry //lint:allow hotalloc with the reason
// documenting why steady state is unaffected.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "//lan:hotpath functions and their callees must not allocate",
	RunGlobal: runHotAlloc,
}

func runHotAlloc(p *GlobalPass) {
	g := p.Graph
	var roots []*FuncNode
	for _, n := range g.SortedNodes() {
		if n.HotPath {
			roots = append(roots, n)
		}
	}
	region := g.ReachableFrom(roots, false)
	for _, n := range g.SortedNodes() {
		if root := region[n]; root != nil {
			checkHotNode(p, n, root)
		}
	}
}

func checkHotNode(p *GlobalPass, n, root *FuncNode) {
	info := n.Pkg.Info
	// in prefixes each message with the hot-path root, so a report deep in
	// a callee names the kernel whose contract it breaks.
	in := func(format string) string {
		return "hot path (//lan:hotpath " + root.Name() + "): " + format
	}

	// First pass: collect the append calls in the sanctioned self-growth
	// form, x = append(x, ...) or x = append(x[:k], ...).
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
			return true
		}
		base := ast.Unparen(call.Args[0])
		if sl, isSlice := base.(*ast.SliceExpr); isSlice {
			base = ast.Unparen(sl.X)
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(base) {
			selfAppend[call] = true
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pkg, x.Pos(), in("map literal allocates"))
			case *types.Slice:
				p.Reportf(n.Pkg, x.Pos(), in("slice literal allocates"))
			}
		case *ast.FuncLit:
			p.Reportf(n.Pkg, x.Pos(), in("closure allocates"))
		case *ast.CallExpr:
			return checkHotCall(p, n, x, in, selfAppend)
		}
		return true
	})
}

// checkHotCall applies the allocation rules to one call expression; the
// returned bool is the ast.Inspect descend decision (false only for
// panic(...), whose error-formatting arguments are off the steady path).
func checkHotCall(p *GlobalPass, n *FuncNode, call *ast.CallExpr, in func(string) string, selfAppend map[*ast.CallExpr]bool) bool {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) where T copies.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		target := tv.Type.Underlying()
		if _, isSlice := target.(*types.Slice); isSlice {
			p.Reportf(n.Pkg, call.Pos(), in("conversion to a slice type copies and allocates"))
		} else if b, isBasic := target.(*types.Basic); isBasic && b.Kind() == types.String {
			if argTV, okArg := info.Types[call.Args[0]]; okArg && argTV.Type != nil {
				if _, fromSlice := argTV.Type.Underlying().(*types.Slice); fromSlice {
					p.Reportf(n.Pkg, call.Pos(), in("slice-to-string conversion copies and allocates"))
				}
			}
		}
		return true
	}

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				return false
			case "make":
				p.Reportf(n.Pkg, call.Pos(), in("make allocates"))
			case "new":
				p.Reportf(n.Pkg, call.Pos(), in("new allocates"))
			case "append":
				if !selfAppend[call] {
					p.Reportf(n.Pkg, call.Pos(), in("append outside the self-growth form x = append(x, ...) allocates a new backing array"))
				}
			}
			return true
		}
	}

	// fmt calls allocate (and box every argument).
	if callee := staticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		p.Reportf(n.Pkg, call.Pos(), in("fmt call allocates"))
		return true
	}

	// Interface boxing at the call boundary.
	sig, ok := info.Types[fun].Type.(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, okArg := info.Types[arg]
		if !okArg || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		if b, isBasic := at.Type.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		if boxAllocates(at.Type) {
			p.Reportf(n.Pkg, arg.Pos(), in("passing %s as an interface boxes it on the heap"), at.Type.String())
		}
	}
	return true
}

// paramTypeAt returns the effective parameter type for argument i of a
// call to sig, unwrapping the variadic slice for the trailing parameters.
// Calls spreading a slice with ... pass it through without boxing, so
// ellipsis calls report no variadic type.
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if ellipsis {
			return nil
		}
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// boxAllocates reports whether storing a value of type t in an interface
// heap-allocates: pointer-shaped types (pointers, channels, maps,
// functions, unsafe.Pointer) fit the interface data word, and zero-size
// values use a shared sentinel; everything else escapes.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
		return true
	case *types.Struct:
		return u.NumFields() > 0
	case *types.Array:
		return u.Len() > 0
	}
	return true
}

// staticCallee resolves the *types.Func a call statically invokes (package
// function, qualified function or non-interface method), or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
