package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic enforces the no-panic contract in two layers.
//
// Per package: panic calls in the importable public packages (the root
// lan package, ged, graph, lanio — everything outside internal/ that is
// not a command) are flagged unconditionally. A panic in a public code
// path turns a caller's bad input into a process abort, which is hostile
// for a library; such sites must return errors instead.
//
// Module-wide: the call graph extends the contract to "no panic reachable
// from the query path". Roots are the exported context-taking Search*/
// Route* entry points; traversal follows static and interface (CHA)
// edges, so a panic inside an internal package — where per-function
// panics are otherwise the documented numpy-style shape-check contract —
// is still reported when a query can actually hit it.
//
// Escape hatches: functions named Must* follow the stdlib convention of
// documented panicking wrappers, and deliberate invariant checks
// ("impossible unless the index is corrupt") may carry
// //lint:allow libpanic with a justification at the panic site.
var LibPanic = &Analyzer{
	Name:      "libpanic",
	Doc:       "flags panic(...) in public packages and any panic reachable from the Search*/Route* query path",
	Run:       runLibPanic,
	RunGlobal: runLibPanicGlobal,
}

// runLibPanicGlobal walks the call graph from the query-path roots and
// reports every reachable panic site.
func runLibPanicGlobal(p *GlobalPass) {
	g := p.Graph
	var roots []*FuncNode
	for _, n := range g.SortedNodes() {
		if !n.Obj.Exported() || n.CtxParam == nil {
			continue
		}
		if strings.Contains(n.Name(), "Search") || strings.Contains(n.Name(), "Route") {
			roots = append(roots, n)
		}
	}
	reach := g.ReachableFrom(roots, true)
	for _, n := range g.SortedNodes() {
		root := reach[n]
		if root == nil || strings.HasPrefix(n.Name(), "Must") {
			continue
		}
		for _, pos := range n.Panics {
			p.Reportf(n.Pkg, pos,
				"panic in %s is reachable from the query path (%s); return an error, or justify with //lint:allow libpanic",
				n.Name(), root.Name())
		}
	}
}

func runLibPanic(pass *Pass) {
	if !pass.IsPublicLibrary() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[ident].(*types.Builtin); !isBuiltin {
				return true
			}
			if fn := enclosingFuncName(pass.Files, call.Pos()); strings.HasPrefix(fn, "Must") {
				return true
			}
			pass.Reportf(call.Pos(), "panic in public package %s; return an error (or name the function Must*)", pass.Path)
			return true
		})
	}
}
