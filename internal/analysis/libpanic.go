package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic flags panic calls in the importable public packages (the root
// lan package, ged, graph, lanio — everything outside internal/ that is
// not a command). A panic in a public code path turns a caller's bad
// input into a process abort, which is hostile for a library; such sites
// must return errors instead. Two escape hatches exist: functions named
// Must* follow the stdlib convention of documented panicking wrappers,
// and deliberate invariant checks may carry //lint:allow libpanic with a
// justification. Internal packages are out of scope — internal/mat and
// internal/autograd use panics for programmer-error shape checks, which
// is the documented numpy-style contract there.
var LibPanic = &Analyzer{
	Name: "libpanic",
	Doc:  "flags panic(...) in public (non-internal, non-main) packages; public APIs must return errors",
	Run:  runLibPanic,
}

func runLibPanic(pass *Pass) {
	if !pass.IsPublicLibrary() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[ident].(*types.Builtin); !isBuiltin {
				return true
			}
			if fn := enclosingFuncName(pass.Files, call.Pos()); strings.HasPrefix(fn, "Must") {
				return true
			}
			pass.Reportf(call.Pos(), "panic in public package %s; return an error (or name the function Must*)", pass.Path)
			return true
		})
	}
}
