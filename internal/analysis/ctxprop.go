package analysis

import "go/types"

// CtxProp enforces context propagation along the query path. GED
// evaluations are the expensive, cancellable unit of work in this system
// (a single exact GED can run for seconds), so the determinism-and-
// cancellation contract says: any function that can transitively trigger a
// distance evaluation or hand work to the query worker pool must be
// reachable by the caller's context.Context — either as a parameter or via
// a context-carrying struct (the router pattern, where the per-query
// struct holds ctx so that a dozen small methods do not each take it).
//
// Three violations, all computed on the module call graph:
//
//  1. Thread break: a context-carrying function statically calls (through
//     any chain of non-carrying functions) a function that reaches a
//     distance sink. Cancellation dies at that boundary. The fix is to
//     thread ctx through the chain; leaf helpers that cannot forward it
//     further should at least check ctx.Err().
//  2. Fresh context: context.Background()/TODO() on a sink-reaching path
//     in a library package manufactures an uncancellable context.
//     Convenience wrappers are exempt: a function whose body directly
//     calls its sibling named <Name>Context is the documented
//     "Background at the API boundary" idiom.
//  3. Dropped context: a sink-reaching function accepts a ctx parameter
//     and never uses it — the signature promises cancellation the body
//     does not deliver.
//
// Propagation follows static edges only. Interface calls (the ged.Metric
// implementations, rankers) are deliberately not traversed: their call
// sites are the sinks themselves, and CHA expansion would drag the whole
// offline build/training path — which evaluates distances with no caller
// to cancel for — into every query-path report.
var CtxProp = &Analyzer{
	Name:      "ctxprop",
	Doc:       "functions transitively reaching GED/distance evaluations or pool submits must accept and forward a context.Context",
	RunGlobal: runCtxProp,
}

// modulePath is this module's import path; the sink set below is pinned to
// it (fixtures spoof these paths to exercise the analyzer).
const modulePath = "github.com/lansearch/lan"

// ctxSinkKeys are the call-graph keys of the distance sinks: the GED
// metric interface call, the per-query distance cache, and the worker-pool
// submission that fans evaluations out. Sink functions themselves are
// exempt from reporting — they are the boundary the contract protects.
var ctxSinkKeys = map[string]bool{
	modulePath + "/ged.Metric.Distance":            true,
	modulePath + "/internal/pg.DistCache.Dist":     true,
	modulePath + "/internal/pg.DistCache.Prefetch": true,
	modulePath + "/internal/pg.WorkerPool.submit":  true,
}

func runCtxProp(p *GlobalPass) {
	g := p.Graph
	nodes := g.SortedNodes()

	// Sink-reaching set: nodes containing a sink call, closed under
	// reverse static edges ("can this function trigger a GED?").
	reachesSink := make(map[*FuncNode]bool)
	rev := make(map[*FuncNode][]*FuncNode)
	var frontier []*FuncNode
	for _, n := range nodes {
		direct := false
		for _, c := range n.Calls {
			if ctxSinkKeys[c.Key] {
				direct = true
			}
			if !c.Dynamic {
				if callee := g.NodeOf(c.Callee); callee != nil {
					rev[callee] = append(rev[callee], n)
				}
			}
		}
		if direct {
			reachesSink[n] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, caller := range rev[n] {
			if !reachesSink[caller] {
				reachesSink[caller] = true
				frontier = append(frontier, caller)
			}
		}
	}

	// Carrier-descendant set: non-carrying functions statically reachable
	// from a carrier through non-carrying functions only (traversal stops
	// at carriers — each carrier re-roots its own subtree). The map value
	// is the carrier whose context gets lost, for the report.
	lostFrom := make(map[*FuncNode]*FuncNode)
	var stack []*FuncNode
	seed := func(carrier *FuncNode) {
		for _, c := range carrier.Calls {
			if c.Dynamic {
				continue
			}
			m := g.NodeOf(c.Callee)
			if m == nil || m.CarriesContext() {
				continue
			}
			if _, seen := lostFrom[m]; !seen {
				lostFrom[m] = lostFrom[carrier]
				if lostFrom[m] == nil {
					lostFrom[m] = carrier
				}
				stack = append(stack, m)
			}
		}
	}
	for _, n := range nodes {
		if n.CarriesContext() {
			seed(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seed(n)
	}

	for _, n := range nodes {
		carrier, broken := lostFrom[n]
		if broken && reachesSink[n] && !ctxSinkKeys[n.Key] && !n.Pkg.IsCommand() && !isCtxWrapper(n) {
			p.Reportf(n.Pkg, n.Decl.Name.Pos(),
				"%s transitively reaches a distance evaluation or pool submit but does not accept or carry a context.Context, so cancellation from %s dies here; thread ctx through",
				n.Name(), carrier.Name())
		}
		if !n.Pkg.IsCommand() && reachesSink[n] && !isCtxWrapper(n) {
			for _, pos := range n.NewContexts {
				p.Reportf(n.Pkg, pos,
					"context.Background/TODO on a distance-evaluating path in %s; accept and forward the caller's ctx",
					n.Name())
			}
		}
		if n.CtxParam != nil && !n.CtxParamUsed && reachesSink[n] && !n.Pkg.IsCommand() {
			p.Reportf(n.Pkg, n.CtxParam.Pos(),
				"context parameter of %s is dropped: never forwarded or checked on a distance-evaluating path",
				n.Name())
		}
	}
}

// isCtxWrapper reports the convenience-wrapper idiom: the body directly
// calls a context-taking sibling named <Name>Context or <Name>Pooled (the
// repo's two-step convention: Search -> SearchContext -> SearchPooled),
// which is where the real contextful implementation lives.
func isCtxWrapper(n *FuncNode) bool {
	for _, c := range n.Calls {
		name := c.Callee.Name()
		if name != n.Name()+"Context" && name != n.Name()+"Pooled" {
			continue
		}
		sig, ok := c.Callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	return false
}
