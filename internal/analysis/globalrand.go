package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are deliberately absent: they
// are how seed boundaries build the injectable *rand.Rand the policy
// requires.
var globalRandFuncs = map[string]bool{
	"ExpFloat64":  true,
	"Float32":     true,
	"Float64":     true,
	"Int":         true,
	"Int31":       true,
	"Int31n":      true,
	"Int32":       true,
	"Int32N":      true,
	"Int64":       true,
	"Int64N":      true,
	"IntN":        true,
	"Intn":        true,
	"Int63":       true,
	"Int63n":      true,
	"N":           true,
	"NormFloat64": true,
	"Perm":        true,
	"Read":        true,
	"Seed":        true,
	"Shuffle":     true,
	"Uint32":      true,
	"Uint32N":     true,
	"Uint64":      true,
	"Uint64N":     true,
	"UintN":       true,
}

// GlobalRand flags draws from the process-global math/rand source in
// library packages. Global randomness is shared mutable state: any other
// goroutine or package consuming it shifts the stream, so results stop
// being reproducible from a seed. All library randomness must flow
// through an injected (or locally seeded) *rand.Rand. Commands are
// exempt — a main package owns its process and may seed globally.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags package-level math/rand draws in library code (randomness must flow through an injected *rand.Rand)",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	if pass.IsCommand() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if usesPackage(pass.Info, ident, "math/rand") || usesPackage(pass.Info, ident, "math/rand/v2") {
				pass.Reportf(call.Pos(), "global math/rand draw rand.%s in library code; inject a *rand.Rand instead", sel.Sel.Name)
			}
			return true
		})
	}
}
