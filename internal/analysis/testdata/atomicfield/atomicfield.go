// Package fixture exercises the atomicfield analyzer: a field touched via
// sync/atomic anywhere must never be accessed plainly anywhere else, and
// lock-bearing types must not be copied (value receivers, by-value
// parameters, dereference assignments).
package fixture

import (
	"sync"
	"sync/atomic"
)

// counterHolder mixes atomic and plain access to hits.
type counterHolder struct {
	hits int64
	name string
}

func (h *counterHolder) record() {
	atomic.AddInt64(&h.hits, 1) // the sanctioned atomic site
}

func (h *counterHolder) report() int64 {
	return h.hits // want "must not be read or written plainly"
}

func (h *counterHolder) reset() {
	h.hits = 0 // want "must not be read or written plainly"
}

func (h *counterHolder) label() string {
	return h.name // never touched atomically: ok
}

// guarded carries a mutex by value, so copying it tears the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) bad() int { // want "value receiver"
	return g.n
}

func (g *guarded) good() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func consume(g guarded) int { // want "by value"
	return g.n
}

func deref(p *guarded) int {
	q := *p // want "dereferences and copies"
	return q.n
}

func snapshot(p *guarded) int {
	//lint:allow atomicfield snapshot taken under an external happens-before barrier
	q := *p
	return q.n
}
