// Package fixture exercises the metricname analyzer: registration sites
// with non-conforming names, counter/suffix mismatches, dynamic names,
// duplicate registrations and dead families (handles never recorded to)
// must be flagged; conforming, recorded-to sites and methods of unrelated
// types that happen to share names must not.
package fixture

import "github.com/lansearch/lan/internal/obs"

// wellFormed registers one family of each kind under conforming names and
// records to every hand-driven handle, so nothing here is dead.
func wellFormed(r *obs.Registry) {
	events := r.Counter("lan_fixture_events_total", "Events.")
	errors := r.CounterVec("lan_fixture_errors_total", "Errors by code.", "code")
	r.CounterFunc("lan_fixture_pulls_total", "Pulls.", func() uint64 { return 0 })
	depth := r.Gauge("lan_fixture_depth", "Depth.")
	r.GaugeFunc("lan_fixture_ratio", "Ratio.", func() float64 { return 0 })
	lat := r.Histogram("lan_fixture_seconds", "Latency.", obs.ExpBuckets(0.001, 10, 4))
	r.Info("lan_fixture_build_info", "Build metadata.", nil)
	events.Inc()
	errors.With("io").Inc()
	depth.Set(1)
	lat.Observe(0.5)
}

// constName is fine: the name is still a compile-time constant.
const fixtureQueueName = "lan_fixture_queue_waits_total"

func constNameOK(r *obs.Registry) {
	waits := r.Counter(fixtureQueueName, "Queue waits.")
	waits.Inc()
}

func badPattern(r *obs.Registry) {
	camel := r.Counter("lanFixtureCamel_total", "Camel case.") // want "does not match"
	camel.Inc()
	noPrefix := r.Gauge("queue_depth", "No lan prefix.") // want "does not match"
	noPrefix.Set(0)
}

func badSuffix(r *obs.Registry) {
	reqs := r.Counter("lan_fixture_requests", "Counter without _total.") // want "must end in _total"
	reqs.Inc()
	inflight := r.Gauge("lan_fixture_inflight_total", "Gauge ending _total.") // want "must not end in _total"
	inflight.Inc()
	ndc := r.Histogram("lan_fixture_ndc_total", "Histogram total.", nil) // want "must not end in _total"
	ndc.Observe(1)
}

func dynamicName(r *obs.Registry, name string) {
	dyn := r.Counter(name, "Runtime-assembled name.") // want "compile-time string constant"
	dyn.Inc()
}

func duplicate(r *obs.Registry) {
	first := r.Counter("lan_fixture_dup_total", "First site.")
	second := r.Counter("lan_fixture_dup_total", "Second site.") // want "registered more than once"
	first.Inc()
	second.Inc()
}

func suppressed(r *obs.Registry) {
	legacy := r.Gauge("legacy_queue_depth", "Suppressed on purpose.") //lint:allow metricname legacy dashboard name kept for continuity
	legacy.Set(0)
}

// fixtureReg anchors the package-level dead-family cases.
var fixtureReg = obs.NewRegistry()

// deadDepth is registered and then never touched again: the exported
// family silently reads zero forever.
var deadDepth = fixtureReg.Gauge("lan_fixture_dead_depth", "Never set.") // want "dead family"

// holder exercises the struct-field handle path: the field is written at
// registration and never read or recorded to.
type holder struct {
	held *obs.Counter
}

func fillHolder(r *obs.Registry) holder {
	return holder{
		held: r.Counter("lan_fixture_held_total", "Dead via field."), // want "dead family"
	}
}

func discarded(r *obs.Registry) {
	r.Counter("lan_fixture_dropped_total", "Dead on arrival.")      // want "discarded"
	_ = r.Counter("lan_fixture_blank_total", "Blanked on arrival.") // want "discarded"
}

func deadSuppressed(r *obs.Registry) {
	//lint:allow metricname scrape-side family; read by the exporter, not this module
	r.Gauge("lan_fixture_exported_depth", "Suppressed dead family.")
}

// decoy has methods named like registry registrations; calls through it
// must not be flagged.
type decoy struct{}

func (decoy) Counter(name, help string) {}
func (decoy) Gauge(name, help string)   {}

func unrelatedReceiver(d decoy) {
	d.Counter("whatever", "Not a metric registration.")
	d.Gauge("alsoWhatever", "Not a metric registration.")
}

// traceFamily mirrors the exporter's lan_obs_trace_* counters: the naming
// rule covers the trace-pipeline family like any other, including the
// counter _total suffix.
func traceFamily(r *obs.Registry) {
	dropped := r.Counter("lan_obs_trace_dropped_total", "Traces dropped by the bounded queue.")
	exported := r.Counter("lan_obs_trace_exported_total", "Traces written to segments.")
	segments := r.Counter("lan_obs_trace_segments_total", "Segment files opened.")
	queue := r.Gauge("lan_obs_trace_queue_depth", "Traces waiting for the writer.")
	bad := r.Counter("lan_obs_trace_dropped", "Counter without _total.") // want "must end in _total"
	dropped.Inc()
	exported.Inc()
	segments.Inc()
	queue.Set(0)
	bad.Inc()
}
