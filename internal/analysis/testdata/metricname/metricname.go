// Package fixture exercises the metricname analyzer: registration sites
// with non-conforming names, counter/suffix mismatches, dynamic names and
// duplicate registrations must be flagged; conforming sites and methods
// of unrelated types that happen to share names must not.
package fixture

import "github.com/lansearch/lan/internal/obs"

// wellFormed registers one family of each kind under conforming names.
func wellFormed(r *obs.Registry) {
	r.Counter("lan_fixture_events_total", "Events.")
	r.CounterVec("lan_fixture_errors_total", "Errors by code.", "code")
	r.CounterFunc("lan_fixture_pulls_total", "Pulls.", func() uint64 { return 0 })
	r.Gauge("lan_fixture_depth", "Depth.")
	r.GaugeFunc("lan_fixture_ratio", "Ratio.", func() float64 { return 0 })
	r.Histogram("lan_fixture_seconds", "Latency.", obs.ExpBuckets(0.001, 10, 4))
	r.Info("lan_fixture_build_info", "Build metadata.", nil)
}

// constName is fine: the name is still a compile-time constant.
const fixtureQueueName = "lan_fixture_queue_waits_total"

func constNameOK(r *obs.Registry) {
	r.Counter(fixtureQueueName, "Queue waits.")
}

func badPattern(r *obs.Registry) {
	r.Counter("lanFixtureCamel_total", "Camel case.") // want "does not match"
	r.Gauge("queue_depth", "No lan prefix.")          // want "does not match"
}

func badSuffix(r *obs.Registry) {
	r.Counter("lan_fixture_requests", "Counter without _total.")  // want "must end in _total"
	r.Gauge("lan_fixture_inflight_total", "Gauge ending _total.") // want "must not end in _total"
	r.Histogram("lan_fixture_ndc_total", "Histogram total.", nil) // want "must not end in _total"
}

func dynamicName(r *obs.Registry, name string) {
	r.Counter(name, "Runtime-assembled name.") // want "compile-time string constant"
}

func duplicate(r *obs.Registry) {
	r.Counter("lan_fixture_dup_total", "First site.")
	r.Counter("lan_fixture_dup_total", "Second site.") // want "registered more than once"
}

func suppressed(r *obs.Registry) {
	//lint:allow metricname legacy dashboard name kept for continuity
	r.Gauge("legacy_queue_depth", "Suppressed on purpose.")
}

// decoy has methods named like registry registrations; calls through it
// must not be flagged.
type decoy struct{}

func (decoy) Counter(name, help string) {}
func (decoy) Gauge(name, help string)   {}

func unrelatedReceiver(d decoy) {
	d.Counter("whatever", "Not a metric registration.")
	d.Gauge("alsoWhatever", "Not a metric registration.")
}
