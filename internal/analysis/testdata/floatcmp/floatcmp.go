// Package fixture exercises the floatcmp analyzer: == / != between
// computed floats and tie-blind float comparators in sort.Slice must be
// flagged, while constant sentinels, epsilon helpers, stable sorts,
// tie-breaking comparators and //lint:allow suppressions must not.
package fixture

import "sort"

func distances() (float64, float64) { return 1.0, 2.0 }

func equalityFlagged() bool {
	a, b := distances()
	return a == b // want "floating-point =="
}

func inequalityFlagged(xs []float64) bool {
	a, _ := distances()
	return xs[0] != a // want "floating-point !="
}

func float32Flagged(a, b float32) bool {
	return a == b // want "floating-point =="
}

func sentinelZeroAllowed() bool {
	a, _ := distances()
	return a == 0
}

const calibrated = 1.5

func namedConstantAllowed() bool {
	a, _ := distances()
	return a != calibrated
}

func intComparisonIgnored(i, j int) bool {
	return i == j
}

// almostEqual is on the FloatEqFuncs allowlist: epsilon helpers may
// fast-path exact equality before the tolerance check.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func suppressedAbove() bool {
	a, b := distances()
	//lint:allow floatcmp deterministic tie-break, fixture for the suppression path
	return a != b
}

func suppressedTrailing() bool {
	a, b := distances()
	return a == b //lint:allow floatcmp fixture trailing-comment style
}

func sortFloatOnlyFlagged(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "ties land in algorithm-dependent order"
}

type scored struct {
	id    int
	score float64
}

func sortDescendingFlagged(s []scored) {
	sort.Slice(s, func(i, j int) bool { return s[i].score > s[j].score }) // want "ties land in algorithm-dependent order"
}

func sortStableAllowed(xs []float64) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func sortWithTieBreakAllowed(s []scored) {
	// A multi-statement comparator breaks ties itself; not flagged.
	sort.Slice(s, func(i, j int) bool {
		if s[i].score < s[j].score {
			return true
		}
		if s[i].score > s[j].score {
			return false
		}
		return s[i].id < s[j].id
	})
}

func sortIntsIgnored(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func sortSuppressed(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //lint:allow floatcmp fixture: duplicate-free input
}
