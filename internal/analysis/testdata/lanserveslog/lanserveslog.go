// Package fixture exercises the slogqid analyzer: every log/slog emission
// on the serve path must carry a query_id attribute (literal, named
// constant, or inside a slog.String attr), non-query sites opt out with
// //lint:allow slogqid, and unrelated types that share slog's method names
// must not be flagged. The fixture package path contains "lanserve", which
// is what puts it in the analyzer's scope.
package fixture

import (
	"context"
	"log/slog"
)

// qidKey shows that the attribute key may be any compile-time constant,
// not just a literal.
const qidKey = "query_id"

func perQuery(log *slog.Logger, ctx context.Context, qid string) {
	log.Info("search ok", "query_id", qid)
	log.Warn("search failed", qidKey, qid)
	log.Error("search failed", "code", 500) // want "omits the query_id attribute"
	log.Debug("cache miss", "shard", 3)     // want "omits the query_id attribute"
	log.InfoContext(ctx, "done", "query_id", qid)
	log.WarnContext(ctx, "slow query") // want "omits the query_id attribute"
	log.Log(ctx, slog.LevelInfo, "routed", "query_id", qid)
	log.LogAttrs(ctx, slog.LevelInfo, "routed", slog.String("query_id", qid))
	log.LogAttrs(ctx, slog.LevelInfo, "routed", slog.Int("shard", 1)) // want "omits the query_id attribute"
}

// packageLevel covers emissions through the slog package itself, not a
// Logger value.
func packageLevel(qid string) {
	slog.Info("search ok", "query_id", qid)
	slog.Warn("refused") // want "omits the query_id attribute"
}

// valueReceiver covers a non-pointer Logger value.
func valueReceiver(log slog.Logger) {
	log.Info("rebalanced") // want "omits the query_id attribute"
}

// suppressed is the opt-out path for log sites with no query in scope.
func suppressed(log *slog.Logger) {
	//lint:allow slogqid startup log has no query scope
	log.Info("listening")
}

// notSlog shares slog's method names on an unrelated type; construction
// helpers like With are not emissions either.
type notSlog struct{}

func (notSlog) Info(msg string, args ...any) {}

func unrelated(l notSlog, log *slog.Logger) *slog.Logger {
	l.Info("free-form")
	return log.With("component", "lanserve")
}
