// Package fixture exercises the matdim analyzer: dimension mistakes that
// local constant propagation can prove must be flagged, while anything
// involving an unknown or reassigned shape must not.
package fixture

import "github.com/lansearch/lan/internal/mat"

func badFromSlice() *mat.Matrix {
	return mat.FromSlice(2, 2, []float64{1, 2, 3}) // want "3 values for a 2x2 matrix"
}

func okFromSlice() *mat.Matrix {
	return mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
}

func negativeShape() *mat.Matrix {
	return mat.New(-1, 5) // want "negative dimension"
}

func badMul() *mat.Matrix {
	a := mat.New(2, 3)
	b := mat.New(4, 5)
	return mat.Mul(a, b) // want "inner dimensions 3 and 4"
}

func okMulChain() *mat.Matrix {
	a := mat.New(2, 3)
	b := mat.New(3, 4)
	c := mat.Mul(a, b) // 2x4
	return mat.MulT(c, mat.New(7, 4))
}

func badMulT() *mat.Matrix {
	a := mat.New(2, 3)
	return mat.MulT(a, mat.New(5, 4)) // want "inner dimensions 3 and 4"
}

func badTMul() *mat.Matrix {
	a := mat.New(2, 3)
	return mat.TMul(a, mat.New(5, 4)) // want "inner dimensions 2 and 5"
}

func badAddViaTranspose() *mat.Matrix {
	a := mat.New(2, 3)
	b := mat.Transpose(a) // 3x2
	return mat.Add(a, b)  // want "elementwise mat op on 2x3 and 3x2"
}

func unknownDimsNotFlagged(n int) *mat.Matrix {
	a := mat.New(n, 3)
	b := mat.New(3, 5)
	return mat.Mul(a, b)
}

func reassignedNotTracked(wide bool) *mat.Matrix {
	a := mat.New(2, 3)
	if wide {
		a = mat.New(2, 7)
	}
	b := mat.New(3, 4)
	// a's shape is no longer provable after the conditional reassignment,
	// so the (possibly fine, possibly not) product is not reported.
	return mat.Mul(a, b)
}

func fieldWriteNotTracked() *mat.Matrix {
	a := mat.New(2, 3)
	a.Rows = 3
	return mat.Mul(a, mat.New(4, 5))
}

func cloneAndScalePropagate() *mat.Matrix {
	a := mat.New(2, 3)
	b := mat.Scale(a.Clone(), 2)
	return mat.Sub(b, mat.New(4, 4)) // want "elementwise mat op on 2x3 and 4x4"
}

func badMulInto() *mat.Matrix {
	dst := mat.New(2, 5)
	a := mat.New(2, 3)
	return mat.MulInto(dst, a, mat.New(4, 5)) // want "inner dimensions 3 and 4"
}

func badMulIntoDst() *mat.Matrix {
	dst := mat.New(2, 4)
	a := mat.New(2, 3)
	return mat.MulInto(dst, a, mat.New(3, 5)) // want "destination 2x4 for a 2x5 product"
}

func okMulIntoScratch() *mat.Matrix {
	dst := mat.GetScratch(2, 5)
	a := mat.New(2, 3)
	return mat.MulInto(dst, a, mat.New(3, 5))
}

func badMulTInto() *mat.Matrix {
	dst := mat.New(2, 5)
	a := mat.New(2, 3)
	return mat.MulTInto(dst, a, mat.New(5, 4)) // want "inner dimensions 3 and 4"
}

func badTMulIntoDst() *mat.Matrix {
	dst := mat.New(3, 3)
	a := mat.New(2, 3)
	return mat.TMulInto(dst, a, mat.New(2, 4)) // want "destination 3x3 for a 3x4 product"
}

func negativeScratch() *mat.Matrix {
	return mat.GetScratch(-1, 2) // want "negative dimension"
}

func unknownIntoNotFlagged(dst *mat.Matrix) *mat.Matrix {
	a := mat.New(2, 3)
	// dst's shape is unknown, so only operand conformance is checkable —
	// and 3 == 3 conforms.
	return mat.MulInto(dst, a, mat.New(3, 5))
}

func suppressed() *mat.Matrix {
	a := mat.New(2, 3)
	b := mat.New(4, 5)
	return mat.Mul(a, b) //lint:allow matdim fixture for the suppression path
}
