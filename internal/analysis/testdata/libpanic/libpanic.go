// Package fixture exercises the libpanic analyzer: panics in public
// (non-internal, non-main) packages must be flagged unless the function
// follows the Must* convention or the site carries an allow annotation.
package fixture

import "fmt"

// Do is an exported entry point; its input check must not panic.
func Do(x int) error {
	if x < 0 {
		panic("negative x") // want "panic in public package"
	}
	return nil
}

func unexportedHelper(x int) {
	if x < 0 {
		panic(fmt.Sprintf("helper got %d", x)) // want "panic in public package"
	}
}

// MustDo follows the stdlib Must* convention: a documented panicking
// wrapper around the error-returning API.
func MustDo(x int) {
	if err := Do(x); err != nil {
		panic(err)
	}
}

func suppressedInvariant(n int) {
	if n*n < 0 {
		panic("unreachable: squares are non-negative") //lint:allow libpanic fixture for the suppression path
	}
}
