// Command fixture pins the globalrand exemption for main packages: a
// command owns its process, so global seeding/draws are its business and
// none of these lines may be flagged.
package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Intn(10), rand.Float64())
}
