//fixture:path github.com/lansearch/lan/internal/pg

// Package pg is a spoofed stand-in for the real internal/pg: the ctxprop
// sink keys are pinned to the real import paths, so this fixture declares
// the same package path, type names and sink methods to exercise them.
package pg

import "context"

// DistCache mirrors the real per-query distance cache; Dist and Prefetch
// are ctxprop sinks.
type DistCache struct{ evals int }

func (c *DistCache) Dist(g int) float64 {
	c.evals++
	return float64(g)
}

func (c *DistCache) Prefetch(ctx context.Context, ids []int) {
	for range ids {
		if ctx.Err() != nil {
			return
		}
		c.evals++
	}
}

// WorkerPool mirrors the query worker pool; submit is a ctxprop sink.
type WorkerPool struct{ ch chan func() }

func (p *WorkerPool) submit(f func()) { p.ch <- f }

// Submit is the exported contextful surface over the sink.
func (p *WorkerPool) Submit(ctx context.Context, f func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.submit(f)
	return nil
}
