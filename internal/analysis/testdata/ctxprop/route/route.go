//fixture:path github.com/lansearch/lan/internal/route

// Package route exercises ctxprop over a spoofed query path. descend is
// the acceptance case the analyzer exists for: delete the ctx threading
// between a carrier and the distance sink — exactly what removing the ctx
// parameter from the real route/l2route/pg descent produces — and the
// thread break is reported.
package route

import (
	"context"

	"github.com/lansearch/lan/internal/pg"
)

// SearchContext is the context carrier at the API boundary.
func SearchContext(ctx context.Context, c *pg.DistCache) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return descend(c, 3)
}

// Search is the convenience-wrapper idiom — Background at the boundary,
// delegating to the Context sibling — and is exempt.
func Search(c *pg.DistCache) float64 {
	return SearchContext(context.Background(), c)
}

// descend reaches the sink without accepting or carrying a context, so
// the cancellation arriving at SearchContext dies here.
func descend(c *pg.DistCache, depth int) float64 { // want "does not accept or carry"
	best := 0.0
	for i := 0; i < depth; i++ {
		best += c.Dist(i)
	}
	return best
}

// Evaluate manufactures an uncancellable context mid-path.
func Evaluate(ctx context.Context, c *pg.DistCache) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return rank(context.Background(), c) // want "distance-evaluating path"
}

// rank threads its context properly.
func rank(ctx context.Context, c *pg.DistCache) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return c.Dist(0)
}

// Score promises cancellation its body never delivers.
func Score(ctx context.Context, c *pg.DistCache) float64 { // want "dropped"
	return c.Dist(9)
}

// router is the context-carrying struct pattern: the per-query ctx rides
// on the struct, so its methods carry context without a parameter.
type router struct {
	ctx context.Context
	c   *pg.DistCache
}

func (r *router) run() float64 { return r.step(1) }

func (r *router) step(i int) float64 {
	if r.ctx.Err() != nil {
		return 0
	}
	return r.c.Dist(i)
}

// offlineBuild is a documented uncancellable offline path.
func offlineBuild(c *pg.DistCache) float64 {
	//lint:allow ctxprop offline index build has no caller to cancel
	return rank(context.Background(), c)
}
