// Package fixture exercises the hotalloc analyzer: inside the
// //lan:hotpath region (the marked function plus its static callees) every
// construct that allocates must be flagged — literals, closures, make/new,
// non-self-growth appends, copying conversions, fmt calls and interface
// boxing — while the sanctioned shapes (self-growth append, panic
// arguments, pointer-shaped interface values) and code outside the region
// must not.
package fixture

import "fmt"

type buf struct {
	ints []int
	tags []string
}

// grow is only ever called from the hot region, so its allocation is
// reported against the kernel root.
func grow(n int) []int {
	return make([]int, n) // want "hotpath kernel"
}

// sink receives interface values; boxing is charged at the call sites.
func sink(v interface{}) {}

// kernel is the annotated hot function.
//
//lan:hotpath
func kernel(b *buf, xs []int, raw []byte, name string) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	b.ints = append(b.ints, total)     // amortized self-growth: ok
	b.ints = append(b.ints[:0], xs...) // resliced self-growth: ok
	other := append(xs, total)         // want "self-growth"
	_ = other
	m := map[int]int{} // want "map literal allocates"
	_ = m
	lit := []int{total} // want "slice literal allocates"
	_ = lit
	cl := func() int { return total } // want "closure allocates"
	total += cl()
	total += grow(len(xs))[0]
	p := new(buf) // want "new allocates"
	_ = p
	bs := []byte(name) // want "conversion to a slice type"
	_ = bs
	st := string(raw) // want "slice-to-string conversion"
	_ = st
	fmt.Println(total) // want "fmt call allocates"
	sink(total)        // want "boxes it on the heap"
	sink(b)            // pointer-shaped: ok
	if total < 0 {
		panic(fmt.Sprintf("negative %d", total)) // panic arguments are off the steady path: ok
	}
	//lint:allow hotalloc warm-up growth on first use; steady state reuses the capacity
	warm := make([]int, 0, len(xs))
	_ = warm
	return total
}

// cold is outside the hot region: allocations here are fine.
func cold() []int {
	return []int{1, 2, 3}
}
