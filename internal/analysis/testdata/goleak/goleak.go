// Package fixture exercises the goleak analyzer: every go statement must
// match one of the provably bounded shapes (WaitGroup.Done, channel-range
// worker, ctx.Done receive, single-send) whether spawned as a literal or a
// named function; anything else needs a reasoned allow.
package fixture

import (
	"context"
	"sync"
)

func fanOut(xs []int) int {
	var wg sync.WaitGroup
	squares := make([]int, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) { // WaitGroup-bounded: ok
			defer wg.Done()
			squares[i] = x * x
		}(i, x)
	}
	wg.Wait()
	total := 0
	for _, v := range squares {
		total += v
	}
	return total
}

func worker(in, out chan int) {
	go func() { // channel-range worker: ok
		for v := range in {
			out <- v
		}
	}()
}

func oneShot(errc chan error, f func() error) {
	go func() { errc <- f() }() // single-send result delivery: ok
}

func cancellable(ctx context.Context, tick chan int) {
	go func() { // ctx.Done receive: ok
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

func drain(ch chan int) {
	for range ch {
	}
}

func spawnDrain(ch chan int) {
	go drain(ch) // named target with a channel-range body: ok
}

func spin(stop *bool) {
	for !*stop {
	}
}

func leakyLiteral(stop *bool) {
	go func() { // want "no provable exit"
		for !*stop {
		}
	}()
}

func leakyNamed(stop *bool) {
	go spin(stop) // want "no provable exit"
}

func dynamicTarget(f func()) {
	go f() // want "resolved statically"
}

func allowed(f func()) {
	//lint:allow goleak pump bound to the process lifetime on purpose
	go f()
}

type optimizer struct {
	stop chan struct{}
	kick chan struct{}
}

func (o *optimizer) run(work func() bool) {
	go func() { // close-managed stop channel: ok
		for {
			select {
			case <-o.stop:
				return
			case <-o.kick:
			}
			for work() {
			}
		}
	}()
}

func stoppableNamed(stop chan struct{}) {
	go waitForStop(stop) // named target receiving from a stop channel: ok
}

func waitForStop(stop chan struct{}) {
	<-stop
}

func dataChanSpin(payload chan int) {
	go func() { // want "no provable exit"
		for {
			select {
			case v := <-payload:
				_ = v
			default:
			}
		}
	}()
}
