//fixture:path fixture/cg/a

// Package cga is the callee side of the synthetic call-graph fixture.
package cga

import "context"

// Ranker is implemented by Doubler; Eval's interface call must produce a
// dynamic edge to the method plus a CHA edge to the implementation.
type Ranker interface {
	Rank(x int) int
}

type Doubler struct{}

func (Doubler) Rank(x int) int { return 2 * x }

func Eval(r Ranker, x int) int {
	return r.Rank(x)
}

func helper(y int) int { return y + 1 }

// Hot carries a used context, is hot-path annotated, and calls helper only
// from inside a function literal — the call must be attributed to Hot.
//
//lan:hotpath
func Hot(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	f := func(y int) int { return helper(y) }
	return f(x)
}

func Panicky() {
	panic("boom")
}

func Fresh() context.Context {
	return context.Background()
}
