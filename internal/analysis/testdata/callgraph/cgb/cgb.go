//fixture:path fixture/cg/b

// Package cgb is the caller side of the synthetic call-graph fixture: its
// edges cross the package boundary into fixture/cg/a.
package cgb

import cga "fixture/cg/a"

func Use(x int) int {
	return cga.Eval(cga.Doubler{}, x)
}
