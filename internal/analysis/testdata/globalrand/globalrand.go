// Package fixture exercises the globalrand analyzer: draws from the
// process-global math/rand source must be flagged in library code, while
// injected *rand.Rand usage and seed-boundary constructors must not.
package fixture

import "math/rand"

func globalDraw() int {
	return rand.Intn(10) // want "global math/rand draw rand.Intn"
}

func globalFloat() float64 {
	return rand.Float64() // want "global math/rand draw rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand draw rand.Shuffle"
}

func injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

func seedBoundary(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func suppressed() int {
	return rand.Int() //lint:allow globalrand fixture for the suppression path
}
