package analysis

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// treeImporter resolves in-fixture packages (including spoofed module
// paths) from the already-checked set before falling back to export data —
// the test-side mirror of the loader's moduleImporter.
type treeImporter struct {
	base    types.Importer
	checked map[string]*types.Package
}

func (i *treeImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.checked[path]; ok {
		return pkg, nil
	}
	return i.base.Import(path)
}

// loadFixtureTree type-checks every subdirectory of testdata/<fixture> as
// one package. A `//fixture:path <import path>` directive in any file sets
// the package's import path (fixtures spoof real module paths this way to
// hit path-pinned analyzer config, e.g. the ctxprop sink keys); without
// one the path defaults to fixture/<fixture>/<subdir>. Packages are
// checked in dependency order by retrying until every import resolves.
func loadFixtureTree(t *testing.T, fixture string) []*Package {
	t.Helper()
	root := filepath.Join("testdata", fixture)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading fixture tree: %v", err)
	}
	type sub struct {
		dir   string
		path  string
		names []string
	}
	var subs []sub
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := "fixture/" + fixture + "/" + e.Name()
		var names []string
		for _, f := range files {
			if !strings.HasSuffix(f.Name(), ".go") {
				continue
			}
			names = append(names, f.Name())
			src, err := os.ReadFile(filepath.Join(dir, f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(string(src), "\n") {
				if p, ok := strings.CutPrefix(strings.TrimSpace(line), "//fixture:path "); ok {
					path = strings.TrimSpace(p)
				}
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		subs = append(subs, sub{dir: dir, path: path, names: names})
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].path < subs[j].path })

	fset := token.NewFileSet()
	imp := &treeImporter{base: fixtureImporter(t, fset), checked: make(map[string]*types.Package)}
	var pkgs []*Package
	pending := subs
	for len(pending) > 0 {
		var next []sub
		var lastErr error
		for _, s := range pending {
			pkg, err := checkPackage(fset, imp, s.path, s.dir, s.names)
			if err != nil {
				lastErr = err
				next = append(next, s)
				continue
			}
			imp.checked[s.path] = pkg.Types
			pkgs = append(pkgs, pkg)
		}
		if len(next) == len(pending) {
			t.Fatalf("fixture %s: cannot resolve package order: %v", fixture, lastErr)
		}
		pending = next
	}
	return pkgs
}

// runTreeFixture is runFixture for multi-package fixtures; wants are keyed
// by file:line because the tree spans files.
func runTreeFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkgs := loadFixtureTree(t, fixture)
	findings := Run(pkgs, []*Analyzer{a})

	wants := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					substr := strings.Trim(strings.TrimSpace(strings.TrimPrefix(text, "want ")), `"`)
					pos := pkg.Fset.Position(c.Pos())
					wants[filepath.Base(pos.Filename)+":"+strconv.Itoa(pos.Line)] = substr
				}
			}
		}
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		key := filepath.Base(f.Pos.Filename) + ":" + strconv.Itoa(f.Pos.Line)
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("finding %q at %s does not contain %q", f.Message, key, want)
		}
		seen[key] = true
	}
	for key, want := range wants {
		if !seen[key] {
			t.Errorf("missing finding at %s (want %q)", key, want)
		}
	}
}

// TestCtxPropFixture runs ctxprop over the spoofed pg/route pair. The
// descend case is the acceptance criterion for the analyzer: removing the
// ctx threading between a carrier and the distance sink — what deleting
// the ctx parameter from the real route/l2route/pg descent produces — must
// fail the lint.
func TestCtxPropFixture(t *testing.T) {
	runTreeFixture(t, CtxProp, "ctxprop")
}

func TestBuildCallGraph(t *testing.T) {
	g := BuildCallGraph(loadFixtureTree(t, "callgraph"))

	node := func(key string) *FuncNode {
		t.Helper()
		n := g.Node(key)
		if n == nil {
			t.Fatalf("no node for %s", key)
		}
		return n
	}
	edge := func(n *FuncNode, key string, dynamic bool) bool {
		for _, c := range n.Calls {
			if c.Key == key && c.Dynamic == dynamic {
				return true
			}
		}
		return false
	}

	use := node("fixture/cg/b.Use")
	eval := node("fixture/cg/a.Eval")
	if !edge(use, "fixture/cg/a.Eval", false) {
		t.Errorf("Use is missing the static cross-package edge to Eval: %v", use.Calls)
	}
	if !edge(eval, "fixture/cg/a.Ranker.Rank", true) {
		t.Errorf("Eval is missing the dynamic edge to the interface method: %v", eval.Calls)
	}
	if !edge(eval, "fixture/cg/a.Doubler.Rank", true) {
		t.Errorf("Eval is missing the CHA edge to the implementation: %v", eval.Calls)
	}

	hot := node("fixture/cg/a.Hot")
	if !hot.HotPath {
		t.Error("Hot is not marked //lan:hotpath")
	}
	if hot.CtxParam == nil || !hot.CtxParamUsed {
		t.Errorf("Hot context param detection: param=%v used=%v", hot.CtxParam, hot.CtxParamUsed)
	}
	if !edge(hot, "fixture/cg/a.helper", false) {
		t.Errorf("call made inside Hot's func literal is not attributed to Hot: %v", hot.Calls)
	}

	if n := node("fixture/cg/a.Panicky"); len(n.Panics) != 1 {
		t.Errorf("Panicky records %d panics, want 1", len(n.Panics))
	}
	if n := node("fixture/cg/a.Fresh"); len(n.NewContexts) != 1 {
		t.Errorf("Fresh records %d fresh contexts, want 1", len(n.NewContexts))
	}

	impl := node("fixture/cg/a.Doubler.Rank")
	static := g.ReachableFrom([]*FuncNode{use}, false)
	if static[eval] == nil {
		t.Error("static reachability from Use misses Eval")
	}
	if static[impl] != nil {
		t.Error("static reachability from Use should not cross the interface dispatch")
	}
	dynamic := g.ReachableFrom([]*FuncNode{use}, true)
	if dynamic[impl] == nil {
		t.Error("dynamic reachability from Use misses the CHA-expanded implementation")
	}
	if dynamic[impl] != use {
		t.Errorf("provenance of Doubler.Rank should be the root Use, got %v", dynamic[impl])
	}
}

// TestAllowCommentAudit pins the framework findings for malformed allow
// comments: bare, unknown-analyzer and reason-less forms are reported and
// cannot vouch for themselves.
func TestAllowCommentAudit(t *testing.T) {
	const src = `package fixture

func pair() (float64, float64) { return 1, 2 }

func reasoned() bool {
	a, b := pair()
	//lint:allow floatcmp tolerance handled by the caller
	return a == b
}

func bare() bool {
	a, b := pair()
	//lint:allow
	return a == b
}

func unknownName() bool {
	a, b := pair()
	//lint:allow nosuch some reason text
	return a == b
}

func reasonless() bool {
	a, b := pair()
	//lint:allow floatcmp
	return a == b
}
`
	pkg := loadSource(t, "fixture/allowaudit", src)
	findings := Run([]*Package{pkg}, []*Analyzer{FloatCmp})

	var framework, floatcmp []Finding
	for _, f := range findings {
		switch f.Analyzer {
		case frameworkName:
			framework = append(framework, f)
		case FloatCmp.Name:
			floatcmp = append(floatcmp, f)
		}
	}
	wantSubstrs := []string{"bare //lint:allow", "unknown analyzer", "has no reason"}
	if len(framework) != len(wantSubstrs) {
		t.Fatalf("got %d framework findings, want %d: %v", len(framework), len(wantSubstrs), framework)
	}
	for i, want := range wantSubstrs {
		if !strings.Contains(framework[i].Message, want) {
			t.Errorf("framework finding %d = %q, want substring %q", i, framework[i].Message, want)
		}
	}
	// The bare and unknown-name allows suppress nothing, and the
	// reason-less one still names floatcmp, so only the float comparisons
	// under the two malformed allows surface.
	if len(floatcmp) != 2 {
		t.Errorf("got %d floatcmp findings, want 2 (under the bare and unknown-name allows): %v", len(floatcmp), floatcmp)
	}
}
