package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotPathMarker is the annotation that roots a hotalloc region. It is a
// directive-style comment placed in the doc group of a function
// declaration:
//
//	//lan:hotpath
//	func (c *beamCtx) run(...) { ... }
//
// The marked function and every function it (transitively, statically)
// calls inside the module form the hot region; see hotalloc.go for the
// allocation rules enforced there.
const hotPathMarker = "//lan:hotpath"

// FuncNode is one module function or method in the call graph. Function
// literals do not get nodes of their own: their bodies — calls, panics,
// context creations — are attributed to the enclosing declaration, which
// matches how the invariants are stated ("BeamSearchPooled must not leak
// goroutines" covers the closures it spawns).
type FuncNode struct {
	// Key is the stable cross-package identifier, "pkgpath.Name" for
	// functions and "pkgpath.Recv.Name" for methods.
	Key string
	// Obj is the type-checker object; thanks to the shared-identity loader
	// it is the same pointer wherever the function is referenced.
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// CtxParam is the function's context.Context parameter, nil when it
	// has none. CtxParamUsed reports whether the body references it.
	CtxParam     *types.Var
	CtxParamUsed bool
	// CtxField reports a method whose receiver struct holds a
	// context.Context field (the router pattern: the context rides on the
	// per-query struct instead of every method signature).
	CtxField bool
	// HotPath reports a //lan:hotpath annotation on the declaration.
	HotPath bool

	// Calls are the outgoing edges in source order.
	Calls []CallSite
	// Panics are the positions of builtin panic(...) calls in the body.
	Panics []token.Pos
	// NewContexts are the positions of context.Background()/TODO() calls.
	NewContexts []token.Pos
}

// Name returns the function's bare name.
func (n *FuncNode) Name() string { return n.Obj.Name() }

// CarriesContext reports whether a context can reach the function without
// a signature change: it either takes one as a parameter or is a method on
// a context-carrying struct.
func (n *FuncNode) CarriesContext() bool { return n.CtxParam != nil || n.CtxField }

// CallSite is one outgoing call edge.
type CallSite struct {
	// Key is the callee's FuncNode key (also computed for callees outside
	// the module, which have no node).
	Key string
	// Callee is the invoked *types.Func: the concrete function for static
	// calls, the interface method for dynamic ones.
	Callee *types.Func
	Pos    token.Pos
	// Dynamic marks interface dispatch: both the edge to the interface
	// method itself and the class-hierarchy-analysis edges to its module
	// implementations. Analyzers choose per invariant whether to follow
	// them (libpanic does, ctxprop does not).
	Dynamic bool
}

// CallGraph is the module-wide call graph over every loaded package.
type CallGraph struct {
	// Nodes maps FuncNode keys to nodes, one per declared module function.
	Nodes map[string]*FuncNode
	byObj map[*types.Func]*FuncNode
}

// Node returns the node for key, or nil.
func (g *CallGraph) Node(key string) *FuncNode { return g.Nodes[key] }

// NodeOf returns the node declaring fn, or nil for functions outside the
// loaded packages (stdlib, interface methods).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.byObj[fn] }

// ReachableFrom returns the forward closure of roots over call edges,
// following dynamic (interface/CHA) edges only when includeDynamic is set.
// The map value is the root that first reached the node (roots map to
// themselves) — the provenance analyzers put in their messages. Traversal
// is breadth-first from roots in the given order, so provenance is
// deterministic when the caller passes a deterministically ordered root
// slice. Only module functions appear: edges into the standard library
// vanish because their targets have no nodes.
func (g *CallGraph) ReachableFrom(roots []*FuncNode, includeDynamic bool) map[*FuncNode]*FuncNode {
	reach := make(map[*FuncNode]*FuncNode)
	var queue []*FuncNode
	for _, r := range roots {
		if r != nil && reach[r] == nil {
			reach[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if c.Dynamic && !includeDynamic {
				continue
			}
			callee := g.NodeOf(c.Callee)
			if callee == nil || reach[callee] != nil {
				continue
			}
			reach[callee] = reach[n]
			queue = append(queue, callee)
		}
	}
	return reach
}

// SortedNodes returns every node ordered by key, for deterministic
// iteration (Nodes is a map).
func (g *CallGraph) SortedNodes() []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })
	return nodes
}

// funcKey builds the stable identifier for fn: "pkgpath.Name" for package
// functions, "pkgpath.Recv.Name" for methods (pointerness stripped, so a
// value and pointer method of one type cannot collide only because Go
// forbids declaring both with the same name).
func funcKey(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		recv := "?"
		if n, isNamed := t.(*types.Named); isNamed {
			recv = n.Obj().Name()
		}
		return pkgPath + "." + recv + "." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// BuildCallGraph constructs the module call graph from the loaded
// packages. It runs two passes: the first declares a node per function and
// collects the named types used for class-hierarchy analysis, the second
// extracts call edges (static calls directly; interface calls as a dynamic
// edge to the interface method plus dynamic edges to every module type
// that implements the interface).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &builder{
		graph:     &CallGraph{Nodes: make(map[string]*FuncNode), byObj: make(map[*types.Func]*FuncNode)},
		implCache: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		b.declarePackage(pkg)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, isFn := pkg.Info.Defs[fd.Name].(*types.Func); isFn {
					if node := b.graph.byObj[obj]; node != nil {
						b.addEdges(node, fd.Body, pkg)
					}
				}
			}
		}
	}
	return b.graph
}

type builder struct {
	graph *CallGraph
	// namedTypes are the module's non-interface named types, in
	// deterministic (package load, then scope name) order — the CHA
	// candidate set.
	namedTypes []*types.Named
	// implCache memoizes interface method -> implementing module methods.
	implCache map[*types.Func][]*types.Func
}

func (b *builder) declarePackage(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, isNamed := tn.Type().(*types.Named); isNamed && !types.IsInterface(named) {
			b.namedTypes = append(b.namedTypes, named)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
			if !isFn {
				continue
			}
			node := &FuncNode{
				Key:     funcKey(obj),
				Obj:     obj,
				Pkg:     pkg,
				Decl:    fd,
				HotPath: hasHotPathMarker(fd),
			}
			if sig, isSig := obj.Type().(*types.Signature); isSig {
				params := sig.Params()
				for i := 0; i < params.Len(); i++ {
					if isContextType(params.At(i).Type()) {
						node.CtxParam = params.At(i)
						break
					}
				}
				if recv := sig.Recv(); recv != nil {
					node.CtxField = hasContextField(recv.Type())
				}
			}
			b.graph.Nodes[node.Key] = node
			b.graph.byObj[obj] = node
		}
	}
}

func hasHotPathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathMarker {
			return true
		}
	}
	return false
}

// hasContextField reports whether the (possibly pointer) receiver type is
// a struct with a context.Context field.
func hasContextField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// addEdges walks one declaration body (nested function literals included)
// and records call edges, panic sites, context creations and context-param
// uses on node.
func (b *builder) addEdges(node *FuncNode, body ast.Node, pkg *Package) {
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && node.CtxParam != nil {
			if pkg.Info.Uses[id] == node.CtxParam {
				node.CtxParamUsed = true
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fun].(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					node.Panics = append(node.Panics, call.Pos())
				}
			case *types.Func:
				node.Calls = append(node.Calls, CallSite{Key: funcKey(obj), Callee: obj, Pos: call.Pos()})
			}
		case *ast.SelectorExpr:
			if sel, isSel := pkg.Info.Selections[fun]; isSel && sel.Kind() == types.MethodVal {
				fn, isFn := sel.Obj().(*types.Func)
				if !isFn {
					return true
				}
				if types.IsInterface(sel.Recv()) {
					node.Calls = append(node.Calls, CallSite{Key: funcKey(fn), Callee: fn, Pos: call.Pos(), Dynamic: true})
					for _, impl := range b.implementers(fn) {
						node.Calls = append(node.Calls, CallSite{Key: funcKey(impl), Callee: impl, Pos: call.Pos(), Dynamic: true})
					}
				} else {
					node.Calls = append(node.Calls, CallSite{Key: funcKey(fn), Callee: fn, Pos: call.Pos()})
				}
				return true
			}
			// Qualified package call: pkg.Func(...).
			if fn, isFn := pkg.Info.Uses[fun.Sel].(*types.Func); isFn {
				node.Calls = append(node.Calls, CallSite{Key: funcKey(fn), Callee: fn, Pos: call.Pos()})
				if p := fn.Pkg(); p != nil && p.Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					node.NewContexts = append(node.NewContexts, call.Pos())
				}
			}
		}
		return true
	})
}

// implementers resolves an interface method to the module methods that can
// satisfy it (class hierarchy analysis): every module named type whose
// value or pointer method set implements the interface contributes its
// method of that name.
func (b *builder) implementers(ifaceFn *types.Func) []*types.Func {
	if impls, ok := b.implCache[ifaceFn]; ok {
		return impls
	}
	var impls []*types.Func
	sig, isSig := ifaceFn.Type().(*types.Signature)
	if isSig && sig.Recv() != nil {
		if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface && iface.NumMethods() > 0 {
			for _, named := range b.namedTypes {
				var impl types.Type
				if types.Implements(types.NewPointer(named), iface) {
					impl = types.NewPointer(named)
				} else if types.Implements(named, iface) {
					impl = named
				}
				if impl == nil {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceFn.Pkg(), ifaceFn.Name())
				if m, isFn := obj.(*types.Func); isFn {
					impls = append(impls, m)
				}
			}
		}
	}
	b.implCache[ifaceFn] = impls
	return impls
}
