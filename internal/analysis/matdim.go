package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// matPkgPath is the matrix kernel package whose call sites MatDim checks.
const matPkgPath = "github.com/lansearch/lan/internal/mat"

// MatDim flags internal/mat kernel calls whose dimension arguments are
// provably inconsistent under local constant propagation: negative
// literal shapes, FromSlice literals whose element count does not match
// rows*cols, and Mul/MulT/TMul/Add/Sub/Hadamard calls whose operand
// shapes — tracked through single-assignment locals from constructor
// calls — cannot conform. The kernels panic on these mistakes at run
// time (the documented contract of internal/mat); this analyzer moves
// the provable subset of those panics to lint time.
//
// The propagation is deliberately conservative: a local's shape is
// tracked only if the variable is assigned exactly once, from a mat
// constructor or kernel call with fully known dimensions, and none of
// its fields are ever written. Anything else is unknown and never
// reported.
var MatDim = &Analyzer{
	Name: "matdim",
	Doc:  "flags internal/mat calls with provably inconsistent dimensions (local constant propagation)",
	Run:  runMatDim,
}

// matShape is a possibly-unknown (rows, cols) pair.
type matShape struct {
	rows, cols matDimVal
}

type matDimVal struct {
	known bool
	v     int64
}

func dimOf(v int64) matDimVal { return matDimVal{known: true, v: v} }

func runMatDim(pass *Pass) {
	if pass.Path == matPkgPath {
		// The kernels' own implementation compares shapes freely.
		return
	}
	for _, f := range pass.Files {
		if !importsPath(f, matPkgPath) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			(&matDimChecker{pass: pass}).checkFunc(fd)
		}
	}
}

func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return true
		}
	}
	return false
}

type matDimChecker struct {
	pass   *Pass
	shapes map[types.Object]matShape
}

func (c *matDimChecker) checkFunc(fd *ast.FuncDecl) {
	c.shapes = make(map[types.Object]matShape)
	multi := c.multiAssigned(fd.Body)

	// ast.Inspect visits in source order, so a variable's recorded shape
	// is available to every later use within the function.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.Info.Defs[ident]
				if obj == nil || multi[obj] {
					continue
				}
				if sh, ok := c.exprShape(n.Rhs[i]); ok {
					c.shapes[obj] = sh
				}
			}
		}
		return true
	})
}

// multiAssigned returns the objects that are written more than once (a
// definition plus any plain assignment, including field writes), which
// the propagation refuses to track.
func (c *matDimChecker) multiAssigned(body *ast.BlockStmt) map[types.Object]bool {
	multi := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			switch lhs := lhs.(type) {
			case *ast.Ident:
				if obj := c.pass.Info.Uses[lhs]; obj != nil {
					multi[obj] = true
				}
			case *ast.SelectorExpr:
				if ident, ok := lhs.X.(*ast.Ident); ok {
					if obj := c.pass.Info.Uses[ident]; obj != nil {
						multi[obj] = true
					}
				}
			}
		}
		return true
	})
	return multi
}

// matFunc returns the internal/mat function name called by e, or "".
func (c *matDimChecker) matFunc(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok || !usesPackage(c.pass.Info, ident, matPkgPath) {
		return ""
	}
	return sel.Sel.Name
}

// checkCall reports provable dimension inconsistencies of one call.
func (c *matDimChecker) checkCall(call *ast.CallExpr) {
	switch c.matFunc(call.Fun) {
	case "New", "Randn", "GetScratch":
		if len(call.Args) < 2 {
			return
		}
		r, rok := c.constInt(call.Args[0])
		cc, cok := c.constInt(call.Args[1])
		if rok && r < 0 || cok && cc < 0 {
			c.pass.Reportf(call.Pos(), "mat shape (%s, %s) has a negative dimension", c.dimStr(r, rok), c.dimStr(cc, cok))
		}
	case "FromSlice":
		if len(call.Args) != 3 {
			return
		}
		r, rok := c.constInt(call.Args[0])
		cc, cok := c.constInt(call.Args[1])
		if !rok || !cok {
			return
		}
		if r < 0 || cc < 0 {
			c.pass.Reportf(call.Pos(), "mat shape (%d, %d) has a negative dimension", r, cc)
			return
		}
		n, ok := literalLen(call.Args[2])
		if ok && int64(n) != r*cc {
			c.pass.Reportf(call.Pos(), "mat.FromSlice: %d values for a %dx%d matrix (want %d)", n, r, cc, r*cc)
		}
	case "Mul":
		c.checkPair(call, "mat.Mul", func(a, b matShape) (matDimVal, matDimVal) { return a.cols, b.rows })
	case "MulT":
		c.checkPair(call, "mat.MulT", func(a, b matShape) (matDimVal, matDimVal) { return a.cols, b.cols })
	case "TMul":
		c.checkPair(call, "mat.TMul", func(a, b matShape) (matDimVal, matDimVal) { return a.rows, b.rows })
	case "MulInto":
		c.checkInto(call, "mat.MulInto",
			func(a, b matShape) (matDimVal, matDimVal) { return a.cols, b.rows },
			func(a, b matShape) matShape { return matShape{rows: a.rows, cols: b.cols} })
	case "MulTInto":
		c.checkInto(call, "mat.MulTInto",
			func(a, b matShape) (matDimVal, matDimVal) { return a.cols, b.cols },
			func(a, b matShape) matShape { return matShape{rows: a.rows, cols: b.rows} })
	case "TMulInto":
		c.checkInto(call, "mat.TMulInto",
			func(a, b matShape) (matDimVal, matDimVal) { return a.rows, b.rows },
			func(a, b matShape) matShape { return matShape{rows: a.cols, cols: b.cols} })
	case "Add", "Sub", "Hadamard":
		if len(call.Args) != 2 {
			return
		}
		a, aok := c.exprShape(call.Args[0])
		b, bok := c.exprShape(call.Args[1])
		if !aok || !bok {
			return
		}
		if dimsConflict(a.rows, b.rows) || dimsConflict(a.cols, b.cols) {
			c.pass.Reportf(call.Pos(), "elementwise mat op on %s and %s matrices", shapeStr(a), shapeStr(b))
		}
	}
}

// checkPair reports when the two dimensions that a product-style kernel
// requires to be equal are provably different.
func (c *matDimChecker) checkPair(call *ast.CallExpr, name string, pick func(a, b matShape) (matDimVal, matDimVal)) {
	if len(call.Args) != 2 {
		return
	}
	a, aok := c.exprShape(call.Args[0])
	b, bok := c.exprShape(call.Args[1])
	if !aok || !bok {
		return
	}
	da, db := pick(a, b)
	if dimsConflict(da, db) {
		c.pass.Reportf(call.Pos(), "%s: inner dimensions %d and %d of %s and %s do not conform", name, da.v, db.v, shapeStr(a), shapeStr(b))
	}
}

// checkInto reports the two provable mistakes of a destination-reusing
// kernel: non-conforming operands (same rule as the allocating variant)
// and a destination whose shape cannot hold the product.
func (c *matDimChecker) checkInto(call *ast.CallExpr, name string, pick func(a, b matShape) (matDimVal, matDimVal), prod func(a, b matShape) matShape) {
	if len(call.Args) != 3 {
		return
	}
	a, aok := c.exprShape(call.Args[1])
	b, bok := c.exprShape(call.Args[2])
	if !aok || !bok {
		return
	}
	da, db := pick(a, b)
	if dimsConflict(da, db) {
		c.pass.Reportf(call.Pos(), "%s: inner dimensions %d and %d of %s and %s do not conform", name, da.v, db.v, shapeStr(a), shapeStr(b))
		return
	}
	dst, dok := c.exprShape(call.Args[0])
	if !dok {
		return
	}
	p := prod(a, b)
	if dimsConflict(dst.rows, p.rows) || dimsConflict(dst.cols, p.cols) {
		c.pass.Reportf(call.Pos(), "%s: destination %s for a %s product", name, shapeStr(dst), shapeStr(p))
	}
}

func dimsConflict(a, b matDimVal) bool { return a.known && b.known && a.v != b.v }

// exprShape derives the (rows, cols) of a matrix-typed expression when
// the local propagation can prove it.
func (c *matDimChecker) exprShape(e ast.Expr) (matShape, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.Info.Uses[e]
		if obj == nil {
			return matShape{}, false
		}
		sh, ok := c.shapes[obj]
		return sh, ok
	case *ast.ParenExpr:
		return c.exprShape(e.X)
	case *ast.CallExpr:
		return c.callShape(e)
	}
	return matShape{}, false
}

// callShape derives the result shape of a mat constructor or kernel call.
func (c *matDimChecker) callShape(call *ast.CallExpr) (matShape, bool) {
	// x.Clone() preserves x's shape.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" && len(call.Args) == 0 {
		if ident, ok := sel.X.(*ast.Ident); ok {
			return c.exprShape(ident)
		}
	}
	name := c.matFunc(call.Fun)
	argShape := func(i int) (matShape, bool) {
		if i >= len(call.Args) {
			return matShape{}, false
		}
		return c.exprShape(call.Args[i])
	}
	switch name {
	case "New", "Randn", "FromSlice", "GetScratch":
		if len(call.Args) < 2 {
			return matShape{}, false
		}
		r, rok := c.constInt(call.Args[0])
		cc, cok := c.constInt(call.Args[1])
		if !rok || !cok || r < 0 || cc < 0 {
			return matShape{}, false
		}
		return matShape{rows: dimOf(r), cols: dimOf(cc)}, true
	case "Mul":
		a, aok := argShape(0)
		b, bok := argShape(1)
		if aok && bok {
			return matShape{rows: a.rows, cols: b.cols}, true
		}
	case "MulT":
		a, aok := argShape(0)
		b, bok := argShape(1)
		if aok && bok {
			return matShape{rows: a.rows, cols: b.rows}, true
		}
	case "TMul":
		a, aok := argShape(0)
		b, bok := argShape(1)
		if aok && bok {
			return matShape{rows: a.cols, cols: b.cols}, true
		}
	case "MulInto":
		a, aok := argShape(1)
		b, bok := argShape(2)
		if aok && bok {
			return matShape{rows: a.rows, cols: b.cols}, true
		}
	case "MulTInto":
		a, aok := argShape(1)
		b, bok := argShape(2)
		if aok && bok {
			return matShape{rows: a.rows, cols: b.rows}, true
		}
	case "TMulInto":
		a, aok := argShape(1)
		b, bok := argShape(2)
		if aok && bok {
			return matShape{rows: a.cols, cols: b.cols}, true
		}
	case "Add", "Sub", "Hadamard":
		if a, ok := argShape(0); ok {
			return a, true
		}
		return argShape(1)
	case "Scale":
		return argShape(0)
	case "Transpose":
		if a, ok := argShape(0); ok {
			return matShape{rows: a.cols, cols: a.rows}, true
		}
	}
	return matShape{}, false
}

// constInt evaluates e as a compile-time integer constant.
func (c *matDimChecker) constInt(e ast.Expr) (int64, bool) {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// literalLen counts the elements of a positional composite literal such
// as []float64{1, 2, 3}. Keyed literals (sparse index syntax) are not
// countable positionally and return ok=false.
func literalLen(e ast.Expr) (int, bool) {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return 0, false
	}
	for _, el := range cl.Elts {
		if _, keyed := el.(*ast.KeyValueExpr); keyed {
			return 0, false
		}
	}
	return len(cl.Elts), true
}

func (c *matDimChecker) dimStr(v int64, known bool) string {
	if !known {
		return "?"
	}
	return constant.MakeInt64(v).ExactString()
}

func shapeStr(s matShape) string {
	return c2s(s.rows) + "x" + c2s(s.cols)
}

func c2s(d matDimVal) string {
	if !d.known {
		return "?"
	}
	return constant.MakeInt64(d.v).ExactString()
}
