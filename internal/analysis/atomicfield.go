package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// AtomicField enforces the two struct-level concurrency hygiene rules
// whose violation produced the timedMetric data race that PR 4 caught
// dynamically with -race:
//
//  1. Mixed access: a struct field that is passed to a sync/atomic
//     function (&s.f) anywhere in the module must never be read or
//     written plainly anywhere else. Atomic and plain access to the same
//     word is a data race even when each side looks locally correct, and
//     because the loader gives fields one identity module-wide, the check
//     crosses package boundaries.
//  2. Lock copying: a type that (transitively, through value fields and
//     arrays) contains sync or sync/atomic state must not be copied — no
//     value receivers, no by-value parameters, no *p dereference
//     assignments. A copied mutex guards nothing and a copied atomic
//     splits its writers.
//
// The modern fix for rule 1 is usually to switch the field to
// atomic.Int64 & friends, which makes plain access impossible to write.
var AtomicField = &Analyzer{
	Name:      "atomicfield",
	Doc:       "fields accessed via sync/atomic must never be accessed plainly; lock-bearing structs must not be copied",
	RunGlobal: runAtomicField,
}

func runAtomicField(p *GlobalPass) {
	// Pass 1: collect fields used atomically, and mark those selector
	// expressions as sanctioned so pass 2 does not flag the atomic call
	// sites themselves.
	atomicAt := make(map[*types.Var]string)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pkg.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := selectedField(pkg.Info, sel)
				if field == nil {
					return true
				}
				sanctioned[sel] = true
				if _, seen := atomicAt[field]; !seen {
					pos := pkg.Fset.Position(call.Pos())
					atomicAt[field] = filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
				}
				return true
			})
		}
	}

	// Pass 2: flag plain accesses of those fields, module-wide.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				sel, ok := x.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				field := selectedField(pkg.Info, sel)
				if field == nil {
					return true
				}
				if at, isAtomic := atomicAt[field]; isAtomic {
					p.Reportf(pkg, sel.Sel.Pos(),
						"field %s is accessed via sync/atomic (%s) and must not be read or written plainly; consider the atomic.Int64-style types",
						field.Name(), at)
				}
				return true
			})
		}
	}

	// Copy rules for lock-bearing types.
	memo := make(map[types.Type]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					checkByValue(p, pkg, fd.Recv.List[0].Type, memo,
						"method "+fd.Name.Name+" has a value receiver of lock-bearing type %s; copying tears its sync state — use a pointer receiver")
				}
				if fd.Type.Params != nil {
					for _, param := range fd.Type.Params.List {
						checkByValue(p, pkg, param.Type, memo,
							"parameter of "+fd.Name.Name+" passes lock-bearing type %s by value; pass a pointer")
					}
				}
			}
			ast.Inspect(f, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, rhs := range as.Rhs {
					star, isStar := ast.Unparen(rhs).(*ast.StarExpr)
					if !isStar {
						continue
					}
					if tv, okType := pkg.Info.Types[star]; okType && tv.Type != nil && lockBearing(tv.Type, memo) {
						p.Reportf(pkg, star.Pos(), "assignment dereferences and copies lock-bearing type %s", tv.Type.String())
					}
				}
				return true
			})
		}
	}
}

// checkByValue reports when the (non-pointer) type expression denotes a
// lock-bearing type.
func checkByValue(p *GlobalPass, pkg *Package, texpr ast.Expr, memo map[types.Type]bool, format string) {
	if _, isPtr := texpr.(*ast.StarExpr); isPtr {
		return
	}
	tv, ok := pkg.Info.Types[texpr]
	if !ok || tv.Type == nil {
		return
	}
	if lockBearing(tv.Type, memo) {
		p.Reportf(pkg, texpr.Pos(), format, tv.Type.String())
	}
}

// selectedField resolves sel to the struct field it selects, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, _ := selection.Obj().(*types.Var)
	return field
}

// lockBearing reports whether t contains sync or sync/atomic state by
// value: such types must never be copied. Pointer, slice, map, chan and
// interface fields break the chain — copying a pointer to a mutex is
// fine.
func lockBearing(t types.Type, memo map[types.Type]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // cycle guard; real value stored below
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil {
			if path := obj.Pkg().Path(); path == "sync" || path == "sync/atomic" {
				result = true
			}
		}
		if !result {
			result = lockBearing(u.Underlying(), memo)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearing(u.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = lockBearing(u.Elem(), memo)
	}
	memo[t] = result
	return result
}
