package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// obsPkgPath is the observability package whose registration call sites
// MetricName checks.
const obsPkgPath = "github.com/lansearch/lan/internal/obs"

// MetricName enforces the repo's metric naming convention at every
// obs.Registry registration site (Counter, CounterVec, CounterFunc,
// Gauge, GaugeFunc, Histogram, Info):
//
//   - the name is a compile-time string constant — dynamic names defeat
//     both this check and dashboard greppability;
//   - it matches lan_<subsystem>_<name>_<unit> (lowercase snake case
//     starting with "lan"; "lanserve_..." satisfies this, the subsystem
//     is fused into the prefix);
//   - counter families end in _total and nothing else does;
//   - each name is registered at exactly one call site per package, so a
//     family has a single owner (the registry's runtime idempotence is a
//     safety net, not a license to scatter registrations).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "enforces lan_<subsystem>_<name>_<unit> metric names and one registration site per family",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^lan[a-z0-9]*(_[a-z0-9]+)+$`)

// registryCounterMethods are the obs.Registry methods that register
// counter families; the remaining registryMethods register non-counters.
var registryCounterMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
}

var registryMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true, "Histogram": true, "Info": true,
}

func runMetricName(pass *Pass) {
	seen := make(map[string]token.Position)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryMethodName(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, isConst := stringConstant(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant")
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q does not match lan_<subsystem>_<name>_<unit> (lowercase snake case starting with lan)", name)
			}
			if registryCounterMethods[method] {
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
				}
			} else if strings.HasSuffix(name, "_total") {
				pass.Reportf(call.Args[0].Pos(), "%s %q must not end in _total (reserved for counters)", strings.ToLower(method), name)
			}
			if first, dup := seen[name]; dup {
				pass.Reportf(call.Args[0].Pos(), "metric %q registered more than once in this package (first at %s:%d)", name, first.Filename, first.Line)
			} else {
				seen[name] = pass.Fset.Position(call.Args[0].Pos())
			}
			return true
		})
	}
}

// registryMethodName returns the obs.Registry registration method invoked
// by call, or ok=false when call is not a registration.
func registryMethodName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// stringConstant evaluates e as a compile-time string constant.
func stringConstant(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
