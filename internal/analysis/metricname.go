package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// obsPkgPath is the observability package whose registration call sites
// MetricName checks.
const obsPkgPath = "github.com/lansearch/lan/internal/obs"

// MetricName enforces the repo's metric naming convention at every
// obs.Registry registration site (Counter, CounterVec, CounterFunc,
// Gauge, GaugeFunc, Histogram, Info):
//
//   - the name is a compile-time string constant — dynamic names defeat
//     both this check and dashboard greppability;
//   - it matches lan_<subsystem>_<name>_<unit> (lowercase snake case
//     starting with "lan"; "lanserve_..." satisfies this, the subsystem
//     is fused into the prefix);
//   - counter families end in _total and nothing else does;
//   - each name is registered at exactly one call site per package, so a
//     family has a single owner (the registry's runtime idempotence is a
//     safety net, not a license to scatter registrations).
//
// Module-wide, it additionally flags dead families: a Counter, CounterVec,
// Gauge or Histogram whose handle (the variable or struct field the
// registration result is assigned to) is never touched again anywhere in
// the module is registered but can never move — it silently exports a
// frozen zero, which reads as "nothing happened" on a dashboard when the
// truth is "nothing was instrumented". Callback-driven families
// (CounterFunc, GaugeFunc, Info) are exempt: registration alone makes them
// live. A registration whose result is discarded outright is dead on
// arrival.
var MetricName = &Analyzer{
	Name:      "metricname",
	Doc:       "enforces lan_<subsystem>_<name>_<unit> metric names, one registration site per family, and no dead families",
	Run:       runMetricName,
	RunGlobal: runMetricDead,
}

var metricNameRE = regexp.MustCompile(`^lan[a-z0-9]*(_[a-z0-9]+)+$`)

// registryCounterMethods are the obs.Registry methods that register
// counter families; the remaining registryMethods register non-counters.
var registryCounterMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
}

var registryMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true, "Histogram": true, "Info": true,
}

func runMetricName(pass *Pass) {
	seen := make(map[string]token.Position)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryMethodName(pass.Info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, isConst := stringConstant(pass.Info, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant")
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q does not match lan_<subsystem>_<name>_<unit> (lowercase snake case starting with lan)", name)
			}
			if registryCounterMethods[method] {
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
				}
			} else if strings.HasSuffix(name, "_total") {
				pass.Reportf(call.Args[0].Pos(), "%s %q must not end in _total (reserved for counters)", strings.ToLower(method), name)
			}
			if first, dup := seen[name]; dup {
				pass.Reportf(call.Args[0].Pos(), "metric %q registered more than once in this package (first at %s:%d)", name, first.Filename, first.Line)
			} else {
				seen[name] = pass.Fset.Position(call.Args[0].Pos())
			}
			return true
		})
	}
}

// registryMethodName returns the obs.Registry registration method invoked
// by call, or ok=false when call is not a registration.
func registryMethodName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// stringConstant evaluates e as a compile-time string constant.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// slogEmitMethods are the log/slog emission calls SlogQID checks; With,
// WithGroup and handler plumbing are construction, not emission.
var slogEmitMethods = map[string]bool{
	"Debug": true, "Info": true, "Warn": true, "Error": true,
	"DebugContext": true, "InfoContext": true, "WarnContext": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true,
}

// slogQueryIDAttr is the attribute every serve-path log record must carry
// so logs join against traces, exemplars and /debug/trace/<id>.
const slogQueryIDAttr = "query_id"

// SlogQID rides with MetricName as the second observability-contract
// analyzer: on the serve path (packages whose import path contains
// "lanserve"), every log/slog emission must carry a query_id attribute.
// A slow-query warning or search failure that cannot be joined to its
// trace and exemplar is an observability dead end — the operator sees
// "something was slow" with no handle to pull. Non-query log sites
// (startup, metrics exposition, shutdown) opt out with
// //lint:allow slogqid <reason>.
var SlogQID = &Analyzer{
	Name: "slogqid",
	Doc:  "serve-path slog calls must carry the query_id attribute so logs join traces and exemplars",
	Run:  runSlogQID,
}

func runSlogQID(pass *Pass) {
	if !strings.Contains(pass.Path, "lanserve") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !slogEmitMethods[sel.Sel.Name] || !isSlogEmitter(pass.Info, sel) {
				return true
			}
			hasQID := false
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok {
						if s, isConst := stringConstant(pass.Info, e); isConst && s == slogQueryIDAttr {
							hasQID = true
						}
					}
					return !hasQID
				})
				if hasQID {
					break
				}
			}
			if !hasQID {
				pass.Reportf(call.Pos(), "slog %s on the serve path omits the %s attribute (logs must join traces and exemplars)", sel.Sel.Name, slogQueryIDAttr)
			}
			return true
		})
	}
}

// isSlogEmitter reports whether sel selects off the log/slog package
// itself or a value of type (*)slog.Logger; unrelated types that happen
// to have Info/Warn/... methods are not emitters.
func isSlogEmitter(info *types.Info, sel *ast.SelectorExpr) bool {
	if id, ok := sel.X.(*ast.Ident); ok && usesPackage(info, id, "log/slog") {
		return true
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Logger" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
}

// deadCheckedMethods are the hand-driven registration methods subject to
// the dead-family sweep.
var deadCheckedMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "Gauge": true, "Histogram": true,
}

// runMetricDead is the module-wide dead-family sweep: it resolves each
// hand-driven registration to the handle object it feeds (package var,
// local var, or struct field — identities are module-wide thanks to the
// shared-checker loader), then scans every package for any other use of
// that handle.
func runMetricDead(p *GlobalPass) {
	type registration struct {
		pkg  *Package
		pos  token.Pos
		name string
	}
	var order []types.Object
	regs := make(map[types.Object]registration)
	self := make(map[*ast.Ident]bool)

	record := func(pkg *Package, target *ast.Ident, obj types.Object, call *ast.CallExpr) {
		if obj == nil {
			return
		}
		self[target] = true
		if _, dup := regs[obj]; dup {
			return
		}
		name, _ := stringConstant(pkg.Info, call.Args[0])
		regs[obj] = registration{pkg: pkg, pos: call.Pos(), name: name}
		order = append(order, obj)
	}
	isDeadChecked := func(pkg *Package, e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return nil, false
		}
		method, ok := registryMethodName(pkg.Info, call)
		return call, ok && deadCheckedMethods[method]
	}

	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := isDeadChecked(pkg, n.X); ok {
						name, _ := stringConstant(pkg.Info, call.Args[0])
						p.Reportf(pkg, call.Pos(), "metric %q is registered but its handle is discarded (dead family); keep it and record to it", name)
					}
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, rhs := range n.Rhs {
						call, ok := isDeadChecked(pkg, rhs)
						if !ok {
							continue
						}
						switch lhs := ast.Unparen(n.Lhs[i]).(type) {
						case *ast.Ident:
							if lhs.Name == "_" {
								name, _ := stringConstant(pkg.Info, call.Args[0])
								p.Reportf(pkg, call.Pos(), "metric %q is registered but its handle is discarded (dead family); keep it and record to it", name)
								continue
							}
							obj := pkg.Info.Defs[lhs]
							if obj == nil {
								obj = pkg.Info.Uses[lhs]
							}
							record(pkg, lhs, obj, call)
						case *ast.SelectorExpr:
							record(pkg, lhs.Sel, pkg.Info.Uses[lhs.Sel], call)
						}
					}
				case *ast.ValueSpec:
					for i, v := range n.Values {
						if call, ok := isDeadChecked(pkg, v); ok && i < len(n.Names) {
							record(pkg, n.Names[i], pkg.Info.Defs[n.Names[i]], call)
						}
					}
				case *ast.KeyValueExpr:
					if call, ok := isDeadChecked(pkg, n.Value); ok {
						if key, isIdent := n.Key.(*ast.Ident); isIdent {
							record(pkg, key, pkg.Info.Uses[key], call)
						}
					}
				}
				return true
			})
		}
	}
	if len(regs) == 0 {
		return
	}

	alive := make(map[types.Object]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || self[id] {
					return true
				}
				if obj := pkg.Info.Uses[id]; obj != nil {
					if _, registered := regs[obj]; registered {
						alive[obj] = true
					}
				}
				return true
			})
		}
	}
	for _, obj := range order {
		if alive[obj] {
			continue
		}
		r := regs[obj]
		p.Reportf(r.pkg, r.pos,
			"metric %q is registered into %s but never incremented, observed or read anywhere in the module (dead family)",
			r.name, obj.Name())
	}
}
