// Package analysis is a small, stdlib-only static-analysis framework plus
// the project-specific analyzers that enforce LAN's correctness invariants
// (see DESIGN.md, "Static analysis & determinism policy"). It exists
// because the repo's headline claims — Lemma 1/Theorem 1 exactness of the
// pruned routing and Theorem 2 bit-identity of compressed embeddings —
// collapse if float equality, global randomness or shape bugs silently
// perturb results. The framework mirrors the shape of golang.org/x/tools'
// go/analysis but is built purely on go/ast, go/parser and go/types, per
// the repo's toolchain-only rule.
//
// Suppressions: a finding is silenced by a comment of the form
//
//	//lint:allow <name> [reason...]
//
// placed either on the offending line or on the line directly above it.
// The reason is free text; writing one is strongly encouraged because the
// annotation is the audit trail for why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a type-checked package via its
// Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in findings and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, GlobalRand, LibPanic, MatDim, MetricName}
}

// ByName resolves a comma-separated list of analyzer names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no analyzers selected")
	}
	return out, nil
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path.
	Path string

	suppress suppressionIndex
	findings *[]Finding
}

// IsCommand reports whether the package is a main package.
func (p *Pass) IsCommand() bool { return p.Pkg.Name() == "main" }

// IsInternal reports whether the package lives under an internal/ tree.
func (p *Pass) IsInternal() bool {
	return strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal")
}

// IsPublicLibrary reports whether the package is part of the importable
// public API surface: a non-main package outside internal/.
func (p *Pass) IsPublicLibrary() bool { return !p.IsCommand() && !p.IsInternal() }

// Reportf records a finding at pos unless an applicable //lint:allow
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the loaded packages and returns
// all findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		idx := buildSuppressionIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				suppress: idx,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressionIndex maps file -> line -> analyzer names allowed on that
// line (including lines directly below an allow comment).
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

const allowPrefix = "//lint:allow "

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					// The comment covers its own line (trailing style) and
					// the next line (comment-above style).
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = make(map[string]bool)
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx
}

// enclosingFuncName returns the name of the innermost function declaration
// containing pos ("" when not inside one, e.g. a package-level var
// initializer). Methods report their bare name.
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pos >= fd.Pos() && pos < fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// usesPackage reports whether ident denotes an import of the package with
// the given path (e.g. math/rand) according to the type info.
func usesPackage(info *types.Info, ident *ast.Ident, path string) bool {
	obj := info.Uses[ident]
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
