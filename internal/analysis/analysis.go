// Package analysis is a small, stdlib-only static-analysis framework plus
// the project-specific analyzers that enforce LAN's correctness invariants
// (see DESIGN.md, "Static analysis & determinism policy"). It exists
// because the repo's headline claims — Lemma 1/Theorem 1 exactness of the
// pruned routing and Theorem 2 bit-identity of compressed embeddings —
// collapse if float equality, global randomness or shape bugs silently
// perturb results. The framework mirrors the shape of golang.org/x/tools'
// go/analysis but is built purely on go/ast, go/parser and go/types, per
// the repo's toolchain-only rule.
//
// Suppressions: a finding is silenced by a comment of the form
//
//	//lint:allow <name> <reason...>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory free text — the annotation is the audit trail
// for why the invariant does not apply, so a reason-less or
// unknown-analyzer allow is itself reported as a framework finding.
//
// Analyzers come in two shapes: per-package ones (Run) see one
// type-checked package at a time, and module-wide ones (RunGlobal) see
// every loaded package plus the cross-package call graph built by
// BuildCallGraph, which the shared-identity loader (load.go) makes
// possible without golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Per-package analyzers set Run, which
// inspects one type-checked package via its Pass; module-wide analyzers
// set RunGlobal, which sees every loaded package plus the call graph. An
// analyzer may set both (metricname: per-package naming rules plus the
// global dead-family sweep).
type Analyzer struct {
	// Name is the identifier used in findings and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package (may be nil).
	Run func(*Pass)
	// RunGlobal executes the analyzer once over the whole module (may be
	// nil).
	RunGlobal func(*GlobalPass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField, CtxProp, FloatCmp, GlobalRand, GoLeak,
		HotAlloc, LibPanic, MatDim, MetricName, SlogQID,
	}
}

// frameworkName is the pseudo-analyzer name attached to findings about the
// suppression comments themselves; they are not suppressible.
const frameworkName = "framework"

// ByName resolves a comma-separated list of analyzer names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no analyzers selected")
	}
	return out, nil
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package import path.
	Path string

	suppress suppressionIndex
	findings *[]Finding
}

// IsCommand reports whether the package is a main package.
func (p *Pass) IsCommand() bool { return p.Pkg.Name() == "main" }

// IsInternal reports whether the package lives under an internal/ tree.
func (p *Pass) IsInternal() bool {
	return strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal")
}

// IsPublicLibrary reports whether the package is part of the importable
// public API surface: a non-main package outside internal/.
func (p *Pass) IsPublicLibrary() bool { return !p.IsCommand() && !p.IsInternal() }

// IsCommand reports whether the package is a main package.
func (p *Package) IsCommand() bool { return p.Types.Name() == "main" }

// IsInternal reports whether the package lives under an internal/ tree.
func (p *Package) IsInternal() bool {
	return strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal")
}

// IsPublicLibrary reports whether the package is part of the importable
// public API surface: a non-main package outside internal/.
func (p *Package) IsPublicLibrary() bool { return !p.IsCommand() && !p.IsInternal() }

// Reportf records a finding at pos unless an applicable //lint:allow
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// GlobalPass carries the whole loaded module through one module-wide
// analyzer.
type GlobalPass struct {
	Analyzer *Analyzer
	// Pkgs are all loaded packages in dependency order.
	Pkgs []*Package
	// Graph is the module call graph over Pkgs.
	Graph *CallGraph

	suppress suppressionIndex
	findings *[]Finding
}

// Reportf records a finding at pos (resolved through pkg's file set)
// unless an applicable //lint:allow comment suppresses it.
func (p *GlobalPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the loaded packages and returns
// all findings sorted by position. Module-wide analyzers run once against
// a call graph built over all packages; per-package analyzers run per
// package. Run also audits every //lint:allow comment: one that names an
// unknown analyzer or omits the reason text is reported as a
// non-suppressible "framework" finding.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	suppress := make(suppressionIndex)
	for _, pkg := range pkgs {
		buildSuppressionIndex(pkg.Fset, pkg.Files, suppress)
		auditAllowComments(pkg, &findings)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				suppress: suppress,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunGlobal == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		a.RunGlobal(&GlobalPass{
			Analyzer: a,
			Pkgs:     pkgs,
			Graph:    graph,
			suppress: suppress,
			findings: &findings,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressionIndex maps file -> line -> analyzer names allowed on that
// line (including lines directly below an allow comment).
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

const allowPrefix = "//lint:allow"

// buildSuppressionIndex records every //lint:allow comment in files into
// idx (filename-keyed, so one index can span packages).
func buildSuppressionIndex(fset *token.FileSet, files []*ast.File, idx suppressionIndex) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					// The comment covers its own line (trailing style) and
					// the next line (comment-above style).
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = make(map[string]bool)
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
}

// auditAllowComments enforces the suppression contract: every
// //lint:allow must name known analyzers and carry a reason. Violations
// are "framework" findings, deliberately outside the suppression
// machinery — an allow comment cannot vouch for itself.
func auditAllowComments(pkg *Package, findings *[]Finding) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	report := func(pos token.Pos, format string, args ...any) {
		*findings = append(*findings, Finding{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: frameworkName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "bare //lint:allow: write //lint:allow <analyzer> <reason>")
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						report(c.Pos(), "//lint:allow names unknown analyzer %q", name)
					}
				}
				if len(fields) < 2 {
					report(c.Pos(), "//lint:allow %s has no reason; the reason is the audit trail for why the invariant does not apply", fields[0])
				}
			}
		}
	}
}

// enclosingFuncName returns the name of the innermost function declaration
// containing pos ("" when not inside one, e.g. a package-level var
// initializer). Methods report their bare name.
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pos >= fd.Pos() && pos < fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// usesPackage reports whether ident denotes an import of the package with
// the given path (e.g. math/rand) according to the type info.
func usesPackage(info *types.Info, ident *ast.Ident, path string) bool {
	obj := info.Uses[ident]
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
