// Package nn builds neural network layers and training machinery on top of
// the autograd engine: parameter registries, linear layers, multilayer
// perceptrons, the Adam optimizer with L2 weight decay (the paper's
// regularizer), and parameter (de)serialization for trained models.
package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/mat"
)

// Params is a named registry of trainable parameters. Models register
// their parameters so optimizers and serializers can walk them.
type Params struct {
	names  []string
	values map[string]*autograd.Value
}

// NewParams returns an empty registry.
func NewParams() *Params {
	return &Params{values: make(map[string]*autograd.Value)}
}

// Add registers a new trainable parameter under name and returns it.
func (p *Params) Add(name string, m *mat.Matrix) *autograd.Value {
	if _, ok := p.values[name]; ok {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	v := autograd.Param(m)
	p.names = append(p.names, name)
	p.values[name] = v
	return v
}

// Get returns the parameter registered under name, or nil.
func (p *Params) Get(name string) *autograd.Value { return p.values[name] }

// Names returns the registered names in registration order.
func (p *Params) Names() []string { return append([]string(nil), p.names...) }

// All returns the parameters in registration order.
func (p *Params) All() []*autograd.Value {
	out := make([]*autograd.Value, len(p.names))
	for i, n := range p.names {
		out[i] = p.values[n]
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (p *Params) ZeroGrad() {
	for _, v := range p.values {
		v.ZeroGrad()
	}
}

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, v := range p.values {
		n += len(v.Data.Data)
	}
	return n
}

// paramWire is the JSON wire form of one parameter.
type paramWire struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// Save serializes all parameter tensors as JSON.
func (p *Params) Save(w io.Writer) error {
	wire := make([]paramWire, 0, len(p.names))
	names := append([]string(nil), p.names...)
	sort.Strings(names)
	for _, n := range names {
		v := p.values[n]
		wire = append(wire, paramWire{Name: n, Rows: v.Data.Rows, Cols: v.Data.Cols, Data: v.Data.Data})
	}
	return json.NewEncoder(w).Encode(wire)
}

// Load restores parameter tensors saved by Save. Every stored tensor must
// match a registered parameter's shape.
func (p *Params) Load(r io.Reader) error {
	var wire []paramWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return err
	}
	for _, pw := range wire {
		v, ok := p.values[pw.Name]
		if !ok {
			return fmt.Errorf("nn: unknown parameter %q", pw.Name)
		}
		if v.Data.Rows != pw.Rows || v.Data.Cols != pw.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, stored %dx%d",
				pw.Name, v.Data.Rows, v.Data.Cols, pw.Rows, pw.Cols)
		}
		copy(v.Data.Data, pw.Data)
	}
	return nil
}

// Linear is a fully connected layer: x (N x in) -> x*W + b (N x out).
type Linear struct {
	W *autograd.Value // in x out
	B *autograd.Value // 1 x out
}

// NewLinear registers a linear layer's parameters under prefix with
// Glorot-style initialization from rng.
func NewLinear(p *Params, prefix string, in, out int, rng *rand.Rand) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: p.Add(prefix+".W", mat.Randn(in, out, std, rng)),
		B: p.Add(prefix+".B", mat.New(1, out)),
	}
}

// Apply computes x*W + b.
func (l *Linear) Apply(x *autograd.Value) *autograd.Value {
	return autograd.AddRowBroadcast(autograd.MatMul(x, l.W), l.B)
}

// MLP is a multilayer perceptron with ReLU activations between layers and
// a linear final layer.
type MLP struct {
	Layers []*Linear
}

// NewMLP registers an MLP with the given layer sizes (len >= 2): sizes[0]
// inputs, sizes[len-1] outputs.
func NewMLP(p *Params, prefix string, sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 1; i < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(p, fmt.Sprintf("%s.l%d", prefix, i-1), sizes[i-1], sizes[i], rng))
	}
	return m
}

// Apply runs the MLP on x (N x sizes[0]).
func (m *MLP) Apply(x *autograd.Value) *autograd.Value {
	for i, l := range m.Layers {
		x = l.Apply(x)
		if i < len(m.Layers)-1 {
			x = autograd.ReLU(x)
		}
	}
	return x
}

// Infer runs the MLP on x (N x sizes[0]) without building an autograd
// tape, using pooled scratch for the hidden activations. The arithmetic
// (kernel, accumulation order, bias broadcast, ReLU) matches Apply
// exactly, so Infer(x) equals Apply(Const(x)).Data bit for bit. x is not
// modified; the returned matrix is freshly allocated and owned by the
// caller.
func (m *MLP) Infer(x *mat.Matrix) *mat.Matrix {
	cur := x
	for i, l := range m.Layers {
		var next *mat.Matrix
		if i == len(m.Layers)-1 {
			next = mat.New(cur.Rows, l.W.Data.Cols)
		} else {
			next = mat.GetScratch(cur.Rows, l.W.Data.Cols)
		}
		mat.MulInto(next, cur, l.W.Data)
		bias := l.B.Data.Row(0)
		for r := 0; r < next.Rows; r++ {
			row := next.Row(r)
			for j, b := range bias {
				row[j] += b
			}
		}
		if i < len(m.Layers)-1 {
			for j, v := range next.Data {
				if v < 0 {
					next.Data[j] = 0
				}
			}
		}
		if cur != x {
			mat.PutScratch(cur)
		}
		cur = next
	}
	return cur
}

// Adam is the Adam optimizer with decoupled L2 weight decay.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*autograd.Value]*mat.Matrix
	v map[*autograd.Value]*mat.Matrix
}

// NewAdam returns an Adam optimizer with the usual defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*autograd.Value]*mat.Matrix),
		v: make(map[*autograd.Value]*mat.Matrix),
	}
}

// Step applies one Adam update to every parameter with a gradient, then
// leaves gradients untouched (callers ZeroGrad between steps).
func (a *Adam) Step(params *Params) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params.All() {
		if p.Grad == nil {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = mat.New(p.Data.Rows, p.Data.Cols)
			a.m[p] = m
			a.v[p] = mat.New(p.Data.Rows, p.Data.Cols)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Data.Data[i] -= a.LR * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.Data.Data[i])
		}
	}
}

// DecayLR multiplies the learning rate by factor (the paper decays by 0.96
// every 5 epochs).
func (a *Adam) DecayLR(factor float64) { a.LR *= factor }
