package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/mat"
)

func TestParamsRegistry(t *testing.T) {
	p := NewParams()
	a := p.Add("a", mat.New(2, 3))
	if p.Get("a") != a || p.Get("b") != nil {
		t.Fatalf("Get broken")
	}
	p.Add("b", mat.New(1, 1))
	if got := p.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if p.Count() != 7 {
		t.Fatalf("Count = %d; want 7", p.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	p.Add("a", mat.New(1, 1))
}

func TestParamsSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := func() *Params {
		p := NewParams()
		NewLinear(p, "lin", 3, 2, rng)
		NewMLP(p, "mlp", []int{4, 8, 1}, rng)
		return p
	}
	p1 := build()
	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2 := build() // different random init
	if err := p2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, n := range p1.Names() {
		if mat.MaxAbsDiff(p1.Get(n).Data, p2.Get(n).Data) != 0 {
			t.Fatalf("parameter %q not restored", n)
		}
	}
}

func TestParamsLoadErrors(t *testing.T) {
	p := NewParams()
	p.Add("x", mat.New(2, 2))
	// Unknown name.
	if err := p.Load(bytes.NewBufferString(`[{"name":"y","rows":1,"cols":1,"data":[0]}]`)); err == nil {
		t.Fatal("no error for unknown parameter")
	}
	// Shape mismatch.
	if err := p.Load(bytes.NewBufferString(`[{"name":"x","rows":1,"cols":1,"data":[0]}]`)); err == nil {
		t.Fatal("no error for shape mismatch")
	}
	// Bad JSON.
	if err := p.Load(bytes.NewBufferString(`{`)); err == nil {
		t.Fatal("no error for bad JSON")
	}
}

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewParams()
	l := NewLinear(p, "l", 4, 3, rng)
	x := autograd.Const(mat.Randn(5, 4, 1, rng))
	y := l.Apply(x)
	if y.Data.Rows != 5 || y.Data.Cols != 3 {
		t.Fatalf("Linear output %dx%d; want 5x3", y.Data.Rows, y.Data.Cols)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParams()
	m := NewMLP(p, "xor", []int{2, 8, 1}, rng)
	x := mat.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := mat.FromSlice(4, 1, []float64{0, 1, 1, 0})
	opt := NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 400; epoch++ {
		p.ZeroGrad()
		logits := m.Apply(autograd.Const(x))
		l := autograd.BCEWithLogits(logits, y)
		autograd.Backward(l)
		opt.Step(p)
		loss = l.Data.At(0, 0)
	}
	if loss > 0.1 {
		t.Fatalf("XOR did not converge: loss %v", loss)
	}
	// Predictions on the training set must be correct.
	logits := m.Apply(autograd.Const(x))
	for i := 0; i < 4; i++ {
		pred := logits.Data.At(i, 0) > 0
		want := y.At(i, 0) > 0.5
		if pred != want {
			t.Fatalf("XOR row %d misclassified (logit %v)", i, logits.Data.At(i, 0))
		}
	}
}

func TestMLPRegressionWithMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewParams()
	m := NewMLP(p, "reg", []int{1, 16, 1}, rng)
	// Fit y = x^2 on [-1, 1].
	n := 32
	x := mat.New(n, 1)
	y := mat.New(n, 1)
	for i := 0; i < n; i++ {
		xv := -1 + 2*float64(i)/float64(n-1)
		x.Set(i, 0, xv)
		y.Set(i, 0, xv*xv)
	}
	opt := NewAdam(0.01)
	var loss float64
	for epoch := 0; epoch < 600; epoch++ {
		p.ZeroGrad()
		pred := m.Apply(autograd.Const(x))
		l := autograd.MSE(pred, y)
		autograd.Backward(l)
		opt.Step(p)
		loss = l.Data.At(0, 0)
	}
	if loss > 0.01 {
		t.Fatalf("regression did not converge: MSE %v", loss)
	}
}

func TestMLPInferMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewParams()
	m := NewMLP(p, "mlp", []int{5, 8, 3, 1}, rng)
	for trial := 0; trial < 10; trial++ {
		x := mat.Randn(1+rng.Intn(4), 5, 1, rng)
		want := m.Apply(autograd.Const(x)).Data
		got := m.Infer(x)
		if mat.MaxAbsDiff(got, want) != 0 {
			t.Fatalf("Infer not bit-identical to Apply (diff %g)", mat.MaxAbsDiff(got, want))
		}
	}
}

func TestAdamWeightDecayShrinksUnusedParams(t *testing.T) {
	p := NewParams()
	w := p.Add("w", mat.FromSlice(1, 1, []float64{10}))
	opt := NewAdam(0.1)
	opt.WeightDecay = 0.1
	for i := 0; i < 50; i++ {
		p.ZeroGrad()
		// Zero gradient: only decay acts.
		w.Grad = mat.New(1, 1)
		opt.Step(p)
	}
	if v := math.Abs(w.Data.At(0, 0)); v >= 10 {
		t.Fatalf("weight decay had no effect: %v", v)
	}
}

func TestAdamSkipsParamsWithoutGrad(t *testing.T) {
	p := NewParams()
	w := p.Add("w", mat.FromSlice(1, 1, []float64{5}))
	NewAdam(0.5).Step(p)
	if w.Data.At(0, 0) != 5 {
		t.Fatalf("param without grad was updated")
	}
}

func TestDecayLR(t *testing.T) {
	opt := NewAdam(0.005)
	opt.DecayLR(0.96)
	if math.Abs(opt.LR-0.0048) > 1e-12 {
		t.Fatalf("LR = %v", opt.LR)
	}
}

func TestMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMLP(NewParams(), "bad", []int{3}, rand.New(rand.NewSource(0)))
}
