// Package l2route implements the paper's L2route comparator (Baranchuk et
// al., "Learning to route in similarity graphs"), adapted to graph
// databases exactly as Sec. VII prescribes: graphs are first converted to
// embedding vectors, routing happens in L2 space over a vector proximity
// graph, and the resulting candidates are verified with true GEDs. The
// embedding is learned — a siamese GIN trained so that squared L2 distance
// regresses onto GED — which is the strongest reasonable stand-in for the
// original's learned router. Its weakness, which the paper's Fig. 5
// reports, is structural: to reach high recall the vector stage must
// surface enough true neighbors, which forces many GED verifications.
package l2route

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/order"
	"github.com/lansearch/lan/internal/pg"
)

// Encoder turns graphs into embedding vectors.
type Encoder struct {
	Params *nn.Params
	gin    *cg.GINModel
	layers int
	vocab  *cg.Vocab
}

// NewEncoder builds a GIN encoder over db's vocabulary.
func NewEncoder(db graph.Database, layers, dim int, seed int64) *Encoder {
	vocab := cg.NewVocab(db)
	p := nn.NewParams()
	rng := rand.New(rand.NewSource(seed))
	return &Encoder{
		Params: p,
		gin:    cg.NewGINModel(p, "l2.gin", cg.Config{Layers: layers, Dim: dim, Vocab: vocab}, rng),
		layers: layers,
		vocab:  vocab,
	}
}

// forward returns the embedding as an autograd value.
func (e *Encoder) forward(g *graph.Graph) *autograd.Value {
	return e.gin.Forward(cg.Build(g, e.layers, e.vocab))
}

// Embed returns the embedding vector of g.
func (e *Encoder) Embed(g *graph.Graph) []float64 {
	return append([]float64(nil), e.forward(g).Data.Data...)
}

// Pair is one siamese training example: two graphs and their GED.
type Pair struct {
	A, B *graph.Graph
	D    float64
}

// Train fits the encoder so that ||e(A)-e(B)||^2 approximates D, by MSE.
func (e *Encoder) Train(pairs []Pair, epochs int, lr float64) error {
	if len(pairs) == 0 {
		return fmt.Errorf("l2route: no training pairs")
	}
	opt := nn.NewAdam(lr)
	rng := rand.New(rand.NewSource(31))
	order := rng.Perm(len(pairs))
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			p := pairs[idx]
			e.Params.ZeroGrad()
			ea := e.forward(p.A)
			eb := e.forward(p.B)
			diff := autograd.Add(ea, autograd.Scale(eb, -1))
			sq := autograd.SumSquares(diff)
			loss := autograd.MSE(sq, mat.FromSlice(1, 1, []float64{p.D}))
			autograd.Backward(loss)
			opt.Step(e.Params)
		}
	}
	return nil
}

// Index is the L2route search structure: database embeddings plus a
// brute-force M-nearest-neighbor graph in embedding space.
type Index struct {
	DB      graph.Database
	Encoder *Encoder
	Vectors [][]float64
	Adj     [][]int
}

// BuildIndex embeds every database graph and links each to its M nearest
// vectors (symmetrized).
func BuildIndex(db graph.Database, enc *Encoder, m int) *Index {
	idx := &Index{DB: db, Encoder: enc, Vectors: make([][]float64, len(db)), Adj: make([][]int, len(db))}
	for i, g := range db {
		idx.Vectors[i] = enc.Embed(g)
	}
	type nd struct {
		id int
		d  float64
	}
	edges := make(map[[2]int]bool)
	for i := range db {
		nds := make([]nd, 0, len(db)-1)
		for j := range db {
			if i != j {
				nds = append(nds, nd{j, sqL2(idx.Vectors[i], idx.Vectors[j])})
			}
		}
		sort.Slice(nds, func(a, b int) bool {
			return order.ByDistThenID(nds[a].d, nds[a].id, nds[b].d, nds[b].id)
		})
		if len(nds) > m {
			nds = nds[:m]
		}
		for _, n := range nds {
			a, b := i, n.id
			if a > b {
				a, b = b, a
			}
			edges[[2]int{a, b}] = true
		}
	}
	for e := range edges {
		idx.Adj[e[0]] = append(idx.Adj[e[0]], e[1])
		idx.Adj[e[1]] = append(idx.Adj[e[1]], e[0])
	}
	idx.connectComponents()
	for i := range idx.Adj {
		sort.Ints(idx.Adj[i])
	}
	return idx
}

// connectComponents repairs the well-known disconnection of mutual-kNN
// graphs by repeatedly adding the closest cross-component vector pair
// until the graph is a single component (so beam search can reach every
// candidate from any entry).
func (x *Index) connectComponents() {
	n := len(x.Adj)
	for {
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		comps := 0
		for s := 0; s < n; s++ {
			if comp[s] != -1 {
				continue
			}
			stack := []int{s}
			comp[s] = comps
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range x.Adj[u] {
					if comp[v] == -1 {
						comp[v] = comps
						stack = append(stack, v)
					}
				}
			}
			comps++
		}
		if comps <= 1 {
			return
		}
		// Closest pair between component 0 and any other component.
		bi, bj, bd := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if comp[i] != 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if comp[j] == 0 {
					continue
				}
				if d := sqL2(x.Vectors[i], x.Vectors[j]); bi == -1 || d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		x.Adj[bi] = append(x.Adj[bi], bj)
		x.Adj[bj] = append(x.Adj[bj], bi)
	}
}

// Search answers a k-ANN query: beam search in embedding space (free — no
// GED), then verify the top `verify` vector candidates with true GEDs
// charged to cache, returning the best k by GED.
func (x *Index) Search(q *graph.Graph, cache *pg.DistCache, k, beam, verify int) ([]pg.Result, pg.Stats) {
	res, stats, _ := x.SearchContext(context.Background(), q, cache, k, beam, verify)
	return res, stats
}

// SearchContext is Search with cancellation: the vector-space beam search
// checks the context per explored node and the GED verification stage —
// where the wall time actually goes — checks it before every distance
// computation, so an expired deadline stops the query within one GED call.
func (x *Index) SearchContext(ctx context.Context, q *graph.Graph, cache *pg.DistCache, k, beam, verify int) ([]pg.Result, pg.Stats, error) {
	return x.SearchPooled(ctx, q, cache, k, beam, verify, nil)
}

// SearchPooled is SearchContext with the GED verification stage's
// distances prefetched through pool. Every one of the verify candidates is
// evaluated unconditionally, so the verified set, its order and the NDC
// are identical to the sequential run for any pool (see
// pg.DistCache.Prefetch). With a non-nil pool, cancellation is checked
// once before the verification batch rather than per distance.
func (x *Index) SearchPooled(ctx context.Context, q *graph.Graph, cache *pg.DistCache, k, beam, verify int, pool *pg.WorkerPool) ([]pg.Result, pg.Stats, error) {
	if verify < k {
		verify = k
	}
	trace := obs.From(ctx)
	beamSpan := trace.StartSpan("l2_beam")
	embedStart := time.Now()
	qv := x.Encoder.Embed(q)
	trace.RecordSpan("embed", embedStart, time.Since(embedStart), 0, 1)
	entry := 0
	trace.SetEntry(entry)

	// Beam search over the vector graph under L2.
	dist := func(id int) float64 { return sqL2(qv, x.Vectors[id]) }
	visited := map[int]bool{entry: true}
	frontier := []vecCand{{entry, dist(entry)}}
	results := []vecCand{{entry, dist(entry)}}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, pg.Stats{NDC: cache.NDC(), Explored: len(visited)}, err
		}
		cur := frontier[0]
		frontier = frontier[1:]
		if len(results) >= beam && cur.d > results[len(results)-1].d {
			break
		}
		for _, nb := range x.Adj[cur.id] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := dist(nb)
			if len(results) < beam || d < results[len(results)-1].d {
				frontier = insertCand(frontier, vecCand{nb, d})
				results = insertCand(results, vecCand{nb, d})
				if len(results) > beam {
					results = results[:beam]
				}
			}
		}
	}

	// The vector stage pays no GEDs, so its span NDC is zero by
	// construction.
	trace.EndSpan(beamSpan, 0)
	verifySpan := trace.StartSpan("verify")

	// GED verification of the best vector candidates.
	ndcBefore := cache.NDC()
	if verify > len(results) {
		verify = len(results)
	}
	if pool != nil {
		if err := ctx.Err(); err != nil {
			return nil, pg.Stats{NDC: cache.NDC(), Explored: len(visited)}, err
		}
		ids := make([]int, verify)
		for i, c := range results[:verify] {
			ids[i] = c.id
		}
		cache.Prefetch(ids, pool)
	}
	verified := make([]pg.Result, 0, verify)
	for _, c := range results[:verify] {
		if err := ctx.Err(); err != nil {
			return nil, pg.Stats{NDC: cache.NDC(), Explored: len(visited)}, err
		}
		verified = append(verified, pg.Result{ID: c.id, Dist: cache.Dist(c.id)})
	}
	sort.Slice(verified, func(i, j int) bool {
		return order.ByDistThenID(verified[i].Dist, verified[i].ID, verified[j].Dist, verified[j].ID)
	})
	if len(verified) > k {
		verified = verified[:k]
	}
	verifyNDC := cache.NDC() - ndcBefore
	trace.EndSpan(verifySpan, verifyNDC)
	if verifyNDC > 0 {
		obs.Query().NDCVerify.Add(uint64(verifyNDC))
	}
	return verified, pg.Stats{NDC: cache.NDC(), Explored: len(visited)}, nil
}

// vecCand is a vector-space candidate during beam search.
type vecCand struct {
	id int
	d  float64
}

func insertCand(s []vecCand, c vecCand) []vecCand {
	i := sort.Search(len(s), func(i int) bool {
		// The first element strictly after c in the canonical order.
		return order.ByDistThenID(c.d, c.id, s[i].d, s[i].id)
	})
	s = append(s, c)
	copy(s[i+1:], s[i:])
	s[i] = c
	return s
}

func sqL2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SamplePairs draws n training pairs from the database with their metric
// distances — the offline supervision for Encoder.Train.
func SamplePairs(db graph.Database, metric ged.Metric, n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		a := db[rng.Intn(len(db))]
		b := db[rng.Intn(len(db))]
		out[i] = Pair{A: a, B: b, D: metric.Distance(a, b)}
	}
	return out
}
