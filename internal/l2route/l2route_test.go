package l2route

import (
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/pg"
)

func TestEncoderEmbedShapeAndDeterminism(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	enc := NewEncoder(db, 2, 8, 1)
	e1 := enc.Embed(db[0])
	e2 := enc.Embed(db[0])
	if len(e1) != 8 {
		t.Fatalf("dim %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("not deterministic")
		}
	}
}

func TestEncoderTrainImprovesCorrelation(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	metric := ged.MetricFunc(ged.Hungarian)
	enc := NewEncoder(db, 2, 8, 2)
	pairs := SamplePairs(db, metric, 80, 5)

	mse := func() float64 {
		total := 0.0
		for _, p := range pairs {
			d := sqL2(enc.Embed(p.A), enc.Embed(p.B))
			total += (d - p.D) * (d - p.D)
		}
		return total / float64(len(pairs))
	}
	before := mse()
	if err := enc.Train(pairs, 5, 0.01); err != nil {
		t.Fatalf("Train: %v", err)
	}
	after := mse()
	if after >= before {
		t.Fatalf("siamese training did not reduce MSE: %v -> %v", before, after)
	}
	t.Logf("siamese MSE: %.2f -> %.2f", before, after)
}

func TestEncoderTrainEmptyPairs(t *testing.T) {
	db := dataset.AIDS(0.0005).Generate()
	enc := NewEncoder(db, 2, 4, 3)
	if err := enc.Train(nil, 1, 0.01); err == nil {
		t.Fatal("no error for empty pairs")
	}
}

func TestIndexStructure(t *testing.T) {
	db := dataset.AIDS(0.002).Generate()
	enc := NewEncoder(db, 2, 8, 4)
	idx := BuildIndex(db, enc, 4)
	if len(idx.Vectors) != len(db) || len(idx.Adj) != len(db) {
		t.Fatalf("index shape wrong")
	}
	for u, ns := range idx.Adj {
		if len(ns) == 0 {
			t.Fatalf("node %d isolated", u)
		}
		for i, v := range ns {
			if v == u || v < 0 || v >= len(db) {
				t.Fatalf("bad neighbor %d of %d", v, u)
			}
			if i > 0 && ns[i-1] >= v {
				t.Fatalf("adjacency unsorted")
			}
		}
	}
}

func TestSearchEndToEndRecall(t *testing.T) {
	spec := dataset.AIDS(0.003)
	db := spec.Generate()
	metric := ged.MetricFunc(ged.Hungarian)
	enc := NewEncoder(db, 2, 8, 5)
	if err := enc.Train(SamplePairs(db, metric, 60, 6), 3, 0.01); err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(db, enc, 6)
	queries := dataset.Workload(db, spec, 8, 7)

	var rSmall, rLarge, ndcSmall, ndcLarge float64
	for _, q := range queries {
		truth := dataset.BruteForceKNN(db, q, metric, 5)

		c1 := pg.NewDistCache(metric, db, q)
		got1, s1 := idx.Search(q, c1, 5, 10, 10)
		rSmall += dataset.Recall(got1, truth)
		ndcSmall += float64(s1.NDC)

		c2 := pg.NewDistCache(metric, db, q)
		got2, s2 := idx.Search(q, c2, 5, 80, 80)
		rLarge += dataset.Recall(got2, truth)
		ndcLarge += float64(s2.NDC)
	}
	n := float64(len(queries))
	t.Logf("recall small=%.3f (ndc %.0f)  large=%.3f (ndc %.0f)", rSmall/n, ndcSmall/n, rLarge/n, ndcLarge/n)
	if rLarge < rSmall {
		t.Fatalf("more verification lowered recall: %v < %v", rLarge/n, rSmall/n)
	}
	if ndcLarge <= ndcSmall {
		t.Fatalf("verification did not grow NDC")
	}
	if rLarge/n < 0.5 {
		t.Fatalf("large-beam recall %.3f too low — encoder broken", rLarge/n)
	}
}

func TestSearchResultsSortedByGED(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	metric := ged.MetricFunc(ged.VJ)
	enc := NewEncoder(db, 2, 6, 8)
	idx := BuildIndex(db, enc, 4)
	q := dataset.Workload(db, dataset.AIDS(0.001), 1, 9)[0]
	c := pg.NewDistCache(metric, db, q)
	res, _ := idx.Search(q, c, 5, 20, 15)
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatalf("unsorted results: %v", res)
		}
	}
	if len(res) > 5 {
		t.Fatalf("k overflow: %d", len(res))
	}
}
