package models

import (
	"math/rand"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
)

// NeighborhoodModel is M_nh: given a data graph G and a query Q it
// predicts whether G lies in the neighborhood N_Q = {G : d(Q,G) <=
// GammaStar} (Sec. V-B1). The cross-graph embedding h_{G,Q} feeds a
// binary MLP head.
type NeighborhoodModel struct {
	Cfg    Config
	Params *nn.Params

	cross *cg.CrossModel
	head  *nn.MLP
	store *CGStore
}

// NewNeighborhoodModel builds an untrained M_nh over the store's
// vocabulary.
func NewNeighborhoodModel(cfg Config, store *CGStore) *NeighborhoodModel {
	cfg.defaults()
	p := nn.NewParams()
	rng := newRNG(cfg.Seed, 0x22b)
	ccfg := cg.Config{Layers: cfg.Layers, Dim: cfg.Dim, Vocab: store.Vocab}
	return &NeighborhoodModel{
		Cfg:    cfg,
		Params: p,
		cross:  cg.NewCrossModel(p, "mnh.cross", ccfg, rng),
		head:   nn.NewMLP(p, "mnh.head", []int{3 * cfg.Dim, cfg.Hidden, 1}, rng),
		store:  store,
	}
}

// logit returns the raw membership logit for (G, Q). The head sees
// h_G || h_Q plus the squared difference (h_G - h_Q)^2, which makes the
// closeness signal directly available.
func (m *NeighborhoodModel) logit(g, q *graph.Graph) *autograd.Value {
	return m.head.Apply(headFeatures(crossEncode(m.cross, m.store, g, q), m.Cfg.Dim))
}

// QueryCG builds the query's compressed GNN-graph once, for reuse across
// many ProbCG calls in one search.
func (m *NeighborhoodModel) QueryCG(q *graph.Graph) *cg.Compressed { return m.store.Query(q) }

// ProbCG is Prob with the query CG precomputed — the initial selector
// evaluates one query against hundreds of candidates, so the query side
// is encoded once per search instead of once per candidate. Tape-free
// inference path (values identical to the training path).
func (m *NeighborhoodModel) ProbCG(g *graph.Graph, qc *cg.Compressed) float64 {
	cross := m.cross.Infer(m.store.For(g), qc)
	feat := headFeatureVec(cross, m.Cfg.Dim)
	in := mat.GetScratch(1, len(feat))
	copy(in.Data, feat)
	logit := m.head.Infer(in)
	mat.PutScratch(in)
	return sigmoid(logit.At(0, 0))
}

// Prob returns the predicted probability that G is in N_Q (tape-free
// inference path).
func (m *NeighborhoodModel) Prob(g, q *graph.Graph) float64 {
	return m.ProbCG(g, m.QueryCG(q))
}

// Predict reports whether G is predicted to be in N_Q (threshold 0.5).
func (m *NeighborhoodModel) Predict(g, q *graph.Graph) bool {
	return m.Prob(g, q) >= 0.5
}

// MembershipExample is one M_nh training pair.
type MembershipExample struct {
	Qi   int // index into the distance table's queries
	G    int // database graph id
	InNQ bool
}

// BuildMembershipTrainingSet labels every (training query, data graph)
// pair by true neighborhood membership and downsamples the (dominant)
// negative class to negRatio times the positives, per Sec. V-B1.
func BuildMembershipTrainingSet(table *DistanceTable, gammaStar float64, negRatio float64, seed int64) []MembershipExample {
	rng := rand.New(rand.NewSource(seed ^ 0x99))
	var pos, neg []MembershipExample
	for qi, row := range table.D {
		for g, d := range row {
			ex := MembershipExample{Qi: qi, G: g, InNQ: d <= gammaStar}
			if ex.InNQ {
				pos = append(pos, ex)
			} else {
				neg = append(neg, ex)
			}
		}
	}
	keep := int(float64(len(pos)) * negRatio)
	if keep > len(neg) {
		keep = len(neg)
	}
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := append(pos, neg[:keep]...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Train fits M_nh with binary cross-entropy.
func (m *NeighborhoodModel) Train(db graph.Database, table *DistanceTable, examples []MembershipExample, opts TrainOptions) error {
	if len(examples) == 0 {
		return errf("empty M_nh training set")
	}
	trainLoop(m.Params, len(examples), opts, m.Cfg.Seed, func(idx int) float64 {
		ex := examples[idx]
		y := 0.0
		if ex.InNQ {
			y = 1
		}
		loss := autograd.BCEWithLogits(m.logit(db[ex.G], table.Queries[ex.Qi]), binaryTargets(y))
		autograd.Backward(loss)
		return loss.Data.At(0, 0)
	})
	return nil
}

// Precision evaluates p = |N̂_Q ∩ N_Q| / |N̂_Q| over held-out queries —
// the quantity of Lemma 2 and Fig. 8. It returns precision and the mean
// predicted-neighborhood size.
func (m *NeighborhoodModel) Precision(db graph.Database, table *DistanceTable, gammaStar float64) (precision, avgPredicted float64) {
	var tp, fp, predicted int
	for qi, q := range table.Queries {
		row := table.D[qi]
		for g := range db {
			if m.Predict(db[g], q) {
				predicted++
				if row[g] <= gammaStar {
					tp++
				} else {
					fp++
				}
			}
		}
	}
	if tp+fp == 0 {
		return 0, 0
	}
	return float64(tp) / float64(tp+fp), float64(predicted) / float64(len(table.Queries))
}
