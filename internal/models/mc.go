package models

import (
	"context"
	"sort"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
	"github.com/lansearch/lan/internal/pg"
)

// ClusterModel is M_c (Sec. V-B2): given a cluster of the database and a
// query it predicts |C ∩ N_Q|, so that M_nh only needs to run inside the
// top-predicted clusters instead of over the whole database. Inputs are
// the cluster centroid embedding concatenated with the query embedding.
type ClusterModel struct {
	Cfg    Config
	Params *nn.Params

	embedder cluster.Embedder
	clusters *cluster.KMeans
	head     *nn.MLP
}

// NewClusterModel builds an untrained M_c over a fitted clustering.
func NewClusterModel(cfg Config, embedder cluster.Embedder, km *cluster.KMeans) *ClusterModel {
	cfg.defaults()
	p := nn.NewParams()
	rng := newRNG(cfg.Seed, 0x33c)
	// Interaction features |c-q| and c⊙q make the similarity signal
	// (large intersection when the centroid matches the query) nearly
	// linear for the MLP.
	in := 4 * embedder.Dim()
	return &ClusterModel{
		Cfg:      cfg,
		Params:   p,
		embedder: embedder,
		clusters: km,
		head:     nn.NewMLP(p, "mc.head", []int{in, cfg.Hidden, 1}, rng),
	}
}

// Clusters exposes the underlying clustering.
func (m *ClusterModel) Clusters() *cluster.KMeans { return m.clusters }

// WithClusters returns a shallow copy of M_c over a pinned clustering
// view — how a mutable index's snapshots isolate readers from the
// writer's membership updates.
func (m *ClusterModel) WithClusters(km *cluster.KMeans) *ClusterModel {
	view := *m
	view.clusters = km
	return &view
}

// NearestCentroid returns the cluster whose centroid is closest (L2) to
// g's feature embedding — how inserted graphs join the fitted
// clustering without refitting it.
func (m *ClusterModel) NearestCentroid(g *graph.Graph) int {
	emb := m.embedder.Embed(g)
	best, bd := 0, 0.0
	for c, cen := range m.clusters.Centroids {
		var d float64
		for i := range cen {
			diff := cen[i] - emb[i]
			d += diff * diff
		}
		if c == 0 || d < bd {
			best, bd = c, d
		}
	}
	return best
}

// predictValue returns the predicted |C ∩ N_Q| for cluster c as an
// autograd value (training path).
func (m *ClusterModel) predictValue(c int, qemb []float64) *autograd.Value {
	cen := m.clusters.Centroids[c]
	in := make([]float64, 0, 4*m.embedder.Dim())
	in = append(in, cen...)
	in = append(in, qemb...)
	for i := range cen {
		d := cen[i] - qemb[i]
		if d < 0 {
			d = -d
		}
		in = append(in, d)
	}
	for i := range cen {
		in = append(in, cen[i]*qemb[i])
	}
	return m.head.Apply(autograd.Const(mat.FromSlice(1, len(in), in)))
}

// Predict returns the predicted intersection size for every cluster.
func (m *ClusterModel) Predict(q *graph.Graph) []float64 {
	qemb := m.embedder.Embed(q)
	out := make([]float64, m.clusters.K())
	for c := range out {
		out[c] = m.predictValue(c, qemb).Data.At(0, 0)
	}
	return out
}

// TopClusters returns the indices of the n clusters with the largest
// predicted intersection, in descending order.
func (m *ClusterModel) TopClusters(q *graph.Graph, n int) []int {
	pred := m.Predict(q)
	idx := make([]int, len(pred))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pred[idx[a]] > pred[idx[b]] })
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

// ClusterExample is one M_c training row: the true |C ∩ N_Q| per cluster
// for one query.
type ClusterExample struct {
	Qi            int
	Intersections []float64
}

// BuildClusterTrainingSet computes true intersection sizes from the
// distance table.
func BuildClusterTrainingSet(table *DistanceTable, km *cluster.KMeans, gammaStar float64) []ClusterExample {
	out := make([]ClusterExample, len(table.Queries))
	for qi, row := range table.D {
		inter := make([]float64, km.K())
		for g, d := range row {
			if d <= gammaStar {
				inter[km.Assign[g]]++
			}
		}
		out[qi] = ClusterExample{Qi: qi, Intersections: inter}
	}
	return out
}

// Train fits M_c by mean squared error on intersection sizes. The skew of
// the distribution (most clusters intersect N_Q in 0 graphs) is what the
// network must learn, per the paper.
func (m *ClusterModel) Train(table *DistanceTable, examples []ClusterExample, opts TrainOptions) error {
	if len(examples) == 0 {
		return errf("empty M_c training set")
	}
	trainLoop(m.Params, len(examples), opts, m.Cfg.Seed, func(idx int) float64 {
		ex := examples[idx]
		qemb := m.embedder.Embed(table.Queries[ex.Qi])
		total := 0.0
		for c, truth := range ex.Intersections {
			loss := autograd.MSE(m.predictValue(c, qemb), mat.FromSlice(1, 1, []float64{truth}))
			autograd.Backward(loss)
			total += loss.Data.At(0, 0)
		}
		return total / float64(len(ex.Intersections))
	})
	return nil
}

// InitialSelector is LAN_IS (Sec. V-A): M_c prunes to the top clusters,
// M_nh filters their members into the predicted neighborhood N̂_Q, and s
// random samples from N̂_Q are verified with true GEDs (charged to the
// query's DistCache); the best sample seeds the routing.
type InitialSelector struct {
	Mnh *NeighborhoodModel
	Mc  *ClusterModel
	// TopClusters is the number of clusters M_c selects (default 3).
	TopClusters int
	// Samples is s, the number of verified candidates (default 4; the
	// paper: precision > 0.7 makes 4 samples hit N_Q w.p. > 0.99).
	Samples int
	// Seed drives sampling.
	Seed int64
	// Predictions, if non-nil, accumulates the number of model
	// predictions made (the |C| + Σ|C'| quantity of Sec. V-B2).
	Predictions *int
	// Exhaustive switches to the basic design of Sec. V-B1: M_nh runs
	// over every database graph instead of only the top clusters'
	// members. O(|D|) predictions — kept for the paper's basic-vs-
	// optimized ablation.
	Exhaustive bool
	// QueryCG, when set, is the query's precomputed compressed GNN-graph
	// (the engine builds it once per search); nil makes Select build it.
	QueryCG *cg.Compressed
}

// selectFetchBatch bounds how many candidate graphs Select materializes
// per store fetch: large enough to amortize a disk-backed store's
// segment reads, small enough to keep the resident working set flat even
// in Exhaustive mode.
const selectFetchBatch = 256

// Select returns the initial node for routing Q over the store's
// database. Fallbacks: when the predicted neighborhood is empty, the
// graph with the highest M_nh probability among scanned candidates is
// used; when even that fails, the first member of the top cluster.
// Cancelling ctx stops the GED sample verification early and returns the
// best candidate found so far — the model predictions themselves are
// cheap and always complete. Candidate graphs are fetched in
// selectFetchBatch-sized batches so a disk-backed store reads segments,
// not single graphs.
func (s *InitialSelector) Select(ctx context.Context, store pg.GraphStore, q *graph.Graph, cache *pg.DistCache) int {
	top := s.TopClusters
	if top <= 0 {
		top = 3
	}
	samples := s.Samples
	if samples <= 0 {
		samples = 4
	}
	var candidates []int
	if s.Exhaustive {
		candidates = make([]int, store.Len())
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		clusters := s.Mc.TopClusters(q, top)
		if s.Predictions != nil {
			*s.Predictions += s.Mc.Clusters().K()
		}
		for _, c := range clusters {
			candidates = append(candidates, s.Mc.Clusters().Members[c]...)
		}
	}

	qc := s.QueryCG
	if qc == nil {
		qc = s.Mnh.QueryCG(q)
	}
	var predicted []int
	var fetched []*graph.Graph
	bestProb, bestG := -1.0, -1
	for start := 0; start < len(candidates); start += selectFetchBatch {
		end := start + selectFetchBatch
		if end > len(candidates) {
			end = len(candidates)
		}
		fetched = store.FetchGraphs(candidates[start:end], fetched[:0])
		for i, g := range candidates[start:end] {
			p := s.Mnh.ProbCG(fetched[i], qc)
			if s.Predictions != nil {
				*s.Predictions++
			}
			if p >= 0.5 {
				predicted = append(predicted, g)
			}
			if p > bestProb {
				bestProb, bestG = p, g
			}
		}
	}
	if len(predicted) == 0 {
		if bestG >= 0 {
			return bestG
		}
		return candidates[0]
	}

	rng := newRNG(s.Seed, int64(q.N())*1315423911^int64(q.M()))
	rng.Shuffle(len(predicted), func(i, j int) { predicted[i], predicted[j] = predicted[j], predicted[i] })
	if samples > len(predicted) {
		samples = len(predicted)
	}
	best, bestD := predicted[0], cache.Dist(predicted[0])
	for _, g := range predicted[1:samples] {
		if ctx.Err() != nil {
			break
		}
		if d := cache.Dist(g); d < bestD {
			best, bestD = g, d
		}
	}
	return best
}
