package models

import (
	"context"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/pg"
	"github.com/lansearch/lan/internal/route"
)

// fixture bundles a small end-to-end training environment.
type fixture struct {
	spec    dataset.Spec
	db      graph.Database
	index   *pg.HNSW
	metric  ged.Metric
	table   *DistanceTable
	gamma   float64
	store   *CGStore
	queries []*graph.Graph
}

func newFixture(t *testing.T, scale float64, queries int) *fixture {
	t.Helper()
	spec := dataset.AIDS(scale)
	db := spec.Generate()
	idx, err := pg.Build(db, pg.BuildConfig{M: 5, EfConstruction: 12, Seed: 3})
	if err != nil {
		t.Fatalf("pg.Build: %v", err)
	}
	metric := ged.MetricFunc(ged.Hungarian)
	qs := dataset.Workload(db, spec, queries, 17)
	table := ComputeDistanceTable(db, qs, metric)
	gamma := CalibrateGammaStar(table, 10, 0.9)
	return &fixture{
		spec: spec, db: db, index: idx, metric: metric,
		table: table, gamma: gamma,
		store:   NewCGStore(db, 2, true),
		queries: qs,
	}
}

func TestComputeDistanceTable(t *testing.T) {
	f := newFixture(t, 0.002, 4)
	if len(f.table.D) != 4 || len(f.table.D[0]) != len(f.db) {
		t.Fatalf("table shape %dx%d", len(f.table.D), len(f.table.D[0]))
	}
	// Spot-check against direct computation.
	want := f.metric.Distance(f.db[3], f.queries[1])
	if f.table.D[1][3] != want {
		t.Fatalf("table[1][3] = %v; want %v", f.table.D[1][3], want)
	}
}

func TestCalibrateGammaStar(t *testing.T) {
	table := &DistanceTable{
		D: [][]float64{
			{1, 2, 3, 4, 5},
			{2, 4, 6, 8, 10},
			{1, 1, 1, 1, 1},
		},
	}
	// knn=2: per-query 2nd-smallest distances are 2, 4, 1 -> sorted 1,2,4;
	// quantile 0.9 -> index 2 -> 4.
	if g := CalibrateGammaStar(table, 2, 0.9); g != 4 {
		t.Fatalf("gamma* = %v; want 4", g)
	}
	// knn beyond row length clamps to max.
	if g := CalibrateGammaStar(table, 100, 0); g != 1 {
		t.Fatalf("clamped gamma* = %v; want 1", g)
	}
	if g := CalibrateGammaStar(&DistanceTable{}, 1, 0.9); g != 0 {
		t.Fatalf("empty table gamma* = %v", g)
	}
}

func TestConfigDefaultsAndHeads(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.Layers != 2 || c.Dim != 16 || c.BatchPercent != 20 || c.Hidden != 32 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Heads() != 5 {
		t.Fatalf("heads = %d", c.Heads())
	}
	if (Config{BatchPercent: 30}).Heads() != 4 {
		t.Fatalf("ceil heads wrong")
	}
}

func TestCGStoreCachesByID(t *testing.T) {
	f := newFixture(t, 0.001, 2)
	a := f.store.For(f.db[0])
	b := f.store.For(f.db[0])
	if a != b {
		t.Fatalf("database graph CG not cached")
	}
	q := f.queries[0]
	qa := f.store.For(q)
	qb := f.store.For(q)
	if qa == qb {
		t.Fatalf("free-standing graphs must not share cache entries")
	}
	// Raw-mode store produces per-node groups.
	raw := NewCGStore(f.db, 2, false)
	if raw.For(f.db[0]).Groups(0) != f.db[0].N() {
		t.Fatalf("raw store compressed")
	}
}

func TestBuildRankTrainingSetRestrictsToNeighborhood(t *testing.T) {
	f := newFixture(t, 0.002, 5)
	exs := BuildRankTrainingSet(f.index.PG, f.table, f.gamma)
	if len(exs) == 0 {
		t.Fatal("no rank training examples — gamma* too small for fixture")
	}
	for _, ex := range exs {
		if f.table.D[ex.Qi][ex.Node] > f.gamma {
			t.Fatalf("example outside neighborhood: d=%v > %v", f.table.D[ex.Qi][ex.Node], f.gamma)
		}
		if len(ex.Neighbors) != len(ex.Ranks) {
			t.Fatalf("ranks/neighbors length mismatch")
		}
		// Ranks are a permutation of 0..n-1 consistent with distances.
		seen := make([]bool, len(ex.Ranks))
		for _, r := range ex.Ranks {
			if r < 0 || r >= len(seen) || seen[r] {
				t.Fatalf("bad rank vector %v", ex.Ranks)
			}
			seen[r] = true
		}
		for a := range ex.Neighbors {
			for b := range ex.Neighbors {
				da := f.table.D[ex.Qi][ex.Neighbors[a]]
				db := f.table.D[ex.Qi][ex.Neighbors[b]]
				if da < db && ex.Ranks[a] > ex.Ranks[b] {
					t.Fatalf("rank order violates distances")
				}
			}
		}
	}
}

func TestNeighborRankerLearnsToRank(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: trains the neighbor ranker to convergence")
	}
	f := newFixture(t, 0.003, 8)
	cfg := Config{Layers: 2, Dim: 8, BatchPercent: 20, GammaStar: f.gamma, Seed: 1}
	r := NewNeighborRanker(cfg, f.store)
	exs := BuildRankTrainingSet(f.index.PG, f.table, f.gamma)
	if len(exs) > 60 {
		exs = exs[:60]
	}
	before := r.RankAccuracy(f.db, f.table, exs)
	if err := r.Train(f.db, f.table, exs, TrainOptions{Epochs: 4, LR: 0.01}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	after := r.RankAccuracy(f.db, f.table, exs)
	if after <= before && after < 0.6 {
		t.Fatalf("training did not improve ranking: before %.3f after %.3f", before, after)
	}
	t.Logf("top-batch rank accuracy: before %.3f, after %.3f", before, after)
}

func TestNeighborRankerRankerAdapter(t *testing.T) {
	f := newFixture(t, 0.002, 3)
	cfg := Config{Layers: 2, Dim: 6, BatchPercent: 25, GammaStar: f.gamma, Seed: 2}
	r := NewNeighborRanker(cfg, f.store)
	calls := 0
	rk := r.Ranker(pg.NewRAMStore(f.db), f.queries[0], nil, &calls)

	neighbors := f.index.PG.Neighbors(0)
	if len(neighbors) < 2 {
		t.Skip("node 0 too sparse")
	}
	// Outside the neighborhood: single batch, no model calls.
	batches := rk.Batches(0, neighbors, f.gamma+100)
	if len(batches) != 1 || calls != 0 {
		t.Fatalf("outside-N_Q batches = %v, calls = %d", batches, calls)
	}
	// Inside: y%% batches, one model call per neighbor.
	batches = rk.Batches(0, neighbors, 0)
	if calls != len(neighbors) {
		t.Fatalf("calls = %d; want %d", calls, len(neighbors))
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total != len(neighbors) {
		t.Fatalf("batches lost neighbors: %v", batches)
	}
	if len(batches) < 2 {
		t.Fatalf("no partitioning inside N_Q: %v", batches)
	}
	// The adapter must work inside np_route end to end.
	cache := pg.NewDistCache(f.metric, f.db, f.queries[0])
	res, stats := route.Route(f.index.PG, cache, rk, 0, route.Config{K: 3, Beam: 8})
	if len(res) == 0 || stats.NDC == 0 {
		t.Fatalf("np_route with learned ranker returned nothing: %v %+v", res, stats)
	}
}

func TestMembershipTrainingSetDownsamples(t *testing.T) {
	f := newFixture(t, 0.003, 6)
	exs := BuildMembershipTrainingSet(f.table, f.gamma, 2, 9)
	var pos, neg int
	for _, ex := range exs {
		if ex.InNQ != (f.table.D[ex.Qi][ex.G] <= f.gamma) {
			t.Fatalf("mislabeled example")
		}
		if ex.InNQ {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("no positives")
	}
	if neg > 2*pos {
		t.Fatalf("downsampling failed: %d neg vs %d pos", neg, pos)
	}
}

func TestNeighborhoodModelLearnsMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: trains the neighborhood classifier to convergence")
	}
	f := newFixture(t, 0.003, 8)
	cfg := Config{Layers: 2, Dim: 8, GammaStar: f.gamma, Seed: 3}
	m := NewNeighborhoodModel(cfg, f.store)
	exs := BuildMembershipTrainingSet(f.table, f.gamma, 2, 9)
	if len(exs) > 200 {
		exs = exs[:200]
	}
	if err := m.Train(f.db, f.table, exs, TrainOptions{Epochs: 5, LR: 0.01}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Training accuracy on the (downsampled) set should beat chance.
	correct := 0
	for _, ex := range exs {
		if m.Predict(f.db[ex.G], f.table.Queries[ex.Qi]) == ex.InNQ {
			correct++
		}
	}
	acc := float64(correct) / float64(len(exs))
	if acc < 0.6 {
		t.Fatalf("membership accuracy %.3f < 0.6", acc)
	}
	t.Logf("membership training accuracy %.3f", acc)
	prec, avg := m.Precision(f.db, f.table, f.gamma)
	t.Logf("precision %.3f, avg predicted |N̂_Q| %.1f", prec, avg)
}

func TestClusterModelPipeline(t *testing.T) {
	f := newFixture(t, 0.003, 8)
	emb := cluster.NewFeatureEmbedder(f.db)
	points := make([][]float64, len(f.db))
	for i, g := range f.db {
		points[i] = emb.Embed(g)
	}
	km, err := cluster.FitKMeans(points, 6, 30, 4)
	if err != nil {
		t.Fatalf("FitKMeans: %v", err)
	}
	cfg := Config{Layers: 2, Dim: 8, GammaStar: f.gamma, Seed: 5}
	mc := NewClusterModel(cfg, emb, km)

	exs := BuildClusterTrainingSet(f.table, km, f.gamma)
	if len(exs) != len(f.queries) {
		t.Fatalf("%d cluster examples for %d queries", len(exs), len(f.queries))
	}
	// Intersections sum to |N_Q|.
	for qi, ex := range exs {
		want := 0.0
		for _, d := range f.table.D[qi] {
			if d <= f.gamma {
				want++
			}
		}
		got := 0.0
		for _, v := range ex.Intersections {
			got += v
		}
		if got != want {
			t.Fatalf("query %d: intersections sum %v != |N_Q| %v", qi, got, want)
		}
	}
	if err := mc.Train(f.table, exs, TrainOptions{Epochs: 30, LR: 0.01}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// The trained model should usually put the best cluster (largest true
	// intersection) into its predicted top half.
	hits := 0
	for qi, q := range f.queries {
		bestTrue, bestVal := 0, -1.0
		for c, v := range exs[qi].Intersections {
			if v > bestVal {
				bestTrue, bestVal = c, v
			}
		}
		for _, c := range mc.TopClusters(q, km.K()/2) {
			if c == bestTrue {
				hits++
				break
			}
		}
	}
	if hits*2 < len(f.queries) {
		t.Fatalf("M_c top-half hit rate %d/%d", hits, len(f.queries))
	}
	t.Logf("M_c top-half hit rate %d/%d", hits, len(f.queries))
}

func TestInitialSelectorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: trains the initial selector end to end")
	}
	f := newFixture(t, 0.003, 10)
	emb := cluster.NewFeatureEmbedder(f.db)
	points := make([][]float64, len(f.db))
	for i, g := range f.db {
		points[i] = emb.Embed(g)
	}
	km, err := cluster.FitKMeans(points, 6, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Layers: 2, Dim: 8, GammaStar: f.gamma, Seed: 6}
	mnh := NewNeighborhoodModel(cfg, f.store)
	mc := NewClusterModel(cfg, emb, km)
	mexs := BuildMembershipTrainingSet(f.table, f.gamma, 2, 9)
	if len(mexs) > 150 {
		mexs = mexs[:150]
	}
	if err := mnh.Train(f.db, f.table, mexs, TrainOptions{Epochs: 4, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := mc.Train(f.table, BuildClusterTrainingSet(f.table, km, f.gamma), TrainOptions{Epochs: 20, LR: 0.01}); err != nil {
		t.Fatal(err)
	}

	preds := 0
	sel := &InitialSelector{Mnh: mnh, Mc: mc, TopClusters: 3, Samples: 4, Seed: 8, Predictions: &preds}
	q := f.queries[len(f.queries)-1]
	cache := pg.NewDistCache(f.metric, f.db, q)
	entry := sel.Select(context.Background(), pg.NewRAMStore(f.db), q, cache)
	if entry < 0 || entry >= len(f.db) {
		t.Fatalf("entry out of range: %d", entry)
	}
	if cache.NDC() > 4 {
		t.Fatalf("selector charged %d NDC; want <= samples", cache.NDC())
	}
	if preds <= km.K() {
		t.Fatalf("prediction count %d not accumulated", preds)
	}
	// The cluster pruning must beat the O(|D|) basic design.
	if preds >= len(f.db)+km.K() {
		t.Fatalf("selector predicted over the whole database: %d >= %d", preds, len(f.db))
	}
}
