// Package models implements the paper's three learned components and
// their offline training pipelines:
//
//   - M_rk (Sec. IV-C): the neighbor-ranking model. The paper trains 100/y
//     binary partial rankers, where ranker i predicts whether a PG
//     neighbor G' of the current node G is among the top i*y% neighbors
//     by distance to the query Q. We share one cross-graph encoder across
//     the rankers and give each its own MLP head; ordering neighbors by
//     the sum of head probabilities recovers a full (approximate) ranking
//     that the router cuts into batches.
//   - M_nh (Sec. V-B1): the neighborhood-membership model predicting
//     whether a database graph lies in N_Q = {G : d(Q,G) <= gamma*}.
//   - M_c (Sec. V-B2): the cluster-level model predicting |C ∩ N_Q| per
//     cluster, used to prune M_nh predictions from O(|D|) to the selected
//     clusters.
//
// Training data is restricted to the neighborhood of each training query
// (Sec. IV-C) and the M_nh negative class is downsampled (Sec. V-B1),
// exactly as the paper prescribes.
package models

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
)

// Config shapes all three models.
type Config struct {
	// Layers and Dim shape the shared GNN encoders.
	Layers int
	Dim    int
	// BatchPercent is the paper's y: each ranker head i covers the top
	// (i+1)*y% neighbors. Default 20 (five heads).
	BatchPercent int
	// Hidden is the MLP hidden width (default 2*Dim).
	Hidden int
	// GammaStar is the neighborhood radius gamma*. Calibrate with
	// CalibrateGammaStar.
	GammaStar float64
	// Seed drives parameter initialization and sampling.
	Seed int64
}

func (c *Config) defaults() {
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Dim <= 0 {
		c.Dim = 16
	}
	if c.BatchPercent <= 0 || c.BatchPercent > 100 {
		c.BatchPercent = 20
	}
	if c.Hidden <= 0 {
		c.Hidden = 2 * c.Dim
	}
}

// Heads returns 100/y rounded up — the number of partial rankers.
func (c Config) Heads() int { return (100 + c.BatchPercent - 1) / c.BatchPercent }

// TrainOptions control the optimization loops.
type TrainOptions struct {
	Epochs      int
	LR          float64
	LRDecay     float64 // multiplicative decay applied every DecayEvery epochs
	DecayEvery  int
	WeightDecay float64
	// Quiet suppresses progress logging.
	Logf func(format string, args ...interface{})
}

func (o *TrainOptions) defaults() {
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	if o.LR <= 0 {
		o.LR = 0.005 // the paper's initial learning rate
	}
	if o.LRDecay <= 0 {
		o.LRDecay = 0.96 // the paper's decay
	}
	if o.DecayEvery <= 0 {
		o.DecayEvery = 5
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
}

// CGStore precomputes and caches compressed GNN-graphs for database
// graphs (Sec. VI: data-graph CGs are built offline).
type CGStore struct {
	Layers int
	Vocab  *cg.Vocab

	mu    sync.Mutex
	byID  map[int]*cg.Compressed
	bound int // max cached entries (0 = unbounded)
	useCG bool
}

// NewCGStore builds a store over db's vocabulary. When useCG is false the
// store produces raw (uncompressed) GNN-graphs — the ablation knob behind
// Fig. 10.
func NewCGStore(db graph.Database, layers int, useCG bool) *CGStore {
	return NewCGStoreVocab(cg.NewVocab(db), layers, useCG)
}

// NewCGStoreVocab is NewCGStore over an existing vocabulary — the
// snapshot-load path, which must not scan a (possibly disk-backed)
// database.
func NewCGStoreVocab(v *cg.Vocab, layers int, useCG bool) *CGStore {
	return &CGStore{
		Layers: layers,
		Vocab:  v,
		byID:   make(map[int]*cg.Compressed),
		useCG:  useCG,
	}
}

// SetCacheBound caps the by-id cache at n entries; when an insert would
// exceed the cap the cache is dropped wholesale and refills. Engines over
// an mmap store set this so cached CGs cannot silently re-materialize the
// whole database on the heap. The cache is a pure memo of deterministic
// builds, so eviction policy never affects results.
func (s *CGStore) SetCacheBound(n int) {
	s.mu.Lock()
	s.bound = n
	s.mu.Unlock()
}

// For returns the (cached) compressed GNN-graph of g. Graphs with ID >= 0
// are cached; free-standing graphs (queries) are built on the fly.
func (s *CGStore) For(g *graph.Graph) *cg.Compressed {
	if g.ID < 0 {
		return s.build(g)
	}
	s.mu.Lock()
	c, ok := s.byID[g.ID]
	s.mu.Unlock()
	if ok {
		return c
	}
	c = s.build(g)
	s.mu.Lock()
	if s.bound > 0 && len(s.byID) >= s.bound {
		s.byID = make(map[int]*cg.Compressed, s.bound)
	}
	s.byID[g.ID] = c
	s.mu.Unlock()
	return c
}

// Query builds the compressed GNN-graph of a free-standing query without
// touching the cache. The engine calls this once per search and threads
// the result through every model invocation, instead of rebuilding the
// query CG on each neighbor-ranking call.
func (s *CGStore) Query(q *graph.Graph) *cg.Compressed { return s.build(q) }

func (s *CGStore) build(g *graph.Graph) *cg.Compressed {
	if s.useCG {
		return cg.Build(g, s.Layers, s.Vocab)
	}
	return cg.BuildRaw(g, s.Layers, s.Vocab)
}

// DistanceTable holds d(query_i, db_j) for a set of training queries —
// the supervision signal for all three models.
type DistanceTable struct {
	Queries []*graph.Graph
	D       [][]float64 // D[i][j] = d(queries[i], db[j])
}

// ComputeDistanceTable evaluates metric between every query and every
// database graph, in parallel.
func ComputeDistanceTable(db graph.Database, queries []*graph.Graph, metric ged.Metric) *DistanceTable {
	t := &DistanceTable{Queries: queries, D: make([][]float64, len(queries))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q *graph.Graph) {
			defer wg.Done()
			defer func() { <-sem }()
			row := make([]float64, len(db))
			for j, g := range db {
				row[j] = metric.Distance(g, q)
			}
			t.D[i] = row
		}(i, q)
	}
	wg.Wait()
	return t
}

// CalibrateGammaStar returns the paper's gamma*: the quantile (e.g. 0.9)
// over training queries of the distance to their knn-th nearest neighbor,
// so that for that fraction of queries N_Q contains the knn-NNs.
func CalibrateGammaStar(t *DistanceTable, knn int, quantile float64) float64 {
	if len(t.D) == 0 {
		return 0
	}
	kth := make([]float64, len(t.D))
	for i, row := range t.D {
		sorted := append([]float64(nil), row...)
		sort.Float64s(sorted)
		idx := knn - 1
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		if idx < 0 {
			idx = 0
		}
		kth[i] = sorted[idx]
	}
	sort.Float64s(kth)
	qi := int(quantile * float64(len(kth)))
	if qi >= len(kth) {
		qi = len(kth) - 1
	}
	return kth[qi]
}

// crossEncode runs the shared cross-graph encoder and returns h_{G,Q}
// with gradients (the training path).
func crossEncode(m *cg.CrossModel, store *CGStore, g, q *graph.Graph) *autograd.Value {
	return m.Forward(store.For(g), store.For(q))
}

// headFeatures augments a cross embedding h_G || h_Q (1 x 2*dim) with the
// squared elementwise difference (h_G - h_Q)^2, giving classifier heads a
// direct closeness signal.
func headFeatures(cross *autograd.Value, dim int) *autograd.Value {
	hg := autograd.GatherCols(cross, 0, dim)
	hq := autograd.GatherCols(cross, dim, 2*dim)
	diff := autograd.Add(hg, autograd.Scale(hq, -1))
	return autograd.ConcatCols(cross, autograd.Mul(diff, diff))
}

// headFeatureVec is headFeatures on raw floats (the tape-free inference
// twin; identical values since a-b, (-1)*b and elementwise square match
// the autograd ops bit for bit).
func headFeatureVec(cross []float64, dim int) []float64 {
	out := make([]float64, 0, len(cross)+dim)
	out = append(out, cross...)
	for i := 0; i < dim; i++ {
		d := cross[i] - cross[dim+i]
		out = append(out, d*d)
	}
	return out
}

// sigmoid is the scalar logistic function.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// binaryTargets wraps a single {0,1} label as a 1x1 matrix.
func binaryTargets(y float64) *mat.Matrix { return mat.FromSlice(1, 1, []float64{y}) }

// newRNG seeds a model-local RNG.
func newRNG(seed int64, salt int64) *rand.Rand { return rand.New(rand.NewSource(seed ^ salt)) }

// trainLoop runs a generic epoch loop over example indices, shuffling each
// epoch and applying Adam with the paper's decay schedule.
func trainLoop(params *nn.Params, n int, opts TrainOptions, seed int64,
	step func(idx int) float64) {
	opts.defaults()
	opt := nn.NewAdam(opts.LR)
	opt.WeightDecay = opts.WeightDecay
	rng := newRNG(seed, 0x7ea1)
	order := rng.Perm(n)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			params.ZeroGrad()
			total += step(idx)
			opt.Step(params)
		}
		if (epoch+1)%opts.DecayEvery == 0 {
			opt.DecayLR(opts.LRDecay)
		}
		if n > 0 {
			opts.Logf("epoch %d: avg loss %.4f", epoch, total/float64(n))
		}
	}
}

// errf builds consistent error values for this package.
func errf(format string, args ...interface{}) error {
	return fmt.Errorf("models: "+format, args...)
}
