package models

import (
	"math"
	"math/rand"
	"testing"
)

// TestLemma2SamplingProbability validates the paper's Lemma 2 by
// simulation: when the predicted neighborhood has precision p, sampling s
// graphs independently hits the true neighborhood at least once with
// probability 1 - (1-p)^s.
func TestLemma2SamplingProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 20000
	for _, tc := range []struct {
		p float64
		s int
	}{
		{0.7, 4},
		{0.5, 4},
		{0.3, 8},
		{0.9, 2},
	} {
		want := 1 - math.Pow(1-tc.p, float64(tc.s))
		hits := 0
		// Simulate a predicted neighborhood of 1000 members where a
		// tc.p-fraction are true members.
		pool := 1000
		truthCut := int(tc.p * float64(pool))
		for trial := 0; trial < trials; trial++ {
			found := false
			for i := 0; i < tc.s; i++ {
				if rng.Intn(pool) < truthCut {
					found = true
				}
			}
			if found {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("p=%.1f s=%d: simulated %.4f, Lemma 2 predicts %.4f", tc.p, tc.s, got, want)
		}
	}
	// The paper's headline instance: p > 0.7 and s = 4 exceeds 0.99.
	if got := 1 - math.Pow(1-0.7, 4); got <= 0.99 {
		t.Fatalf("paper's instance violated: %v", got)
	}
}
