package models

import (
	"sort"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/autograd"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/mat"
	"github.com/lansearch/lan/internal/nn"
	"github.com/lansearch/lan/internal/order"
	"github.com/lansearch/lan/internal/pg"
	"github.com/lansearch/lan/internal/route"
)

// NeighborRanker is M_rk: for the current node G and query Q it scores
// every PG-neighbor G' by combining 100/y binary partial rankers (head i
// predicts "G' is within the top (i+1)*y% of G's neighbors"), then orders
// neighbors by the summed head probabilities. Inside the router it is used
// only when the current node lies in the query's neighborhood
// (d(G,Q) <= GammaStar); outside, all neighbors form one batch.
type NeighborRanker struct {
	Cfg    Config
	Params *nn.Params

	cross *cg.CrossModel // encodes (G', Q)
	node  *cg.GINModel   // encodes the current node G
	heads []*nn.MLP      // one binary head per partial ranker
	store *CGStore

	// nodeEmbs[i] is the precomputed h_G of database graph i (nil until
	// PrecomputeNodeEmbeddings or SetNodeEmbeddings runs). The router
	// needs h_G for every ranking call; computing all of them once at
	// index-build time moves that cost offline.
	nodeEmbs [][]float64

	// embSrc, when set, serves precomputed embeddings by id from external
	// storage (an mmap snapshot) instead of the in-heap table. The table
	// takes precedence where populated.
	embSrc NodeEmbeddingSource
}

// NodeEmbeddingSource serves precomputed node embeddings h_G by database
// id from external storage — how an mmap-backed snapshot provides the
// M_rk table without materializing it on the heap. NodeEmbedding fills
// buf (growing it as needed) or returns a read-only view; the returned
// row is only valid until the next call with the same buf.
type NodeEmbeddingSource interface {
	NodeEmbedding(id int, buf []float64) []float64
	NodeEmbeddingCount() int
}

// SetNodeEmbeddingSource installs an external embedding source (see
// NodeEmbeddingSource). Pass nil to clear.
func (r *NeighborRanker) SetNodeEmbeddingSource(src NodeEmbeddingSource) { r.embSrc = src }

// NewNeighborRanker builds an untrained M_rk over the store's vocabulary.
func NewNeighborRanker(cfg Config, store *CGStore) *NeighborRanker {
	cfg.defaults()
	p := nn.NewParams()
	rng := newRNG(cfg.Seed, 0x11a)
	ccfg := cg.Config{Layers: cfg.Layers, Dim: cfg.Dim, Vocab: store.Vocab}
	r := &NeighborRanker{
		Cfg:    cfg,
		Params: p,
		cross:  cg.NewCrossModel(p, "mrk.cross", ccfg, rng),
		node:   cg.NewGINModel(p, "mrk.node", ccfg, rng),
		store:  store,
	}
	in := 3 * cfg.Dim // h_{G',Q} (2*Dim) || h_G (Dim)
	for i := 0; i < cfg.Heads(); i++ {
		r.heads = append(r.heads, nn.NewMLP(p, headName(i), []int{in, cfg.Hidden, 1}, rng))
	}
	return r
}

func headName(i int) string { return "mrk.head" + string(rune('0'+i)) }

// logits runs the full forward pass for one (Q, G', G) triple and returns
// one logit per head.
func (r *NeighborRanker) logits(q, neighbor, node *graph.Graph) []*autograd.Value {
	hgq := crossEncode(r.cross, r.store, neighbor, q)
	hg := r.node.Forward(r.store.For(node))
	in := autograd.ConcatCols(hgq, hg)
	out := make([]*autograd.Value, len(r.heads))
	for i, h := range r.heads {
		out[i] = h.Apply(in)
	}
	return out
}

// Score returns the summed head probability for one neighbor — a monotone
// proxy for its predicted rank (higher means predicted closer to Q).
func (r *NeighborRanker) Score(q, neighbor, node *graph.Graph) float64 {
	return r.scoreWithNodeEmbedding(r.store.For(q), neighbor, r.nodeEmbedding(node))
}

// PrecomputeNodeEmbeddings embeds every database graph with the node
// encoder once (batched across workers goroutines) so the router never
// pays h_G at query time. Call after training; SetNodeEmbeddings restores
// the same state from a snapshot.
func (r *NeighborRanker) PrecomputeNodeEmbeddings(db graph.Database, workers int) {
	cs := make([]*cg.Compressed, len(db))
	for i, g := range db {
		cs[i] = r.store.For(g)
	}
	r.nodeEmbs = r.node.BatchEmbed(cs, workers)
}

// NodeEmbeddings returns the precomputed database embeddings (nil if
// PrecomputeNodeEmbeddings has not run); the slice is shared, not copied.
func (r *NeighborRanker) NodeEmbeddings() [][]float64 { return r.nodeEmbs }

// SetNodeEmbeddings installs embeddings loaded from a snapshot. It
// validates the shape against the database size and the encoder's output
// dimension.
func (r *NeighborRanker) SetNodeEmbeddings(embs [][]float64, dbSize int) error {
	if len(embs) != dbSize {
		return errf("%d node embeddings for %d database graphs", len(embs), dbSize)
	}
	for i, e := range embs {
		if len(e) != r.Cfg.Dim {
			return errf("node embedding %d has dim %d, want %d", i, len(e), r.Cfg.Dim)
		}
	}
	r.nodeEmbs = embs
	return nil
}

// WithNodeEmbeddings returns a shallow copy of the ranker whose
// precomputed-embedding table is pinned to embs: the view a mutable
// index publishes with each snapshot, so concurrent appends to the
// writer's table never reach readers of an older epoch.
func (r *NeighborRanker) WithNodeEmbeddings(embs [][]float64) *NeighborRanker {
	view := *r
	view.nodeEmbs = embs
	return &view
}

// EmbedGraph encodes one graph with the node encoder — the per-insert
// counterpart of PrecomputeNodeEmbeddings.
func (r *NeighborRanker) EmbedGraph(g *graph.Graph) []float64 {
	return r.node.Embed(r.store.For(g))
}

// AppendNodeEmbedding extends the precomputed table by one inserted
// graph (ids are append-only, so position == id).
func (r *NeighborRanker) AppendNodeEmbedding(emb []float64) {
	r.nodeEmbs = append(r.nodeEmbs, emb)
}

// nodeEmbedding returns h_G for a graph, served from the precomputed
// table when the graph is a database member covered by it.
func (r *NeighborRanker) nodeEmbedding(node *graph.Graph) []float64 {
	if node.ID >= 0 && node.ID < len(r.nodeEmbs) && r.nodeEmbs[node.ID] != nil {
		return r.nodeEmbs[node.ID]
	}
	return r.node.Embed(r.store.For(node))
}

// nodeEmbeddingByID is nodeEmbedding keyed by database id: the in-heap
// table first, then the external source (mmap snapshot), then a fresh
// encoder pass over the fetched graph. buf is a caller-owned scratch
// slice written only on the external-source path, so rows returned from
// the table or encoder are never aliased by it.
func (r *NeighborRanker) nodeEmbeddingByID(store pg.GraphStore, id int, buf *[]float64) []float64 {
	if id >= 0 && id < len(r.nodeEmbs) && r.nodeEmbs[id] != nil {
		return r.nodeEmbs[id]
	}
	if r.embSrc != nil && id >= 0 && id < r.embSrc.NodeEmbeddingCount() {
		*buf = r.embSrc.NodeEmbedding(id, (*buf)[:0])
		return *buf
	}
	return r.node.Embed(r.store.For(store.Graph(id)))
}

// scoreWithNodeEmbedding scores a neighbor given the query's compressed
// GNN-graph and the current node's embedding (the router ranks many
// neighbors of one node for one query, so both are computed once per
// ranking call — and qc once per search). Tape-free inference path; the
// values match the autograd path bit for bit because MLP.Infer shares
// Apply's kernels.
func (r *NeighborRanker) scoreWithNodeEmbedding(qc *cg.Compressed, neighbor *graph.Graph, nodeEmb []float64) float64 {
	cross := r.cross.Infer(r.store.For(neighbor), qc)
	in := mat.GetScratch(1, len(cross)+len(nodeEmb))
	copy(in.Data, cross)
	copy(in.Data[len(cross):], nodeEmb)
	s := 0.0
	for _, h := range r.heads {
		out := h.Infer(in)
		s += sigmoid(out.At(0, 0))
	}
	mat.PutScratch(in)
	return s
}

// Ranker adapts M_rk to the router: inside N_Q (dCurrent <= GammaStar)
// neighbors are ordered by predicted score and cut into y% batches;
// outside, a single batch disables pruning, per the paper's Sec. IV-C.
// qc is the query's compressed GNN-graph, built once per search (nil
// falls back to building it here). Calls counts model invocations for the
// time-breakdown experiments. Candidate graphs come through store, with
// each ranking call's neighbors fetched as one batch; the returned Ranker
// closes over per-query scratch and must not be shared across searches.
func (r *NeighborRanker) Ranker(store pg.GraphStore, q *graph.Graph, qc *cg.Compressed, calls *int) route.Ranker {
	if qc == nil {
		qc = r.store.Query(q)
	}
	var fetched []*graph.Graph
	var embBuf []float64
	return route.RankerFunc(func(node int, neighbors []int, dCurrent float64) [][]int {
		if dCurrent > r.Cfg.GammaStar || len(neighbors) <= 1 {
			return route.SplitBatches(append([]int(nil), neighbors...), 100)
		}
		type scored struct {
			id    int
			score float64
		}
		nodeEmb := r.nodeEmbeddingByID(store, node, &embBuf)
		fetched = store.FetchGraphs(neighbors, fetched[:0])
		ss := make([]scored, len(neighbors))
		for i, nb := range neighbors {
			ss[i] = scored{id: nb, score: r.scoreWithNodeEmbedding(qc, fetched[i], nodeEmb)}
			if calls != nil {
				*calls++
			}
		}
		sort.SliceStable(ss, func(i, j int) bool {
			return order.ByScoreThenID(ss[i].score, ss[i].id, ss[j].score, ss[j].id)
		})
		ranked := make([]int, len(ss))
		for i, s := range ss {
			ranked[i] = s.id
		}
		return route.SplitBatches(ranked, r.Cfg.BatchPercent)
	})
}

// RankExample is one M_rk training example: rank the neighbors of PG node
// Node for query Qi.
type RankExample struct {
	Qi   int // index into the distance table's queries
	Node int
	// Neighbors and Ranks: Ranks[j] is the 0-based true rank of
	// Neighbors[j] among the node's neighbors by distance to the query.
	Neighbors []int
	Ranks     []int
}

// BuildRankTrainingSet assembles the paper's neighborhood-restricted
// training set: for each training query, every PG node inside N_Q
// contributes its ranked neighbor list.
func BuildRankTrainingSet(p *pg.PG, table *DistanceTable, gammaStar float64) []RankExample {
	var out []RankExample
	for qi := range table.Queries {
		row := table.D[qi]
		for node := 0; node < p.Len(); node++ {
			if row[node] > gammaStar {
				continue // train only inside the neighborhood (Sec. IV-C)
			}
			ns := p.Neighbors(node)
			if len(ns) < 2 {
				continue
			}
			idx := make([]int, len(ns))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				return order.ByDistThenID(row[ns[idx[a]]], ns[idx[a]], row[ns[idx[b]]], ns[idx[b]])
			})
			ranks := make([]int, len(ns))
			for rank, i := range idx {
				ranks[i] = rank
			}
			out = append(out, RankExample{
				Qi: qi, Node: node,
				Neighbors: append([]int(nil), ns...),
				Ranks:     ranks,
			})
		}
	}
	return out
}

// Train fits the ranker heads with binary cross-entropy per head: head i's
// positive class is "true rank within the top (i+1)*y%".
func (r *NeighborRanker) Train(db graph.Database, table *DistanceTable, examples []RankExample, opts TrainOptions) error {
	if len(examples) == 0 {
		return errf("empty M_rk training set")
	}
	trainLoop(r.Params, len(examples), opts, r.Cfg.Seed, func(idx int) float64 {
		ex := examples[idx]
		q := table.Queries[ex.Qi]
		n := len(ex.Neighbors)
		total := 0.0
		for j, nb := range ex.Neighbors {
			logits := r.logits(q, db[nb], db[ex.Node])
			for i, logit := range logits {
				cut := (i + 1) * r.Cfg.BatchPercent * n / 100
				if cut < 1 {
					cut = 1
				}
				y := 0.0
				if ex.Ranks[j] < cut {
					y = 1
				}
				loss := autograd.BCEWithLogits(logit, binaryTargets(y))
				autograd.Backward(loss)
				total += loss.Data.At(0, 0)
			}
		}
		return total / float64(n*len(r.heads))
	})
	return nil
}

// RankAccuracy measures, over examples, the fraction of top-y% neighbors
// (by truth) that the model also places in its top y% — the metric that
// determines pruning safety.
func (r *NeighborRanker) RankAccuracy(db graph.Database, table *DistanceTable, examples []RankExample) float64 {
	if len(examples) == 0 {
		return 0
	}
	hit, total := 0, 0
	for _, ex := range examples {
		q := table.Queries[ex.Qi]
		n := len(ex.Neighbors)
		cut := r.Cfg.BatchPercent * n / 100
		if cut < 1 {
			cut = 1
		}
		type scored struct {
			j     int
			score float64
		}
		ss := make([]scored, n)
		for j, nb := range ex.Neighbors {
			ss[j] = scored{j: j, score: r.Score(q, db[nb], db[ex.Node])}
		}
		sort.SliceStable(ss, func(a, b int) bool { return ss[a].score > ss[b].score })
		pred := make(map[int]bool, cut)
		for _, s := range ss[:cut] {
			pred[s.j] = true
		}
		for j := range ex.Neighbors {
			if ex.Ranks[j] < cut {
				total++
				if pred[j] {
					hit++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
