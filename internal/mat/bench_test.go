package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the product kernels at the sizes the GNNs actually see:
// tiny cross-encoder heads (16), mid-size layer matmuls (64), and the
// batched-embedding stacks (256). MulInto is benchmarked with a reused
// destination to show the allocation-free steady state.

var benchSizes = []int{16, 64, 256}

func benchMatrices(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(int64(n)))
	return Randn(n, n, 1, rng), Randn(n, n, 1, rng)
}

func BenchmarkMul(b *testing.B) {
	for _, n := range benchSizes {
		a, c := benchMatrices(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Mul(a, c)
			}
		})
	}
}

func BenchmarkMulInto(b *testing.B) {
	for _, n := range benchSizes {
		a, c := benchMatrices(n)
		dst := New(n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulInto(dst, a, c)
			}
		})
	}
}

func BenchmarkMulT(b *testing.B) {
	for _, n := range benchSizes {
		a, c := benchMatrices(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulT(a, c)
			}
		})
	}
}

func BenchmarkTMul(b *testing.B) {
	for _, n := range benchSizes {
		a, c := benchMatrices(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				TMul(a, c)
			}
		})
	}
}
