// Package mat implements the small dense float64 matrix kernels that back
// the library's neural network substrate. It is deliberately minimal: row
// major storage, no views, explicit shapes, and panics on shape mismatch
// (shape errors are programming bugs, not runtime conditions).
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a matrix from a row-major slice, which is copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Randn fills a new matrix with N(0, std) entries from rng.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// SameShapeOrPanic panics when m and o have different dimensions.
func (m *Matrix) SameShapeOrPanic(o *Matrix) { m.shapeCheck(o, "shape") }

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Product-kernel tuning. The tiles keep a destination-row segment and
// the matching segment of the streamed operand rows L1-resident; every
// tiling loop walks the inner (k) dimension in ascending order for each
// output element, so tiled results are bit-identical to the naive triple
// loop. parallelMinWork is the multiply-add count below which goroutine
// fan-out costs more than it saves.
const (
	tileJ           = 128
	tileK           = 256
	parallelMinWork = 1 << 19
)

// rangeKernel computes destination rows [i0, i1) of one product kernel.
// Declared kernels (mulRange, mulTRange, tMulRange) are passed instead of
// closures so that the sequential fast path of parallelRows allocates
// nothing.
type rangeKernel func(dst, m, o *Matrix, i0, i1 int)

// parallelRows splits the destination rows [0, rows) across GOMAXPROCS
// goroutines when the kernel has enough work to amortize the fan-out.
// Each range writes a disjoint set of rows and the per-element
// accumulation order is untouched, so the parallel product is
// bit-identical to the sequential one.
func parallelRows(dst, m, o *Matrix, rows, work int, kernel rangeKernel) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelMinWork || workers < 2 || rows < 2 {
		kernel(dst, m, o, 0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		//lint:allow hotalloc goroutine fan-out runs only above parallelMinWork, where the kernel's work amortizes the closure
		go func(i0, i1 int) {
			defer wg.Done()
			kernel(dst, m, o, i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Mul returns the matrix product m * o.
func Mul(m, o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	return MulInto(New(m.Rows, o.Cols), m, o)
}

// MulInto computes m * o into dst (which must be m.Rows x o.Cols and
// must not alias m or o) and returns dst. Reusing a destination — e.g.
// one drawn from GetScratch — avoids the per-call allocation of Mul on
// hot paths.
//
//lan:hotpath
func MulInto(dst, m, o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != o.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mul into %dx%d destination for %dx%d product", dst.Rows, dst.Cols, m.Rows, o.Cols))
	}
	parallelRows(dst, m, o, m.Rows, m.Rows*m.Cols*o.Cols, mulRange)
	return dst
}

// mulRange computes rows [i0, i1) of dst = m * o, tiled over the inner
// dimension and the destination columns. Dense inputs take no
// per-element branch (zero-skip lives only in the sparse-aware TMul).
//
//lan:hotpath
func mulRange(dst, m, o *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k0 := 0; k0 < m.Cols; k0 += tileK {
		k1 := k0 + tileK
		if k1 > m.Cols {
			k1 = m.Cols
		}
		for j0 := 0; j0 < o.Cols; j0 += tileJ {
			j1 := j0 + tileJ
			if j1 > o.Cols {
				j1 = o.Cols
			}
			for i := i0; i < i1; i++ {
				mrow := m.Row(i)
				drow := dst.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					a := mrow[k]
					brow := o.Row(k)[j0:j1]
					for j, b := range brow {
						drow[j] += a * b
					}
				}
			}
		}
	}
}

// MulT returns m * oᵀ.
func MulT(m, o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mulT shape mismatch %dx%d * (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	return MulTInto(New(m.Rows, o.Rows), m, o)
}

// MulTInto computes m * oᵀ into dst (which must be m.Rows x o.Rows and
// must not alias m or o) and returns dst.
//
//lan:hotpath
func MulTInto(dst, m, o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mulT shape mismatch %dx%d * (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != o.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: mulT into %dx%d destination for %dx%d product", dst.Rows, dst.Cols, m.Rows, o.Rows))
	}
	parallelRows(dst, m, o, m.Rows, m.Rows*m.Cols*o.Rows, mulTRange)
	return dst
}

// mulTRange computes rows [i0, i1) of dst = m * oᵀ as dot products,
// tiled over o's rows so a tile of them stays cached across the range.
//
//lan:hotpath
func mulTRange(dst, m, o *Matrix, i0, i1 int) {
	for j0 := 0; j0 < o.Rows; j0 += tileJ {
		j1 := j0 + tileJ
		if j1 > o.Rows {
			j1 = o.Rows
		}
		for i := i0; i < i1; i++ {
			mrow := m.Row(i)
			drow := dst.Row(i)
			for j := j0; j < j1; j++ {
				orow := o.Row(j)
				s := 0.0
				for k, a := range mrow {
					s += a * orow[k]
				}
				drow[j] = s
			}
		}
	}
}

// TMul returns mᵀ * o.
func TMul(m, o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: tmul shape mismatch (%dx%d)ᵀ * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	return TMulInto(New(m.Cols, o.Cols), m, o)
}

// TMulInto computes mᵀ * o into dst (which must be m.Cols x o.Cols and
// must not alias m or o) and returns dst. It keeps the zero-skip: its
// left operand is routinely sparse (one-hot GNN inputs, ReLU-masked
// activations and their gradients), where skipping zero rows saves far
// more than the branch costs.
//
//lan:hotpath
func TMulInto(dst, m, o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: tmul shape mismatch (%dx%d)ᵀ * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	if dst.Rows != m.Cols || dst.Cols != o.Cols {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: tmul into %dx%d destination for %dx%d product", dst.Rows, dst.Cols, m.Cols, o.Cols))
	}
	parallelRows(dst, m, o, m.Cols, m.Rows*m.Cols*o.Cols, tMulRange)
	return dst
}

// tMulRange computes rows [i0, i1) of dst = mᵀ * o (i indexes m's
// columns). k stays the outer ascending loop, so per-element accumulation
// order matches the naive kernel exactly.
//
//lan:hotpath
func tMulRange(dst, m, o *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k := 0; k < m.Rows; k++ {
		mrow := m.Row(k)[i0:i1]
		okrow := o.Row(k)
		for di, a := range mrow {
			if a == 0 {
				continue
			}
			drow := dst.Row(i0 + di)
			for j, b := range okrow {
				drow[j] += a * b
			}
		}
	}
}

// scratchPool recycles buffers for the Into-style kernels: the autograd
// backward rules and the tape-free inference paths need a temporary per
// call, and at thousands of calls per query the allocations become a
// measurable garbage-collector cost.
var scratchPool = sync.Pool{New: func() interface{} { return new(Matrix) }}

// GetScratch returns a zeroed rows x cols matrix drawn from the shared
// scratch pool. Return it with PutScratch when done; the caller must not
// retain the matrix (or slices of its Data) afterwards.
func GetScratch(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		//lint:allow libpanic documented numpy-style shape-check contract; unreachable for well-formed models
		panic(fmt.Sprintf("mat: negative shape %dx%d", rows, cols))
	}
	m := scratchPool.Get().(*Matrix)
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// PutScratch returns a matrix obtained from GetScratch to the pool.
func PutScratch(m *Matrix) {
	if m != nil {
		scratchPool.Put(m)
	}
}

// Add returns m + o.
func Add(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "add")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates o into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// AddScaledInPlace accumulates s*o into m.
func (m *Matrix) AddScaledInPlace(o *Matrix, s float64) {
	m.shapeCheck(o, "addscaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
}

// Sub returns m - o.
func Sub(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "sub")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func Scale(m *Matrix, s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Hadamard returns the elementwise product m ⊙ o.
func Hadamard(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "hadamard")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] *= v
	}
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbsDiff returns max |m - o| elementwise.
func MaxAbsDiff(m, o *Matrix) float64 {
	m.shapeCheck(o, "maxabsdiff")
	max := 0.0
	for i, v := range o.Data {
		if d := math.Abs(m.Data[i] - v); d > max {
			max = d
		}
	}
	return max
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)%v", m.Rows, m.Cols, m.Data)
}
