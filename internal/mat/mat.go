// Package mat implements the small dense float64 matrix kernels that back
// the library's neural network substrate. It is deliberately minimal: row
// major storage, no views, explicit shapes, and panics on shape mismatch
// (shape errors are programming bugs, not runtime conditions).
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a matrix from a row-major slice, which is copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Randn fills a new matrix with N(0, std) entries from rng.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// SameShapeOrPanic panics when m and o have different dimensions.
func (m *Matrix) SameShapeOrPanic(o *Matrix) { m.shapeCheck(o, "shape") }

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Mul returns the matrix product m * o.
func Mul(m, o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			okrow := o.Row(k)
			for j, b := range okrow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// MulT returns m * oᵀ.
func MulT(m, o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: mulT shape mismatch %dx%d * (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Rows)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		for j := 0; j < o.Rows; j++ {
			orow := o.Row(j)
			s := 0.0
			for k, a := range mrow {
				s += a * orow[k]
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TMul returns mᵀ * o.
func TMul(m, o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("mat: tmul shape mismatch (%dx%d)ᵀ * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Cols, o.Cols)
	for k := 0; k < m.Rows; k++ {
		mrow := m.Row(k)
		okrow := o.Row(k)
		for i, a := range mrow {
			if a == 0 {
				continue
			}
			orow := out.Row(i)
			for j, b := range okrow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// Add returns m + o.
func Add(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "add")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates o into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// AddScaledInPlace accumulates s*o into m.
func (m *Matrix) AddScaledInPlace(o *Matrix, s float64) {
	m.shapeCheck(o, "addscaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
}

// Sub returns m - o.
func Sub(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "sub")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s * m.
func Scale(m *Matrix, s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Hadamard returns the elementwise product m ⊙ o.
func Hadamard(m, o *Matrix) *Matrix {
	m.shapeCheck(o, "hadamard")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] *= v
	}
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbsDiff returns max |m - o| elementwise.
func MaxAbsDiff(m, o *Matrix) float64 {
	m.shapeCheck(o, "maxabsdiff")
	max := 0.0
	for i, v := range o.Data {
		if d := math.Abs(m.Data[i] - v); d > max {
			max = d
		}
	}
	return max
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)%v", m.Rows, m.Cols, m.Data)
}
