package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %v", m)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Data[5] != 5 {
		t.Fatalf("Set/At broken: %v", m)
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatalf("Row does not alias storage")
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, src)
	src[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatalf("FromSlice aliased input")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatalf("Mul = %v; want %v", got, want)
	}
}

func TestMulTAndTMulAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := Randn(2+rng.Intn(5), 2+rng.Intn(5), 1, rng)
		b := Randn(2+rng.Intn(5), a.Cols, 1, rng)
		if MaxAbsDiff(MulT(a, b), Mul(a, Transpose(b))) > 1e-12 {
			t.Fatalf("MulT mismatch")
		}
		c := Randn(a.Rows, 2+rng.Intn(5), 1, rng)
		if MaxAbsDiff(TMul(a, c), Mul(Transpose(a), c)) > 1e-12 {
			t.Fatalf("TMul mismatch")
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	if MaxAbsDiff(Add(a, b), FromSlice(2, 2, []float64{11, 22, 33, 44})) != 0 {
		t.Fatalf("Add wrong")
	}
	if MaxAbsDiff(Sub(b, a), FromSlice(2, 2, []float64{9, 18, 27, 36})) != 0 {
		t.Fatalf("Sub wrong")
	}
	if MaxAbsDiff(Scale(a, 2), FromSlice(2, 2, []float64{2, 4, 6, 8})) != 0 {
		t.Fatalf("Scale wrong")
	}
	if MaxAbsDiff(Hadamard(a, b), FromSlice(2, 2, []float64{10, 40, 90, 160})) != 0 {
		t.Fatalf("Hadamard wrong")
	}
	c := a.Clone()
	c.AddInPlace(b)
	if MaxAbsDiff(c, Add(a, b)) != 0 {
		t.Fatalf("AddInPlace wrong")
	}
	d := a.Clone()
	d.AddScaledInPlace(b, 0.5)
	if MaxAbsDiff(d, FromSlice(2, 2, []float64{6, 12, 18, 24})) != 0 {
		t.Fatalf("AddScaledInPlace wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Randn(1+rng.Intn(6), 1+rng.Intn(6), 1, rng)
		return MaxAbsDiff(Transpose(Transpose(m)), m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if math.Abs(m.Norm2()-5) > 1e-12 {
		t.Fatalf("Norm2 = %v; want 5", m.Norm2())
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { Mul(New(2, 3), New(2, 3)) },
		func() { Add(New(2, 3), New(3, 2)) },
		func() { FromSlice(2, 2, []float64{1}) },
		func() { New(-1, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

// naiveMul is the reference triple loop the tiled kernels must match bit
// for bit (same ascending-k accumulation per output element).
func naiveMul(m, o *Matrix) *Matrix {
	out := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < o.Cols; j++ {
			s := 0.0
			for k := 0; k < m.Cols; k++ {
				s += m.At(i, k) * o.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestTiledKernelsBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Shapes straddling the tile boundaries, including a parallel-sized
	// product (work > parallelMinWork) so the goroutine split is covered.
	shapes := [][3]int{{1, 1, 1}, {3, 5, 4}, {17, 129, 31}, {130, 257, 129}, {96, 96, 96}}
	if !testing.Short() {
		shapes = append(shapes, [3]int{120, 300, 160}) // 120*300*160 > parallelMinWork
	}
	for _, s := range shapes {
		a := Randn(s[0], s[1], 1, rng)
		b := Randn(s[1], s[2], 1, rng)
		want := naiveMul(a, b)
		if MaxAbsDiff(Mul(a, b), want) != 0 {
			t.Fatalf("Mul %v not bit-identical to naive", s)
		}
		if MaxAbsDiff(MulT(a, Transpose(b)), want) != 0 {
			t.Fatalf("MulT %v not bit-identical to naive", s)
		}
		if MaxAbsDiff(TMul(Transpose(a), b), want) != 0 {
			t.Fatalf("TMul %v not bit-identical to naive", s)
		}
	}
}

func TestIntoVariantsMatchAndReuseDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(9, 17, 1, rng)
	b := Randn(17, 13, 1, rng)
	dst := Randn(9, 13, 1, rng) // dirty destination must be fully overwritten
	if MaxAbsDiff(MulInto(dst, a, b), Mul(a, b)) != 0 {
		t.Fatalf("MulInto differs from Mul")
	}
	bt := Transpose(b)
	dst2 := Randn(9, 13, 1, rng)
	if MaxAbsDiff(MulTInto(dst2, a, bt), MulT(a, bt)) != 0 {
		t.Fatalf("MulTInto differs from MulT")
	}
	c := Randn(9, 13, 1, rng)
	dst4 := Randn(17, 13, 1, rng)
	if MaxAbsDiff(TMulInto(dst4, a, c), TMul(a, c)) != 0 {
		t.Fatalf("TMulInto differs from TMul")
	}
}

func TestIntoShapePanics(t *testing.T) {
	cases := []func(){
		func() { MulInto(New(2, 2), New(2, 3), New(3, 3)) },  // dst cols wrong
		func() { MulInto(New(2, 3), New(2, 4), New(3, 3)) },  // inner mismatch
		func() { MulTInto(New(2, 2), New(2, 3), New(4, 3)) }, // dst cols wrong
		func() { TMulInto(New(2, 2), New(4, 3), New(4, 2)) }, // dst rows wrong
		func() { GetScratch(-1, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestScratchIsZeroedAndResized(t *testing.T) {
	m := GetScratch(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	PutScratch(m)
	for trial := 0; trial < 4; trial++ {
		s := GetScratch(2, 3)
		if s.Rows != 2 || s.Cols != 3 || len(s.Data) != 6 {
			t.Fatalf("GetScratch shape %dx%d len %d", s.Rows, s.Cols, len(s.Data))
		}
		if s.Norm2() != 0 {
			t.Fatalf("GetScratch returned dirty buffer %v", s.Data)
		}
		PutScratch(s)
	}
	big := GetScratch(10, 10) // larger than anything pooled so far
	if len(big.Data) != 100 || big.Norm2() != 0 {
		t.Fatalf("GetScratch growth broken")
	}
	PutScratch(big)
}

func TestZeroAndClone(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	c := m.Clone()
	m.Zero()
	if m.Norm2() != 0 {
		t.Fatalf("Zero left %v", m)
	}
	if c.Norm2() == 0 {
		t.Fatalf("Zero affected clone")
	}
}
