package mutable

import (
	"sync"
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/models"
)

var fixture struct {
	once  sync.Once
	db    graph.Database
	train []*graph.Graph
	test  []*graph.Graph
}

// smallEngine builds a fresh engine per call — mutation tests must not
// share one — over a database and workload generated once.
func smallEngine(t *testing.T) (*core.Engine, graph.Database, []*graph.Graph) {
	t.Helper()
	f := &fixture
	f.once.Do(func() {
		spec := dataset.AIDS(0.002)
		f.db = spec.Generate()
		queries := dataset.Workload(f.db, spec, 12, 4)
		f.train, _, f.test = dataset.Split(queries)
	})
	eng, err := core.Build(f.db, f.train, core.Options{
		M: 4, Dim: 6, GammaKNN: 5,
		Train: models.TrainOptions{Epochs: 1, LR: 0.01},
		Seed:  3,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return eng, f.db, f.test
}

func newIndex(t *testing.T) (*Index, graph.Database, []*graph.Graph) {
	t.Helper()
	eng, db, test := smallEngine(t)
	x, err := New(eng, nil, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { x.Close() })
	return x, db, test
}

func TestInsertDeleteEpochsAndCounts(t *testing.T) {
	x, db, test := newIndex(t)

	if x.Epoch() != 0 || x.Len() != len(db) || x.Total() != len(db) {
		t.Fatalf("fresh index: epoch %d, len %d, total %d", x.Epoch(), x.Len(), x.Total())
	}

	id, err := x.Insert(test[0])
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != len(db) {
		t.Fatalf("insert id = %d; want %d (ids are append-only)", id, len(db))
	}
	if x.Epoch() == 0 {
		t.Fatal("insert did not advance the epoch")
	}
	if x.Len() != len(db)+1 || x.Total() != len(db)+1 {
		t.Fatalf("after insert: len %d, total %d", x.Len(), x.Total())
	}
	// The insert must not have mutated the caller's graph.
	if test[0].ID == id {
		t.Fatal("Insert re-labeled the caller's graph in place")
	}

	before := x.Epoch()
	if err := x.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if x.Epoch() <= before {
		t.Fatal("delete did not advance the epoch")
	}
	if x.Len() != len(db) || x.Total() != len(db)+1 {
		t.Fatalf("after delete: len %d, total %d (husk must stay in the id space)", x.Len(), x.Total())
	}

	if err := x.Delete(0); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := x.Delete(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := x.Delete(x.Total()); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := x.Insert(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	x, db, test := newIndex(t)
	q := test[0]

	pinned := x.Snapshot()
	wantRes, wantStats := pinned.Engine.Search(q, core.SearchOptions{K: 3, Beam: 10})

	// Land a burst of writes and let the optimizer rewire.
	for _, g := range test {
		if _, err := x.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 3; id++ {
		if err := x.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	x.Quiesce()

	// The pinned snapshot is frozen: same epoch, same size, and queries
	// against it are bit-identical to the pre-write run.
	if pinned.Epoch != 0 || pinned.Live != len(db) || len(pinned.Engine.DB) != len(db) {
		t.Fatalf("pinned snapshot drifted: epoch %d, live %d, db %d", pinned.Epoch, pinned.Live, len(pinned.Engine.DB))
	}
	gotRes, gotStats := pinned.Engine.Search(q, core.SearchOptions{K: 3, Beam: 10})
	if len(gotRes) != len(wantRes) {
		t.Fatalf("pinned search changed arity: %d vs %d", len(gotRes), len(wantRes))
	}
	for i := range wantRes {
		if gotRes[i] != wantRes[i] {
			t.Fatalf("pinned search result %d changed: %+v != %+v", i, gotRes[i], wantRes[i])
		}
	}
	if gotStats.NDC != wantStats.NDC {
		t.Fatalf("pinned search NDC changed: %d != %d", gotStats.NDC, wantStats.NDC)
	}

	// The current snapshot sees the writes: deleted ids never surface.
	cur := x.Snapshot()
	if cur.Epoch == 0 || cur.Live != len(db)+len(test)-3 {
		t.Fatalf("current snapshot: epoch %d, live %d", cur.Epoch, cur.Live)
	}
	res, _ := cur.Engine.Search(q, core.SearchOptions{K: 5, Beam: 12})
	for _, r := range res {
		if r.ID < 3 {
			t.Fatalf("deleted graph %d surfaced in results: %+v", r.ID, res)
		}
	}
}

func TestCompactDetachesHusksAndRescuesEntry(t *testing.T) {
	x, _, _ := newIndex(t)

	// Tombstone the HNSW entry plus a couple more vertices.
	entry := x.eng.Index.Entry
	victims := map[int]bool{entry: true, (entry + 1) % x.Total(): true, (entry + 2) % x.Total(): true}
	for id := range victims {
		if err := x.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	x.Quiesce()

	detached, err := x.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if detached != len(victims) {
		t.Fatalf("Compact detached %d; want %d", detached, len(victims))
	}
	snap := x.Snapshot()
	h := snap.Engine.Index
	for id := range victims {
		if len(h.PG.Adj[id]) != 0 {
			t.Fatalf("husk %d keeps edges after Compact: %v", id, h.PG.Adj[id])
		}
	}
	for v, ns := range h.PG.Adj {
		for _, w := range ns {
			if victims[w] {
				t.Fatalf("node %d still points at detached husk %d", v, w)
			}
		}
	}
	if victims[h.Entry] {
		t.Fatalf("entry %d not rescued off the detached husk", h.Entry)
	}
	if len(h.PG.Adj[h.Entry]) == 0 {
		t.Fatalf("rescued entry %d is edgeless", h.Entry)
	}

	// Compacting again is a no-op: no husk has edges left.
	epoch := x.Epoch()
	again, err := x.Compact()
	if err != nil || again != 0 {
		t.Fatalf("second Compact = (%d, %v); want (0, nil)", again, err)
	}
	if x.Epoch() != epoch {
		t.Fatal("no-op Compact advanced the epoch")
	}
}

func TestQuiesceConverges(t *testing.T) {
	x, _, test := newIndex(t)
	for _, g := range test {
		if _, err := x.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	x.Quiesce()
	epoch := x.Epoch()
	// With the churn queue drained and no new writes, further quiescing
	// must not move the index.
	x.Quiesce()
	if x.Epoch() != epoch {
		t.Fatalf("Quiesce after Quiesce advanced epoch %d -> %d", epoch, x.Epoch())
	}
	if err := x.eng.Index.PG.Validate(); err != nil {
		t.Fatalf("Validate after quiesced churn: %v", err)
	}
}

func TestCloseIdempotentAndRejectsWrites(t *testing.T) {
	x, _, test := newIndex(t)
	if _, err := x.Insert(test[0]); err != nil {
		t.Fatal(err)
	}
	if err := x.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := x.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := x.Insert(test[1]); err == nil {
		t.Fatal("Insert accepted after Close")
	}
	if err := x.Delete(0); err == nil {
		t.Fatal("Delete accepted after Close")
	}
	if _, err := x.Compact(); err == nil {
		t.Fatal("Compact accepted after Close")
	}
	// Reads keep working off the last snapshot.
	snap := x.Snapshot()
	if snap == nil || snap.Live == 0 {
		t.Fatal("closed index lost its read view")
	}
	if res, _ := snap.Engine.Search(test[0], core.SearchOptions{K: 3, Beam: 10}); len(res) == 0 {
		t.Fatal("closed index stopped answering reads")
	}
}

func TestNewValidatesMutationState(t *testing.T) {
	eng, db, _ := smallEngine(t)
	st := &core.MutationState{
		Epoch: 2,
		Born:  make([]uint64, len(db)-1), // wrong length
		Died:  make([]uint64, len(db)),
	}
	if _, err := New(eng, st, 2); err == nil {
		t.Fatal("mismatched validity stamps accepted")
	}

	st.Born = make([]uint64, len(db))
	st.Died[0] = 1
	x, err := New(eng, st, 2)
	if err != nil {
		t.Fatalf("New with state: %v", err)
	}
	defer x.Close()
	if x.Epoch() != 2 || x.Len() != len(db)-1 || x.LoadedVersion() != 2 {
		t.Fatalf("restored: epoch %d, len %d, version %d", x.Epoch(), x.Len(), x.LoadedVersion())
	}
	if err := x.Delete(0); err == nil {
		t.Fatal("restored tombstone came back alive")
	}
}
