package mutable

import "github.com/lansearch/lan/internal/obs"

// Optimizer tuning. One pass holds the write lock, so both knobs bound
// writer-side latency: at most optimizerBatch churned nodes are
// re-wired per pass and a pass stops charging new work once
// optimizerBudget distance computations are spent (the memoizing build
// metric makes repeat visits cheaper than the budget suggests).
const (
	optimizerBatch  = 8
	optimizerBudget = 256
)

// ensureOptimizerLocked lazily starts the background optimizer. It is
// started on the first write — never at construction — so an index that
// is only read holds no goroutine and needs no Close for leak-freedom.
func (x *Index) ensureOptimizerLocked() {
	if x.optOn || x.closed {
		return
	}
	x.optOn = true
	x.stop = make(chan struct{})
	x.kick = make(chan struct{}, 1)
	x.wg.Add(1)
	go x.optimizerLoop()
}

// kickLocked nudges the optimizer without blocking: a pending kick
// already covers this write's churn.
func (x *Index) kickLocked() {
	if !x.optOn {
		return
	}
	select {
	case x.kick <- struct{}{}:
	default:
	}
}

// optimizerLoop drains the churn queue in budgeted passes whenever a
// write kicks it, and exits when Close closes the stop channel (the
// WaitGroup lets Close join it).
func (x *Index) optimizerLoop() {
	defer x.wg.Done()
	for {
		select {
		case <-x.stop:
			return
		case <-x.kick:
		}
		for {
			select {
			case <-x.stop:
				return
			default:
			}
			if !x.optimizeOnce() {
				break
			}
		}
	}
}

// optimizeOnce runs one budgeted pass under the write lock; it reports
// whether churn remains so callers keep draining.
func (x *Index) optimizeOnce() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.optimizePassLocked()
}

// optimizePassLocked pops up to optimizerBatch nodes off the churn
// queue and re-runs neighbor selection around each (2-hop candidates,
// diversity heuristic, symmetric rewiring) until the distance budget is
// spent. Any rewiring publishes a new epoch so readers pick up the
// repaired edges. Tombstoned nodes are skipped — their neighborhoods
// were enqueued separately — but stay navigable until Compact.
func (x *Index) optimizePassLocked() bool {
	if len(x.churn) == 0 {
		return false
	}
	budget := optimizerBudget
	popped := 0
	rewired := false
	for len(x.churn) > 0 && budget > 0 && popped < optimizerBatch {
		u := x.churn[0]
		x.churn = x.churn[1:]
		delete(x.inChurn, u)
		popped++
		if u >= len(x.dead) || x.dead[u] {
			continue
		}
		// See Insert for why write application is uncancellable.
		budget -= x.mut.Reselect(u)
		rewired = true
	}
	if rewired {
		x.epoch++
		x.publishLocked()
		obs.Mutate().OptimizerPasses.Inc()
	}
	return len(x.churn) > 0
}

// enqueueChurnLocked queues node u for edge optimization (dedup'd).
func (x *Index) enqueueChurnLocked(u int) {
	if x.inChurn[u] {
		return
	}
	x.inChurn[u] = true
	x.churn = append(x.churn, u)
}

// Quiesce synchronously drains the churn queue, running optimizer
// passes on the caller's goroutine until no repair work remains. After
// it returns (and absent concurrent writes) the graph is exactly what
// the background optimizer would eventually converge to — the hook that
// makes incremental-build quality deterministic and testable.
func (x *Index) Quiesce() {
	for x.optimizeOnce() {
	}
}
