package mutable

import (
	"errors"
	"testing"
)

// TestReadOnlyRejectsWrites pins the read-only gate mmap-backed indexes
// rely on: every write entry point returns ErrReadOnly before touching
// the index, while reads — searches, snapshots, accessors — keep
// working. Quiesce and Close stay harmless no-ops (no optimizer ever
// starts on an index that cannot accept writes).
func TestReadOnlyRejectsWrites(t *testing.T) {
	eng, db, test := smallEngine(t)
	x, err := NewReadOnly(eng, nil, 0)
	if err != nil {
		t.Fatalf("NewReadOnly: %v", err)
	}
	t.Cleanup(func() { x.Close() })

	if _, err := x.Insert(test[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert: err = %v; want ErrReadOnly", err)
	}
	if err := x.Delete(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete: err = %v; want ErrReadOnly", err)
	}
	if _, err := x.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact: err = %v; want ErrReadOnly", err)
	}
	if x.Epoch() != 0 || x.Len() != len(db) {
		t.Fatalf("rejected writes left a mark: epoch %d, len %d", x.Epoch(), x.Len())
	}

	snap := x.Snapshot()
	if snap.Live != len(db) || snap.Engine == nil {
		t.Fatalf("read view broken: %+v", snap)
	}
	x.Quiesce() // must not hang without an optimizer

	if err := x.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Closed read-only index still reports ErrReadOnly (the stronger,
	// earlier gate) rather than a closed-index error.
	if _, err := x.Insert(test[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert after Close: err = %v; want ErrReadOnly", err)
	}
}
