// Package mutable gives a built LAN engine a write path: streaming
// inserts that extend the HNSW incrementally, deletes that tombstone
// vertices via validity epochs instead of tearing edges out, and a
// background edge optimizer that repairs churned neighborhoods under a
// work budget.
//
// Reads never block on writes. Every applied mutation bumps the epoch
// and publishes a fresh immutable Snapshot through an atomic pointer;
// queries pin one snapshot and see a frozen index for their whole
// lifetime — bit-identical results and NDC no matter how many writes
// land concurrently. The writer maintains this with a copy-on-write
// discipline: publication hands out fresh copies of every outer
// structure (adjacency headers, layer maps, validity arrays, model-side
// tables), and pg.Mutator never edits a neighbor slice in place, so the
// inner slices a snapshot captured stay frozen too.
//
// Ids are append-only and never reused: an insert takes the next id, a
// delete leaves a tombstoned husk behind, and Compact only strips the
// husk's edges. Downstream memoizations keyed by graph id — the GED
// build-metric memo, M_rk's node-embedding table — therefore stay valid
// across every mutation, which is what makes per-write work bounded.
package mutable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// Index wraps a built engine with the write path. All mutating methods
// serialize on an internal lock; reads go through Snapshot and never
// take it.
type Index struct {
	mu  sync.Mutex
	eng *core.Engine // writer-owned; snapshots get views
	mut *pg.Mutator

	epoch uint64
	dead  []bool
	born  []uint64
	died  []uint64
	live  int

	snap atomic.Pointer[Snapshot]

	// churn is the optimizer's work queue: nodes whose neighborhood an
	// insert or delete disturbed, deduplicated.
	churn    []int
	inChurn  map[int]bool
	optOn    bool
	readonly bool
	closed   bool
	stop     chan struct{}
	kick     chan struct{}
	wg       sync.WaitGroup
	loadedAs int // snapshot format version this index was loaded from; 0 if built
}

// Snapshot is one point-in-time read view: a frozen engine plus the
// epoch it was published at. Queries against it are bit-identical for
// the snapshot's whole lifetime, regardless of concurrent writes.
type Snapshot struct {
	Engine *core.Engine
	Epoch  uint64
	// Live is the number of non-tombstoned graphs.
	Live int

	state *core.MutationState
}

// ErrReadOnly is returned by the write path of an index opened
// read-only (its storage cannot accept writes — e.g. an mmap-backed
// snapshot whose adjacency aliases read-only mapped memory).
var ErrReadOnly = errors.New("mutable: index is read-only")

// New wraps eng, whose ownership transfers to the returned index (the
// caller must not mutate or search eng directly afterwards; use
// Snapshot). st carries the validity stamps of a version-2 snapshot;
// nil means a fresh, never-mutated engine. loadedVersion is the
// persisted format version the engine came from (0 when built in
// memory).
func New(eng *core.Engine, st *core.MutationState, loadedVersion int) (*Index, error) {
	return makeIndex(eng, st, loadedVersion, false)
}

// NewReadOnly is New for engines whose storage is immutable. Insert,
// Delete and Compact return ErrReadOnly, and the background edge
// optimizer never starts; reads are unrestricted.
func NewReadOnly(eng *core.Engine, st *core.MutationState, loadedVersion int) (*Index, error) {
	return makeIndex(eng, st, loadedVersion, true)
}

func makeIndex(eng *core.Engine, st *core.MutationState, loadedVersion int, readonly bool) (*Index, error) {
	n := len(eng.DB)
	x := &Index{
		eng:      eng,
		dead:     make([]bool, n),
		born:     make([]uint64, n),
		died:     make([]uint64, n),
		live:     n,
		inChurn:  make(map[int]bool),
		loadedAs: loadedVersion,
		readonly: readonly,
	}
	if st != nil {
		if len(st.Born) != n || len(st.Died) != n {
			return nil, fmt.Errorf("mutable: %d/%d validity stamps for %d graphs", len(st.Born), len(st.Died), n)
		}
		x.epoch = st.Epoch
		copy(x.born, st.Born)
		copy(x.died, st.Died)
		for i, d := range x.died {
			if d > 0 {
				x.dead[i] = true
				x.live--
			}
		}
	}
	x.mut = pg.NewMutator(eng.Index, eng.Opts.BuildMetric, eng.Opts.M, eng.Opts.EfConstruction)
	x.mu.Lock()
	x.publishLocked()
	x.mu.Unlock()
	return x, nil
}

// Snapshot returns the current read view (never nil).
func (x *Index) Snapshot() *Snapshot { return x.snap.Load() }

// Epoch returns the current mutation epoch (0 = never mutated). Caches
// keyed by query content compose this in so stale entries die with the
// epoch they were computed at.
func (x *Index) Epoch() uint64 { return x.snap.Load().Epoch }

// Len returns the number of live (non-tombstoned) graphs.
func (x *Index) Len() int { return x.snap.Load().Live }

// Total returns the database size including tombstoned husks (the id
// space).
func (x *Index) Total() int { return len(x.snap.Load().Engine.DB) }

// LoadedVersion returns the persisted format version this index was
// restored from, or 0 if it was built in memory.
func (x *Index) LoadedVersion() int { return x.loadedAs }

// State returns a copy of the mutation state for persistence, taken
// from the given snapshot so it is consistent with what that snapshot's
// engine serializes. Nil when the snapshot predates any mutation (the
// version-1 case).
func (s *Snapshot) State() *core.MutationState { return s.state }

// Insert adds g to the index and returns its id. The graph is cloned,
// wired into every HNSW layer through the incremental mutator, embedded
// into M_rk's node table and assigned to its nearest cluster; the
// surrounding neighborhood is queued for background edge optimization.
func (x *Index) Insert(g *graph.Graph) (int, error) {
	if g == nil {
		return 0, fmt.Errorf("mutable: nil graph")
	}
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("mutable: %w", err)
	}
	clone := g.Clone()
	start := time.Now()

	x.mu.Lock()
	if x.readonly {
		x.mu.Unlock()
		return 0, ErrReadOnly
	}
	if x.closed {
		x.mu.Unlock()
		return 0, fmt.Errorf("mutable: index closed")
	}
	id := len(x.eng.DB)
	clone.ID = id
	x.eng.DB = append(x.eng.DB, clone)
	// The index routes over the same database slice; re-point its header
	// so the mutator sees the appended graph (append may reallocate).
	x.eng.Index.PG.DB = x.eng.DB
	x.dead = append(x.dead, false)
	x.born = append(x.born, x.epoch+1)
	x.died = append(x.died, 0)

	level := pg.DeterministicLevel(x.eng.Opts.Seed, id, x.eng.Opts.M)
	// Writes are applied under the index lock and are not cancellable
	// mid-edit: a half-wired vertex is worse than a briefly-blocked
	// caller.
	x.mut.Insert(id, level)

	x.eng.Mrk.AppendNodeEmbedding(x.eng.Mrk.EmbedGraph(clone))
	x.assignClusterLocked(clone, id)

	x.live++
	x.epoch++
	x.enqueueChurnLocked(id)
	for _, v := range x.eng.Index.PG.Adj[id] {
		x.enqueueChurnLocked(v)
	}
	x.publishLocked()
	x.ensureOptimizerLocked()
	x.kickLocked()
	x.mu.Unlock()

	m := obs.Mutate()
	m.Inserts.Inc()
	m.ApplySeconds.Observe(time.Since(start).Seconds())
	return id, nil
}

// Delete tombstones graph id at the next epoch. The vertex keeps its
// edges — routing travels through it as before — but it stops appearing
// in results from the published snapshot on. Its neighborhood is queued
// for edge optimization and Compact can later strip the husk's edges.
func (x *Index) Delete(id int) error {
	start := time.Now()
	x.mu.Lock()
	if x.readonly {
		x.mu.Unlock()
		return ErrReadOnly
	}
	if x.closed {
		x.mu.Unlock()
		return fmt.Errorf("mutable: index closed")
	}
	if id < 0 || id >= len(x.eng.DB) {
		x.mu.Unlock()
		return fmt.Errorf("mutable: no graph with id %d", id)
	}
	if x.dead[id] {
		x.mu.Unlock()
		return fmt.Errorf("mutable: graph %d already deleted", id)
	}
	x.epoch++
	x.dead[id] = true
	x.died[id] = x.epoch
	x.live--
	for _, v := range x.eng.Index.PG.Adj[id] {
		x.enqueueChurnLocked(v)
	}
	x.publishLocked()
	x.ensureOptimizerLocked()
	x.kickLocked()
	x.mu.Unlock()

	m := obs.Mutate()
	m.Deletes.Inc()
	m.ApplySeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Compact detaches tombstoned vertices from the proximity graph:
// each husk's live neighbors are pairwise bridged so routes through it
// survive, then its edges are stripped on every layer. Ids never shift
// — the husk rows stay — so this bounds graph size growth without
// invalidating any id-keyed state. Returns the number of vertices
// detached.
func (x *Index) Compact() (int, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.readonly {
		return 0, ErrReadOnly
	}
	if x.closed {
		return 0, fmt.Errorf("mutable: index closed")
	}
	adj := x.eng.Index.PG.Adj
	alive := func(v int) bool { return !x.dead[v] }
	detached := 0
	for id := range x.dead {
		if !x.dead[id] || len(adj[id]) == 0 {
			continue
		}
		// See Insert for why write application is uncancellable.
		x.mut.Detach(id, alive)
		for _, v := range adj[id] {
			x.enqueueChurnLocked(v)
		}
		detached++
	}
	changed := detached > 0
	if x.rescueEntryLocked() {
		changed = true
	}
	if changed {
		x.epoch++
		x.publishLocked()
		x.ensureOptimizerLocked()
		x.kickLocked()
	}
	return detached, nil
}

// rescueEntryLocked re-points the HNSW entry at a live vertex when the
// current entry is a detached husk (edgeless vertices cannot seed a
// search). It picks the live vertex with the highest level, ties to the
// smallest id, matching what batch construction would have chosen.
func (x *Index) rescueEntryLocked() bool {
	h := x.eng.Index
	entry := h.Entry
	if !x.dead[entry] && len(h.PG.Adj[entry]) > 0 {
		return false
	}
	best, bestLevel := -1, -1
	for id := range x.dead {
		if x.dead[id] {
			continue
		}
		if l := h.Level[id]; l > bestLevel {
			best, bestLevel = id, l
		}
	}
	if best < 0 || best == entry {
		return false
	}
	h.Entry = best
	return true
}

// assignClusterLocked folds an inserted graph into the fitted
// clustering: nearest centroid by the feature embedding, appended to
// Assign and (copy-on-write) to that cluster's member list.
func (x *Index) assignClusterLocked(g *graph.Graph, id int) {
	km := x.eng.Mc.Clusters()
	c := x.eng.Mc.NearestCentroid(g)
	km.Assign = append(km.Assign, c)
	members := make([]int, len(km.Members[c])+1)
	copy(members, km.Members[c])
	members[len(members)-1] = id
	km.Members[c] = members
}

// publishLocked snapshots the writer state into a fresh immutable view
// and swaps it in. Every outer structure is copied (headers pinned to
// their current length); inner neighbor slices are shared but frozen —
// pg.Mutator replaces them wholesale instead of editing in place.
func (x *Index) publishLocked() {
	h := x.eng.Index
	n := len(x.eng.DB)

	db := x.eng.DB[:n:n]
	adj := make([][]int, n)
	copy(adj, h.PG.Adj)
	var dead []bool
	if x.epoch > 0 {
		dead = make([]bool, n)
		copy(dead, x.dead)
	}
	upper := make([]map[int][]int, len(h.Upper))
	for l, m := range h.Upper {
		cm := make(map[int][]int, len(m))
		for k, v := range m {
			cm[k] = v
		}
		upper[l] = cm
	}
	level := make([]int, n)
	copy(level, h.Level)

	idx := &pg.HNSW{
		PG:    &pg.PG{DB: db, Adj: adj, Dead: dead},
		Upper: upper,
		Level: level,
		Entry: h.Entry,
	}

	embsSrc := x.eng.Mrk.NodeEmbeddings()
	embs := embsSrc[:len(embsSrc):len(embsSrc)]

	kmSrc := x.eng.Mc.Clusters()
	km := &cluster.KMeans{
		Centroids: kmSrc.Centroids,
		Assign:    kmSrc.Assign[:n:n],
		Members:   make([][]int, len(kmSrc.Members)),
	}
	copy(km.Members, kmSrc.Members)

	var st *core.MutationState
	if x.epoch > 0 {
		st = &core.MutationState{
			Epoch: x.epoch,
			Born:  append([]uint64(nil), x.born...),
			Died:  append([]uint64(nil), x.died...),
		}
	}
	x.snap.Store(&Snapshot{
		Engine: x.eng.SnapshotView(db, idx, embs, km),
		Epoch:  x.epoch,
		Live:   x.live,
		state:  st,
	})
}

// Close stops the background optimizer and waits for it to exit. The
// index keeps serving reads from its last snapshot; further writes are
// rejected. Safe to call more than once.
func (x *Index) Close() error {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil
	}
	x.closed = true
	started := x.optOn
	if started {
		close(x.stop)
	}
	x.mu.Unlock()
	if started {
		x.wg.Wait()
	}
	return nil
}
