//go:build !linux

package experiments

import "runtime/debug"

// procRSS has no portable implementation; the store sweep reports zero
// resident-memory numbers off Linux and keeps the rest of its columns.
func procRSS() (rss, peak uint64) { return 0, 0 }

func settledRSS() uint64 {
	debug.FreeOSMemory()
	return 0
}
