//go:build linux

package experiments

import (
	"bytes"
	"os"
	"runtime/debug"
	"strconv"
)

// procRSS reads the process's current and peak resident set sizes in
// bytes from /proc/self/status (VmRSS and VmHWM). Zeros on any parse
// trouble — memory numbers are reported, never load-bearing.
func procRSS() (rss, peak uint64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	return statusKB(data, "VmRSS:"), statusKB(data, "VmHWM:")
}

func statusKB(status []byte, key string) uint64 {
	i := bytes.Index(status, []byte(key))
	if i < 0 {
		return 0
	}
	fields := bytes.Fields(status[i+len(key):])
	if len(fields) == 0 {
		return 0
	}
	kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
	if err != nil {
		return 0
	}
	return kb * 1024
}

// settledRSS forces a GC, returns freed heap to the OS and reports the
// resident set afterwards — the steady-state footprint of whatever is
// still live, with allocation noise scrubbed out.
func settledRSS() uint64 {
	debug.FreeOSMemory()
	rss, _ := procRSS()
	return rss
}
