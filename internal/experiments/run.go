package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/lansearch/lan/internal/dataset"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// EnvCache memoizes environments per spec name so that running several
// figures plus the bench summary in one process (e.g. -exp all) builds
// and trains each dataset's engine once.
type EnvCache struct {
	byName map[string]*Env
	// storePoints accumulates StoreSweep results run through this cache,
	// so a later Bench() folds them into the report without re-running
	// the sweep.
	storePoints []StorePoint
}

// NewEnvCache returns an empty cache for sharing across RunCached/Bench.
func NewEnvCache() *EnvCache { return &EnvCache{} }

// Get returns the memoized environment for spec, building it on first use.
func (c *EnvCache) Get(p Protocol, spec dataset.Spec) (*Env, error) {
	if c.byName == nil {
		c.byName = make(map[string]*Env)
	}
	if env, ok := c.byName[spec.Name]; ok {
		return env, nil
	}
	env, err := NewEnv(p, spec)
	if err != nil {
		return nil, err
	}
	c.byName[spec.Name] = env
	return env, nil
}

// Run executes one named experiment and writes its rows to w. Valid names
// are tab1 and fig5..fig12; "all" runs everything (sharing dataset
// environments across figures).
func Run(w io.Writer, name string, p Protocol) error {
	return RunCached(w, name, p, NewEnvCache())
}

// RunCached is Run with a caller-owned environment cache, so follow-up
// work (another experiment, a Bench summary) reuses the trained engines.
func RunCached(w io.Writer, name string, p Protocol, cache *EnvCache) error {
	return run(w, name, p, cache)
}

func run(w io.Writer, name string, p Protocol, cache *EnvCache) error {
	switch name {
	case "tab1":
		Table1(w, p)
	case "fig5", "fig6", "fig7":
		for _, spec := range p.Specs() {
			env, err := cache.Get(p, spec)
			if err != nil {
				return err
			}
			var pts []Point
			switch name {
			case "fig5":
				pts = Fig5(env)
			case "fig6":
				pts = Fig6(env)
			case "fig7":
				pts = Fig7(env)
			}
			WritePoints(w, fmt.Sprintf("%s on %s (k=%d)", figTitle(name), spec.Name, p.K), pts)
		}
	case "fig8":
		fmt.Fprintf(w, "Fig 8: accuracy of initial node prediction (M_nh)\n")
		fmt.Fprintf(w, "  %-12s %10s %14s\n", "dataset", "precision", "avg |N̂_Q|")
		for _, spec := range p.Specs() {
			env, err := cache.Get(p, spec)
			if err != nil {
				return err
			}
			row := Fig8(env)
			fmt.Fprintf(w, "  %-12s %10.3f %14.1f\n", row.Dataset, row.Precision, row.AvgPredicted)
		}
	case "fig9":
		rows, err := Fig9(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Fig 9: scalability on SYN (sequential equal shards)\n")
		fmt.Fprintf(w, "  %-9s %8s %14s %10s %14s %10s\n", "fraction", "graphs", "t(lowBeam)", "recall", "t(highBeam)", "recall")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-9.0f%% %7d %14s %10.3f %14s %10.3f\n",
				r.Fraction*100, r.Graphs,
				r.AvgTimeLow.Round(time.Microsecond), r.RecallLow,
				r.AvgTimeHigh.Round(time.Microsecond), r.RecallHigh)
		}
	case "fig10":
		for _, spec := range p.Specs() {
			env, err := cache.Get(p, spec)
			if err != nil {
				return err
			}
			pts, err := Fig10(env)
			if err != nil {
				return err
			}
			WritePoints(w, fmt.Sprintf("Fig 10: CG acceleration on %s", spec.Name), pts)
		}
	case "fig11":
		fmt.Fprintf(w, "Fig 11: query time breakdown (no CG acceleration)\n")
		fmt.Fprintf(w, "  %-12s %18s %12s\n", "dataset", "cross-graph share", "GED share")
		for _, spec := range p.Specs() {
			row, err := Fig11(p, spec)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s %17.1f%% %11.1f%%\n", row.Dataset, row.CrossGraphShare*100, row.DistShare*100)
		}
	case "fig12":
		fmt.Fprintf(w, "Fig 12: cross-graph learning speedup per pair\n")
		fmt.Fprintf(w, "  %-12s %10s %10s %10s %8s %8s\n", "dataset", "raw", "CG", "HAG", "CG x", "HAG x")
		for _, spec := range p.Specs() {
			row := Fig12(p, spec, 64)
			fmt.Fprintf(w, "  %-12s %10s %10s %10s %7.2fx %7.2fx\n",
				row.Dataset,
				row.RawPerPair.Round(time.Microsecond),
				row.CGPerPair.Round(time.Microsecond),
				row.HAGPerPair.Round(time.Microsecond),
				row.CGSpeedup, row.HAGSpeedup)
		}
	case "scal":
		if _, err := StoreSweep(p, cache, w); err != nil {
			return err
		}
	case "all":
		for _, n := range Names() {
			if n == "all" {
				continue
			}
			if err := run(w, n, p, cache); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, Names())
	}
	return nil
}

// Names lists the runnable experiment ids.
func Names() []string {
	return []string{"tab1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "scal", "all"}
}

func figTitle(name string) string {
	switch name {
	case "fig5":
		return "Fig 5: LAN vs HNSW vs L2route"
	case "fig6":
		return "Fig 6: routing with neighbor pruning (HNSW_IS fixed)"
	case "fig7":
		return "Fig 7: initial node selection (LAN_Route fixed)"
	default:
		return name
	}
}

var _ = dataset.Spec{} // keep the dataset import for doc references
