// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII) on the synthetic dataset simulators: Table I and
// Figs. 5-12. Each experiment returns printable rows in the shape the
// paper reports (series of QPS-vs-recall points, precision bars, time
// breakdowns), so `lan-bench` and the repository benchmarks can emit them
// directly. Scales are configurable; defaults are sized to finish on a
// laptop while preserving the paper's comparisons.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/l2route"
	"github.com/lansearch/lan/internal/lanstore"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/pg"
)

// Protocol fixes the experimental configuration shared by all figures.
type Protocol struct {
	// BuildMetric is the offline GED used to construct the proximity
	// graph and the L2route siamese supervision. It must approximate the
	// query metric's geometry: a mismatched (looser) bound bends the PG's
	// edges away from the query metric's neighborhoods and costs recall.
	BuildMetric ged.Metric
	// Scale shrinks every dataset (the paper's sizes in Table I are the
	// 1.0 reference).
	Scale float64
	// Queries is the size of the query workload (the paper uses 4,000,
	// split 6:2:2; we scale it with the datasets).
	Queries int
	// K is the answer count (the paper reports k = 50).
	K int
	// Beams is the beam-size sweep that traces the recall axis.
	Beams []int
	// QueryMetric is the online GED; the paper's protocol is exact GED
	// within a budget, else best of VJ/Hungarian/Beam (ged.Ensemble).
	QueryMetric ged.Metric
	// TrainEpochs bounds offline model training.
	TrainEpochs int
	// Dim is the embedding dimension (the paper uses 128; scaled down
	// with the datasets).
	Dim int
	// Workers bounds index-build concurrency (0 means runtime.NumCPU).
	// The built index is bit-identical for every setting, so benchmark
	// numbers stay comparable across worker counts.
	Workers int
	// QueryWorkers bounds the per-query distance-evaluation pool used by
	// the parallel query-path benchmark leg (0 means runtime.NumCPU).
	// Search results, NDC and routing trajectories are bit-identical for
	// every setting; only wall time changes.
	QueryWorkers int
	// Seed drives everything.
	Seed int64
	// Datasets, when non-empty, restricts Specs() to the named datasets
	// (case-insensitive prefixes: "aids", "linux", "pubchem", "syn").
	Datasets []string
	// QuerySets pins per-dataset query workloads (keyed by spec name).
	// When a dataset has an entry, the workload is regenerated from the
	// pinned specs instead of sampled fresh — the default lan-bench mode,
	// so numbers stay comparable across commits. A set whose base ids do
	// not fit the generated database (different -scale) falls back to
	// sampling.
	QuerySets map[string][]dataset.QuerySpec
	// Store selects the storage tier query measurements run on: "" or
	// lan's StoreRAM keep the built engine; "mmap" saves a binary
	// snapshot and reopens it memory-mapped, so every figure and bench
	// point exercises the on-disk fetch path.
	Store string
	// TraceDir, when set, enables the trace-overhead benchmark leg: the
	// bench workload is answered once untraced and once with per-query
	// traces exported as JSONL segments under TraceDir, and the p50
	// regression is reported (BenchReport.TracePoints).
	TraceDir string
	// TraceSample is the exporter's sampling fraction for the traced leg
	// (0 defaults to 1: export everything — the worst case the overhead
	// gate should measure).
	TraceSample float64
}

// DefaultProtocol returns a laptop-sized configuration.
func DefaultProtocol() Protocol {
	return Protocol{
		Scale:       0.008,
		Queries:     30,
		K:           10,
		Beams:       []int{12, 28},
		BuildMetric: ged.Ensemble{BeamWidth: 2},
		QueryMetric: ged.Ensemble{ExactBudget: 150, BeamWidth: 4},
		TrainEpochs: 5,
		Dim:         16,
		Seed:        1,
	}
}

// Specs returns the benchmark dataset simulators at the protocol's
// scale, filtered by p.Datasets when set. PUBCHEM and SYN use adjusted
// scales so all four land at a comparable graph count, as the per-dataset
// |D| in Table I differ.
func (p Protocol) Specs() []dataset.Spec {
	all := []dataset.Spec{
		dataset.AIDS(p.Scale),
		dataset.LINUX(p.Scale),
		dataset.PubChem(p.Scale * 42687 / 22794),
		dataset.SYN(p.Scale * 42687 / 1000000),
	}
	if len(p.Datasets) == 0 {
		return all
	}
	var out []dataset.Spec
	for _, spec := range all {
		for _, want := range p.Datasets {
			if len(want) > 0 && strings.HasPrefix(strings.ToLower(spec.Name), strings.ToLower(want)) {
				out = append(out, spec)
				break
			}
		}
	}
	return out
}

// Env is one dataset's fully prepared experimental environment.
type Env struct {
	Protocol Protocol
	Spec     dataset.Spec
	DB       graph.Database
	Engine   *core.Engine
	L2       *l2route.Index
	Train    []*graph.Graph
	Test     []*graph.Graph
	Truth    []dataset.GroundTruth
	// BuildTime is the wall time spent constructing and training the LAN
	// engine and the L2route baseline (ground-truth computation excluded).
	BuildTime time.Duration
	// Store backs Engine when the protocol runs on the mmap tier
	// (Protocol.Store); nil on the default RAM tier.
	Store *lanstore.Store
}

// NewEnv generates the dataset, builds and trains the LAN engine and the
// L2route baseline, and computes the test ground truth.
func NewEnv(p Protocol, spec dataset.Spec) (*Env, error) {
	db := spec.Generate()
	queries := envWorkload(p, db, spec)
	train, _, test := dataset.Split(queries)

	buildStart := time.Now()
	eng, err := core.Build(db, train, core.Options{
		M: 6, Dim: p.Dim, GammaKNN: 2 * p.K, // N_Q covers the 2k-NNs (the paper uses 4k at full scale)
		BuildMetric: p.buildMetric(),
		QueryMetric: p.QueryMetric,
		Train:       models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
		Workers:     p.Workers,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}

	enc := l2route.NewEncoder(db, 2, p.Dim, p.Seed)
	pairs := l2route.SamplePairs(db, p.buildMetric(), 4*len(train), p.Seed+3)
	if err := enc.Train(pairs, p.TrainEpochs, 0.01); err != nil {
		return nil, err
	}
	l2 := l2route.BuildIndex(db, enc, 6)
	buildTime := time.Since(buildStart)

	env := &Env{Protocol: p, Spec: spec, DB: db, Engine: eng, L2: l2, Train: train, Test: test, BuildTime: buildTime}
	if p.Store == "mmap" {
		if err := env.reopenMMap(); err != nil {
			return nil, err
		}
	}
	env.Truth = dataset.ComputeGroundTruth(db, test, p.QueryMetric, p.K)
	return env, nil
}

// envWorkload draws the dataset's query workload: the pinned query set
// when the protocol carries one that fits the generated database, else
// Workload's fresh sampling.
func envWorkload(p Protocol, db graph.Database, spec dataset.Spec) []*graph.Graph {
	if qs, ok := p.QuerySets[spec.Name]; ok && len(qs) > 0 {
		if fixed, err := dataset.FixedWorkload(db, spec, qs); err == nil {
			return fixed
		}
	}
	return dataset.Workload(db, spec, p.Queries, p.Seed+7)
}

// reopenMMap swaps the freshly built RAM engine for one serving the same
// index off a memory-mapped binary snapshot, so every measurement in
// this environment exercises the on-disk candidate-fetch path. The
// snapshot lands in a temporary directory that lives for the process.
func (e *Env) reopenMMap() error {
	dir, err := os.MkdirTemp("", "lan-bench-store-*")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, e.Spec.Name+".lansnap")
	if err := core.SaveSnapshotV3(path, e.Engine, nil, lanstore.QuantF64); err != nil {
		return err
	}
	p := e.Protocol
	eng, _, store, err := core.OpenSnapshotV3(path, core.Options{
		BuildMetric: p.buildMetric(), QueryMetric: p.QueryMetric,
		Workers: p.Workers, QueryWorkers: p.QueryWorkers,
	}, true)
	if err != nil {
		return err
	}
	e.Engine = eng
	e.Store = store
	return nil
}

// Point is one (recall, QPS) measurement of a method at one beam setting.
type Point struct {
	Method string
	Beam   int
	Recall float64
	QPS    float64
	AvgNDC float64
	// AvgTime is the mean per-query wall time.
	AvgTime time.Duration
}

// measure runs every test query through search and aggregates a Point.
func (e *Env) measure(method string, beam int, search func(q *graph.Graph) ([]pg.Result, core.QueryStats)) Point {
	var recall, ndc float64
	start := time.Now()
	for i, q := range e.Test {
		res, stats := search(q)
		recall += dataset.Recall(res, e.Truth[i].Results)
		ndc += float64(stats.NDC)
	}
	elapsed := time.Since(start)
	n := float64(len(e.Test))
	return Point{
		Method: method, Beam: beam,
		Recall:  recall / n,
		QPS:     n / elapsed.Seconds(),
		AvgNDC:  ndc / n,
		AvgTime: elapsed / time.Duration(len(e.Test)),
	}
}

// searchWith adapts an Engine strategy pair into a measure callback.
func (e *Env) searchWith(is core.InitialStrategy, rt core.RoutingStrategy, beam int) func(q *graph.Graph) ([]pg.Result, core.QueryStats) {
	return func(q *graph.Graph) ([]pg.Result, core.QueryStats) {
		return e.Engine.Search(q, core.SearchOptions{K: e.Protocol.K, Beam: beam, Initial: is, Routing: rt})
	}
}

// WritePoints prints a series of points as aligned rows.
func WritePoints(w io.Writer, title string, pts []Point) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-14s %6s %8s %10s %10s %12s\n", "method", "beam", "recall", "QPS", "avgNDC", "avgTime")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-14s %6d %8.3f %10.2f %10.1f %12s\n",
			p.Method, p.Beam, p.Recall, p.QPS, p.AvgNDC, p.AvgTime.Round(time.Microsecond))
	}
}

// buildMetric returns the configured build metric, defaulting to the
// query metric's cheap cousin.
func (p Protocol) buildMetric() ged.Metric {
	if p.BuildMetric != nil {
		return p.BuildMetric
	}
	return ged.Ensemble{BeamWidth: 2}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
