package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/lanstore"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// storeFactors are the SYN size multipliers of the storage scalability
// sweep: the largest point is 50x beyond the protocol scale every other
// experiment runs at, which is where the RAM and mmap tiers'
// resident-memory curves separate.
var storeFactors = []float64{1, 10, 50}

// StorePoint is one (size, quantization) cell of the storage-tier sweep:
// the same snapshot opened RAM-resident and memory-mapped, the same
// pinned workload answered on both, with a bit-identity comparison
// between the tiers, overlap against the full-precision answers, and
// the settled resident set of each serving mode. Resident memory is
// VmRSS after a forced GC with the tier's engine live (baseline: same,
// before either open); sub-linear growth of MMapRSSBytes against
// SnapshotBytes across the sweep is the beyond-RAM claim this point
// exists to demonstrate.
type StorePoint struct {
	Dataset       string  `json:"dataset"`
	Graphs        int     `json:"graphs"`
	SizeFactor    float64 `json:"size_factor"`
	Quant         string  `json:"quant"`
	Queries       int     `json:"queries"`
	Beam          int     `json:"beam"`
	BuildSeconds  float64 `json:"build_seconds"`
	SnapshotBytes int64   `json:"snapshot_bytes"`

	// Identical reports whether the mmap tier reproduced the RAM tier
	// exactly: per-query answer lists (ids and distances), NDC and
	// explored counts. Both tiers decode the same stored embeddings, so
	// this must hold at every quantization.
	Identical bool `json:"identical"`
	// F64Overlap is the mean per-query fraction of the full-precision
	// answer ids this quantization retains (1 for quant=f64 by
	// construction); RecallEpsilon is its complement — the recall@k an
	// index quantized this way can lose against full precision.
	F64Overlap    float64 `json:"f64_overlap"`
	RecallEpsilon float64 `json:"recall_epsilon"`

	RAMOpenSeconds  float64 `json:"ram_open_seconds"`
	MMapOpenSeconds float64 `json:"mmap_open_seconds"`
	RAMQPS          float64 `json:"ram_qps"`
	MMapQPS         float64 `json:"mmap_qps"`

	BaselineRSSBytes uint64 `json:"baseline_rss_bytes"`
	RAMRSSBytes      uint64 `json:"ram_rss_bytes"`
	MMapRSSBytes     uint64 `json:"mmap_rss_bytes"`
	// PeakRSSBytes is the process high-water mark after the point ran —
	// monotonic across the whole process, so only comparable within one
	// sweep ordering.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
	// MMapGraphFetches / MMapFetchBatches are the store counters the
	// mmap leg added: batches ≪ fetches is the IO-batching at work.
	MMapGraphFetches uint64 `json:"mmap_graph_fetches"`
	MMapFetchBatches uint64 `json:"mmap_fetch_batches"`
}

// storeOutcome is one query's comparable answer.
type storeOutcome struct {
	res      []pg.Result
	ndc      int
	explored int
}

// StoreSweep builds SYN at increasing sizes, snapshots each index, and
// measures both storage tiers on every (size, quantization) cell. The
// base size reuses the shared environment cache; larger sizes build a
// plain engine (no L2route baseline, no exact ground truth — answers are
// compared between tiers and against full precision, which is what the
// storage tier can change).
func StoreSweep(p Protocol, cache *EnvCache, w io.Writer) ([]StorePoint, error) {
	dir, err := os.MkdirTemp("", "lan-store-sweep-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	beam := 2 * p.K
	if len(p.Beams) > 0 {
		beam = p.Beams[len(p.Beams)-1]
	}

	fmt.Fprintf(w, "storage tiers on SYN (k=%d, beam=%d, test split of %d sampled queries)\n", p.K, beam, p.Queries)
	fmt.Fprintf(w, "  %-7s %7s %5s %10s %6s %8s %8s %9s %9s %9s %8s\n",
		"factor", "graphs", "quant", "snapshot", "ident", "eps", "ramQPS", "mmapQPS", "ramRSS", "mmapRSS", "batches")

	var out []StorePoint
	for _, factor := range storeFactors {
		spec := dataset.SYN(p.Scale * 42687 / 1000000 * factor)
		spec.Name = fmt.Sprintf("SYN(x%g)", factor)
		db, queries, eng, buildSec, err := storeBuild(p, cache, spec, factor)
		if err != nil {
			return nil, err
		}

		quants := []lanstore.Quant{lanstore.QuantF64, lanstore.QuantInt8}
		//lint:allow floatcmp factor is copied verbatim from storeFactors, never computed
		if factor == storeFactors[0] {
			quants = []lanstore.Quant{lanstore.QuantF64, lanstore.QuantF32, lanstore.QuantInt8}
		}
		paths := make(map[lanstore.Quant]string, len(quants))
		for _, q := range quants {
			path := filepath.Join(dir, fmt.Sprintf("%s-%s.lansnap", spec.Name, q))
			if err := core.SaveSnapshotV3(path, eng, nil, q); err != nil {
				return nil, err
			}
			paths[q] = path
		}

		// Drop the built engine before measuring: the serving footprint of
		// each tier must not include the builder's heap.
		eng = nil
		_ = eng
		baseline := settledRSS()

		var f64Ram []storeOutcome
		for _, q := range quants {
			pt := StorePoint{
				Dataset: spec.Name, Graphs: len(db), SizeFactor: factor,
				Quant: string(q), Queries: len(queries), Beam: beam,
				BuildSeconds: buildSec, BaselineRSSBytes: baseline,
			}
			if fi, err := os.Stat(paths[q]); err == nil {
				pt.SnapshotBytes = fi.Size()
			}

			// mmap leg first: its resident set must reflect what queries
			// page in, not what a prior full materialization left warm.
			m0 := obs.Store()
			fetches0, batches0 := m0.GraphFetches.Value(), m0.FetchBatches.Value()
			mmapOut, err := storeLeg(p, paths[q], true, queries, beam, &pt.MMapOpenSeconds, &pt.MMapQPS, &pt.MMapRSSBytes)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s mmap: %w", spec.Name, q, err)
			}
			pt.MMapGraphFetches = m0.GraphFetches.Value() - fetches0
			pt.MMapFetchBatches = m0.FetchBatches.Value() - batches0

			ramOut, err := storeLeg(p, paths[q], false, queries, beam, &pt.RAMOpenSeconds, &pt.RAMQPS, &pt.RAMRSSBytes)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s ram: %w", spec.Name, q, err)
			}
			pt.Identical = reflect.DeepEqual(mmapOut, ramOut)
			if q == lanstore.QuantF64 {
				f64Ram = ramOut
			}
			pt.F64Overlap = overlap(ramOut, f64Ram)
			pt.RecallEpsilon = 1 - pt.F64Overlap
			_, pt.PeakRSSBytes = procRSS()

			fmt.Fprintf(w, "  %-7g %7d %5s %10d %6v %8.3f %8.2f %9.2f %8dK %8dK %8d\n",
				factor, len(db), q, pt.SnapshotBytes, pt.Identical, pt.RecallEpsilon,
				pt.RAMQPS, pt.MMapQPS, pt.RAMRSSBytes/1024, pt.MMapRSSBytes/1024, pt.MMapFetchBatches)
			out = append(out, pt)
		}
	}
	if cache != nil {
		cache.storePoints = append(cache.storePoints, out...)
	}
	return out, nil
}

// storeBuild returns the database, test workload and trained engine for
// one sweep size. The base factor reuses the cached environment every
// other experiment shares; larger factors get a dedicated lean build.
func storeBuild(p Protocol, cache *EnvCache, spec dataset.Spec, factor float64) (graph.Database, []*graph.Graph, *core.Engine, float64, error) {
	//lint:allow floatcmp factor is copied verbatim from storeFactors, never computed
	if factor == storeFactors[0] && cache != nil {
		base := dataset.SYN(p.Scale * 42687 / 1000000)
		if env, err := cache.Get(p, base); err == nil {
			if _, mm := env.Engine.Graphs.(*lanstore.Store); !mm {
				return env.DB, env.Test, env.Engine, env.BuildTime.Seconds(), nil
			}
		}
	}
	db := spec.Generate()
	queries := envWorkload(p, db, spec)
	_, _, test := dataset.Split(queries)
	start := time.Now()
	eng, err := core.Build(db, queries[:len(queries)*6/10], core.Options{
		M: 6, Dim: p.Dim, GammaKNN: 2 * p.K,
		BuildMetric: p.buildMetric(),
		QueryMetric: p.QueryMetric,
		Train:       models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
		Workers:     p.Workers,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("experiments: %s build: %w", spec.Name, err)
	}
	return db, test, eng, time.Since(start).Seconds(), nil
}

// storeLeg opens the snapshot on one tier, answers the workload, and
// records open time, throughput and the settled resident set while the
// engine is live.
func storeLeg(p Protocol, path string, mmap bool, queries []*graph.Graph, beam int, openSec, qps *float64, rss *uint64) ([]storeOutcome, error) {
	openStart := time.Now()
	eng, _, store, err := core.OpenSnapshotV3(path, core.Options{
		BuildMetric: p.buildMetric(), QueryMetric: p.QueryMetric,
		Workers: p.Workers, QueryWorkers: p.QueryWorkers,
	}, mmap)
	if err != nil {
		return nil, err
	}
	*openSec = time.Since(openStart).Seconds()

	so := core.SearchOptions{K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute}
	outs := make([]storeOutcome, len(queries))
	start := time.Now()
	for i, q := range queries {
		//lint:allow ctxprop bench harness entry point; sweep queries run to completion by design
		res, stats, err := eng.SearchPooled(context.Background(), q, so, nil)
		if err != nil {
			return nil, err
		}
		outs[i] = storeOutcome{res: res, ndc: stats.NDC, explored: stats.Explored}
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		*qps = float64(len(queries)) / elapsed
	}
	*rss = settledRSS()
	if store != nil {
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// overlap is the mean per-query fraction of reference answer ids that
// got retains (1 when reference is nil or empty).
func overlap(got, reference []storeOutcome) float64 {
	if len(reference) == 0 || len(got) != len(reference) {
		return 1
	}
	var sum float64
	n := 0
	for i := range reference {
		if len(reference[i].res) == 0 {
			continue
		}
		ids := make(map[int]bool, len(got[i].res))
		for _, r := range got[i].res {
			ids[r.ID] = true
		}
		hits := 0
		for _, r := range reference[i].res {
			if ids[r.ID] {
				hits++
			}
		}
		sum += float64(hits) / float64(len(reference[i].res))
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
