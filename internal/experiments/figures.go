package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/nn"
	"github.com/lansearch/lan/internal/pg"
)

// Table1 reproduces Table I: the statistics of the (scaled) datasets.
func Table1(w io.Writer, p Protocol) {
	fmt.Fprintf(w, "Table I: dataset statistics (scale %g)\n", p.Scale)
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s\n", "dataset", "#graphs", "avg|V|", "avg|E|", "#nlabel")
	for _, spec := range p.Specs() {
		db := spec.Generate()
		st := db.Stats()
		fmt.Fprintf(w, "  %-12s %8d %8.1f %8.1f %8d\n", spec.Name, st.Graphs, st.AvgNodes, st.AvgEdges, st.NumLabels)
	}
}

// Fig5 compares LAN, HNSW and L2route end to end: QPS vs recall@k per
// dataset (the paper's headline figure).
func Fig5(e *Env) []Point {
	var pts []Point
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("LAN", beam, e.searchWith(core.LANIS, core.LANRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("HNSW", beam, e.searchWith(core.HNSWIS, core.BaselineRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		verify := beam * 3 // L2route needs over-verification to compete on recall
		pts = append(pts, e.measure("L2route", beam, func(q *graph.Graph) ([]pg.Result, core.QueryStats) {
			start := time.Now()
			cache := pg.NewDistCache(e.Protocol.QueryMetric, e.DB, q)
			res, s := e.L2.Search(q, cache, e.Protocol.K, verify, verify)
			return res, core.QueryStats{NDC: s.NDC, Explored: s.Explored, Total: time.Since(start)}
		}))
	}
	return pts
}

// Fig6 isolates routing: LAN_Route vs HNSW_Route, both from the HNSW
// initial node.
func Fig6(e *Env) []Point {
	var pts []Point
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("LAN_Route", beam, e.searchWith(core.HNSWIS, core.LANRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("HNSW_Route", beam, e.searchWith(core.HNSWIS, core.BaselineRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("Oracle_Route", beam, e.searchWith(core.HNSWIS, core.OracleRoute, beam)))
	}
	return pts
}

// Fig7 isolates initial selection: LAN_IS vs HNSW_IS vs Rand_IS, all with
// LAN_Route.
func Fig7(e *Env) []Point {
	var pts []Point
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("LAN_IS", beam, e.searchWith(core.LANIS, core.LANRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("HNSW_IS", beam, e.searchWith(core.HNSWIS, core.LANRoute, beam)))
	}
	for _, beam := range e.Protocol.Beams {
		pts = append(pts, e.measure("Rand_IS", beam, e.searchWith(core.RandIS, core.LANRoute, beam)))
	}
	return pts
}

// Fig8Row is one dataset's M_nh prediction quality.
type Fig8Row struct {
	Dataset      string
	Precision    float64
	AvgPredicted float64
}

// Fig8 evaluates the initial-node prediction precision on the held-out
// test queries (the paper reports > 0.7 on all datasets).
func Fig8(e *Env) Fig8Row {
	table := models.ComputeDistanceTable(e.DB, e.Test, e.Engine.Opts.QueryMetric)
	prec, avg := e.Engine.Mnh.Precision(e.DB, table, e.Engine.GammaStar)
	return Fig8Row{Dataset: e.Spec.Name, Precision: prec, AvgPredicted: avg}
}

// Fig9Row is one scalability measurement: SYN at a fraction of its full
// (scaled) size.
type Fig9Row struct {
	Fraction float64
	Graphs   int
	// AvgTime per query at the protocol's largest beam (high recall) and
	// smallest beam (low recall), matching the paper's recall-level
	// curves.
	AvgTimeLow  time.Duration
	AvgTimeHigh time.Duration
	RecallLow   float64
	RecallHigh  float64
}

// Fig9 runs the scalability sweep on SYN: the database is split into
// equal shards searched sequentially (Sec. VII-D), at 20%..100% of the
// protocol's SYN size.
func Fig9(p Protocol) ([]Fig9Row, error) {
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	full := dataset.SYN(p.Scale * 42687 / 1000000)
	var rows []Fig9Row
	for _, f := range fractions {
		spec := full.Scaled(f)
		env, err := NewEnv(p, spec)
		if err != nil {
			return nil, err
		}
		lo := env.measure("LAN", p.Beams[0], env.searchWith(core.LANIS, core.LANRoute, p.Beams[0]))
		hiBeam := p.Beams[len(p.Beams)-1]
		hi := env.measure("LAN", hiBeam, env.searchWith(core.LANIS, core.LANRoute, hiBeam))
		rows = append(rows, Fig9Row{
			Fraction: f, Graphs: len(env.DB),
			AvgTimeLow: lo.AvgTime, AvgTimeHigh: hi.AvgTime,
			RecallLow: lo.Recall, RecallHigh: hi.Recall,
		})
	}
	return rows, nil
}

// Fig10 measures the end-to-end effect of the CG acceleration: the same
// engine configuration built with and without compressed GNN-graphs
// (Theorem 2 guarantees identical results, so only QPS moves).
func Fig10(env *Env) ([]Point, error) {
	p := env.Protocol
	spec := env.Spec
	db := env.DB
	queries := dataset.Workload(db, spec, p.Queries, p.Seed+7)
	train, _, _ := dataset.Split(queries)
	rawEng, err := core.Build(db, train, core.Options{
		M: 6, Dim: p.Dim, GammaKNN: 2 * p.K,
		BuildMetric: p.buildMetric(),
		QueryMetric: p.QueryMetric,
		UseCG:       false,
		Train:       models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	var pts []Point
	for _, beam := range p.Beams {
		pts = append(pts, env.measure("LAN+CG", beam, env.searchWith(core.LANIS, core.LANRoute, beam)))
	}
	for _, beam := range p.Beams {
		beam := beam
		pts = append(pts, env.measure("LAN-noCG", beam, func(q *graph.Graph) ([]pg.Result, core.QueryStats) {
			return rawEng.Search(q, core.SearchOptions{K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute})
		}))
	}
	return pts, nil
}

// Fig11Row is one dataset's query-time breakdown before CG acceleration.
type Fig11Row struct {
	Dataset string
	// CrossGraphShare is the fraction of query time inside cross-graph
	// learning (the paper reports 20-29%).
	CrossGraphShare float64
	DistShare       float64
}

// Fig11 measures the breakdown on an engine built WITHOUT the CG
// acceleration (matching the paper's "before acceleration" accounting).
func Fig11(p Protocol, spec dataset.Spec) (Fig11Row, error) {
	db := spec.Generate()
	queries := dataset.Workload(db, spec, p.Queries, p.Seed+7)
	train, _, test := dataset.Split(queries)
	eng, err := core.Build(db, train, core.Options{
		M: 6, Dim: p.Dim, GammaKNN: 2 * p.K,
		BuildMetric: p.buildMetric(),
		QueryMetric: p.QueryMetric,
		UseCG:       false,
		Train:       models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
		Seed:        p.Seed,
	})
	if err != nil {
		return Fig11Row{}, err
	}
	var model, dist, total time.Duration
	beam := p.Beams[len(p.Beams)/2]
	for _, q := range test {
		_, s := eng.Search(q, core.SearchOptions{K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute})
		model += s.ModelTime
		dist += s.DistTime
		total += s.Total
	}
	return Fig11Row{
		Dataset:         spec.Name,
		CrossGraphShare: model.Seconds() / total.Seconds(),
		DistShare:       dist.Seconds() / total.Seconds(),
	}, nil
}

// Fig12Row reports the cross-graph learning speedup of CG and HAG over
// the raw computation for one dataset.
type Fig12Row struct {
	Dataset    string
	RawPerPair time.Duration
	CGPerPair  time.Duration
	HAGPerPair time.Duration
	CGSpeedup  float64
	HAGSpeedup float64
	// Cost ratios in Theorem 3 units.
	RawCost, CGCost, HAGAggEdges int
}

// Fig12 microbenchmarks one cross-graph forward pass per representation
// over sampled pairs.
func Fig12(p Protocol, spec dataset.Spec, pairs int) Fig12Row {
	db := spec.Generate()
	vocab := cg.NewVocab(db)
	params := nn.NewParams()
	rng := newSeededRand(p.Seed)
	model := cg.NewCrossModel(params, "f12", cg.Config{Layers: 2, Dim: p.Dim, Vocab: vocab}, rng)

	type trio struct {
		rawG, rawQ *cg.Compressed
		cgG, cgQ   *cg.Compressed
		hagG, hagQ *cg.HAG
	}
	trios := make([]trio, pairs)
	var rawCost, cgCost, hagEdges int
	for i := range trios {
		g := db[(2*i)%len(db)]
		q := db[(2*i+1)%len(db)]
		rawG, rawQ := cg.BuildRaw(g, 2, vocab), cg.BuildRaw(q, 2, vocab)
		cgG, cgQ := cg.Build(g, 2, vocab), cg.Build(q, 2, vocab)
		trios[i] = trio{rawG, rawQ, cgG, cgQ, cg.BuildHAG(rawG, 16), cg.BuildHAG(rawQ, 16)}
		rawCost += cg.CrossCost(rawG, rawQ).Total()
		cgCost += cg.CrossCost(cgG, cgQ).Total()
		hagEdges += trios[i].hagG.AggEdges() + trios[i].hagQ.AggEdges()
	}

	// Warm up caches once, then take the best of three passes to damp GC
	// and scheduler noise.
	timeIt := func(f func(t trio)) time.Duration {
		for _, t := range trios {
			f(t)
		}
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for _, t := range trios {
				f(t)
			}
			if d := time.Since(start); rep == 0 || d < best {
				best = d
			}
		}
		return best / time.Duration(pairs)
	}
	raw := timeIt(func(t trio) { model.Forward(t.rawG, t.rawQ) })
	comp := timeIt(func(t trio) { model.Forward(t.cgG, t.cgQ) })
	hag := timeIt(func(t trio) { cg.ForwardCross(model, t.hagG, t.hagQ) })

	return Fig12Row{
		Dataset:    spec.Name,
		RawPerPair: raw, CGPerPair: comp, HAGPerPair: hag,
		CGSpeedup:  raw.Seconds() / comp.Seconds(),
		HAGSpeedup: raw.Seconds() / hag.Seconds(),
		RawCost:    rawCost, CGCost: cgCost, HAGAggEdges: hagEdges,
	}
}
