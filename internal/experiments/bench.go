package experiments

import (
	"math"
	"sort"
	"time"

	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
)

// BenchPoint is one (dataset, beam) row of the machine-readable benchmark
// summary lan-bench writes to BENCH_<timestamp>.json. Latencies are
// per-query wall times sampled individually (not derived from the batch
// total), so the percentiles reflect the tail the serving layer would see.
type BenchPoint struct {
	Dataset      string  `json:"dataset"`
	Graphs       int     `json:"graphs"`
	Queries      int     `json:"queries"`
	K            int     `json:"k"`
	Beam         int     `json:"beam"`
	BuildSeconds float64 `json:"build_seconds"`
	RecallAtK    float64 `json:"recall_at_k"`
	NDCMean      float64 `json:"ndc_mean"`
	NDCMedian    float64 `json:"ndc_median"`
	LatencyP50us float64 `json:"latency_p50_us"`
	LatencyP90us float64 `json:"latency_p90_us"`
	LatencyP99us float64 `json:"latency_p99_us"`
	QPS          float64 `json:"qps"`
}

// BenchReport is the full JSON document: the protocol knobs that shaped
// the run plus one point per (dataset, beam). GeneratedAt is stamped by
// the caller (lan-bench) at write time.
type BenchReport struct {
	GeneratedAt string       `json:"generated_at,omitempty"`
	Scale       float64      `json:"scale"`
	K           int          `json:"k"`
	Dim         int          `json:"dim"`
	Epochs      int          `json:"epochs"`
	Seed        int64        `json:"seed"`
	Points      []BenchPoint `json:"points"`
}

// Bench measures the default LAN configuration (LAN_IS + LAN_Route) per
// dataset and beam size, reusing any environments cache already built for
// the figures.
func Bench(p Protocol, cache *EnvCache) (*BenchReport, error) {
	rep := &BenchReport{Scale: p.Scale, K: p.K, Dim: p.Dim, Epochs: p.TrainEpochs, Seed: p.Seed}
	for _, spec := range p.Specs() {
		env, err := cache.Get(p, spec)
		if err != nil {
			return nil, err
		}
		for _, beam := range p.Beams {
			rep.Points = append(rep.Points, benchPoint(env, beam))
		}
	}
	return rep, nil
}

func benchPoint(env *Env, beam int) BenchPoint {
	p := env.Protocol
	latencies := make([]float64, len(env.Test)) // microseconds
	ndcs := make([]float64, len(env.Test))
	var recall, total float64
	for i, q := range env.Test {
		start := time.Now()
		res, stats := env.Engine.Search(q, core.SearchOptions{
			K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute,
		})
		elapsed := time.Since(start)
		latencies[i] = float64(elapsed.Microseconds())
		ndcs[i] = float64(stats.NDC)
		recall += dataset.Recall(res, env.Truth[i].Results)
		total += elapsed.Seconds()
	}
	n := float64(len(env.Test))
	return BenchPoint{
		Dataset:      env.Spec.Name,
		Graphs:       len(env.DB),
		Queries:      len(env.Test),
		K:            p.K,
		Beam:         beam,
		BuildSeconds: env.BuildTime.Seconds(),
		RecallAtK:    recall / n,
		NDCMean:      mean(ndcs),
		NDCMedian:    percentile(ndcs, 0.5),
		LatencyP50us: percentile(latencies, 0.5),
		LatencyP90us: percentile(latencies, 0.9),
		LatencyP99us: percentile(latencies, 0.99),
		QPS:          n / total,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// percentile returns the nearest-rank q-quantile (q in [0,1]) of xs,
// leaving the input unmodified.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
