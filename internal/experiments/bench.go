package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"time"

	"github.com/lansearch/lan/internal/core"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/mutable"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// BenchPoint is one (dataset, beam) row of the machine-readable benchmark
// summary lan-bench writes to BENCH_<timestamp>.json. Latencies are
// per-query wall times sampled individually (not derived from the batch
// total), so the percentiles reflect the tail the serving layer would see.
type BenchPoint struct {
	Dataset      string  `json:"dataset"`
	Graphs       int     `json:"graphs"`
	Queries      int     `json:"queries"`
	K            int     `json:"k"`
	Beam         int     `json:"beam"`
	BuildSeconds float64 `json:"build_seconds"`
	RecallAtK    float64 `json:"recall_at_k"`
	NDCMean      float64 `json:"ndc_mean"`
	NDCMedian    float64 `json:"ndc_median"`
	// Per-stage NDC means split the total between initial-node selection
	// and routing; PruneRateMean is the mean of 1 - opened/ranked over
	// queries that ranked at least one neighbor, and GammaStepsMean the
	// mean number of np_route γ-increments.
	NDCInitialMean float64 `json:"ndc_initial_mean"`
	NDCRoutingMean float64 `json:"ndc_routing_mean"`
	PruneRateMean  float64 `json:"prune_rate_mean"`
	GammaStepsMean float64 `json:"gamma_steps_mean"`
	LatencyP50us   float64 `json:"latency_p50_us"`
	LatencyP90us   float64 `json:"latency_p90_us"`
	LatencyP99us   float64 `json:"latency_p99_us"`
	QPS            float64 `json:"qps"`
}

// BuildPoint is one dataset's index-build speedup measurement: the same
// proximity graph constructed sequentially and with the worker pool, with
// a bit-identity check between the two results.
type BuildPoint struct {
	Dataset           string  `json:"dataset"`
	Graphs            int     `json:"graphs"`
	Workers           int     `json:"workers"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	// Identical reports whether the parallel build produced exactly the
	// sequential index (adjacency, upper layers, levels and entry point).
	Identical bool `json:"identical"`
}

// QueryPoint is one dataset's query-path speedup measurement: the same
// test workload answered twice — distances evaluated sequentially, then
// through the per-query worker pool — with a bit-identity check over
// every query's results, NDC and exploration count.
type QueryPoint struct {
	Dataset         string  `json:"dataset"`
	Graphs          int     `json:"graphs"`
	Queries         int     `json:"queries"`
	Beam            int     `json:"beam"`
	QueryWorkers    int     `json:"query_workers"`
	SequentialP50us float64 `json:"sequential_p50_us"`
	SequentialP99us float64 `json:"sequential_p99_us"`
	SequentialQPS   float64 `json:"sequential_qps"`
	ParallelP50us   float64 `json:"parallel_p50_us"`
	ParallelP99us   float64 `json:"parallel_p99_us"`
	ParallelQPS     float64 `json:"parallel_qps"`
	Speedup         float64 `json:"speedup"`
	// Identical reports whether the parallel run reproduced the
	// sequential run exactly: per-query answer lists, NDC and explored
	// node counts.
	Identical bool `json:"identical"`
}

// MutatePoint is one dataset's write-path measurement: the database's
// last quarter streamed into a prefix-built index (per-insert apply
// latency), the optimizer quiesced, incremental recall compared against
// the batch-built engine under the model-free strategies (HNSW descent +
// baseline routing, so the comparison isolates proximity-graph quality),
// and finally a sweep of soft deletes (per-delete apply latency).
type MutatePoint struct {
	Dataset string `json:"dataset"`
	Graphs  int    `json:"graphs"`
	Inserts int    `json:"inserts"`
	Deletes int    `json:"deletes"`
	// Apply latencies are wall times of Index.Insert / Index.Delete —
	// snapshot publication included, background optimization excluded.
	InsertP50us    float64 `json:"insert_p50_us"`
	InsertP99us    float64 `json:"insert_p99_us"`
	DeleteP50us    float64 `json:"delete_p50_us"`
	DeleteP99us    float64 `json:"delete_p99_us"`
	QuiesceSeconds float64 `json:"quiesce_seconds"`
	// Recall at the protocol's K over the test workload, ground truth
	// shared with the read-path points.
	BatchRecall       float64 `json:"batch_recall"`
	IncrementalRecall float64 `json:"incremental_recall"`
	FinalEpoch        uint64  `json:"final_epoch"`
}

// TracePoint is one dataset's trace-overhead measurement: the bench
// workload answered once untraced and once with a per-query trace
// recorded and exported through the async JSONL exporter, with the p50
// latency regression between the legs and a bit-identity check over every
// query's answers and NDC (tracing must only observe).
type TracePoint struct {
	Dataset string  `json:"dataset"`
	Queries int     `json:"queries"`
	Beam    int     `json:"beam"`
	Sample  float64 `json:"sample"`
	// Per-leg p50 latency over each query's min-of-k, and the regression
	// in percent as the median of per-query paired on/off ratios — pairing
	// compares every query against itself, so query-to-query workload
	// spread cancels out of the estimate (negative when the traced leg
	// happened to be faster).
	OffP50us      float64 `json:"off_p50_us"`
	OnP50us       float64 `json:"on_p50_us"`
	P50RegressPct float64 `json:"p50_regress_pct"`
	// Exported counts the traces replayed back from the segment files
	// after the run — the export round-trip check.
	Exported  int  `json:"exported"`
	Identical bool `json:"identical"`
}

// MutationMetrics snapshots the process-wide write-path counters
// (internal/obs) after the benchmark ran; like RoutingMetrics they
// describe the whole process, not one dataset.
type MutationMetrics struct {
	InsertsTotal         uint64  `json:"inserts_total"`
	DeletesTotal         uint64  `json:"deletes_total"`
	OptimizerPassesTotal uint64  `json:"optimizer_passes_total"`
	ApplyCount           uint64  `json:"apply_count"`
	ApplyMeanSeconds     float64 `json:"apply_mean_seconds"`
	ApplyP99Seconds      float64 `json:"apply_p99_seconds"`
}

// RoutingMetrics snapshots the process-wide observability counters
// (internal/obs) after the benchmark ran: every search of the run —
// figures, tables and the summary legs alike — contributes, so the
// totals describe the whole process, not one (dataset, beam) cell.
type RoutingMetrics struct {
	Queries           uint64  `json:"queries"`
	NDCInitialTotal   uint64  `json:"ndc_initial_total"`
	NDCRoutingTotal   uint64  `json:"ndc_routing_total"`
	NDCVerifyTotal    uint64  `json:"ndc_verify_total"`
	BatchesOpened     uint64  `json:"batches_opened_total"`
	RankerCalls       uint64  `json:"ranker_calls_total"`
	PruneRateMean     float64 `json:"prune_rate_mean"`
	GammaStepsMean    float64 `json:"gamma_steps_mean"`
	DistCacheHitRatio float64 `json:"dist_cache_hit_ratio"`
}

// BenchReport is the full JSON document: the protocol knobs that shaped
// the run plus one point per (dataset, beam), one build-speedup point and
// one query-speedup point per dataset. GeneratedAt is stamped by the
// caller (lan-bench) at write time.
type BenchReport struct {
	GeneratedAt string  `json:"generated_at,omitempty"`
	Scale       float64 `json:"scale"`
	K           int     `json:"k"`
	Dim         int     `json:"dim"`
	Epochs      int     `json:"epochs"`
	Workers     int     `json:"workers"`
	Seed        int64   `json:"seed"`
	// Store records the storage tier the query measurements ran on
	// ("ram" when empty; "mmap" means every query point exercised the
	// memory-mapped candidate-fetch path).
	Store        string        `json:"store,omitempty"`
	Points       []BenchPoint  `json:"points"`
	Builds       []BuildPoint  `json:"builds"`
	QueryPoints  []QueryPoint  `json:"query_points"`
	MutatePoints []MutatePoint `json:"mutate_points"`
	// StorePoints carries the storage-tier scalability sweep (-exp scal)
	// when it ran in the same process: per (size, quantization) cell,
	// RAM-vs-mmap identity, quantization recall epsilon, and resident
	// memory of both tiers.
	StorePoints []StorePoint `json:"store_points,omitempty"`
	// TracePoints carries the trace-overhead leg (Protocol.TraceDir set):
	// per dataset, the p50 cost of tracing + export at the widest beam.
	TracePoints []TracePoint    `json:"trace_points,omitempty"`
	Routing     RoutingMetrics  `json:"routing_metrics"`
	Mutation    MutationMetrics `json:"mutation_metrics"`
}

// snapshotMutationMetrics reads the process-wide write-path counters.
func snapshotMutationMetrics() MutationMetrics {
	m := obs.Mutate()
	return MutationMetrics{
		InsertsTotal:         m.Inserts.Value(),
		DeletesTotal:         m.Deletes.Value(),
		OptimizerPassesTotal: m.OptimizerPasses.Value(),
		ApplyCount:           m.ApplySeconds.Count(),
		ApplyMeanSeconds:     m.ApplySeconds.Mean(),
		ApplyP99Seconds:      m.ApplySeconds.Quantile(0.99),
	}
}

// snapshotRoutingMetrics reads the process-wide query counters.
func snapshotRoutingMetrics() RoutingMetrics {
	q := obs.Query()
	m := RoutingMetrics{
		Queries:         q.Queries.Value(),
		NDCInitialTotal: q.NDCInitial.Value(),
		NDCRoutingTotal: q.NDCRouting.Value(),
		NDCVerifyTotal:  q.NDCVerify.Value(),
		BatchesOpened:   q.BatchesOpened.Value(),
		RankerCalls:     q.RankerCalls.Value(),
		PruneRateMean:   q.PruningRatio.Mean(),
		GammaStepsMean:  q.GammaSteps.Mean(),
	}
	hits, misses := q.DistCacheHits.Value(), q.DistCacheMisses.Value()
	if total := hits + misses; total > 0 {
		m.DistCacheHitRatio = float64(hits) / float64(total)
	}
	return m
}

// Bench measures the default LAN configuration (LAN_IS + LAN_Route) per
// dataset and beam size, reusing any environments cache already built for
// the figures.
func Bench(p Protocol, cache *EnvCache) (*BenchReport, error) {
	rep := &BenchReport{
		Scale: p.Scale, K: p.K, Dim: p.Dim, Epochs: p.TrainEpochs,
		Workers: p.workers(), Seed: p.Seed,
	}
	for _, spec := range p.Specs() {
		env, err := cache.Get(p, spec)
		if err != nil {
			return nil, err
		}
		for _, beam := range p.Beams {
			rep.Points = append(rep.Points, benchPoint(env, beam))
		}
		rep.Builds = append(rep.Builds, buildPoint(env))
		if len(p.Beams) > 0 {
			// The widest beam is where routing evaluates the most
			// distances per step, i.e. where the pool has work to share.
			rep.QueryPoints = append(rep.QueryPoints, queryPoint(env, p.Beams[len(p.Beams)-1]))
		}
		mp, err := mutatePoint(env)
		if err != nil {
			return nil, err
		}
		rep.MutatePoints = append(rep.MutatePoints, mp)
		if p.TraceDir != "" && len(p.Beams) > 0 {
			tp, err := tracePoint(env, p.Beams[len(p.Beams)-1])
			if err != nil {
				return nil, err
			}
			rep.TracePoints = append(rep.TracePoints, tp)
		}
	}
	rep.Store = p.Store
	rep.StorePoints = cache.storePoints
	rep.Routing = snapshotRoutingMetrics()
	rep.Mutation = snapshotMutationMetrics()
	return rep, nil
}

// mutatePoint builds the dataset's index over the first three quarters of
// the database, streams the last quarter in through the write path, and
// measures apply latencies, quiesce time and the batch-vs-incremental
// recall gap, then sweeps soft deletes over one in eight graphs.
func mutatePoint(env *Env) (MutatePoint, error) {
	p := env.Protocol
	db := env.DB
	prefix := len(db) * 3 / 4
	eng, err := core.Build(db[:prefix], env.Train, core.Options{
		M: 6, Dim: p.Dim, GammaKNN: 2 * p.K,
		BuildMetric: p.buildMetric(),
		QueryMetric: p.QueryMetric,
		Train:       models.TrainOptions{Epochs: p.TrainEpochs, LR: 0.01},
		Workers:     p.Workers,
		Seed:        p.Seed,
	})
	if err != nil {
		return MutatePoint{}, fmt.Errorf("experiments: %s prefix build: %w", env.Spec.Name, err)
	}
	x, err := mutable.New(eng, nil, 0)
	if err != nil {
		return MutatePoint{}, err
	}
	defer x.Close()

	insLat := make([]float64, 0, len(db)-prefix) // microseconds
	for _, g := range db[prefix:] {
		start := time.Now()
		if _, err := x.Insert(g); err != nil {
			return MutatePoint{}, fmt.Errorf("experiments: %s insert: %w", env.Spec.Name, err)
		}
		insLat = append(insLat, float64(time.Since(start).Microseconds()))
	}
	quiesceStart := time.Now()
	x.Quiesce()
	quiesce := time.Since(quiesceStart).Seconds()

	beam := 2 * p.K
	if len(p.Beams) > 0 {
		beam = p.Beams[len(p.Beams)-1]
	}
	so := core.SearchOptions{K: p.K, Beam: beam, Initial: core.HNSWIS, Routing: core.BaselineRoute}
	snap := x.Snapshot()
	var batch, incr float64
	for i, q := range env.Test {
		bres, _ := env.Engine.Search(q, so)
		ires, _ := snap.Engine.Search(q, so)
		batch += dataset.Recall(bres, env.Truth[i].Results)
		incr += dataset.Recall(ires, env.Truth[i].Results)
	}
	n := float64(len(env.Test))

	delLat := make([]float64, 0, len(db)/8+1) // microseconds
	for id := 0; id < len(db); id += 8 {
		start := time.Now()
		if err := x.Delete(id); err != nil {
			return MutatePoint{}, fmt.Errorf("experiments: %s delete: %w", env.Spec.Name, err)
		}
		delLat = append(delLat, float64(time.Since(start).Microseconds()))
	}
	x.Quiesce()

	return MutatePoint{
		Dataset: env.Spec.Name, Graphs: len(db),
		Inserts: len(insLat), Deletes: len(delLat),
		InsertP50us:    percentile(insLat, 0.5),
		InsertP99us:    percentile(insLat, 0.99),
		DeleteP50us:    percentile(delLat, 0.5),
		DeleteP99us:    percentile(delLat, 0.99),
		QuiesceSeconds: quiesce,
		BatchRecall:    batch / n, IncrementalRecall: incr / n,
		FinalEpoch: x.Epoch(),
	}, nil
}

// tracePoint measures what always-on tracing costs: the dataset's bench
// workload at the given beam, answered untraced and then with a per-query
// trace recorded and handed to an exporter writing JSONL segments under
// Protocol.TraceDir/<dataset>. Sampling uses Protocol.TraceSample (0
// defaults to 1 inside the exporter — the worst case). Results and NDC
// must be bit-identical between the legs; the exported segments are
// replayed afterwards to count what reached disk.
func tracePoint(env *Env, beam int) (TracePoint, error) {
	p := env.Protocol
	so := core.SearchOptions{K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute}

	type outcome struct {
		res []pg.Result
		ndc int
	}
	// Warm up once (see benchPoint) so one-time setup skews neither leg.
	if len(env.Test) > 0 {
		env.Engine.Search(env.Test[0], so)
	}

	run := func(traced bool, exp *obs.Exporter) ([]outcome, []float64, error) {
		outs := make([]outcome, len(env.Test))
		lat := make([]float64, len(env.Test)) // microseconds
		for i, q := range env.Test {
			//lint:allow ctxprop bench harness entry point; experiment queries run to completion by design
			ctx := context.Background()
			var t *obs.Trace
			if traced {
				t = obs.NewTrace(fmt.Sprintf("%s-%d", env.Spec.Name, i))
				ctx = obs.With(ctx, t)
			}
			start := time.Now()
			res, stats, err := env.Engine.SearchPooled(ctx, q, so, nil)
			lat[i] = float64(time.Since(start).Microseconds())
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s trace leg: %w", env.Spec.Name, err)
			}
			if exp != nil {
				exp.Submit(t)
			}
			outs[i] = outcome{res: res, ndc: stats.NDC}
		}
		return outs, lat, nil
	}

	// Per-query distance work is deterministic, so the run-to-run spread at
	// second-scale latencies is scheduler and GC noise, not tracing cost.
	// Interleave off/on legs (drift hits both alike), alternate which leg
	// goes first each repetition, and force a collection before every leg
	// so sync.Pool eviction (the GED beam arenas) cannot land on one side
	// systematically; each query keeps its minimum across repetitions —
	// the usual min-of-k estimator — so the paired comparison below
	// measures the overhead, not the noise floor.
	const traceReps = 3
	dir := filepath.Join(p.TraceDir, env.Spec.Name)
	exp, err := obs.NewExporter(obs.ExportConfig{Dir: dir, Sample: p.TraceSample})
	if err != nil {
		return TracePoint{}, err
	}
	offLat := make([]float64, len(env.Test))
	onLat := make([]float64, len(env.Test))
	for i := range offLat {
		offLat[i], onLat[i] = math.Inf(1), math.Inf(1)
	}
	minInto := func(dst, lat []float64) {
		for i := range dst {
			if lat[i] < dst[i] {
				dst[i] = lat[i]
			}
		}
	}
	var ref []outcome
	identical := true
	for rep := 0; rep < traceReps; rep++ {
		for _, traced := range [2]bool{rep%2 == 1, rep%2 == 0} {
			var e *obs.Exporter
			if traced && rep == 0 {
				e = exp // export once; later reps only measure
			}
			runtime.GC()
			out, lat, err := run(traced, e)
			if err != nil {
				exp.Close()
				return TracePoint{}, err
			}
			if ref == nil {
				ref = out
			} else if !reflect.DeepEqual(out, ref) {
				identical = false
			}
			if traced {
				minInto(onLat, lat)
			} else {
				minInto(offLat, lat)
			}
		}
	}
	if err := exp.Close(); err != nil {
		return TracePoint{}, err
	}
	stats, err := obs.ReadSegments(dir, nil)
	if err != nil {
		return TracePoint{}, fmt.Errorf("experiments: %s trace replay: %w", env.Spec.Name, err)
	}

	tp := TracePoint{
		Dataset: env.Spec.Name, Queries: len(env.Test), Beam: beam,
		Sample:    p.TraceSample,
		OffP50us:  percentile(offLat, 0.5),
		OnP50us:   percentile(onLat, 0.5),
		Exported:  stats.Traces,
		Identical: identical,
	}
	// The regression estimate pairs each query with itself: the median
	// on/off ratio of per-query minima. Comparing independent p50s instead
	// would let the slowest queries' noise (seconds-scale GED work on a
	// shared box) dominate the delta; the paired median is robust to it.
	ratios := make([]float64, 0, len(offLat))
	for i := range offLat {
		if offLat[i] > 0 && !math.IsInf(offLat[i], 1) && !math.IsInf(onLat[i], 1) {
			ratios = append(ratios, onLat[i]/offLat[i])
		}
	}
	if len(ratios) > 0 {
		tp.P50RegressPct = 100 * (percentile(ratios, 0.5) - 1)
	}
	return tp, nil
}

// TraceSamples runs one traced query per dataset (the first test query,
// LAN_IS + LAN_Route at the widest beam) and writes each routing trace as
// one JSON line to w — lan-bench's -trace output. Environments come from
// the same cache the figures used, so no index is rebuilt.
func TraceSamples(p Protocol, cache *EnvCache, w io.Writer) error {
	for _, spec := range p.Specs() {
		env, err := cache.Get(p, spec)
		if err != nil {
			return err
		}
		if len(env.Test) == 0 || len(p.Beams) == 0 {
			continue
		}
		t := obs.NewTrace(spec.Name)
		ctx := obs.With(context.Background(), t) //lint:allow ctxprop bench harness entry point; experiment queries run to completion by design
		so := core.SearchOptions{K: p.K, Beam: p.Beams[len(p.Beams)-1], Initial: core.LANIS, Routing: core.LANRoute}
		if _, _, err := env.Engine.SearchPooled(ctx, env.Test[0], so, nil); err != nil {
			return err
		}
		data, err := t.JSON()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return err
		}
	}
	return nil
}

// workers resolves the protocol's effective parallel worker count.
func (p Protocol) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.NumCPU()
}

// queryWorkers resolves the protocol's effective query-path worker count.
func (p Protocol) queryWorkers() int {
	if p.QueryWorkers > 0 {
		return p.QueryWorkers
	}
	return runtime.NumCPU()
}

// buildPoint constructs the dataset's proximity graph twice — once
// sequentially, once with the worker pool — and reports the speedup plus
// a bit-identity comparison of the two indexes.
func buildPoint(env *Env) BuildPoint {
	p := env.Protocol
	cfg := pg.BuildConfig{M: 6, Metric: p.buildMetric(), Seed: p.Seed}
	// Floor the parallel leg at two workers: on a single-core machine
	// the protocol default resolves to 1, which would compare the
	// sequential build against itself and verify nothing about the pool.
	workers := maxInt(p.workers(), 2)

	cfg.Workers = 1
	seqStart := time.Now()
	seq, seqErr := pg.Build(env.DB, cfg)
	seqSec := time.Since(seqStart).Seconds()

	cfg.Workers = workers
	parStart := time.Now()
	par, parErr := pg.Build(env.DB, cfg)
	parSec := time.Since(parStart).Seconds()

	bp := BuildPoint{
		Dataset: env.Spec.Name, Graphs: len(env.DB), Workers: workers,
		SequentialSeconds: seqSec, ParallelSeconds: parSec,
	}
	if parSec > 0 {
		bp.Speedup = seqSec / parSec
	}
	bp.Identical = seqErr == nil && parErr == nil &&
		reflect.DeepEqual(seq.PG.Adj, par.PG.Adj) &&
		reflect.DeepEqual(seq.Upper, par.Upper) &&
		reflect.DeepEqual(seq.Level, par.Level) &&
		seq.Entry == par.Entry
	return bp
}

// queryPoint answers the dataset's test workload twice — routing-stage
// distances evaluated sequentially, then through a shared worker pool —
// and reports both latency profiles plus a bit-identity comparison of
// every query's answers, NDC and exploration count.
func queryPoint(env *Env, beam int) QueryPoint {
	p := env.Protocol
	so := core.SearchOptions{K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute}
	// Floor the parallel leg at two workers: on a single-core machine the
	// protocol default resolves to 1, which would compare the sequential
	// path against itself and verify nothing about the pool.
	workers := maxInt(p.queryWorkers(), 2)
	pool := pg.NewWorkerPool(workers)
	defer pool.Close()

	type outcome struct {
		res      []pg.Result
		ndc      int
		explored int
	}
	run := func(pool *pg.WorkerPool) ([]outcome, []float64, float64) {
		if len(env.Test) > 0 { // warm up one-time setup (see benchPoint)
			//lint:allow ctxprop bench harness entry point; warm-up query runs to completion by design
			env.Engine.SearchPooled(context.Background(), env.Test[0], so, pool)
		}
		outs := make([]outcome, len(env.Test))
		lat := make([]float64, len(env.Test)) // microseconds
		var total float64
		for i, q := range env.Test {
			start := time.Now()
			//lint:allow ctxprop bench harness entry point; timed queries run to completion by design
			res, stats, _ := env.Engine.SearchPooled(context.Background(), q, so, pool)
			elapsed := time.Since(start)
			lat[i] = float64(elapsed.Microseconds())
			total += elapsed.Seconds()
			outs[i] = outcome{res: res, ndc: stats.NDC, explored: stats.Explored}
		}
		return outs, lat, total
	}

	seqOut, seqLat, seqTotal := run(nil)
	parOut, parLat, parTotal := run(pool)

	qp := QueryPoint{
		Dataset: env.Spec.Name, Graphs: len(env.DB), Queries: len(env.Test),
		Beam: beam, QueryWorkers: workers,
		SequentialP50us: percentile(seqLat, 0.5),
		SequentialP99us: percentile(seqLat, 0.99),
		ParallelP50us:   percentile(parLat, 0.5),
		ParallelP99us:   percentile(parLat, 0.99),
		Identical:       reflect.DeepEqual(seqOut, parOut),
	}
	n := float64(len(env.Test))
	if seqTotal > 0 {
		qp.SequentialQPS = n / seqTotal
	}
	if parTotal > 0 {
		qp.ParallelQPS = n / parTotal
	}
	if parTotal > 0 && seqTotal > 0 {
		qp.Speedup = seqTotal / parTotal
	}
	return qp
}

func benchPoint(env *Env, beam int) BenchPoint {
	p := env.Protocol
	// Warm up before the timed loop: the first search pays one-time setup
	// (scratch-pool population, lazily built compressed GNN-graphs for the
	// query side) that would otherwise land in the first latency sample
	// and skew the percentiles of small workloads.
	if len(env.Test) > 0 {
		env.Engine.Search(env.Test[0], core.SearchOptions{
			K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute,
		})
	}
	latencies := make([]float64, len(env.Test)) // microseconds
	ndcs := make([]float64, len(env.Test))
	var recall, total float64
	var initNDC, routeNDC, gammaSteps, pruneSum float64
	var pruned int
	for i, q := range env.Test {
		start := time.Now()
		res, stats := env.Engine.Search(q, core.SearchOptions{
			K: p.K, Beam: beam, Initial: core.LANIS, Routing: core.LANRoute,
		})
		elapsed := time.Since(start)
		latencies[i] = float64(elapsed.Microseconds())
		ndcs[i] = float64(stats.NDC)
		initNDC += float64(stats.InitNDC)
		routeNDC += float64(stats.RouteNDC)
		gammaSteps += float64(stats.GammaSteps)
		if stats.RankedNeighbors > 0 {
			pruneSum += stats.PruneRate()
			pruned++
		}
		recall += dataset.Recall(res, env.Truth[i].Results)
		total += elapsed.Seconds()
	}
	n := float64(len(env.Test))
	bp := BenchPoint{
		Dataset:        env.Spec.Name,
		Graphs:         len(env.DB),
		Queries:        len(env.Test),
		K:              p.K,
		Beam:           beam,
		BuildSeconds:   env.BuildTime.Seconds(),
		RecallAtK:      recall / n,
		NDCMean:        mean(ndcs),
		NDCMedian:      percentile(ndcs, 0.5),
		NDCInitialMean: initNDC / n,
		NDCRoutingMean: routeNDC / n,
		GammaStepsMean: gammaSteps / n,
		LatencyP50us:   percentile(latencies, 0.5),
		LatencyP90us:   percentile(latencies, 0.9),
		LatencyP99us:   percentile(latencies, 0.99),
		QPS:            n / total,
	}
	if pruned > 0 {
		bp.PruneRateMean = pruneSum / float64(pruned)
	}
	return bp
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// percentile returns the nearest-rank q-quantile (q in [0,1]) of xs,
// leaving the input unmodified.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
