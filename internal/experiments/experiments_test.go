package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/dataset"
)

// tinyProtocol keeps experiment smoke tests fast.
func tinyProtocol() Protocol {
	return Protocol{
		Scale:       0.003,
		Queries:     15,
		K:           5,
		Beams:       []int{6, 12},
		QueryMetric: ged.MetricFunc(ged.Hungarian),
		TrainEpochs: 2,
		Dim:         8,
		Seed:        1,
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, tinyProtocol())
	out := buf.String()
	for _, name := range []string{"AIDS", "LINUX", "PUBCHEM", "SYN"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table1 missing %s:\n%s", name, out)
		}
	}
}

func TestFig5Through7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: runs the full figure protocol end to end (~20s)")
	}
	p := tinyProtocol()
	env, err := NewEnv(p, dataset.AIDS(p.Scale))
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	for name, fn := range map[string]func(*Env) []Point{
		"fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
	} {
		pts := fn(env)
		if len(pts) != 3*len(p.Beams) {
			t.Fatalf("%s: %d points; want %d", name, len(pts), 3*len(p.Beams))
		}
		methods := map[string]bool{}
		for _, pt := range pts {
			methods[pt.Method] = true
			if pt.Recall < 0 || pt.Recall > 1 {
				t.Fatalf("%s: recall out of range: %+v", name, pt)
			}
			if pt.QPS <= 0 || pt.AvgNDC <= 0 {
				t.Fatalf("%s: degenerate point %+v", name, pt)
			}
		}
		if len(methods) != 3 {
			t.Fatalf("%s: methods = %v", name, methods)
		}
	}
	// Fig 8 on the same env.
	row := Fig8(env)
	if row.Precision < 0 || row.Precision > 1 {
		t.Fatalf("fig8 precision %v", row.Precision)
	}
}

func TestFig12SpeedupShape(t *testing.T) {
	p := tinyProtocol()
	row := Fig12(p, dataset.AIDS(p.Scale), 16)
	if row.CGPerPair <= 0 || row.RawPerPair <= 0 || row.HAGPerPair <= 0 {
		t.Fatalf("degenerate timings: %+v", row)
	}
	// The CG cost (Theorem 3 units) must be below the raw cost; HAG only
	// trims aggregation edges.
	if row.CGCost >= row.RawCost {
		t.Fatalf("CG cost %d >= raw %d", row.CGCost, row.RawCost)
	}
	// Wall-clock CG speedup should be visible (>1x) on molecule graphs.
	if row.CGSpeedup <= 1 {
		t.Fatalf("no CG speedup: %+v", row)
	}
	// HAG cannot approach CG's speedup (it keeps all matmul rows).
	if row.HAGSpeedup >= row.CGSpeedup {
		t.Fatalf("HAG (%0.2fx) >= CG (%0.2fx)", row.HAGSpeedup, row.CGSpeedup)
	}
}

func TestRunUnknownName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "nope", tinyProtocol()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable1AndFig12(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "tab1", tinyProtocol()); err != nil {
		t.Fatalf("tab1: %v", err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{50, 10, 40, 20, 30} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.2, 10}, {0.5, 30}, {0.9, 50}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v; want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 50 {
		t.Fatal("percentile mutated its input")
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("percentile(nil) = %v", got)
	}
	if got := mean([]float64{1, 2, 6}); got != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestBenchReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full environment")
	}
	p := tinyProtocol()
	p.Datasets = []string{"aids"}
	rep, err := Bench(p, NewEnvCache())
	if err != nil {
		t.Fatalf("Bench: %v", err)
	}
	if len(rep.Points) != len(p.Beams) {
		t.Fatalf("%d points; want %d", len(rep.Points), len(p.Beams))
	}
	for _, pt := range rep.Points {
		if !strings.HasPrefix(pt.Dataset, "AIDS") || pt.K != p.K || pt.Graphs <= 0 || pt.Queries <= 0 {
			t.Fatalf("bad point identity: %+v", pt)
		}
		if pt.RecallAtK < 0 || pt.RecallAtK > 1 {
			t.Fatalf("recall out of range: %+v", pt)
		}
		if pt.NDCMean <= 0 || pt.NDCMedian <= 0 || pt.QPS <= 0 || pt.BuildSeconds <= 0 {
			t.Fatalf("degenerate point: %+v", pt)
		}
		if pt.LatencyP50us > pt.LatencyP90us || pt.LatencyP90us > pt.LatencyP99us {
			t.Fatalf("latency percentiles out of order: %+v", pt)
		}
	}
	if len(rep.Builds) != 1 {
		t.Fatalf("%d build points; want 1", len(rep.Builds))
	}
	bp := rep.Builds[0]
	if !strings.HasPrefix(bp.Dataset, "AIDS") || bp.Graphs <= 0 || bp.Workers <= 0 {
		t.Fatalf("bad build point identity: %+v", bp)
	}
	if bp.SequentialSeconds <= 0 || bp.ParallelSeconds <= 0 {
		t.Fatalf("degenerate build point: %+v", bp)
	}
	if !bp.Identical {
		t.Fatalf("parallel build diverged from sequential: %+v", bp)
	}
	if len(rep.MutatePoints) != 1 {
		t.Fatalf("%d mutate points; want 1", len(rep.MutatePoints))
	}
	mp := rep.MutatePoints[0]
	if !strings.HasPrefix(mp.Dataset, "AIDS") || mp.Inserts <= 0 || mp.Deletes <= 0 {
		t.Fatalf("bad mutate point identity: %+v", mp)
	}
	if mp.InsertP50us > mp.InsertP99us || mp.DeleteP50us > mp.DeleteP99us {
		t.Fatalf("apply latency percentiles out of order: %+v", mp)
	}
	if mp.FinalEpoch == 0 {
		t.Fatalf("mutate point never advanced the epoch: %+v", mp)
	}
	if mp.IncrementalRecall < 0 || mp.IncrementalRecall > 1 || mp.BatchRecall < 0 || mp.BatchRecall > 1 {
		t.Fatalf("recall out of range: %+v", mp)
	}
	if rep.Mutation.InsertsTotal == 0 || rep.Mutation.ApplyCount == 0 {
		t.Fatalf("mutation metrics empty: %+v", rep.Mutation)
	}
}

func TestNamesListed(t *testing.T) {
	names := Names()
	if len(names) != 11 || names[0] != "tab1" || names[len(names)-1] != "all" {
		t.Fatalf("Names = %v", names)
	}
}
