// Package lanstore implements the binary snapshot container behind the
// mmap-backed storage tier (snapshot format v3). A v3 file is fully
// self-contained — database graphs, base-layer adjacency, M_rk node
// embeddings and the engine's JSON metadata travel together — and is laid
// out so a reader can serve searches straight off a read-only mapping:
//
//	header   magic "LANSNAP3", section table (offset, length, CRC32)
//	meta     opaque JSON (owned by internal/core: models, clustering, ...)
//	labels   string table of the distinct node labels, sorted
//	adj      fixed-stride int64 rows: [degree, neighbors..., 0 pad]
//	offs     (n+1) uint64 graph-segment boundaries into blob
//	blob     per-graph varint segments: nodes, label ids, delta adjacency
//	emb      M_rk node-embedding rows: float64, float32 or int8+scale
//
// All integers are little-endian; the adj, offs and emb sections start
// 8-byte aligned so a little-endian 64-bit reader can alias them in
// place instead of decoding copies. Each section carries its own CRC32:
// the structural sections (meta, labels, adj, offs) are verified on every
// Open, while the payload sections (blob, emb) are verified by
// VerifyPayload — run by the RAM materialization path, and skipped by the
// mmap path so opening a beyond-RAM snapshot does not page the whole file
// in. Graph segments decode through graph.Assemble, which re-validates
// the per-graph invariants on every fetch.
package lanstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/lansearch/lan/graph"
)

// Quant selects the on-disk precision of the embedding section.
type Quant string

const (
	// QuantF64 stores embeddings bit-exact; searches over the snapshot
	// are bit-identical to the RAM engine.
	QuantF64 Quant = "f64"
	// QuantF32 rounds embedding coordinates to float32 (half the space;
	// perturbs only M_rk ranking scores, never final distances).
	QuantF32 Quant = "f32"
	// QuantInt8 stores each embedding row as int8 codes with a per-row
	// float32 scale and offset (about 1/8 the space of f64).
	QuantInt8 Quant = "int8"
)

// Named error classes. Callers match with errors.Is; every failure is
// wrapped with file-specific detail.
var (
	// ErrNotSnapshot marks a file without the LANSNAP magic — lanio uses
	// it to fall back to the JSON index format.
	ErrNotSnapshot = errors.New("lanstore: not a binary snapshot (no LANSNAP magic)")
	// ErrFutureVersion marks a LANSNAP file whose version this build does
	// not read.
	ErrFutureVersion = errors.New("lanstore: snapshot format is newer than this build")
	// ErrCorrupt marks a structurally invalid or checksum-failing file.
	ErrCorrupt = errors.New("lanstore: corrupt snapshot")
)

const (
	magic = "LANSNAP3"
	// magicPrefix is shared by every (current and future) binary
	// snapshot version; the byte after it is the format digit.
	magicPrefix = "LANSNAP"

	embF64  = 0
	embF32  = 1
	embInt8 = 2

	// Section indices into the header table.
	secMeta   = 0
	secLabels = 1
	secAdj    = 2
	secOffs   = 3
	secBlob   = 4
	secEmb    = 5
	nSections = 6

	// headerSize = magic + 4 scalar fields + per-section (off, len, crc).
	headerSize = len(magic) + 8*(4+3*nSections)
)

// header is the decoded fixed-size file prelude.
type header struct {
	nGraphs   int
	embDim    int
	embCode   int
	adjStride int
	sections  [nSections]struct{ off, length, crc uint64 }
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// SnapshotData is the writer's input: everything a v3 file contains
// besides the layout itself.
type SnapshotData struct {
	// Meta is the engine metadata blob (opaque here; internal/core owns
	// its schema).
	Meta []byte
	// DB is the graph database; graph i must have ID i.
	DB graph.Database
	// Adj is the base-layer proximity-graph adjacency (sorted rows).
	Adj [][]int
	// Emb holds the M_rk node-embedding table (may be nil).
	Emb [][]float64
	// Quant selects the embedding precision (default QuantF64).
	Quant Quant
}

func embCodeOf(q Quant) (int, error) {
	switch q {
	case "", QuantF64:
		return embF64, nil
	case QuantF32:
		return embF32, nil
	case QuantInt8:
		return embInt8, nil
	}
	return 0, fmt.Errorf("lanstore: unknown quantization %q (want f64, f32 or int8)", q)
}

// embRowBytes returns the on-disk stride of one embedding row.
func embRowBytes(code, dim int) int {
	switch code {
	case embF32:
		return 4 * dim
	case embInt8:
		return 8 + dim // float32 scale + float32 offset + dim codes
	default:
		return 8 * dim
	}
}

// Write serializes d to path in snapshot format v3, atomically (temp file
// + rename in path's directory).
func Write(path string, d *SnapshotData) error {
	if len(d.DB) == 0 {
		return fmt.Errorf("lanstore: write: empty database")
	}
	if len(d.Adj) != len(d.DB) {
		return fmt.Errorf("lanstore: write: %d adjacency rows for %d graphs", len(d.Adj), len(d.DB))
	}
	if len(d.Emb) != 0 && len(d.Emb) != len(d.DB) {
		return fmt.Errorf("lanstore: write: %d embedding rows for %d graphs", len(d.Emb), len(d.DB))
	}
	code, err := embCodeOf(d.Quant)
	if err != nil {
		return err
	}

	labels, labelIdx := labelTable(d.DB)
	blob, offs, err := encodeGraphs(d.DB, labelIdx)
	if err != nil {
		return err
	}

	var h header
	h.nGraphs = len(d.DB)
	h.embCode = code
	if len(d.Emb) > 0 {
		h.embDim = len(d.Emb[0])
	}
	h.adjStride = 1
	for _, ns := range d.Adj {
		if len(ns)+1 > h.adjStride {
			h.adjStride = len(ns) + 1
		}
	}

	sections := [nSections][]byte{
		secMeta:   d.Meta,
		secLabels: encodeLabels(labels),
		secAdj:    encodeAdj(d.Adj, h.adjStride),
		secOffs:   encodeOffs(offs),
		secBlob:   blob,
		secEmb:    encodeEmb(d.Emb, code, h.embDim),
	}

	off := uint64(headerSize)
	var out []byte
	for i, sec := range sections {
		off = align8(off)
		h.sections[i].off = off
		h.sections[i].length = uint64(len(sec))
		h.sections[i].crc = uint64(crc32.ChecksumIEEE(sec))
		off += uint64(len(sec))
	}
	out = make([]byte, 0, off)
	out = append(out, encodeHeader(&h)...)
	for _, sec := range sections {
		for uint64(len(out))%8 != 0 {
			out = append(out, 0)
		}
		out = append(out, sec...)
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".lansnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

// labelTable returns the sorted distinct node labels of db and their
// index map — the persisted counterpart of cg.NewVocab's scan, so vocab
// reconstruction at load needs no database pass.
func labelTable(db graph.Database) ([]string, map[string]int) {
	set := make(map[string]bool)
	for _, g := range db {
		for u := 0; u < g.N(); u++ {
			set[g.Label(u)] = true
		}
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	idx := make(map[string]int, len(labels))
	for i, l := range labels {
		idx[l] = i
	}
	return labels, idx
}

func encodeLabels(labels []string) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(labels)))
	for _, l := range labels {
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		buf = append(buf, l...)
	}
	return buf
}

// encodeGraphs produces the length-prefixed graph segments: per graph a
// varint node count, the node label ids, then each node's degree and
// delta-encoded sorted neighbor list.
func encodeGraphs(db graph.Database, labelIdx map[string]int) (blob []byte, offs []uint64, err error) {
	offs = make([]uint64, 0, len(db)+1)
	for _, g := range db {
		offs = append(offs, uint64(len(blob)))
		n := g.N()
		blob = binary.AppendUvarint(blob, uint64(n))
		for u := 0; u < n; u++ {
			li, ok := labelIdx[g.Label(u)]
			if !ok {
				return nil, nil, fmt.Errorf("lanstore: write: graph %d label %q missing from table", g.ID, g.Label(u))
			}
			blob = binary.AppendUvarint(blob, uint64(li))
		}
		for u := 0; u < n; u++ {
			ns := g.Neighbors(u)
			blob = binary.AppendUvarint(blob, uint64(len(ns)))
			prev := -1
			for _, v := range ns {
				blob = binary.AppendUvarint(blob, uint64(v-prev-1))
				prev = v
			}
		}
	}
	offs = append(offs, uint64(len(blob)))
	return blob, offs, nil
}

func encodeAdj(adj [][]int, stride int) []byte {
	buf := make([]byte, 8*stride*len(adj))
	for i, ns := range adj {
		row := buf[8*stride*i:]
		binary.LittleEndian.PutUint64(row, uint64(len(ns)))
		for j, v := range ns {
			binary.LittleEndian.PutUint64(row[8*(j+1):], uint64(v))
		}
	}
	return buf
}

func encodeOffs(offs []uint64) []byte {
	buf := make([]byte, 8*len(offs))
	for i, v := range offs {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return buf
}

func encodeEmb(emb [][]float64, code, dim int) []byte {
	if len(emb) == 0 || dim == 0 {
		return nil
	}
	stride := embRowBytes(code, dim)
	buf := make([]byte, stride*len(emb))
	for i, row := range emb {
		dst := buf[stride*i : stride*(i+1)]
		switch code {
		case embF32:
			for j, v := range row {
				binary.LittleEndian.PutUint32(dst[4*j:], float32bits(v))
			}
		case embInt8:
			lo, hi := row[0], row[0]
			for _, v := range row[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			scale := (hi - lo) / 255
			binary.LittleEndian.PutUint32(dst, float32bits(scale))
			binary.LittleEndian.PutUint32(dst[4:], float32bits(lo))
			for j, v := range row {
				q := 0
				if scale > 0 {
					q = int((v-lo)/scale + 0.5)
				}
				if q > 255 {
					q = 255
				}
				dst[8+j] = byte(q)
			}
		default:
			for j, v := range row {
				binary.LittleEndian.PutUint64(dst[8*j:], float64bits(v))
			}
		}
	}
	return buf
}

func encodeHeader(h *header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, magic)
	p := len(magic)
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[p:], v)
		p += 8
	}
	put(uint64(h.nGraphs))
	put(uint64(h.embDim))
	put(uint64(h.embCode))
	put(uint64(h.adjStride))
	for _, s := range h.sections {
		put(s.off)
		put(s.length)
		put(s.crc)
	}
	return buf
}
