package lanstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lansearch/lan/internal/dataset"
)

func testData(t *testing.T) *SnapshotData {
	t.Helper()
	db := dataset.Spec{Name: "AIDS", Kind: dataset.KindMolecule, Graphs: 40, AvgNodes: 9,
		AvgEdges: 10, NumLabels: 3, LabelSkew: 0.3, ClusterSize: 8, MaxMutations: 3, Seed: 11}.Generate()
	adj := make([][]int, len(db))
	for i := range adj {
		for _, d := range []int{1, 2, 5} {
			if j := (i + d) % len(db); j != i {
				adj[i] = append(adj[i], j)
			}
		}
		insertionSort(adj[i])
	}
	// Symmetrize so the rows form a valid PG.
	sym := make([]map[int]bool, len(db))
	for i := range sym {
		sym[i] = make(map[int]bool)
	}
	for i, ns := range adj {
		for _, j := range ns {
			sym[i][j] = true
			sym[j][i] = true
		}
	}
	for i := range adj {
		adj[i] = adj[i][:0]
		for j := 0; j < len(db); j++ {
			if sym[i][j] {
				adj[i] = append(adj[i], j)
			}
		}
	}
	emb := make([][]float64, len(db))
	for i := range emb {
		emb[i] = []float64{float64(i) * 0.25, -1.5, 3.14159e-3 * float64(i%7), 42}
	}
	return &SnapshotData{Meta: []byte(`{"hello":"world"}`), DB: db, Adj: adj, Emb: emb}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func writeOpen(t *testing.T, d *SnapshotData) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.lan")
	if err := Write(path, d); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	for _, quant := range []Quant{QuantF64, QuantF32, QuantInt8} {
		t.Run(string(quant), func(t *testing.T) {
			d := testData(t)
			d.Quant = quant
			s := writeOpen(t, d)

			if got := string(s.Meta()); got != string(d.Meta) {
				t.Fatalf("meta %q != %q", got, d.Meta)
			}
			if s.Len() != len(d.DB) {
				t.Fatalf("len %d != %d", s.Len(), len(d.DB))
			}
			if s.Quant() != quant {
				t.Fatalf("quant %q != %q", s.Quant(), quant)
			}
			if err := s.VerifyPayload(); err != nil {
				t.Fatalf("payload: %v", err)
			}

			// Graphs decode exactly (labels + adjacency + edge count).
			for i, want := range d.DB {
				got := s.Graph(i)
				if !got.Equal(want) || got.ID != want.ID {
					t.Fatalf("graph %d decode mismatch: %v vs %v", i, got, want)
				}
			}
			db2, err := s.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if err := db2.Validate(); err != nil {
				t.Fatal(err)
			}

			// Adjacency round-trips.
			adj := s.Adjacency()
			for i, want := range d.Adj {
				got := adj[i]
				if len(got) != len(want) {
					t.Fatalf("adj %d: %v != %v", i, got, want)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("adj %d: %v != %v", i, got, want)
					}
				}
			}
			if !reflect.DeepEqual(s.AdjacencyCopy(), d.Adj) {
				t.Fatal("AdjacencyCopy mismatch")
			}

			// Embeddings: f64 exact; quantized within encoding error.
			tol := 0.0
			switch quant {
			case QuantF32:
				tol = 1e-5
			case QuantInt8:
				tol = 1.0 // (hi-lo)/255 * safety; rows here span ~45
			}
			var buf []float64
			for i, want := range d.Emb {
				buf = s.NodeEmbedding(i, buf)
				if len(buf) != len(want) {
					t.Fatalf("emb %d: dim %d != %d", i, len(buf), len(want))
				}
				for j := range want {
					diff := buf[j] - want[j]
					if diff < 0 {
						diff = -diff
					}
					if quant == QuantF64 && diff != 0 {
						t.Fatalf("emb %d[%d]: %v != %v (must be exact)", i, j, buf[j], want[j])
					}
					if diff > tol {
						t.Fatalf("emb %d[%d]: %v vs %v beyond tol %v", i, j, buf[j], want[j], tol)
					}
				}
			}
			mat := s.EmbeddingsFloat64()
			if quant == QuantF64 && !reflect.DeepEqual(mat, d.Emb) {
				t.Fatal("EmbeddingsFloat64 not exact in f64 mode")
			}
		})
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("got %v, want ErrNotSnapshot", err)
	}
}

func TestOpenRejectsFutureVersion(t *testing.T) {
	d := testData(t)
	path := filepath.Join(t.TempDir(), "snap.lan")
	if err := Write(path, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(magicPrefix)] = '9'
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("got %v, want ErrFutureVersion", err)
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	d := testData(t)
	path := filepath.Join(t.TempDir(), "snap.lan")
	if err := Write(path, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{len(magic) + 3, headerSize - 1, headerSize + 16, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(path)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	d := testData(t)
	path := filepath.Join(t.TempDir(), "snap.lan")
	if err := Write(path, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in every region; structural damage fails Open, payload
	// damage fails VerifyPayload — either way a named error, no panic.
	for probe := headerSize; probe < len(raw); probe += 64 {
		mut := append([]byte(nil), raw...)
		mut[probe] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err == nil {
			err = s.VerifyPayload()
			s.Close()
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", probe, err)
		}
	}
}
