//go:build linux

package lanstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned bool reports whether the
// bytes are a real mapping (and must go through unmapFile) as opposed to
// a heap read.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("%s: %w", path, ErrNotSnapshot)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("lanstore: mmap %s: %w", path, err)
	}
	return data, true, nil
}

func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
