package lanstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/obs"
)

func float32bits(v float64) uint32 { return math.Float32bits(float32(v)) }
func float64bits(v float64) uint64 { return math.Float64bits(v) }

// Store is an open v3 snapshot: a read-only view over the mapped (or, on
// platforms without mmap, fully read) file. It implements pg.GraphStore —
// candidate fetches decode graph segments on demand — and serves the
// base-layer adjacency and the M_rk embedding table from the mapping.
// All accessors are safe for concurrent readers.
type Store struct {
	data   []byte
	mapped bool
	h      header

	meta   []byte
	labels []string
	adj    [][]int // per-node views, aliased into data when possible
	offs   []uint64
	blob   []byte
	emb    []byte

	m *obs.StoreMetrics
}

// IsSnapshot reports whether path starts with the LANSNAP magic prefix
// — i.e. is a binary snapshot of some version (possibly one this build
// cannot read). Tools sniff this to pick the binary or the JSON loader.
func IsSnapshot(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, len(magicPrefix))
	n, err := io.ReadFull(f, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return string(buf[:n]) == magicPrefix, nil
}

// Open maps the v3 snapshot at path and validates its structure: magic
// and version, section table bounds and alignment, the checksums of the
// structural sections (meta, labels, adj, offs), segment-boundary
// monotonicity and adjacency-row shape. The payload sections are NOT
// checksummed here — call VerifyPayload before bulk-materializing, or
// rely on the per-fetch validation in graph.Assemble. Files without the
// LANSNAP magic fail with ErrNotSnapshot; newer format digits with
// ErrFutureVersion; everything else with ErrCorrupt.
func Open(path string) (*Store, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	s := &Store{data: data, mapped: mapped, m: obs.Store()}
	if err := s.init(); err != nil {
		s.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.m.Opens.Inc()
	s.m.MappedBytes.Add(int64(len(data)))
	return s, nil
}

func (s *Store) init() error {
	data := s.data
	if len(data) < len(magicPrefix) || string(data[:len(magicPrefix)]) != magicPrefix {
		return ErrNotSnapshot
	}
	if len(data) < headerSize {
		return corruptf("truncated header: %d bytes", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return fmt.Errorf("%w: file has version %q, this build reads %q",
			ErrFutureVersion, data[len(magicPrefix):len(magic)], magic[len(magicPrefix):])
	}
	h := &s.h
	p := len(magic)
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data[p:])
		p += 8
		return v
	}
	h.nGraphs = int(get())
	h.embDim = int(get())
	h.embCode = int(get())
	h.adjStride = int(get())
	for i := range h.sections {
		h.sections[i].off = get()
		h.sections[i].length = get()
		h.sections[i].crc = get()
	}
	if h.nGraphs <= 0 {
		return corruptf("header declares %d graphs", h.nGraphs)
	}
	if h.embCode != embF64 && h.embCode != embF32 && h.embCode != embInt8 {
		return corruptf("unknown embedding encoding %d", h.embCode)
	}
	if h.adjStride < 1 {
		return corruptf("adjacency stride %d", h.adjStride)
	}
	for i, sec := range h.sections {
		if sec.off < uint64(headerSize) || sec.off > uint64(len(data)) ||
			sec.length > uint64(len(data))-sec.off {
			return corruptf("section %d [%d,+%d) outside file of %d bytes", i, sec.off, sec.length, len(data))
		}
		if sec.off%8 != 0 {
			return corruptf("section %d misaligned at offset %d", i, sec.off)
		}
	}
	for _, i := range []int{secMeta, secLabels, secAdj, secOffs} {
		sec := h.sections[i]
		if crc := crc32.ChecksumIEEE(s.section(i)); uint64(crc) != sec.crc {
			return corruptf("section %d checksum mismatch (%08x != %08x)", i, crc, sec.crc)
		}
	}

	s.meta = s.section(secMeta)
	s.blob = s.section(secBlob)
	s.emb = s.section(secEmb)

	var err error
	if s.labels, err = decodeLabels(s.section(secLabels)); err != nil {
		return err
	}
	if got, want := h.sections[secOffs].length, uint64(8*(h.nGraphs+1)); got != want {
		return corruptf("offset section is %d bytes, want %d", got, want)
	}
	s.offs = aliasUint64s(s.section(secOffs))
	prev := uint64(0)
	for i, o := range s.offs {
		if o < prev || o > uint64(len(s.blob)) {
			return corruptf("graph segment boundary %d out of order (%d after %d, blob %d)", i, o, prev, len(s.blob))
		}
		prev = o
	}
	if s.offs[h.nGraphs] != uint64(len(s.blob)) {
		return corruptf("graph segments end at %d, blob is %d bytes", s.offs[h.nGraphs], len(s.blob))
	}

	if got, want := h.sections[secAdj].length, uint64(8*h.adjStride*h.nGraphs); got != want {
		return corruptf("adjacency section is %d bytes, want %d", got, want)
	}
	rows := aliasInts(s.section(secAdj))
	s.adj = make([][]int, h.nGraphs)
	for i := range s.adj {
		row := rows[i*h.adjStride : (i+1)*h.adjStride]
		deg := row[0]
		if deg < 0 || deg > h.adjStride-1 {
			return corruptf("adjacency row %d has degree %d (stride %d)", i, deg, h.adjStride)
		}
		s.adj[i] = row[1 : 1+deg]
	}

	if h.embDim > 0 {
		if got, want := h.sections[secEmb].length, uint64(embRowBytes(h.embCode, h.embDim)*h.nGraphs); got != want {
			return corruptf("embedding section is %d bytes, want %d", got, want)
		}
	}
	return nil
}

func (s *Store) section(i int) []byte {
	sec := s.h.sections[i]
	return s.data[sec.off : sec.off+sec.length]
}

func decodeLabels(b []byte) ([]string, error) {
	n, p := binary.Uvarint(b)
	if p <= 0 {
		return nil, corruptf("bad label count")
	}
	labels := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, q := binary.Uvarint(b[p:])
		if q <= 0 || uint64(len(b)-p-q) < l {
			return nil, corruptf("bad label %d length", i)
		}
		p += q
		labels = append(labels, string(b[p:p+int(l)]))
		p += int(l)
	}
	return labels, nil
}

// VerifyPayload checksums the graph-segment and embedding sections —
// the full-file integrity check Open defers so that opening a beyond-RAM
// snapshot does not page the whole mapping in. The RAM materialization
// path runs it before decoding.
func (s *Store) VerifyPayload() error {
	for _, i := range []int{secBlob, secEmb} {
		sec := s.h.sections[i]
		if crc := crc32.ChecksumIEEE(s.section(i)); uint64(crc) != sec.crc {
			return corruptf("section %d checksum mismatch (%08x != %08x)", i, crc, sec.crc)
		}
	}
	return nil
}

// Close releases the mapping. Graphs fetched earlier remain valid (they
// are decoded copies); adjacency and embedding views do not.
func (s *Store) Close() error {
	if s.data == nil {
		return nil
	}
	data, mapped := s.data, s.mapped
	s.data, s.adj, s.offs, s.blob, s.emb, s.meta = nil, nil, nil, nil, nil, nil
	if s.m != nil {
		s.m.MappedBytes.Add(-int64(len(data)))
	}
	if mapped {
		return unmapFile(data)
	}
	return nil
}

// Meta returns the opaque metadata section (internal/core's snapshot
// JSON). The slice views the mapping; do not retain past Close.
func (s *Store) Meta() []byte { return s.meta }

// Labels returns the snapshot's sorted distinct node labels — the
// persisted vocabulary.
func (s *Store) Labels() []string { return s.labels }

// Quant reports the embedding precision the snapshot was written with.
func (s *Store) Quant() Quant {
	switch s.h.embCode {
	case embF32:
		return QuantF32
	case embInt8:
		return QuantInt8
	default:
		return QuantF64
	}
}

// MappedBytes returns the size of the underlying file view.
func (s *Store) MappedBytes() int { return len(s.data) }

// Adjacency returns the base-layer proximity-graph adjacency as per-node
// views into the mapping (decoded copies on platforms that cannot alias).
// Rows must not be modified and do not survive Close.
func (s *Store) Adjacency() [][]int { return s.adj }

// AdjacencyCopy returns a heap copy of the adjacency that survives Close
// — the RAM materialization path.
func (s *Store) AdjacencyCopy() [][]int {
	out := make([][]int, len(s.adj))
	for i, ns := range s.adj {
		out[i] = append(make([]int, 0, len(ns)), ns...)
	}
	return out
}

// Len implements pg.GraphStore.
func (s *Store) Len() int { return s.h.nGraphs }

// graphSegment returns the raw varint segment of graph id.
//
//lan:hotpath
func (s *Store) graphSegment(id int) []byte {
	return s.blob[s.offs[id]:s.offs[id+1]]
}

// Graph implements pg.GraphStore: it decodes graph id out of its blob
// segment. The decoded graph is a fresh heap object safe to retain.
func (s *Store) Graph(id int) *graph.Graph {
	g, err := s.decodeGraph(id)
	if err != nil {
		// Open validated the section structure and per-graph invariants
		// are re-checked by graph.Assemble; reaching this means the file
		// changed or rotted underneath the mapping. There is no error
		// channel in the fetch path, and serving a wrong graph would
		// silently corrupt results.
		panic(err) //lint:allow libpanic decode failure on a validated snapshot means on-disk corruption; wrong results would be worse than an abort
	}
	return g
}

// FetchGraphs implements pg.GraphStore: the candidate batch decodes as
// consecutive segment reads. Neighbor lists arrive id-sorted, so the
// segments read nearly sequentially within the blob.
func (s *Store) FetchGraphs(ids []int, dst []*graph.Graph) []*graph.Graph {
	bytes := uint64(0)
	for _, id := range ids {
		bytes += s.offs[id+1] - s.offs[id]
		dst = append(dst, s.Graph(id))
	}
	s.m.FetchBatches.Inc()
	s.m.GraphFetches.Add(uint64(len(ids)))
	s.m.GraphBytes.Add(bytes)
	return dst
}

func (s *Store) decodeGraph(id int) (*graph.Graph, error) {
	if id < 0 || id >= s.h.nGraphs {
		return nil, corruptf("graph id %d out of range (%d graphs)", id, s.h.nGraphs)
	}
	seg := s.graphSegment(id)
	p := 0
	next := func() (uint64, bool) {
		v, q := binary.Uvarint(seg[p:])
		if q <= 0 {
			return 0, false
		}
		p += q
		return v, true
	}
	n64, ok := next()
	if !ok {
		return nil, corruptf("graph %d: bad node count", id)
	}
	n := int(n64)
	labels := make([]string, n)
	for u := 0; u < n; u++ {
		li, ok := next()
		if !ok || li >= uint64(len(s.labels)) {
			return nil, corruptf("graph %d: bad label id for node %d", id, u)
		}
		labels[u] = s.labels[li]
	}
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		deg, ok := next()
		if !ok || deg > uint64(n) {
			return nil, corruptf("graph %d: bad degree for node %d", id, u)
		}
		ns := make([]int, deg)
		prev := -1
		for j := range ns {
			d, ok := next()
			if !ok {
				return nil, corruptf("graph %d: truncated adjacency of node %d", id, u)
			}
			prev += int(d) + 1
			ns[j] = prev
		}
		adj[u] = ns
	}
	if p != len(seg) {
		return nil, corruptf("graph %d: %d trailing segment bytes", id, len(seg)-p)
	}
	g, err := graph.Assemble(id, labels, adj)
	if err != nil {
		return nil, corruptf("graph %d: %v", id, err)
	}
	return g, nil
}

// DecodeAll materializes the whole database on the heap — the RAM
// storage mode. Unlike the per-fetch path it returns decode failures as
// errors.
func (s *Store) DecodeAll() (graph.Database, error) {
	db := make(graph.Database, s.h.nGraphs)
	for i := range db {
		g, err := s.decodeGraph(i)
		if err != nil {
			return nil, err
		}
		db[i] = g
	}
	return db, nil
}

// NodeEmbeddingCount implements models.NodeEmbeddingSource.
func (s *Store) NodeEmbeddingCount() int {
	if s.h.embDim == 0 {
		return 0
	}
	return s.h.nGraphs
}

// NodeEmbedding implements models.NodeEmbeddingSource: it serves the
// M_rk embedding row of graph id. Full-precision rows are aliased
// straight out of the mapping when the platform allows; quantized rows
// dequantize into buf (grown with the amortized self-growth append, so
// steady-state reads stay allocation-free).
//
//lan:hotpath
func (s *Store) NodeEmbedding(id int, buf []float64) []float64 {
	s.m.EmbeddingReads.Inc()
	dim := s.h.embDim
	stride := embRowBytes(s.h.embCode, dim)
	row := s.emb[stride*id : stride*(id+1)]
	switch s.h.embCode {
	case embF32:
		buf = buf[:0]
		for j := 0; j < dim; j++ {
			buf = append(buf, float64(math.Float32frombits(binary.LittleEndian.Uint32(row[4*j:]))))
		}
		return buf
	case embInt8:
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(row)))
		lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(row[4:])))
		buf = buf[:0]
		for j := 0; j < dim; j++ {
			buf = append(buf, lo+scale*float64(row[8+j]))
		}
		return buf
	default:
		if f := aliasFloat64s(row); f != nil {
			return f
		}
		buf = buf[:0]
		for j := 0; j < dim; j++ {
			buf = append(buf, math.Float64frombits(binary.LittleEndian.Uint64(row[8*j:])))
		}
		return buf
	}
}

// EmbeddingsFloat64 decodes the whole embedding table onto the heap —
// the RAM materialization path (nil when the snapshot carries none).
func (s *Store) EmbeddingsFloat64() [][]float64 {
	if s.h.embDim == 0 {
		return nil
	}
	out := make([][]float64, s.h.nGraphs)
	for i := range out {
		// Copy: the f64 path may return rows aliased into the mapping,
		// and materialized tables must survive Close.
		out[i] = append([]float64(nil), s.NodeEmbedding(i, nil)...)
	}
	return out
}
