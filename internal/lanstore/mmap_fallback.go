//go:build !linux

package lanstore

import (
	"fmt"
	"os"
)

// mapFile reads path fully into memory on platforms without the mmap
// fast path; the format and every accessor behave identically, the
// beyond-RAM property is simply not available.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) == 0 {
		return nil, false, fmt.Errorf("%s: %w", path, ErrNotSnapshot)
	}
	return data, false, nil
}

func unmapFile([]byte) error { return nil }
