package lanstore

import (
	"encoding/binary"
	"math/bits"
	"unsafe"
)

// canAlias reports whether fixed-width sections can be reinterpreted in
// place: the wire format is little-endian 64-bit, so aliasing needs a
// little-endian platform with 64-bit ints. Everywhere else the decode
// helpers fall back to copying.
var canAlias = bits.UintSize == 64 && isLittleEndian()

func isLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func aligned8(b []byte) bool {
	return len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// aliasInts reinterprets b as []int (wire: little-endian int64) without
// copying when the platform allows, else decodes a copy.
func aliasInts(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	if canAlias && aligned8(b) {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// aliasUint64s is aliasInts for []uint64.
func aliasUint64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if canAlias && aligned8(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// aliasFloat64s reinterprets b as []float64 without copying, or returns
// nil when the platform cannot alias (callers then decode into scratch).
//
//lan:hotpath
func aliasFloat64s(b []byte) []float64 {
	if !canAlias || !aligned8(b) {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
