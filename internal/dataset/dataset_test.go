package dataset

import (
	"math"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/pg"
)

func TestScaled(t *testing.T) {
	s := AIDS(0.01)
	if s.Graphs != 426 {
		t.Fatalf("AIDS@0.01 graphs = %d; want 426", s.Graphs)
	}
	if got := AIDS(0.0000001).Graphs; got != 2 {
		t.Fatalf("tiny scale graphs = %d; want floor 2", got)
	}
	if s.AvgNodes != 25.6 || s.NumLabels != 51 {
		t.Fatalf("scaling changed per-graph stats: %+v", s)
	}
}

func TestGenerateMatchesTableIStatistics(t *testing.T) {
	cases := []struct {
		spec      Spec
		tolNodes  float64
		tolLabels int
	}{
		{AIDS(0.01), 0.2, 15},
		{LINUX(0.01), 0.2, 10},
		{PubChem(0.02), 0.2, 3},
		{SYN(0.0005), 0.25, 2},
	}
	for _, c := range cases {
		db := c.spec.Generate()
		if len(db) != c.spec.Graphs {
			t.Fatalf("%s: %d graphs; want %d", c.spec.Name, len(db), c.spec.Graphs)
		}
		st := db.Stats()
		if rel := math.Abs(st.AvgNodes-c.spec.AvgNodes) / c.spec.AvgNodes; rel > c.tolNodes {
			t.Errorf("%s: avg |V| = %.1f; spec %.1f (rel err %.2f)", c.spec.Name, st.AvgNodes, c.spec.AvgNodes, rel)
		}
		if st.NumLabels > c.spec.NumLabels {
			t.Errorf("%s: %d labels > alphabet %d", c.spec.Name, st.NumLabels, c.spec.NumLabels)
		}
		if st.NumLabels < c.spec.NumLabels-c.tolLabels {
			t.Errorf("%s: only %d labels materialized of %d", c.spec.Name, st.NumLabels, c.spec.NumLabels)
		}
		for _, g := range db {
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: invalid graph: %v", c.spec.Name, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := AIDS(0.005).Generate()
	b := AIDS(0.005).Generate()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("graph %d differs between runs", i)
		}
	}
}

func TestGenerateHasClusterStructure(t *testing.T) {
	// Graphs inside a cluster must be much closer than across clusters.
	spec := AIDS(0.005)
	db := spec.Generate()
	metric := ged.MetricFunc(ged.Hungarian)
	intra := metric.Distance(db[0], db[1]) // same cluster (seed + first mutant)
	inter := 0.0
	for i := 0; i < 5; i++ {
		inter += metric.Distance(db[0], db[len(db)-1-i*spec.ClusterSize])
	}
	inter /= 5
	if intra >= inter {
		t.Fatalf("no cluster structure: intra %v >= inter %v", intra, inter)
	}
}

func TestWorkloadAndSplit(t *testing.T) {
	spec := AIDS(0.003)
	db := spec.Generate()
	queries := Workload(db, spec, 40, 7)
	if len(queries) != 40 {
		t.Fatalf("workload size %d", len(queries))
	}
	for i, q := range queries {
		if q.ID != -1 {
			t.Fatalf("query %d has database ID %d", i, q.ID)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
	}
	train, val, test := Split(queries)
	if len(train) != 24 || len(val) != 8 || len(test) != 8 {
		t.Fatalf("split = %d/%d/%d", len(train), len(val), len(test))
	}
}

func TestBruteForceKNNAndRecall(t *testing.T) {
	spec := AIDS(0.002)
	db := spec.Generate()
	q := Workload(db, spec, 1, 3)[0]
	metric := ged.MetricFunc(ged.Hungarian)
	truth := BruteForceKNN(db, q, metric, 5)
	if len(truth) != 5 {
		t.Fatalf("truth size %d", len(truth))
	}
	for i := 1; i < len(truth); i++ {
		if truth[i-1].Dist > truth[i].Dist {
			t.Fatalf("truth not sorted: %v", truth)
		}
	}
	if Recall(truth, truth) != 1 {
		t.Fatalf("self recall != 1")
	}
	// Replacing the last element with a far node drops recall unless tied.
	worse := append(append([]pg.Result(nil), truth[:4]...), pg.Result{ID: -99, Dist: truth[4].Dist + 100})
	if r := Recall(worse, truth); r != 0.8 {
		t.Fatalf("recall = %v; want 0.8", r)
	}
	// A different id at the same k-th distance counts as a hit.
	tied := append(append([]pg.Result(nil), truth[:4]...), pg.Result{ID: -99, Dist: truth[4].Dist})
	if r := Recall(tied, truth); r != 1 {
		t.Fatalf("tied recall = %v; want 1", r)
	}
	if Recall(nil, nil) != 1 {
		t.Fatalf("empty recall != 1")
	}
}

func TestComputeGroundTruthParallelMatchesSequential(t *testing.T) {
	spec := SYN(0.00003)
	db := spec.Generate()
	queries := Workload(db, spec, 6, 11)
	metric := ged.MetricFunc(ged.VJ)
	gts := ComputeGroundTruth(db, queries, metric, 3)
	if len(gts) != 6 {
		t.Fatalf("%d ground truths", len(gts))
	}
	for i, gt := range gts {
		want := BruteForceKNN(db, queries[i], metric, 3)
		for j := range want {
			if gt.Results[j] != want[j] {
				t.Fatalf("query %d: parallel %v != sequential %v", i, gt.Results, want)
			}
		}
	}
}

func TestShards(t *testing.T) {
	db := SYN(0.00005).Generate()
	shards := Shards(db, 4)
	if len(shards) != 4 {
		t.Fatalf("%d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
		for i, g := range s {
			if g.ID != i {
				t.Fatalf("shard graph has ID %d at position %d", g.ID, i)
			}
		}
	}
	if total != len(db) {
		t.Fatalf("shards hold %d graphs; want %d", total, len(db))
	}
	// Original db IDs untouched (clones were used).
	for i, g := range db {
		if g.ID != i {
			t.Fatalf("original db mutated at %d", i)
		}
	}
	// Degenerate m.
	if got := Shards(db, 0); len(got) != 1 {
		t.Fatalf("Shards(db, 0) = %d shards", len(got))
	}
}

func TestLabelsAlphabet(t *testing.T) {
	s := PubChem(1)
	labels := s.Labels()
	if len(labels) != 10 || labels[0] != "L00" || labels[9] != "L09" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestGraphKinds(t *testing.T) {
	for _, spec := range []Spec{AIDS(0.001), LINUX(0.001), SYN(0.00002)} {
		db := spec.Generate()
		if len(db) < 2 {
			t.Fatalf("%s too small", spec.Name)
		}
		for _, g := range db {
			if !g.IsConnected() {
				t.Fatalf("%s generated a disconnected graph", spec.Name)
			}
		}
	}
	_ = graph.Database{}
}
