// Package dataset generates the synthetic stand-ins for the paper's
// benchmark datasets (Table I) and the query workloads, ground truths and
// shards the experiments need. The real AIDS/LINUX/PUBCHEM extracts are
// proprietary, so each simulator matches the published statistics — graph
// count (down-scaled by a configurable factor), average node and edge
// counts, label alphabet size and skew — and plants cluster structure by
// deriving most graphs from mutated seeds, which is what gives the GED
// landscape the neighborhoods that proximity-graph routing exploits.
package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/order"
	"github.com/lansearch/lan/internal/pg"
)

// Kind selects the structural family of a synthetic dataset.
type Kind int

// Structural families.
const (
	// KindMolecule produces tree-plus-rings molecule skeletons (AIDS,
	// PUBCHEM).
	KindMolecule Kind = iota
	// KindCFG produces control-flow-graph-like chains with branches
	// (LINUX).
	KindCFG
	// KindRandom produces connected random graphs (SYN).
	KindRandom
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name      string
	Kind      Kind
	Graphs    int
	AvgNodes  float64
	AvgEdges  float64
	NumLabels int
	// LabelSkew in [0,1): higher concentrates mass on few labels (as in
	// molecule datasets dominated by C/N/O).
	LabelSkew float64
	// ClusterSize is the number of graphs derived from each seed graph
	// (>= 1). Larger values plant denser GED neighborhoods.
	ClusterSize int
	// MaxMutations bounds the edit operations applied to derive a cluster
	// member from its seed.
	MaxMutations int
	Seed         int64
}

// Table I of the paper, reproduced at scale 1.0. Use Scaled to shrink.
var (
	aidsFull    = Spec{Name: "AIDS", Kind: KindMolecule, Graphs: 42687, AvgNodes: 25.6, AvgEdges: 27.5, NumLabels: 51, LabelSkew: 0.35, ClusterSize: 16, MaxMutations: 6, Seed: 4201}
	linuxFull   = Spec{Name: "LINUX", Kind: KindCFG, Graphs: 47239, AvgNodes: 35.5, AvgEdges: 37.7, NumLabels: 36, LabelSkew: 0.2, ClusterSize: 16, MaxMutations: 6, Seed: 4202}
	pubchemFull = Spec{Name: "PUBCHEM", Kind: KindMolecule, Graphs: 22794, AvgNodes: 48.2, AvgEdges: 50.8, NumLabels: 10, LabelSkew: 0.45, ClusterSize: 16, MaxMutations: 8, Seed: 4203}
	synFull     = Spec{Name: "SYN", Kind: KindRandom, Graphs: 1000000, AvgNodes: 10.1, AvgEdges: 15.9, NumLabels: 5, LabelSkew: 0.1, ClusterSize: 20, MaxMutations: 4, Seed: 4204}
)

// AIDS returns the AIDS simulator at the given scale in (0, 1].
func AIDS(scale float64) Spec { return aidsFull.Scaled(scale) }

// LINUX returns the LINUX simulator at the given scale.
func LINUX(scale float64) Spec { return linuxFull.Scaled(scale) }

// PubChem returns the PUBCHEM simulator at the given scale.
func PubChem(scale float64) Spec { return pubchemFull.Scaled(scale) }

// SYN returns the SYN simulator at the given scale. The paper itself only
// ever uses 20%-100% of SYN.
func SYN(scale float64) Spec { return synFull.Scaled(scale) }

// Scaled returns a copy of s with the graph count multiplied by scale
// (minimum 2 graphs); all per-graph statistics are preserved.
func (s Spec) Scaled(scale float64) Spec {
	out := s
	n := int(float64(s.Graphs) * scale)
	if n < 2 {
		n = 2
	}
	out.Graphs = n
	base := s.Name
	if i := strings.IndexByte(base, '@'); i >= 0 {
		base = base[:i]
	}
	out.Name = fmt.Sprintf("%s@%.3g", base, scale)
	return out
}

// Labels returns the dataset's label alphabet.
func (s Spec) Labels() []string {
	labels := make([]string, s.NumLabels)
	for i := range labels {
		labels[i] = fmt.Sprintf("L%02d", i)
	}
	return labels
}

// Generate materializes the dataset.
func (s Spec) Generate() graph.Database {
	if s.ClusterSize < 1 {
		s.ClusterSize = 1
	}
	gen := graph.NewGenerator(s.Seed)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	labels := s.Labels()
	gs := make([]*graph.Graph, 0, s.Graphs)
	for len(gs) < s.Graphs {
		seedGraph := s.newSeed(gen, rng, labels)
		gs = append(gs, seedGraph)
		for i := 1; i < s.ClusterSize && len(gs) < s.Graphs; i++ {
			ops := 1 + rng.Intn(s.MaxMutations)
			gs = append(gs, gen.Mutate(seedGraph, ops, labels))
		}
	}
	return graph.NewDatabase(gs)
}

// newSeed draws one cluster-seed graph with size jittered around the
// dataset averages.
func (s Spec) newSeed(gen *graph.Generator, rng *rand.Rand, labels []string) *graph.Graph {
	n := jitter(rng, s.AvgNodes)
	extraEdges := int(s.AvgEdges-s.AvgNodes+1) + rng.Intn(3)
	if extraEdges < 0 {
		extraEdges = 0
	}
	switch s.Kind {
	case KindMolecule:
		return gen.MoleculeLike(n, extraEdges, labels, s.LabelSkew)
	case KindCFG:
		return gen.CFGLike(n, labels, s.LabelSkew)
	default:
		m := jitter(rng, s.AvgEdges)
		return gen.RandomConnected(n, m, labels, s.LabelSkew)
	}
}

// jitter draws an integer around avg with +-25% spread, at least 2.
func jitter(rng *rand.Rand, avg float64) int {
	v := int(avg * (0.75 + rng.Float64()*0.5))
	if v < 2 {
		v = 2
	}
	return v
}

// Workload draws n query graphs following the paper's protocol of
// sampling the workload from the database distribution: each query is a
// random database member with at most two edit operations applied (ID -1),
// so queries sit inside existing GED neighborhoods just as sampled
// database graphs do.
func Workload(db graph.Database, spec Spec, n int, seed int64) []*graph.Graph {
	gen := graph.NewGenerator(seed)
	rng := rand.New(rand.NewSource(seed ^ 0xabcd))
	labels := spec.Labels()
	out := make([]*graph.Graph, n)
	for i := range out {
		base := db[rng.Intn(len(db))]
		out[i] = gen.Mutate(base, rng.Intn(3), labels)
	}
	return out
}

// QuerySpec pins one workload query: the database member it perturbs,
// the number of edit operations, and a private generator seed. A stored
// list of specs regenerates the exact same query graphs run after run —
// independent of each other and of any later change to how Workload
// samples — which is what keeps benchmark numbers comparable across
// commits (see testdata/bench_queries.json and scripts/bench-diff).
type QuerySpec struct {
	Base int   `json:"base"`
	Ops  int   `json:"ops"`
	Seed int64 `json:"seed"`
}

// SampleQuerySpecs draws n query specs with Workload's base-id and
// op-count distributions, giving each query its own derived seed so it
// can be regenerated in isolation.
func SampleQuerySpecs(dbLen, n int, seed int64) []QuerySpec {
	rng := rand.New(rand.NewSource(seed ^ 0xabcd))
	out := make([]QuerySpec, n)
	for i := range out {
		out[i] = QuerySpec{
			Base: rng.Intn(dbLen),
			Ops:  rng.Intn(3),
			Seed: seed + int64(uint64(0x9e3779b97f4a7c15)*uint64(i+1)),
		}
	}
	return out
}

// FixedWorkload materializes a pinned query set over db (ID -1, like
// Workload). It fails when a base id is out of range — the specs were
// pinned against a different dataset size — so callers can fall back to
// fresh sampling instead of silently benchmarking the wrong queries.
func FixedWorkload(db graph.Database, spec Spec, qs []QuerySpec) ([]*graph.Graph, error) {
	labels := spec.Labels()
	out := make([]*graph.Graph, len(qs))
	for i, q := range qs {
		if q.Base < 0 || q.Base >= len(db) {
			return nil, fmt.Errorf("dataset: fixed query %d: base id %d out of range for %d graphs (query set pinned at a different scale?)", i, q.Base, len(db))
		}
		if q.Ops < 0 {
			return nil, fmt.Errorf("dataset: fixed query %d: negative op count", i)
		}
		gen := graph.NewGenerator(q.Seed)
		out[i] = gen.Mutate(db[q.Base], q.Ops, labels)
	}
	return out, nil
}

// Split partitions a workload 6:2:2 into train, validation and test sets,
// following the paper's protocol.
func Split(queries []*graph.Graph) (train, val, test []*graph.Graph) {
	n := len(queries)
	t1 := n * 6 / 10
	t2 := n * 8 / 10
	return queries[:t1], queries[t1:t2], queries[t2:]
}

// GroundTruth holds the exact (protocol) k-NNs of one query.
type GroundTruth struct {
	Query   *graph.Graph
	Results []pg.Result
}

// ComputeGroundTruth brute-forces the k-NNs of every query under metric,
// in parallel. This is the paper's ground-truth protocol when metric is a
// ged.Ensemble.
func ComputeGroundTruth(db graph.Database, queries []*graph.Graph, metric ged.Metric, k int) []GroundTruth {
	out := make([]GroundTruth, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q *graph.Graph) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = GroundTruth{Query: q, Results: BruteForceKNN(db, q, metric, k)}
		}(i, q)
	}
	wg.Wait()
	return out
}

// BruteForceKNN scans the whole database for the k nearest neighbors of q.
func BruteForceKNN(db graph.Database, q *graph.Graph, metric ged.Metric, k int) []pg.Result {
	res := make([]pg.Result, len(db))
	for i, g := range db {
		res[i] = pg.Result{ID: i, Dist: metric.Distance(g, q)}
	}
	sort.Slice(res, func(i, j int) bool {
		return order.ByDistThenID(res[i].Dist, res[i].ID, res[j].Dist, res[j].ID)
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Recall returns |got ∩ truth| / |truth| — the paper's recall@k. Ties at
// the k-th distance are treated as hits, as is standard when the true k-th
// distance is not unique.
func Recall(got, truth []pg.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	truthSet := make(map[int]bool, len(truth))
	kthDist := truth[len(truth)-1].Dist
	for _, r := range truth {
		truthSet[r.ID] = true
	}
	hits := 0
	for _, r := range got {
		if truthSet[r.ID] || r.Dist <= kthDist {
			hits++
		}
	}
	if hits > len(truth) {
		hits = len(truth)
	}
	return float64(hits) / float64(len(truth))
}

// Shards splits db into m near-equal contiguous sub-databases with
// re-assigned dense IDs (cloning the member graphs), following the
// paper's scalability protocol of sequential search over equal shards.
func Shards(db graph.Database, m int) []graph.Database {
	if m < 1 {
		m = 1
	}
	out := make([]graph.Database, 0, m)
	per := (len(db) + m - 1) / m
	for start := 0; start < len(db); start += per {
		end := start + per
		if end > len(db) {
			end = len(db)
		}
		part := make([]*graph.Graph, 0, end-start)
		for _, g := range db[start:end] {
			part = append(part, g.Clone())
		}
		out = append(out, graph.NewDatabase(part))
	}
	return out
}
