package core

import (
	"bytes"
	"sync"
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/models"
)

var engineFixture struct {
	once sync.Once
	eng  *Engine
	spec dataset.Spec
	db   graph.Database
	test []*graph.Graph
	err  error
}

// buildEngine makes a small trained engine, shared across tests (the
// engine is read-only at query time).
func buildEngine(t *testing.T) (*Engine, dataset.Spec, graph.Database, []*graph.Graph) {
	t.Helper()
	f := &engineFixture
	f.once.Do(func() {
		// In -short mode a smaller database and fewer training epochs keep
		// the shared build under a couple of seconds; tests that assert
		// search quality (recall, IS comparisons) skip themselves instead,
		// since those bounds only hold at the full fixture scale.
		scale, nq, epochs := 0.004, 40, 8
		if testing.Short() {
			scale, nq, epochs = 0.001, 12, 2
		}
		f.spec = dataset.AIDS(scale)
		f.db = f.spec.Generate()
		queries := dataset.Workload(f.db, f.spec, nq, 5)
		train, _, test := dataset.Split(queries)
		f.test = test
		f.eng, f.err = Build(f.db, train, Options{
			M: 5, Dim: 8, GammaKNN: 5,
			Train: models.TrainOptions{Epochs: epochs, LR: 0.01},
			Seed:  1,
		})
	})
	if f.err != nil {
		t.Fatalf("Build: %v", f.err)
	}
	return f.eng, f.spec, f.db, f.test
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Options{}); err == nil {
		t.Fatal("no error for empty database")
	}
	db := dataset.AIDS(0.0005).Generate()
	if _, err := Build(db, nil, Options{}); err == nil {
		t.Fatal("no error for empty training set")
	}
}

func TestSearchAllStrategiesReturnResults(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: routes every strategy over the full engine (~30s)")
	}
	eng, _, db, test := buildEngine(t)
	q := test[0]
	for _, is := range []InitialStrategy{LANIS, HNSWIS, RandIS} {
		for _, rt := range []RoutingStrategy{LANRoute, BaselineRoute, OracleRoute} {
			res, stats := eng.Search(q, SearchOptions{K: 5, Beam: 12, Initial: is, Routing: rt})
			if len(res) != 5 {
				t.Fatalf("is=%d rt=%d: %d results", is, rt, len(res))
			}
			if stats.NDC <= 0 || stats.Total <= 0 {
				t.Fatalf("is=%d rt=%d: stats %+v", is, rt, stats)
			}
			for i, r := range res {
				if r.ID < 0 || r.ID >= len(db) {
					t.Fatalf("result id out of range: %v", r)
				}
				if i > 0 && res[i-1].Dist > r.Dist {
					t.Fatalf("results unsorted: %v", res)
				}
			}
		}
	}
}

func TestSearchRecallAgainstBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: computes brute-force ground truth (~28s)")
	}
	eng, _, db, test := buildEngine(t)
	var recall float64
	for _, q := range test {
		truth := dataset.BruteForceKNN(db, q, eng.Opts.QueryMetric, 5)
		res, _ := eng.Search(q, SearchOptions{K: 5, Beam: 20})
		recall += dataset.Recall(res, truth)
	}
	recall /= float64(len(test))
	if recall < 0.7 {
		t.Fatalf("recall@5 = %.3f < 0.7", recall)
	}
	t.Logf("LAN recall@5 = %.3f over %d queries", recall, len(test))
}

func TestRoutingNDCOrdering(t *testing.T) {
	// At unit-test scale the oracle pruning must strictly beat the
	// baseline; the learned ranker must stay in the same ballpark (its
	// full margin needs the benchmark-scale neighborhoods, cf. Fig. 6).
	eng, _, _, test := buildEngine(t)
	var lanNDC, oracleNDC, baseNDC int
	for _, q := range test {
		_, s1 := eng.Search(q, SearchOptions{K: 5, Beam: 16, Initial: HNSWIS, Routing: LANRoute})
		_, s2 := eng.Search(q, SearchOptions{K: 5, Beam: 16, Initial: HNSWIS, Routing: BaselineRoute})
		_, s3 := eng.Search(q, SearchOptions{K: 5, Beam: 16, Initial: HNSWIS, Routing: OracleRoute})
		lanNDC += s1.NDC
		baseNDC += s2.NDC
		oracleNDC += s3.NDC
	}
	if oracleNDC >= baseNDC {
		t.Fatalf("oracle np_route NDC %d >= baseline %d", oracleNDC, baseNDC)
	}
	if float64(lanNDC) > 1.2*float64(baseNDC) {
		t.Fatalf("learned np_route NDC %d far above baseline %d", lanNDC, baseNDC)
	}
	t.Logf("NDC: LAN_Route %d, oracle %d, baseline %d", lanNDC, oracleNDC, baseNDC)
}

func TestLANISBeatsRandIS(t *testing.T) {
	// Fig. 7's shape at unit scale: the learned initial selection must
	// dominate the random one on recall at equal beam.
	eng, _, db, test := buildEngine(t)
	var lanRecall, randRecall float64
	for _, q := range test {
		truth := dataset.BruteForceKNN(db, q, eng.Opts.QueryMetric, 5)
		r1, _ := eng.Search(q, SearchOptions{K: 5, Beam: 16, Initial: LANIS, Routing: LANRoute})
		r2, _ := eng.Search(q, SearchOptions{K: 5, Beam: 16, Initial: RandIS, Routing: LANRoute})
		lanRecall += dataset.Recall(r1, truth)
		randRecall += dataset.Recall(r2, truth)
	}
	if lanRecall < randRecall {
		t.Fatalf("LAN_IS recall %.3f < Rand_IS %.3f", lanRecall, randRecall)
	}
	t.Logf("recall sums: LAN_IS %.2f vs Rand_IS %.2f over %d queries", lanRecall, randRecall, len(test))
}

func TestModelTimeAccounting(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	_, stats := eng.Search(test[1], SearchOptions{K: 5, Beam: 12, Initial: LANIS, Routing: LANRoute})
	if stats.ModelTime <= 0 {
		t.Fatalf("no model time recorded: %+v", stats)
	}
	if stats.DistTime <= 0 {
		t.Fatalf("no distance time recorded: %+v", stats)
	}
	if stats.Total < stats.ModelTime || stats.Total < stats.DistTime {
		t.Fatalf("inconsistent breakdown: %+v", stats)
	}
	if stats.ISPredictions <= 0 {
		t.Fatalf("LANIS made no predictions: %+v", stats)
	}
}

func TestSearchDeterministic(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	q := test[2]
	r1, _ := eng.Search(q, SearchOptions{K: 5, Beam: 12})
	r2, _ := eng.Search(q, SearchOptions{K: 5, Beam: 12})
	if len(r1) != len(r2) {
		t.Fatalf("different result counts")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic search: %v vs %v", r1, r2)
		}
	}
}

func TestPseudoRandomEntryStableAndInRange(t *testing.T) {
	gen := graph.NewGenerator(3)
	q := gen.MoleculeLike(10, 1, []string{"A", "B"}, 0.3)
	a := pseudoRandomEntry(q, 100)
	b := pseudoRandomEntry(q, 100)
	if a != b {
		t.Fatalf("unstable: %d vs %d", a, b)
	}
	if a < 0 || a >= 100 {
		t.Fatalf("out of range: %d", a)
	}
	q2 := gen.MoleculeLike(11, 1, []string{"A", "B"}, 0.3)
	if pseudoRandomEntry(q2, 100) == a {
		t.Logf("collision between different queries (allowed but noted)")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.defaults(1000)
	if o.M != 8 || o.EfConstruction != 16 || o.Layers != 2 || o.Dim != 16 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Clusters != 62 {
		t.Fatalf("clusters default = %d; want 1000/16", o.Clusters)
	}
	o2 := Options{}
	o2.defaults(10)
	if o2.Clusters != 2 {
		t.Fatalf("cluster floor = %d", o2.Clusters)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	eng, _, db, test := buildEngine(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(db, &buf, Options{QueryMetric: eng.Opts.QueryMetric})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.GammaStar != eng.GammaStar {
		t.Fatalf("gammaStar %v != %v", loaded.GammaStar, eng.GammaStar)
	}
	// Loaded engine must answer queries identically.
	for _, q := range test[:3] {
		want, _ := eng.Search(q, SearchOptions{K: 5, Beam: 12})
		got, _ := loaded.Search(q, SearchOptions{K: 5, Beam: 12})
		if len(want) != len(got) {
			t.Fatalf("result count differs")
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("loaded engine diverges: %v vs %v", got, want)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	eng, _, db, _ := buildEngine(t)
	// Bad JSON.
	if _, err := Load(db, bytes.NewBufferString("{"), Options{}); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Database size mismatch.
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	short := db[:len(db)-1]
	if _, err := Load(short, &buf, Options{}); err == nil {
		t.Fatal("database mismatch accepted")
	}
}

func TestBasicISMatchesOptimizedQualityWithMorePredictions(t *testing.T) {
	// Sec. V-B1 vs V-B2: the exhaustive design makes O(|D|) predictions;
	// the cluster-pruned design makes far fewer at comparable entries.
	if testing.Short() {
		t.Skip("skipping in -short mode: cluster pruning only wins at full fixture scale")
	}
	eng, _, db, test := buildEngine(t)
	nq := 4
	if nq > len(test) {
		nq = len(test)
	}
	var optPreds, basicPreds int
	for _, q := range test[:nq] {
		_, s1 := eng.Search(q, SearchOptions{K: 5, Beam: 12, Initial: LANIS, Routing: LANRoute})
		_, s2 := eng.Search(q, SearchOptions{K: 5, Beam: 12, Initial: LANISBasic, Routing: LANRoute})
		optPreds += s1.ISPredictions
		basicPreds += s2.ISPredictions
	}
	if basicPreds != nq*len(db) {
		t.Fatalf("basic design made %d predictions; want %d", basicPreds, nq*len(db))
	}
	if optPreds >= basicPreds {
		t.Fatalf("optimized design not cheaper: %d >= %d", optPreds, basicPreds)
	}
	t.Logf("IS predictions: optimized %d vs basic %d", optPreds, basicPreds)
}

func TestConcurrentSearchesAreConsistent(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	q := test[0]
	want, _ := eng.Search(q, SearchOptions{K: 5, Beam: 12})

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := eng.Search(q, SearchOptions{K: 5, Beam: 12})
			if len(got) != len(want) {
				errs <- "length mismatch"
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- "result mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
