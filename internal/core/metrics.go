package core

import (
	"time"

	"github.com/lansearch/lan/internal/obs"
)

// recordQuery folds one successful query's stats into the process-wide
// registry (obs.Default()). Everything here is a handful of atomic adds;
// it runs on the query hot path and must stay allocation-free.
func recordQuery(stats *QueryStats) {
	m := obs.Query()
	m.Queries.Inc()
	m.NDCInitial.Add(uint64(stats.InitNDC))
	m.NDCRouting.Add(uint64(stats.RouteNDC))
	if stats.RankedNeighbors > 0 {
		m.PruningRatio.Observe(stats.PruneRate())
	}
	if stats.GammaSteps > 0 {
		m.GammaSteps.Observe(float64(stats.GammaSteps))
	}
	m.BatchesOpened.Add(uint64(stats.BatchesOpened))
	m.RankerCalls.Add(uint64(stats.RankerCalls))
	m.DistCacheHits.Add(uint64(stats.DistCacheHits))
	// Every distance computation is by definition a memo miss.
	m.DistCacheMisses.Add(uint64(stats.NDC))
}

// recordBuild folds one completed build into the registry.
func recordBuild(dbSize int, elapsed time.Duration) {
	m := obs.Build()
	m.Builds.Inc()
	m.Seconds.Observe(elapsed.Seconds())
	m.IndexGraphs.Set(int64(dbSize))
}
