package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/pg"
)

// snapshot is the JSON wire form of a built engine (without the database
// itself, which callers store separately, and without metrics, which are
// code).
type snapshot struct {
	Version   int     `json:"version"`
	GammaStar float64 `json:"gamma_star"`

	// Index.
	Adj   [][]int         `json:"adj"`
	Upper []map[int][]int `json:"upper"`
	Level []int           `json:"level"`
	Entry int             `json:"entry"`

	// Options needed to rebuild model shapes.
	M            int     `json:"m"`
	Layers       int     `json:"layers"`
	Dim          int     `json:"dim"`
	BatchPercent int     `json:"batch_percent"`
	Hidden       int     `json:"hidden"`
	UseCG        bool    `json:"use_cg"`
	TopClusters  int     `json:"top_clusters"`
	Samples      int     `json:"samples"`
	StepSize     float64 `json:"step_size"`
	Seed         int64   `json:"seed"`

	// Clustering.
	Centroids [][]float64 `json:"centroids"`
	Assign    []int       `json:"assign"`

	// Model parameters (each the output of nn.Params.Save).
	MrkParams json.RawMessage `json:"mrk_params"`
	MnhParams json.RawMessage `json:"mnh_params"`
	McParams  json.RawMessage `json:"mc_params"`

	// MrkNodeEmb holds M_rk's precomputed database embeddings. Optional:
	// snapshots written before this field (or with it stripped) load fine
	// — the embeddings are recomputed from the parameters at Load.
	MrkNodeEmb [][]float64 `json:"mrk_node_emb,omitempty"`

	// Mutation state (format version 2). An engine that was never
	// mutated serializes as version 1 without these fields, so
	// pre-mutation readers keep loading it.
	Epoch uint64   `json:"epoch,omitempty"`
	Born  []uint64 `json:"born,omitempty"`
	Died  []uint64 `json:"died,omitempty"`
}

// maxSnapshotVersion is the newest snapshot format this build can read:
// 1 is the original immutable form, 2 adds mutation state (epoch +
// per-graph validity stamps).
const maxSnapshotVersion = 2

// Save serializes everything needed to answer queries later: the
// proximity graph, the calibration, the clustering, and all trained model
// parameters. The database and the GED metrics are re-supplied at Load.
func (e *Engine) Save(w io.Writer) error { return e.SaveWithState(w, nil) }

// SaveWithState is Save carrying the mutable index's write-path state.
// A nil st (or one that never mutated: epoch 0) writes the version-1
// form, byte-compatible with pre-mutation readers; otherwise the
// snapshot is version 2 and includes the epoch and validity stamps.
func (e *Engine) SaveWithState(w io.Writer, st *MutationState) error {
	s := snapshot{
		Version:   1,
		GammaStar: e.GammaStar,
		Adj:       e.Index.PG.Adj,
		Upper:     e.Index.Upper,
		Level:     e.Index.Level,
		Entry:     e.Index.Entry,
		M:         e.Opts.M,
		Layers:    e.Opts.Layers, Dim: e.Opts.Dim,
		BatchPercent: e.Opts.BatchPercent, Hidden: e.Opts.Hidden,
		UseCG:       e.Opts.UseCG,
		TopClusters: e.Opts.TopClusters, Samples: e.Opts.Samples,
		StepSize:   e.Opts.StepSize,
		Seed:       e.Opts.Seed,
		Centroids:  e.Mc.Clusters().Centroids,
		Assign:     e.Mc.Clusters().Assign,
		MrkNodeEmb: e.Mrk.NodeEmbeddings(),
	}
	if st != nil && st.Epoch > 0 {
		s.Version = 2
		s.Epoch = st.Epoch
		s.Born = st.Born
		s.Died = st.Died
	}
	var err error
	if s.MrkParams, err = marshalParams(e.Mrk.Params); err != nil {
		return err
	}
	if s.MnhParams, err = marshalParams(e.Mnh.Params); err != nil {
		return err
	}
	if s.McParams, err = marshalParams(e.Mc.Params); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(s)
}

func marshalParams(p paramsSaver) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}

type paramsSaver interface {
	Save(io.Writer) error
	Load(io.Reader) error
}

// Load reconstructs a saved engine over db. opts supplies the metrics
// (and may override UseCG); all shape options come from the snapshot.
func Load(db graph.Database, r io.Reader, opts Options) (*Engine, error) {
	e, _, _, err := LoadWithState(db, r, opts)
	return e, err
}

// LoadWithState is Load that also returns the snapshot's mutation state
// (nil for version-1 snapshots, which predate the write path) and the
// format version it was stored at. Unknown future versions are rejected
// with a clear error instead of a garbage decode.
func LoadWithState(db graph.Database, r io.Reader, opts Options) (*Engine, *MutationState, int, error) {
	if err := db.Validate(); err != nil {
		return nil, nil, 0, fmt.Errorf("core: load: %w", err)
	}
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, nil, 0, fmt.Errorf("core: load: %w", err)
	}
	if s.Version < 1 || s.Version > maxSnapshotVersion {
		return nil, nil, 0, fmt.Errorf("core: unsupported snapshot version %d (this build reads versions 1-%d)", s.Version, maxSnapshotVersion)
	}
	var st *MutationState
	if s.Version >= 2 {
		if len(s.Born) != len(s.Adj) || len(s.Died) != len(s.Adj) {
			return nil, nil, 0, fmt.Errorf("core: load: %d/%d validity stamps for %d graphs", len(s.Born), len(s.Died), len(s.Adj))
		}
		st = &MutationState{Epoch: s.Epoch, Born: s.Born, Died: s.Died}
	}
	e, err := assembleEngine(db, &s, s.Adj, opts, assembly{})
	if err != nil {
		return nil, nil, 0, err
	}
	return e, st, s.Version, nil
}

// assembly carries the storage-dependent pieces of engine assembly. The
// JSON loader derives everything from the RAM database (zero value); the
// v3 snapshot loader substitutes vocab-built caches and — in mmap mode —
// an external graph store and embedding source over a husk database.
type assembly struct {
	// graphs overrides the candidate-fetch tier (nil → RAMStore over db).
	graphs pg.GraphStore
	// cgs overrides the compressed-GNN-graph cache (nil → scan db).
	cgs *models.CGStore
	// embedder overrides M_c's feature embedder (nil → scan db).
	embedder cluster.Embedder
	// nodeEmb supplies the M_rk table when the snapshot metadata carries
	// none (the v3 RAM path decodes it from the embedding section).
	nodeEmb [][]float64
	// embSrc serves the M_rk table externally (the v3 mmap path).
	embSrc models.NodeEmbeddingSource
	// huskDB marks db as a length-only husk of nil entries (mmap mode):
	// assembly must not dereference entries or fall back to db scans.
	huskDB bool
}

// assembleEngine rebuilds a ready engine from decoded snapshot metadata,
// the base-layer adjacency and the storage-dependent inputs in asm — the
// shared back half of the JSON and v3 loaders.
func assembleEngine(db graph.Database, s *snapshot, adj [][]int, opts Options, asm assembly) (*Engine, error) {
	if len(adj) != len(db) {
		return nil, fmt.Errorf("core: snapshot indexes %d graphs, database has %d", len(adj), len(db))
	}
	opts.M = s.M
	opts.Layers, opts.Dim = s.Layers, s.Dim
	opts.BatchPercent, opts.Hidden = s.BatchPercent, s.Hidden
	opts.UseCG = s.UseCG
	opts.TopClusters, opts.Samples = s.TopClusters, s.Samples
	opts.StepSize = s.StepSize
	opts.Seed = s.Seed
	opts.defaults(len(db))

	idx := &pg.HNSW{
		PG:    &pg.PG{DB: db, Adj: adj},
		Upper: s.Upper,
		Level: s.Level,
		Entry: s.Entry,
	}
	if err := idx.PG.Validate(); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}

	store := asm.cgs
	if store == nil {
		store = models.NewCGStore(db, opts.Layers, opts.UseCG)
	}
	graphs := asm.graphs
	if graphs == nil {
		graphs = pg.NewRAMStore(db)
	}
	mcfg := models.Config{
		Layers: opts.Layers, Dim: opts.Dim, BatchPercent: opts.BatchPercent,
		Hidden: opts.Hidden, GammaStar: s.GammaStar, Seed: opts.Seed,
	}
	e := &Engine{DB: db, Index: idx, Opts: opts, Graphs: graphs, Store: store, GammaStar: s.GammaStar}

	e.Mrk = models.NewNeighborRanker(mcfg, store)
	if err := e.Mrk.Params.Load(bytesReader(s.MrkParams)); err != nil {
		return nil, err
	}
	switch {
	case s.MrkNodeEmb != nil:
		if err := e.Mrk.SetNodeEmbeddings(s.MrkNodeEmb, len(db)); err != nil {
			return nil, err
		}
	case asm.nodeEmb != nil:
		if err := e.Mrk.SetNodeEmbeddings(asm.nodeEmb, len(db)); err != nil {
			return nil, err
		}
	case asm.embSrc != nil:
		e.Mrk.SetNodeEmbeddingSource(asm.embSrc)
	case !asm.huskDB:
		e.Mrk.PrecomputeNodeEmbeddings(db, opts.Workers)
	}
	e.Mnh = models.NewNeighborhoodModel(mcfg, store)
	if err := e.Mnh.Params.Load(bytesReader(s.MnhParams)); err != nil {
		return nil, err
	}

	km := &cluster.KMeans{Centroids: s.Centroids, Assign: s.Assign, Members: make([][]int, len(s.Centroids))}
	for i, c := range s.Assign {
		km.Members[c] = append(km.Members[c], i)
	}
	emb := asm.embedder
	if emb == nil {
		emb = cluster.NewFeatureEmbedder(db)
	}
	e.Mc = models.NewClusterModel(mcfg, emb, km)
	if err := e.Mc.Params.Load(bytesReader(s.McParams)); err != nil {
		return nil, err
	}
	return e, nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
