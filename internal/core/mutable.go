package core

import (
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/pg"
)

// MutationState is the write-path state a mutated engine carries beyond
// its immutable snapshot: the current epoch and per-graph validity
// stamps. It travels with version-2 persisted snapshots.
type MutationState struct {
	// Epoch is the number of applied mutations (0 = never mutated).
	Epoch uint64
	// Born[i] is the epoch graph i was inserted at (0 = original batch
	// build).
	Born []uint64
	// Died[i] is the epoch graph i was tombstoned at (0 = alive).
	Died []uint64
}

// SnapshotView assembles a read-only engine over pinned views of the
// mutable structures: the database header, the proximity graph (with
// its tombstone filter) and the model-side tables that grow with
// inserts (M_rk's node embeddings, M_c's clustering). Everything else —
// trained parameters, the CG store, γ* — is immutable after build and
// shared. The returned engine answers queries exactly like a freshly
// built one over the same data; it must not be mutated.
func (e *Engine) SnapshotView(db graph.Database, idx *pg.HNSW, embs [][]float64, km *cluster.KMeans) *Engine {
	view := *e
	view.DB = db
	view.Index = idx
	// A RAM-backed engine's store must follow the pinned database header;
	// an mmap store is immutable (the index is read-only) and is shared.
	if _, ram := e.Graphs.(pg.RAMStore); ram || e.Graphs == nil {
		view.Graphs = pg.NewRAMStore(db)
	}
	view.Mrk = e.Mrk.WithNodeEmbeddings(embs)
	view.Mc = e.Mc.WithClusters(km)
	return &view
}
