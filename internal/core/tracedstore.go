package core

import (
	"time"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// tracedStore wraps a GraphStore so each batched fetch lands in the query
// trace as a "store_fetch" leaf span under whichever stage is open. Only
// FetchGraphs is intercepted: the per-id Graph accessor sits on the
// per-distance hot path and passes through to the embedded store, so a
// traced query pays one span per candidate batch, not one per distance.
// Installed by SearchPooled only when the context carries a trace; the
// disabled path keeps the store's direct calls.
type tracedStore struct {
	pg.GraphStore
	trace *obs.Trace
}

func (s tracedStore) FetchGraphs(ids []int, dst []*graph.Graph) []*graph.Graph {
	start := time.Now()
	out := s.GraphStore.FetchGraphs(ids, dst)
	s.trace.RecordSpan("store_fetch", start, time.Since(start), 0, len(ids))
	return out
}
