package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lansearch/lan/internal/lanstore"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

// saveV3 writes the fixture engine as a v3 snapshot and returns its path.
func saveV3(t *testing.T, e *Engine, quant lanstore.Quant) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.lansnap")
	if err := SaveSnapshotV3(path, e, nil, quant); err != nil {
		t.Fatalf("SaveSnapshotV3(%s): %v", quant, err)
	}
	return path
}

// openV3Tier opens a v3 snapshot on the given tier with the fixture's
// (default) metrics and registers cleanup.
func openV3Tier(t *testing.T, path string, mmap bool) *Engine {
	t.Helper()
	eng, _, store, err := OpenSnapshotV3(path, Options{}, mmap)
	if err != nil {
		t.Fatalf("OpenSnapshotV3(mmap=%v): %v", mmap, err)
	}
	if store != nil {
		t.Cleanup(func() { store.Close() })
	}
	return eng
}

// comparableStats strips the wall-time fields, which legitimately differ
// between runs; everything else — NDC and its per-stage split, explored
// nodes, ranker calls, batch/γ accounting, cache hits — must be
// bit-identical between storage tiers.
func comparableStats(s QueryStats) QueryStats {
	s.DistTime, s.ModelTime, s.InitTime, s.RouteTime, s.Total = 0, 0, 0, 0, 0
	return s
}

// TestSnapshotV3MMapBitIdentity pins the storage-tier contract: a
// full-precision snapshot answers every query bit-identically on the RAM
// and mmap tiers — results (ids and exact distances), the whole NDC and
// routing accounting, and the routing trajectory (entry node, explored
// steps, γ trajectory) — at every worker count and under every
// initial/routing strategy. Run under -race in CI, this doubles as the
// concurrency-safety check of the mmap fetch path.
func TestSnapshotV3MMapBitIdentity(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	path := saveV3(t, eng, lanstore.QuantF64)
	ram := openV3Tier(t, path, false)
	mm := openV3Tier(t, path, true)

	if _, ok := mm.Graphs.(*lanstore.Store); !ok {
		t.Fatalf("mmap engine fetches from %T; want *lanstore.Store", mm.Graphs)
	}
	if _, ok := ram.Graphs.(*lanstore.Store); ok {
		t.Fatal("ram engine still fetches from the snapshot store")
	}

	workerCounts := []int{1, 2, 4}
	strategies := []struct {
		is InitialStrategy
		rt RoutingStrategy
	}{
		{LANIS, LANRoute},
		{LANIS, BaselineRoute},
		{LANIS, OracleRoute},
		{HNSWIS, LANRoute},
		{RandIS, LANRoute},
		{LANISBasic, LANRoute},
	}
	if testing.Short() {
		workerCounts = []int{1, 2}
		strategies = strategies[:2]
	}

	for _, workers := range workerCounts {
		pool := pg.NewWorkerPool(workers)
		for _, st := range strategies {
			so := SearchOptions{K: 5, Beam: 10, Initial: st.is, Routing: st.rt}
			for qi, q := range test {
				ramTrace, mmTrace := obs.NewTrace("ram"), obs.NewTrace("mmap")
				ramRes, ramStats, err := ram.SearchPooled(obs.With(context.Background(), ramTrace), q, so, pool)
				if err != nil {
					t.Fatal(err)
				}
				mmRes, mmStats, err := mm.SearchPooled(obs.With(context.Background(), mmTrace), q, so, pool)
				if err != nil {
					t.Fatal(err)
				}
				tag := func() string {
					return st.is.String() + "/" + st.rt.String()
				}
				if !reflect.DeepEqual(ramRes, mmRes) {
					t.Fatalf("workers=%d %s query %d: results diverge\nram:  %v\nmmap: %v",
						workers, tag(), qi, ramRes, mmRes)
				}
				if a, b := comparableStats(ramStats), comparableStats(mmStats); a != b {
					t.Fatalf("workers=%d %s query %d: stats diverge\nram:  %+v\nmmap: %+v",
						workers, tag(), qi, a, b)
				}
				if ramTrace.Entry != mmTrace.Entry ||
					!reflect.DeepEqual(ramTrace.Steps, mmTrace.Steps) ||
					!reflect.DeepEqual(ramTrace.Gammas, mmTrace.Gammas) {
					t.Fatalf("workers=%d %s query %d: routing trajectories diverge\nram:  entry=%d steps=%v gammas=%v\nmmap: entry=%d steps=%v gammas=%v",
						workers, tag(), qi,
						ramTrace.Entry, ramTrace.Steps, ramTrace.Gammas,
						mmTrace.Entry, mmTrace.Steps, mmTrace.Gammas)
				}
			}
		}
		pool.Close()
	}
}

// TestSnapshotV3RAMMatchesOriginal pins that materializing a snapshot
// reproduces the engine that wrote it: same answers, same NDC.
func TestSnapshotV3RAMMatchesOriginal(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	ram := openV3Tier(t, saveV3(t, eng, lanstore.QuantF64), false)
	so := SearchOptions{K: 5, Beam: 10}
	for qi, q := range test {
		wantRes, wantStats := eng.Search(q, so)
		gotRes, gotStats := ram.Search(q, so)
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Fatalf("query %d: results differ from the engine that wrote the snapshot", qi)
		}
		if comparableStats(wantStats) != comparableStats(gotStats) {
			t.Fatalf("query %d: stats differ from the engine that wrote the snapshot", qi)
		}
	}
}

// TestSnapshotV3QuantizedDistancesExact pins the quantization semantics:
// storing M_rk's embeddings at reduced precision may only perturb the
// learned neighbor ranking — every distance in the results must still be
// the exact float64 GED, on both tiers, and both tiers must agree with
// each other bit-for-bit (they decode the same stored embeddings).
func TestSnapshotV3QuantizedDistancesExact(t *testing.T) {
	eng, _, db, test := buildEngine(t)
	so := SearchOptions{K: 5, Beam: 10}

	f64Ram := openV3Tier(t, saveV3(t, eng, lanstore.QuantF64), false)
	for _, quant := range []lanstore.Quant{lanstore.QuantF32, lanstore.QuantInt8} {
		path := saveV3(t, eng, quant)
		ram := openV3Tier(t, path, false)
		mm := openV3Tier(t, path, true)

		var overlap, n float64
		for qi, q := range test {
			ramRes, ramStats := ram.Search(q, so)
			mmRes, mmStats := mm.Search(q, so)
			if !reflect.DeepEqual(ramRes, mmRes) || comparableStats(ramStats) != comparableStats(mmStats) {
				t.Fatalf("%s query %d: tiers diverge at the same quantization", quant, qi)
			}
			for _, r := range ramRes {
				if exact := ram.Opts.QueryMetric.Distance(db[r.ID], q); r.Dist != exact {
					t.Fatalf("%s query %d: result %d carries dist %v; exact GED is %v",
						quant, qi, r.ID, r.Dist, exact)
				}
			}
			f64Res, _ := f64Ram.Search(q, so)
			ids := make(map[int]bool, len(ramRes))
			for _, r := range ramRes {
				ids[r.ID] = true
			}
			for _, r := range f64Res {
				if ids[r.ID] {
					overlap++
				}
				n++
			}
		}
		if eps := 1 - overlap/n; eps > 0.5 {
			t.Fatalf("%s: recall epsilon vs full precision = %.3f; quantization should only nudge the ranking", quant, eps)
		} else {
			t.Logf("%s: recall epsilon vs full precision = %.3f", quant, eps)
		}
	}
}

// TestSaveSnapshotV3RejectsHuskEngine: an engine serving off an mmap
// store has no materialized database to serialize; re-saving it must be
// a named error, not a snapshot full of nil graphs.
func TestSaveSnapshotV3RejectsHuskEngine(t *testing.T) {
	eng, _, _, _ := buildEngine(t)
	mm := openV3Tier(t, saveV3(t, eng, lanstore.QuantF64), true)
	err := SaveSnapshotV3(filepath.Join(t.TempDir(), "again.lansnap"), mm, nil, lanstore.QuantF64)
	if err == nil {
		t.Fatal("re-saving an mmap-backed engine succeeded")
	}
}

// TestOpenSnapshotV3RejectsJSONIndex: the binary opener must identify a
// JSON index file as not-a-snapshot by name, not choke on it.
func TestOpenSnapshotV3RejectsJSONIndex(t *testing.T) {
	eng, _, _, _ := buildEngine(t)
	path := filepath.Join(t.TempDir(), "idx.lan")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, mmap := range []bool{false, true} {
		if _, _, _, err := OpenSnapshotV3(path, Options{}, mmap); !errors.Is(err, lanstore.ErrNotSnapshot) {
			t.Fatalf("mmap=%v: err = %v; want ErrNotSnapshot", mmap, err)
		}
	}
}
