package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestSearchStatsConsistency pins that every routing strategy populates
// QueryStats the same way: the per-stage NDC split always sums to the
// total, ranker accounting follows the strategy (np_route paths rank,
// the baseline does not), and the neighbor tallies stay ordered. This is
// the regression test for the historical inconsistency where only some
// strategies filled the routing fields.
func TestSearchStatsConsistency(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	q := test[0]
	for _, is := range []InitialStrategy{HNSWIS, LANIS} {
		for _, rt := range []RoutingStrategy{LANRoute, BaselineRoute, OracleRoute} {
			_, stats := eng.Search(q, SearchOptions{K: 5, Beam: 12, Initial: is, Routing: rt})
			name := is.String() + "/" + rt.String()

			if stats.NDC <= 0 || stats.Total <= 0 {
				t.Fatalf("%s: empty cost: %+v", name, stats)
			}
			if stats.InitNDC <= 0 {
				t.Errorf("%s: InitNDC = %d; initial selection always computes distances", name, stats.InitNDC)
			}
			if stats.InitNDC+stats.RouteNDC != stats.NDC {
				t.Errorf("%s: stage split %d+%d != NDC %d", name, stats.InitNDC, stats.RouteNDC, stats.NDC)
			}
			if stats.Explored <= 0 {
				t.Errorf("%s: Explored = %d", name, stats.Explored)
			}
			if stats.InitTime <= 0 || stats.RouteTime <= 0 {
				t.Errorf("%s: stage times %v/%v not recorded", name, stats.InitTime, stats.RouteTime)
			}
			if stats.OpenedNeighbors > stats.RankedNeighbors {
				t.Errorf("%s: opened %d > ranked %d", name, stats.OpenedNeighbors, stats.RankedNeighbors)
			}
			if pr := stats.PruneRate(); pr < 0 || pr > 1 {
				t.Errorf("%s: prune rate %v outside [0,1]", name, pr)
			}

			switch rt {
			case LANRoute, OracleRoute:
				if stats.RankerCalls != stats.Explored {
					t.Errorf("%s: RankerCalls %d != Explored %d (one ranking per explored node)", name, stats.RankerCalls, stats.Explored)
				}
				if stats.RankedNeighbors <= 0 {
					t.Errorf("%s: np_route ranked no neighbors: %+v", name, stats)
				}
				if stats.BatchesOpened <= 0 {
					t.Errorf("%s: np_route opened no batches: %+v", name, stats)
				}
			case BaselineRoute:
				if stats.RankerCalls != 0 {
					t.Errorf("%s: baseline made %d ranker calls; want 0", name, stats.RankerCalls)
				}
				if stats.RankedNeighbors != 0 || stats.BatchesOpened != 0 || stats.GammaSteps != 0 {
					t.Errorf("%s: baseline filled np_route-only fields: %+v", name, stats)
				}
			}
		}
	}
}

// searchTraced runs one search with a fresh trace attached and returns
// everything the bit-identity checks compare.
func searchTraced(t *testing.T, eng *Engine, q *graph.Graph, so SearchOptions, pool *pg.WorkerPool) ([]pg.Result, QueryStats, *obs.Trace) {
	t.Helper()
	tr := obs.NewTrace("t")
	res, stats, err := eng.SearchPooled(obs.With(context.Background(), tr), q, so, pool)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	return res, stats, tr
}

// TestTracingBitIdentity pins the observability contract: attaching a
// trace must not change results, NDC or the routing trajectory, for every
// routing strategy and worker count; and the trajectory itself must be
// identical across worker counts.
func TestTracingBitIdentity(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	q := test[0]
	pool := pg.NewWorkerPool(3)
	defer pool.Close()

	for _, rt := range []RoutingStrategy{LANRoute, BaselineRoute, OracleRoute} {
		so := SearchOptions{K: 3, Beam: 8, Initial: HNSWIS, Routing: rt}
		wantRes, wantStats, err := eng.SearchPooled(context.Background(), q, so, nil)
		if err != nil {
			t.Fatal(err)
		}

		var prevSteps []obs.TraceStep
		var prevGammas []float64
		for wi, p := range []*pg.WorkerPool{nil, pool} {
			res, stats, tr := searchTraced(t, eng, q, so, p)
			if !reflect.DeepEqual(res, wantRes) {
				t.Errorf("rt=%s workers=%d: tracing changed results: %v vs %v", so.Routing.String(), wi, res, wantRes)
			}
			if stats.NDC != wantStats.NDC || stats.Explored != wantStats.Explored {
				t.Errorf("rt=%s workers=%d: tracing changed cost: NDC %d/%d Explored %d/%d",
					so.Routing.String(), wi, stats.NDC, wantStats.NDC, stats.Explored, wantStats.Explored)
			}
			if tr.NDC != stats.NDC || tr.Results != len(res) {
				t.Errorf("rt=%s workers=%d: trace totals %d/%d disagree with stats %d/%d",
					so.Routing.String(), wi, tr.NDC, tr.Results, stats.NDC, len(res))
			}
			if len(tr.Steps) == 0 {
				t.Fatalf("rt=%s workers=%d: trace recorded no steps", so.Routing.String(), wi)
			}
			if wi > 0 {
				if !reflect.DeepEqual(tr.Steps, prevSteps) {
					t.Errorf("rt=%s: trajectory differs across worker counts:\n%v\nvs\n%v", so.Routing.String(), tr.Steps, prevSteps)
				}
				if !reflect.DeepEqual(tr.Gammas, prevGammas) {
					t.Errorf("rt=%s: γ trajectory differs across worker counts: %v vs %v", so.Routing.String(), tr.Gammas, prevGammas)
				}
			}
			prevSteps, prevGammas = tr.Steps, tr.Gammas
		}
	}
}

// TestGoldenTrace locks the full trace of one fixed-seed query against
// testdata/golden_trace.json: step sequence, γ trajectory, per-step
// ranked/opened tallies and the NDC ledger. Wall-time fields are zeroed
// before comparison. Regenerate with: go test ./internal/core -run
// TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	// A dedicated tiny engine with pinned parameters, independent of
	// -short, so the golden file is valid in every test mode.
	spec := dataset.AIDS(0.001)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 3)
	train, _, test := dataset.Split(queries)
	eng, err := Build(db, train, Options{
		M: 4, Dim: 6, GammaKNN: 4,
		Train: models.TrainOptions{Epochs: 2, LR: 0.01},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace("golden")
	ctx := obs.With(context.Background(), tr)
	if _, _, err := eng.SearchPooled(ctx, test[0], SearchOptions{K: 3, Beam: 8, Initial: LANIS, Routing: LANRoute}, nil); err != nil {
		t.Fatal(err)
	}

	// Zero the wall-time fields: they are the only nondeterminism in a
	// fixed-seed trace.
	tr.TotalUS = 0
	zeroSpanTimes(tr.Spans)
	got, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace diverged from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// zeroSpanTimes clears the wall-clock fields of a span forest in place,
// leaving the structure (names, nesting, NDC, batch sizes) to compare.
func zeroSpanTimes(spans []*obs.Span) {
	for _, s := range spans {
		s.StartUS, s.US = 0, 0
		zeroSpanTimes(s.Children)
	}
}

// TestConcurrentTracedQueriesNoBleed runs traced searches for distinct
// queries concurrently over one shared worker pool and checks every trace
// against a solo rerun of its query: identical step sequence, identical γ
// trajectory, totals matching that query's own stats. Run under -race
// this also proves the recording path is data-race free.
func TestConcurrentTracedQueriesNoBleed(t *testing.T) {
	eng, _, _, test := buildEngine(t)
	pool := pg.NewWorkerPool(4)
	defer pool.Close()
	so := SearchOptions{K: 3, Beam: 8, Initial: HNSWIS, Routing: LANRoute}

	type run struct {
		stats QueryStats
		trace *obs.Trace
	}
	runs := make([]run, len(test))
	var wg sync.WaitGroup
	for i := range test {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := obs.NewTrace("q")
			_, stats, err := eng.SearchPooled(obs.With(context.Background(), tr), test[i], so, pool)
			if err == nil {
				runs[i] = run{stats: stats, trace: tr}
			}
		}(i)
	}
	wg.Wait()

	for i := range test {
		tr := runs[i].trace
		if tr == nil {
			t.Fatalf("query %d errored", i)
		}
		if tr.NDC != runs[i].stats.NDC {
			t.Errorf("query %d: trace NDC %d != stats NDC %d", i, tr.NDC, runs[i].stats.NDC)
		}
		_, _, solo := searchTraced(t, eng, test[i], so, nil)
		if !reflect.DeepEqual(tr.Steps, solo.Steps) {
			t.Errorf("query %d: concurrent trace steps diverge from solo run (cross-query bleed?)", i)
		}
		if !reflect.DeepEqual(tr.Gammas, solo.Gammas) {
			t.Errorf("query %d: γ trajectory diverges from solo run", i)
		}
		if tr.Entry != solo.Entry {
			t.Errorf("query %d: entry %d != solo entry %d", i, tr.Entry, solo.Entry)
		}
	}
}
