package core

import (
	"encoding/json"
	"fmt"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/lanstore"
	"github.com/lansearch/lan/internal/models"
)

// SnapshotVersionV3 is the binary snapshot format: the JSON metadata of
// versions 1-2 moves into a lanstore section, and the database, base
// adjacency and M_rk node-embedding table move into the fixed-layout
// sections an mmap reader can serve without materializing them.
const SnapshotVersionV3 = 3

// mmapCGCacheBound caps the compressed-GNN-graph cache of an
// mmap-opened engine. CGs are memos of deterministic per-graph builds,
// so the bound only trades CPU for memory — results never change — and
// it is what keeps resident memory sublinear in database size.
const mmapCGCacheBound = 4096

// SaveSnapshotV3 writes the engine as a version-3 binary snapshot:
// self-contained (database included — nothing is re-supplied at open),
// mmap-able, with the M_rk node-embedding table stored at the given
// quantization. The engine must be RAM-resident; re-saving an
// mmap-opened engine is not supported.
func SaveSnapshotV3(path string, e *Engine, st *MutationState, quant lanstore.Quant) error {
	if _, mm := e.Graphs.(*lanstore.Store); mm {
		return fmt.Errorf("core: cannot re-save an mmap-opened engine as a snapshot (open with the ram store to materialize it first)")
	}
	s := snapshot{
		Version:   SnapshotVersionV3,
		GammaStar: e.GammaStar,
		// Adj and MrkNodeEmb deliberately stay empty: both live in
		// dedicated lanstore sections so the mmap path never decodes
		// them through JSON.
		Upper:  e.Index.Upper,
		Level:  e.Index.Level,
		Entry:  e.Index.Entry,
		M:      e.Opts.M,
		Layers: e.Opts.Layers, Dim: e.Opts.Dim,
		BatchPercent: e.Opts.BatchPercent, Hidden: e.Opts.Hidden,
		UseCG:       e.Opts.UseCG,
		TopClusters: e.Opts.TopClusters, Samples: e.Opts.Samples,
		StepSize:  e.Opts.StepSize,
		Seed:      e.Opts.Seed,
		Centroids: e.Mc.Clusters().Centroids,
		Assign:    e.Mc.Clusters().Assign,
	}
	if st != nil && st.Epoch > 0 {
		s.Epoch = st.Epoch
		s.Born = st.Born
		s.Died = st.Died
	}
	var err error
	if s.MrkParams, err = marshalParams(e.Mrk.Params); err != nil {
		return err
	}
	if s.MnhParams, err = marshalParams(e.Mnh.Params); err != nil {
		return err
	}
	if s.McParams, err = marshalParams(e.Mc.Params); err != nil {
		return err
	}
	meta, err := json.Marshal(&s)
	if err != nil {
		return fmt.Errorf("core: snapshot meta: %w", err)
	}
	return lanstore.Write(path, &lanstore.SnapshotData{
		Meta:  meta,
		DB:    e.DB,
		Adj:   e.Index.PG.Adj,
		Emb:   e.Mrk.NodeEmbeddings(),
		Quant: quant,
	})
}

// OpenSnapshotV3 opens a version-3 binary snapshot.
//
// With mmap true the database stays on disk: searches fetch candidate
// graphs segment-at-a-time through the store, the adjacency is aliased
// from the mapping, M_rk reads its node embeddings row-by-row, and
// Engine.DB is a length-only husk of nil entries. The returned store
// backs the engine — the caller owns closing it, after which the engine
// must not be used. Resident memory stays far below database size; the
// engine is read-only.
//
// With mmap false the snapshot is fully verified and materialized into
// RAM (the store is closed before returning, and the returned store is
// nil): the engine is then indistinguishable from one loaded via
// LoadWithState, writable included.
func OpenSnapshotV3(path string, opts Options, mmap bool) (*Engine, *MutationState, *lanstore.Store, error) {
	store, err := lanstore.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	e, st, err := openV3(store, opts, mmap)
	if err != nil {
		store.Close()
		return nil, nil, nil, err
	}
	if !mmap {
		store.Close()
		return e, st, nil, nil
	}
	return e, st, store, nil
}

func openV3(store *lanstore.Store, opts Options, mmap bool) (*Engine, *MutationState, error) {
	var s snapshot
	if err := json.Unmarshal(store.Meta(), &s); err != nil {
		return nil, nil, fmt.Errorf("core: snapshot meta: %w", err)
	}
	if s.Version != SnapshotVersionV3 {
		return nil, nil, fmt.Errorf("core: binary snapshot carries metadata version %d, want %d", s.Version, SnapshotVersionV3)
	}
	n := store.Len()
	var st *MutationState
	if s.Epoch > 0 {
		if len(s.Born) != n || len(s.Died) != n {
			return nil, nil, fmt.Errorf("core: snapshot: %d/%d validity stamps for %d graphs", len(s.Born), len(s.Died), n)
		}
		st = &MutationState{Epoch: s.Epoch, Born: s.Born, Died: s.Died}
	}

	if !mmap {
		// RAM mode: verify everything (including the payload sections the
		// mmap path defers), then decode into ordinary heap structures.
		if err := store.VerifyPayload(); err != nil {
			return nil, nil, err
		}
		db, err := store.DecodeAll()
		if err != nil {
			return nil, nil, err
		}
		if err := db.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: snapshot: %w", err)
		}
		asm := assembly{}
		if store.NodeEmbeddingCount() == n {
			asm.nodeEmb = store.EmbeddingsFloat64()
		}
		e, err := assembleEngine(db, &s, store.AdjacencyCopy(), opts, asm)
		if err != nil {
			return nil, nil, err
		}
		return e, st, nil
	}

	// mmap mode: the database is a husk — only its length is real. The
	// vocabulary comes from the snapshot's label table (identical to what
	// a database scan would build: both are the sorted distinct labels),
	// so no assembly step touches graph bytes beyond what queries page in.
	db := make(graph.Database, n)
	vocab := cg.NewVocabFromLabels(store.Labels())
	cgs := models.NewCGStoreVocab(vocab, s.Layers, s.UseCG)
	cgs.SetCacheBound(mmapCGCacheBound)
	asm := assembly{
		graphs:   store,
		cgs:      cgs,
		embedder: cluster.NewFeatureEmbedderVocab(vocab),
		huskDB:   true,
	}
	if store.NodeEmbeddingCount() == n {
		asm.embSrc = store
	}
	e, err := assembleEngine(db, &s, store.Adjacency(), opts, asm)
	if err != nil {
		return nil, nil, err
	}
	return e, st, nil
}
