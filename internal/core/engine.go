// Package core assembles the complete LAN system (Fig. 3 of the paper):
// the proximity-graph index, the learned neighbor-ranking model M_rk, the
// initial-node models M_nh and M_c, and the np_route query pipeline. It is
// the implementation behind the public lan package and the experiment
// harness; the knobs it exposes (initial-selection strategy, routing
// strategy, CG acceleration) are exactly the axes the paper's figures
// vary.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/cg"
	"github.com/lansearch/lan/internal/cluster"
	"github.com/lansearch/lan/internal/models"
	"github.com/lansearch/lan/internal/obs"
	"github.com/lansearch/lan/internal/pg"
	"github.com/lansearch/lan/internal/route"
)

// Options configure an Engine build.
type Options struct {
	// Index construction.
	M              int        // PG degree parameter (default 8)
	EfConstruction int        // insertion beam (default 2M)
	BuildMetric    ged.Metric // offline GED (default Hungarian)
	QueryMetric    ged.Metric // online GED (default Hungarian)

	// Model shape.
	Layers       int // GNN layers (default 2)
	Dim          int // embedding dim (default 16; the paper uses 128)
	BatchPercent int // the paper's y (default 20)
	Hidden       int // MLP hidden width (default 2*Dim)
	// UseCG toggles the compressed-GNN-graph acceleration of Sec. VI
	// (default true; false is the Fig. 10 ablation).
	UseCG bool

	// Neighborhood calibration (Sec. VII: gamma* covers the knn-NNs for
	// the given quantile of training queries).
	GammaKNN      int     // default 20
	GammaQuantile float64 // default 0.9

	// Initial selection.
	Clusters    int // KMeans k (default |D|/64, min 2)
	TopClusters int // clusters M_c selects (default 3)
	Samples     int // s verified samples (default 4)

	// Training.
	Train models.TrainOptions
	// MaxRankExamples caps the M_rk training set (0 = 512; training cost
	// scales with it).
	MaxRankExamples int
	// MaxMembershipExamples caps the M_nh training set (0 = 2048).
	MaxMembershipExamples int

	// Routing.
	StepSize float64 // d_s (default 1)

	// Workers bounds the index-build worker pool and the node-embedding
	// precompute fan-out (default runtime.NumCPU() inside pg/cg). The
	// built index and embeddings are identical across worker counts.
	Workers int

	// QueryWorkers bounds the per-query pool that evaluates routing-stage
	// GED calls concurrently: the HNSW-descent prefetch, the baseline
	// beam's neighbor expansion and np_route's batch openings. 0 or 1 is
	// sequential (the default — servers running many queries concurrently
	// should keep it). Results, NDC and routing trajectories are
	// bit-identical across every setting: distances are pure functions
	// prefetched in parallel but merged in fixed candidate order.
	QueryWorkers int

	Seed int64
}

func (o *Options) defaults(dbSize int) {
	if o.M <= 0 {
		o.M = 8
	}
	if o.EfConstruction <= 0 {
		o.EfConstruction = 2 * o.M
	}
	if o.BuildMetric == nil {
		o.BuildMetric = ged.MetricFunc(ged.Hungarian)
	}
	if o.QueryMetric == nil {
		o.QueryMetric = ged.MetricFunc(ged.Hungarian)
	}
	if o.Layers <= 0 {
		o.Layers = 2
	}
	if o.Dim <= 0 {
		o.Dim = 16
	}
	if o.BatchPercent <= 0 {
		o.BatchPercent = 20
	}
	if o.Hidden <= 0 {
		o.Hidden = 2 * o.Dim
	}
	if o.GammaKNN <= 0 {
		o.GammaKNN = 20
	}
	if o.GammaQuantile <= 0 {
		o.GammaQuantile = 0.9
	}
	if o.Clusters <= 0 {
		o.Clusters = dbSize / 16
		if o.Clusters < 2 {
			o.Clusters = 2
		}
	}
	if o.TopClusters <= 0 {
		o.TopClusters = 3
	}
	if o.Samples <= 0 {
		o.Samples = 4
	}
	if o.StepSize <= 0 {
		o.StepSize = 1
	}
	if o.MaxRankExamples <= 0 {
		o.MaxRankExamples = 512
	}
	if o.MaxMembershipExamples <= 0 {
		o.MaxMembershipExamples = 2048
	}
}

// InitialStrategy selects how the routing entry node is chosen.
type InitialStrategy int

// Initial-selection strategies of Fig. 7.
const (
	// LANIS is the paper's learned selection (M_c + M_nh + sampling).
	LANIS InitialStrategy = iota
	// HNSWIS descends the HNSW hierarchy.
	HNSWIS
	// RandIS picks a pseudo-random node (deterministic per query).
	RandIS
	// LANISBasic is Sec. V-B1's basic design: M_nh over the whole
	// database, no cluster pruning (the ablation of Fig. 7's footnote —
	// "always slower than the optimized design").
	LANISBasic
)

// String returns the strategy's wire name (the one lanserve's request
// parser and the trace/pprof labels use).
func (s InitialStrategy) String() string {
	switch s {
	case HNSWIS:
		return "hnsw"
	case RandIS:
		return "rand"
	case LANISBasic:
		return "lan_basic"
	default:
		return "lan"
	}
}

// RoutingStrategy selects the layer-0 routing algorithm.
type RoutingStrategy int

// Routing strategies of Fig. 6.
const (
	// LANRoute is np_route with the learned ranker M_rk.
	LANRoute RoutingStrategy = iota
	// BaselineRoute is Algorithm 1 (exhaustive neighbor exploration).
	BaselineRoute
	// OracleRoute is np_route with the oracle ranker (upper bound).
	OracleRoute
)

// String returns the strategy's wire name.
func (s RoutingStrategy) String() string {
	switch s {
	case BaselineRoute:
		return "baseline"
	case OracleRoute:
		return "oracle"
	default:
		return "lan"
	}
}

// SearchOptions configure one query.
type SearchOptions struct {
	K       int
	Beam    int
	Initial InitialStrategy
	Routing RoutingStrategy
}

// QueryStats breaks down one query's cost (Fig. 11's accounting). Every
// routing strategy fills every field the strategy can meaningfully
// produce: NDC, the per-stage splits and wall times, Explored and the
// distance-cache accounting are populated on all paths; RankerCalls,
// BatchesOpened, GammaSteps and the neighbor tallies stay zero only for
// BaselineRoute, which has no ranker (see TestSearchStatsConsistency).
type QueryStats struct {
	NDC int
	// InitNDC/RouteNDC split NDC by pipeline stage: distance computations
	// paid during initial-node selection vs. during routing.
	InitNDC  int
	RouteNDC int
	Explored int
	// RankerCalls counts neighbor-ranking invocations (one per explored
	// node on the np_route paths), the same quantity for the learned and
	// the oracle ranker.
	RankerCalls   int
	ISPredictions int
	// BatchesOpened, GammaSteps and the neighbor tallies come from
	// np_route: opened batches, γ-trajectory length, and neighbors ranked
	// vs. opened (1 - Opened/Ranked is the prune rate).
	BatchesOpened   int
	GammaSteps      int
	RankedNeighbors int
	OpenedNeighbors int
	// DistCacheHits counts distance lookups served from the per-query
	// memo without a GED call.
	DistCacheHits int
	// DistTime is wall time inside GED computations; ModelTime inside
	// GNN inference (ranking + initial selection); InitTime/RouteTime the
	// two pipeline stages; Total the whole query.
	DistTime  time.Duration
	ModelTime time.Duration
	InitTime  time.Duration
	RouteTime time.Duration
	Total     time.Duration
}

// PruneRate returns the fraction of ranked neighbors whose distance was
// never computed (0 when nothing was ranked).
func (s *QueryStats) PruneRate() float64 {
	if s.RankedNeighbors == 0 {
		return 0
	}
	return 1 - float64(s.OpenedNeighbors)/float64(s.RankedNeighbors)
}

// Engine is a fully built LAN system over one database.
type Engine struct {
	DB    graph.Database
	Index *pg.HNSW
	Opts  Options

	// Graphs is the candidate-fetch tier every search goes through: a
	// pg.RAMStore over DB for built/loaded engines, or an mmap snapshot
	// store for engines opened with the mmap storage mode (DB is then a
	// husk of nil entries sized for len() accounting only).
	Graphs pg.GraphStore

	Store     *models.CGStore
	Mrk       *models.NeighborRanker
	Mnh       *models.NeighborhoodModel
	Mc        *models.ClusterModel
	GammaStar float64
}

// Build constructs the index, trains all three models on trainQueries and
// returns a ready Engine. Training requires at least a handful of queries;
// the heavy lifting (index construction, the distance table) is exactly
// the offline cost the paper describes.
func Build(db graph.Database, trainQueries []*graph.Graph, opts Options) (*Engine, error) {
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(trainQueries) == 0 {
		return nil, fmt.Errorf("core: no training queries")
	}
	opts.defaults(len(db))
	buildStart := time.Now()

	idx, err := pg.Build(db, pg.BuildConfig{
		M: opts.M, EfConstruction: opts.EfConstruction,
		Metric: opts.BuildMetric, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}

	table := models.ComputeDistanceTable(db, trainQueries, opts.QueryMetric)
	gammaStar := models.CalibrateGammaStar(table, opts.GammaKNN, opts.GammaQuantile)

	store := models.NewCGStore(db, opts.Layers, opts.UseCG)
	mcfg := models.Config{
		Layers: opts.Layers, Dim: opts.Dim, BatchPercent: opts.BatchPercent,
		Hidden: opts.Hidden, GammaStar: gammaStar, Seed: opts.Seed,
	}

	e := &Engine{DB: db, Index: idx, Opts: opts, Graphs: pg.NewRAMStore(db), Store: store, GammaStar: gammaStar}

	// M_rk. The training set is shuffled and capped: neighborhoods of all
	// training queries overlap heavily, and a bounded sample keeps offline
	// training time proportional to model size rather than |D| x |Q|.
	e.Mrk = models.NewNeighborRanker(mcfg, store)
	rankSet := models.BuildRankTrainingSet(idx.PG, table, gammaStar)
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x9e37))
	rng.Shuffle(len(rankSet), func(i, j int) { rankSet[i], rankSet[j] = rankSet[j], rankSet[i] })
	if cap := opts.MaxRankExamples; cap > 0 && len(rankSet) > cap {
		rankSet = rankSet[:cap]
	}
	if len(rankSet) > 0 {
		if err := e.Mrk.Train(db, table, rankSet, opts.Train); err != nil {
			return nil, err
		}
	}
	// Embed the whole database once (batched) so routing never pays the
	// current-node encoding at query time.
	e.Mrk.PrecomputeNodeEmbeddings(db, opts.Workers)

	// M_nh with negative downsampling, shuffled and capped like M_rk.
	e.Mnh = models.NewNeighborhoodModel(mcfg, store)
	memberSet := models.BuildMembershipTrainingSet(table, gammaStar, 2, opts.Seed)
	rng.Shuffle(len(memberSet), func(i, j int) { memberSet[i], memberSet[j] = memberSet[j], memberSet[i] })
	if cap := opts.MaxMembershipExamples; len(memberSet) > cap {
		memberSet = memberSet[:cap]
	}
	if len(memberSet) > 0 {
		if err := e.Mnh.Train(db, table, memberSet, opts.Train); err != nil {
			return nil, err
		}
	}

	// Clustering + M_c.
	emb := cluster.NewFeatureEmbedder(db)
	points := make([][]float64, len(db))
	for i, g := range db {
		points[i] = emb.Embed(g)
	}
	km, err := cluster.FitKMeans(points, opts.Clusters, 40, opts.Seed)
	if err != nil {
		return nil, err
	}
	e.Mc = models.NewClusterModel(mcfg, emb, km)
	if err := e.Mc.Train(table, models.BuildClusterTrainingSet(table, km, gammaStar), opts.Train); err != nil {
		return nil, err
	}
	recordBuild(len(db), time.Since(buildStart))
	return e, nil
}

// Search answers one k-ANN query.
func (e *Engine) Search(q *graph.Graph, so SearchOptions) ([]pg.Result, QueryStats) {
	res, stats, _ := e.SearchContext(context.Background(), q, so)
	return res, stats
}

// SearchContext is Search with cancellation: the context is threaded into
// the routing stage, which checks it before every distance computation, so
// an expired deadline or a canceled request stops the query within one GED
// call. On cancellation it returns ctx.Err() with the statistics
// accumulated so far (Total is still stamped, so the caller can meter
// abandoned work).
func (e *Engine) SearchContext(ctx context.Context, q *graph.Graph, so SearchOptions) ([]pg.Result, QueryStats, error) {
	// The pool is strictly per query — created here, drained before
	// returning — so an engine holds no goroutines between queries.
	pool := pg.NewWorkerPool(e.Opts.QueryWorkers)
	defer pool.Close()
	return e.SearchPooled(ctx, q, so, pool)
}

// SearchPooled is SearchContext evaluating routing-stage distances through
// the given worker pool (nil = sequential). Callers that run many searches
// in one request — the sharded fan-out — share one bounded pool this way
// instead of multiplying per-shard pools.
func (e *Engine) SearchPooled(ctx context.Context, q *graph.Graph, so SearchOptions, pool *pg.WorkerPool) ([]pg.Result, QueryStats, error) {
	start := time.Now()
	if so.K <= 0 {
		so.K = 1
	}
	if so.Beam < so.K {
		so.Beam = so.K
	}
	trace := obs.From(ctx)
	trace.SetConfig(so.Initial.String(), so.Routing.String(), so.K, so.Beam)
	tm := obs.NewTimedMetric(e.Opts.QueryMetric)
	// Candidate fetches go through the traced wrapper only when a trace is
	// attached, keeping the disabled path on the store's direct calls.
	graphs := pg.GraphStore(e.Graphs)
	if trace != nil {
		graphs = tracedStore{GraphStore: e.Graphs, trace: trace}
	}
	cache := pg.NewDistCacheStore(tm, graphs, q)
	var stats QueryStats
	if err := ctx.Err(); err != nil {
		stats.Total = time.Since(start)
		return nil, stats, err
	}

	initSpan := trace.StartSpan("initial")
	// The query's compressed GNN-graph is shared by every learned
	// component this search touches; building it here means the selector
	// and each ranking call reuse one encoding instead of rebuilding it.
	var qcg *cg.Compressed
	if so.Initial == LANIS || so.Initial == LANISBasic || so.Routing == LANRoute {
		cgStart := time.Now()
		qcg = e.Store.Query(q)
		cgTime := time.Since(cgStart)
		stats.ModelTime += cgTime
		trace.RecordSpan("embed", cgStart, cgTime, 0, 1)
	}

	// Initial node.
	modelStart := time.Now()
	var distInModels time.Duration
	entry := 0
	switch so.Initial {
	case LANIS, LANISBasic:
		sel := &models.InitialSelector{
			Mnh: e.Mnh, Mc: e.Mc,
			TopClusters: e.Opts.TopClusters, Samples: e.Opts.Samples,
			Seed: e.Opts.Seed, Predictions: &stats.ISPredictions,
			Exhaustive: so.Initial == LANISBasic,
			QueryCG:    qcg,
		}
		before := tm.Elapsed()
		entry = sel.Select(ctx, graphs, q, cache)
		distInModels = tm.Elapsed() - before
	case HNSWIS:
		entry = e.Index.EntryPointPooled(ctx, cache, pool)
		distInModels = tm.Elapsed()
	case RandIS:
		entry = pseudoRandomEntry(q, len(e.DB))
	}
	// Every strategy can land on a compacted tombstone — cluster members
	// and the pseudo-random pick are not dead-filtered — and such a husk
	// is edgeless: routing seeded there would end with no live candidate
	// ever evaluated. The HNSW entry is kept live and wired by the write
	// path (rescue on Compact), so fall back to it.
	if len(e.Index.PG.Adj[entry]) == 0 {
		entry = e.Index.Entry
	}
	stats.ModelTime += time.Since(modelStart) - distInModels
	stats.InitNDC = cache.NDC()
	stats.InitTime = time.Since(start)
	trace.EndSpan(initSpan, stats.InitNDC)
	if err := ctx.Err(); err != nil {
		stats.NDC = cache.NDC()
		stats.DistTime = tm.Elapsed()
		stats.Total = time.Since(start)
		return nil, stats, err
	}

	// Routing.
	routeStart := time.Now()
	routeSpan := trace.StartSpan("routing")
	var (
		res []pg.Result
		err error
	)
	switch so.Routing {
	case BaselineRoute:
		var s pg.Stats
		res, s, err = pg.BeamSearchPooled(ctx, e.Index.PG, cache, entry, so.K, so.Beam, pool)
		stats.Explored = s.Explored
	case OracleRoute:
		oracle := &route.OracleRanker{
			Cache: cache, BatchPercent: e.Opts.BatchPercent,
			// Rank with the cheap build metric so the oracle's
			// hypothetically-free ranking does not pay the query metric.
			RankMetric: e.Opts.BuildMetric,
		}
		var s route.Stats
		res, s, err = route.RouteContext(ctx, e.Index.PG, cache, oracle, entry, route.Config{K: so.K, Beam: so.Beam, StepSize: e.Opts.StepSize, Pool: pool})
		fillRouteStats(&stats, s)
	default: // LANRoute
		// The route layer counts ranking invocations (route.Stats.
		// RankerCalls), the same quantity the oracle path reports, so the
		// model ranker no longer keeps its own per-neighbor tally.
		inner := e.Mrk.Ranker(graphs, q, qcg, nil)
		ranker := route.RankerFunc(func(node int, neighbors []int, d float64) [][]int {
			rs := time.Now()
			b := inner.Batches(node, neighbors, d)
			rd := time.Since(rs)
			stats.ModelTime += rd
			trace.RecordSpan("embed", rs, rd, 0, len(neighbors))
			return b
		})
		var s route.Stats
		res, s, err = route.RouteContext(ctx, e.Index.PG, cache, ranker, entry, route.Config{K: so.K, Beam: so.Beam, StepSize: e.Opts.StepSize, Pool: pool})
		fillRouteStats(&stats, s)
	}
	stats.NDC = cache.NDC()
	stats.RouteNDC = stats.NDC - stats.InitNDC
	stats.RouteTime = time.Since(routeStart)
	stats.DistCacheHits = cache.Hits()
	trace.EndSpan(routeSpan, stats.RouteNDC)
	stats.DistTime = tm.Elapsed()
	stats.Total = time.Since(start)
	trace.Finalize(stats.NDC, len(res), stats.Total)
	if err != nil {
		return nil, stats, err
	}
	recordQuery(&stats)
	return res, stats, nil
}

// fillRouteStats copies np_route's effort counters into the query stats.
func fillRouteStats(stats *QueryStats, s route.Stats) {
	stats.Explored = s.Explored
	stats.RankerCalls = s.RankerCalls
	stats.BatchesOpened = s.BatchesOpened
	stats.GammaSteps = s.GammaSteps
	stats.RankedNeighbors = s.Ranked
	stats.OpenedNeighbors = s.Opened
}

// pseudoRandomEntry derives a deterministic pseudo-random entry node from
// the query's structure (Rand_IS must not depend on mutable state so runs
// are reproducible).
func pseudoRandomEntry(q *graph.Graph, n int) int {
	h := uint64(2166136261)
	h = h*16777619 ^ uint64(q.N())
	h = h*16777619 ^ uint64(q.M())
	for u := 0; u < q.N(); u++ {
		for _, c := range q.Label(u) {
			h = h*16777619 ^ uint64(c)
		}
	}
	return int(h % uint64(n))
}
