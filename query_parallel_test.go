package lan

import (
	"context"
	"reflect"
	"testing"

	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/pg"
)

// TestQueryParallelBitIdentical pins the tentpole guarantee of the
// parallel query path: for every worker count, every initial strategy and
// every routing mode, a pooled search returns exactly the sequential
// search's answers with exactly its NDC and routing trajectory. The
// distance pool only changes who computes each GED, never which GEDs are
// computed (see pg.DistCache.Prefetch). CI also runs this test under
// -race to catch pool synchronization bugs the equality check can't see.
func TestQueryParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a full index end to end")
	}
	idx, _, test := buildSmallIndex(t)

	type outcome struct {
		res      []Result
		ndc      int
		explored int
	}
	runAll := func(pool *pg.WorkerPool) []outcome {
		var outs []outcome
		for _, is := range []InitialStrategy{LANIS, HNSWIS, RandIS} {
			for _, rt := range []RoutingStrategy{LANRoute, BaselineRoute, OracleRoute} {
				for _, q := range test {
					res, stats, err := idx.searchPooled(context.Background(), q,
						SearchOptions{K: 3, Beam: 8, Initial: is, Routing: rt}, pool)
					if err != nil {
						t.Fatalf("is=%v rt=%v: %v", is, rt, err)
					}
					outs = append(outs, outcome{res: res, ndc: stats.NDC, explored: stats.Explored})
				}
			}
		}
		return outs
	}

	want := runAll(nil) // sequential reference
	for _, workers := range []int{1, 4, 8} {
		pool := pg.NewWorkerPool(workers)
		got := runAll(pool)
		pool.Close()
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("workers=%d case %d diverged:\nsequential %+v\nparallel   %+v",
						workers, i, want[i], got[i])
				}
			}
			t.Fatalf("workers=%d diverged from sequential", workers)
		}
	}
}

// TestShardedQueryWorkersBitIdentical repeats the check through the
// sharded fan-out, whose shards share one bounded pool per query. The
// same index is searched with different QueryWorkers settings (the knob
// only affects the per-query pool, never the built index), so one build
// covers all worker counts.
func TestShardedQueryWorkersBitIdentical(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 3)
	sharded, err := BuildSharded(db, queries, ShardedOptions{
		ShardSize: (len(db) + 2) / 3, // force three shards
		Options:   Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	setQueryWorkers := func(n int) {
		for _, shard := range sharded.shards {
			shard.engine().Opts.QueryWorkers = n
		}
	}
	for _, q := range queries[:3] {
		setQueryWorkers(0)
		wres, wstats, err := sharded.Search(q, SearchOptions{K: 3, Beam: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			setQueryWorkers(workers)
			gres, gstats, err := sharded.Search(q, SearchOptions{K: 3, Beam: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gres, wres) || gstats.NDC != wstats.NDC || gstats.Explored != wstats.Explored {
				t.Fatalf("workers=%d: sharded diverged:\nsequential %v (ndc=%d expl=%d)\nparallel   %v (ndc=%d expl=%d)",
					workers, wres, wstats.NDC, wstats.Explored, gres, gstats.NDC, gstats.Explored)
			}
		}
	}
}
