package lan

import (
	"sync"
	"testing"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

// buildMutableIndex is a cheap fixture for the write-path tests: small
// enough to build under -short (the churn tests below must run under
// `go test -race -short`).
func buildMutableIndex(t *testing.T) (*Index, graph.Database, []*graph.Graph) {
	t.Helper()
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 4)
	train, _, test := dataset.Split(queries)
	idx, err := Build(db, train, Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx, db, test
}

// TestMutableChurn runs searches, inserts and deletes concurrently; under
// -race this is the data-race proof for the whole write path (COW
// publication, epoch bumps, the background optimizer).
func TestMutableChurn(t *testing.T) {
	idx, db, test := buildMutableIndex(t)

	const searchers = 4
	var wg sync.WaitGroup

	// Writers: one goroutine streaming inserts, one streaming deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3*len(test); i++ {
			if _, err := idx.Insert(test[i%len(test)]); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Delete ids that existed before the churn started; every delete
		// must land exactly once.
		for id := 0; id < len(db)/2; id++ {
			if err := idx.Delete(id); err != nil {
				t.Errorf("Delete(%d): %v", id, err)
				return
			}
		}
	}()

	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := test[(s+i)%len(test)]
				res, stats, err := idx.Search(q, SearchOptions{K: 3, Beam: 10})
				if err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if len(res) == 0 || stats.NDC <= 0 {
					t.Errorf("search returned nothing mid-churn: %v %+v", res, stats)
					return
				}
				for j := 1; j < len(res); j++ {
					if res[j-1].Dist > res[j].Dist {
						t.Errorf("unsorted results mid-churn: %v", res)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()

	idx.Quiesce()
	if got, want := idx.Len(), len(db)+3*len(test)-len(db)/2; got != want {
		t.Fatalf("Len after churn = %d; want %d", got, want)
	}
	if idx.Epoch() == 0 {
		t.Fatal("churn left the epoch at 0")
	}
	if _, err := idx.Compact(); err != nil {
		t.Fatalf("Compact after churn: %v", err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := idx.Insert(test[0]); err == nil {
		t.Fatal("Insert accepted after Close")
	}
}

// TestPinnedSnapshotStableUnderWrites pins one read view and hammers the
// index with writes while repeatedly re-running the same query against
// the pin: every answer (ids, distances, NDC) must be bit-identical to
// the pre-write run.
func TestPinnedSnapshotStableUnderWrites(t *testing.T) {
	idx, _, test := buildMutableIndex(t)
	q := test[0]

	pinned := idx.Snapshot()
	wantRes, wantStats, err := pinned.Search(q, SearchOptions{K: 3, Beam: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch, wantLen := pinned.Epoch(), pinned.Len()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, g := range test {
			if _, err := idx.Insert(g); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := idx.Delete(i); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 30; i++ {
		res, stats, err := pinned.Search(q, SearchOptions{K: 3, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(wantRes) || stats.NDC != wantStats.NDC {
			t.Fatalf("pinned search drifted mid-write: %d results NDC %d; want %d results NDC %d",
				len(res), stats.NDC, len(wantRes), wantStats.NDC)
		}
		for j := range wantRes {
			if res[j] != wantRes[j] {
				t.Fatalf("pinned result %d drifted: %+v != %+v", j, res[j], wantRes[j])
			}
		}
	}
	<-done

	if pinned.Epoch() != wantEpoch || pinned.Len() != wantLen {
		t.Fatalf("pinned view moved: epoch %d->%d, len %d->%d", wantEpoch, pinned.Epoch(), wantLen, pinned.Len())
	}
	if idx.Epoch() == wantEpoch {
		t.Fatal("writes landed but the live epoch never moved")
	}
}

// TestIncrementalBuildRecallMatchesBatch pins the quality contract of
// streaming inserts: building a prefix and streaming in the rest (then
// quiescing the optimizer) must reach at least the recall of a batch
// build over the full database. Both sides route with the model-free
// strategies so the comparison isolates proximity-graph quality.
func TestIncrementalBuildRecallMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds two indexes and brute-force ground truth")
	}
	spec := dataset.AIDS(0.003)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 16, 5)
	train, _, test := dataset.Split(queries)
	opts := Options{M: 5, Dim: 8, GammaKNN: 5, Epochs: 1, Seed: 7}

	batch, err := Build(db, train, opts)
	if err != nil {
		t.Fatalf("batch Build: %v", err)
	}
	defer batch.Close()

	prefix := len(db) * 3 / 4
	incr, err := Build(db[:prefix], train, opts)
	if err != nil {
		t.Fatalf("prefix Build: %v", err)
	}
	defer incr.Close()
	for _, g := range db[prefix:] {
		if _, err := incr.Insert(g); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	incr.Quiesce()
	if incr.Len() != len(db) {
		t.Fatalf("incremental Len = %d; want %d", incr.Len(), len(db))
	}

	metric := ged.MetricFunc(ged.Hungarian)
	so := SearchOptions{K: 5, Beam: 24, Initial: HNSWIS, Routing: BaselineRoute}
	var batchRecall, incrRecall float64
	for _, q := range test {
		truth := dataset.BruteForceKNN(db, q, metric, 5)
		bres, _, err := batch.Search(q, so)
		if err != nil {
			t.Fatal(err)
		}
		ires, _, err := incr.Search(q, so)
		if err != nil {
			t.Fatal(err)
		}
		batchRecall += dataset.Recall(toPGResults(bres), truth)
		incrRecall += dataset.Recall(toPGResults(ires), truth)
	}
	batchRecall /= float64(len(test))
	incrRecall /= float64(len(test))
	t.Logf("recall@5: batch %.3f, incremental %.3f", batchRecall, incrRecall)
	if incrRecall < batchRecall {
		t.Fatalf("incremental build lost recall: %.3f < batch %.3f", incrRecall, batchRecall)
	}
	if incrRecall < 0.7 {
		t.Fatalf("incremental recall@5 = %.3f; floor is 0.7", incrRecall)
	}
}

// TestShardedEmptyShardSkipped drains one shard completely with deletes
// and checks the fan-out keeps answering from the surviving shards
// instead of erroring on the empty one.
func TestShardedEmptyShardSkipped(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: builds a multi-shard index")
	}
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 3)
	train, _, test := dataset.Split(queries)
	half := (len(db) + 1) / 2
	s, err := BuildSharded(db, train, ShardedOptions{
		ShardSize: half,
		Options:   Options{M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 6},
	})
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	defer s.Close()
	if s.Shards() != 2 {
		t.Fatalf("fixture wants 2 shards, got %d", s.Shards())
	}

	for id := 0; id < half; id++ {
		if err := s.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if got, want := s.Len(), len(db)-half; got != want {
		t.Fatalf("Len = %d; want %d", got, want)
	}
	if s.Epoch() == 0 {
		t.Fatal("deletes left the sharded epoch at 0")
	}

	for qi, q := range test {
		res, stats, err := s.Search(q, SearchOptions{K: 3, Beam: 12})
		if err != nil {
			t.Fatalf("query %d against a half-empty index: %v", qi, err)
		}
		if len(res) == 0 || stats.NDC <= 0 {
			t.Fatalf("query %d: empty answer %v %+v", qi, res, stats)
		}
		for _, r := range res {
			if r.ID < half {
				t.Fatalf("query %d surfaced id %d from the drained shard", qi, r.ID)
			}
		}
	}
}
