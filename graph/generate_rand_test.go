package graph

import (
	"math/rand"
	"testing"
)

// sameGraph reports whether a and b have identical labels and edges.
func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for u := 0; u < a.N(); u++ {
		if a.Label(u) != b.Label(u) {
			return false
		}
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e[0], e[1]) {
			return false
		}
	}
	return true
}

func TestNewGeneratorRandMatchesSeeded(t *testing.T) {
	labels := []string{"C", "N", "O"}
	seeded := NewGenerator(42)
	injected := NewGeneratorRand(rand.New(rand.NewSource(42)))
	for i := 0; i < 5; i++ {
		a := seeded.MoleculeLike(12, 2, labels, 0.3)
		b := injected.MoleculeLike(12, 2, labels, 0.3)
		if !sameGraph(a, b) {
			t.Fatalf("draw %d: injected-RNG generator diverged from seeded generator", i)
		}
	}
}

func TestNewGeneratorRandSharedStream(t *testing.T) {
	// Two generators over one *rand.Rand consume a single stream: their
	// outputs interleave rather than repeat.
	rng := rand.New(rand.NewSource(7))
	g1 := NewGeneratorRand(rng)
	g2 := NewGeneratorRand(rng)
	labels := []string{"C", "N", "O"}
	a := g1.RandomConnected(10, 14, labels, 0.2)
	b := g2.RandomConnected(10, 14, labels, 0.2)
	fresh := NewGenerator(7).RandomConnected(10, 14, labels, 0.2)
	if !sameGraph(a, fresh) {
		t.Fatalf("first draw should match a fresh seed-7 generator")
	}
	if sameGraph(b, fresh) {
		t.Fatalf("second draw repeated the stream; generators should share it")
	}
}
