// Package graph provides the labeled-graph data model used throughout the
// LAN library: undirected graphs with string node labels, as studied by the
// paper (Sec. III). It also offers serialization, Weisfeiler-Lehman
// labeling, random generators that mimic the benchmark datasets, and small
// utilities shared by the distance and learning layers.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph with labeled nodes. Nodes are dense integer
// ids 0..N-1. Edges are stored as adjacency lists sorted by neighbor id;
// parallel edges and self-loops are rejected.
//
// A Graph is cheap to share after construction: all methods that do not
// mutate are safe for concurrent use.
type Graph struct {
	// ID is an optional database identifier (the position of the graph in
	// its Database, or -1 when the graph is free-standing, e.g. a query).
	ID int

	labels []string
	adj    [][]int
	edges  int
}

// New returns an empty graph with the given database id (use -1 for
// free-standing graphs such as queries).
func New(id int) *Graph {
	return &Graph{ID: id}
}

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(label string) int {
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, nil)
	return len(g.labels) - 1
}

// AddEdge inserts the undirected edge {u, v}. It returns an error if either
// endpoint is out of range, u == v, or the edge already exists.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.labels) || v < 0 || v >= len(g.labels) {
		return fmt.Errorf("graph: edge {%d,%d} out of range (n=%d)", u, v, len(g.labels))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.insertNeighbor(u, v)
	g.insertNeighbor(v, u)
	g.edges++
	return nil
}

// Assemble constructs a graph directly from its parts: node labels and a
// strictly-sorted symmetric adjacency (the representation Neighbors
// exposes). It is the decoder-side counterpart of AddNode/AddEdge for
// loaders that already hold the graph in wire form; the invariants are
// verified, so a corrupted input yields an error, never a malformed
// graph. The slices are adopted, not copied.
func Assemble(id int, labels []string, adj [][]int) (*Graph, error) {
	g := &Graph{ID: id, labels: labels, adj: adj}
	half := 0
	for _, ns := range adj {
		half += len(ns)
	}
	if half%2 != 0 {
		return nil, fmt.Errorf("graph: assemble: odd half-edge count %d", half)
	}
	g.edges = half / 2
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: assemble: %w", err)
	}
	return g, nil
}

// MustAddEdge is AddEdge but panics on error. Intended for literals in
// tests and examples.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) insertNeighbor(u, v int) {
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	ns = append(ns, 0)
	copy(ns[i+1:], ns[i:])
	ns[i] = v
	g.adj[u] = ns
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Label returns the label of node u.
func (g *Graph) Label(u int) string { return g.labels[u] }

// SetLabel relabels node u.
func (g *Graph) SetLabel(u int, label string) { g.labels[u] = label }

// Neighbors returns the sorted adjacency list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns all undirected edges as (u, v) pairs with u < v, in
// lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Labels returns a copy of the node label slice, indexed by node id.
func (g *Graph) Labels() []string {
	out := make([]string, len(g.labels))
	copy(out, g.labels)
	return out
}

// LabelSet returns the distinct labels in the graph, sorted.
func (g *Graph) LabelSet() []string {
	seen := make(map[string]bool, len(g.labels))
	for _, l := range g.labels {
		seen[l] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LabelHistogram returns the multiset of node labels as label -> count.
func (g *Graph) LabelHistogram() map[string]int {
	h := make(map[string]int, len(g.labels))
	for _, l := range g.labels {
		h[l]++
	}
	return h
}

// Clone returns a deep copy of g (including its ID).
func (g *Graph) Clone() *Graph {
	c := &Graph{ID: g.ID, edges: g.edges}
	c.labels = append([]string(nil), g.labels...)
	c.adj = make([][]int, len(g.adj))
	for i, ns := range g.adj {
		c.adj[i] = append([]int(nil), ns...)
	}
	return c
}

// Equal reports whether g and h are identical as labeled graphs with the
// same node numbering (not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.labels {
		if g.labels[u] != h.labels[u] {
			return false
		}
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i, v := range g.adj[u] {
			if h.adj[u][i] != v {
				return false
			}
		}
	}
	return true
}

// Validate checks internal invariants (sorted symmetric adjacency, no
// self-loops, consistent edge count). It is used by tests and by loaders.
func (g *Graph) Validate() error {
	if len(g.adj) != len(g.labels) {
		return fmt.Errorf("graph: %d adjacency lists for %d nodes", len(g.adj), len(g.labels))
	}
	count := 0
	for u, ns := range g.adj {
		for i, v := range ns {
			if v < 0 || v >= len(g.labels) {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop on node %d", u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency (%d half-edges)", g.edges, count)
	}
	return nil
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph#%d{n=%d m=%d}", g.ID, g.N(), g.M())
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, v := range g.adj[comp[i]] {
				if !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph is connected (the empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	return g.N() == 0 || len(g.ConnectedComponents()) == 1
}

// Database is an ordered collection of graphs; graph i has ID i.
type Database []*Graph

// NewDatabase assigns sequential IDs to the given graphs and returns them
// as a Database.
func NewDatabase(graphs []*Graph) Database {
	for i, g := range graphs {
		g.ID = i
	}
	return Database(graphs)
}

// Validate checks that the database is usable for indexing: non-empty,
// no nil entries, and every graph's ID equal to its position (the
// invariant NewDatabase establishes). Index builders and snapshot
// loaders call this instead of re-implementing the pre-pass.
func (db Database) Validate() error {
	if len(db) == 0 {
		return fmt.Errorf("graph: empty database")
	}
	for i, g := range db {
		if g == nil {
			return fmt.Errorf("graph: database entry %d is nil", i)
		}
		if g.ID != i {
			return fmt.Errorf("graph: graph %d has ID %d; use graph.NewDatabase", i, g.ID)
		}
	}
	return nil
}

// Stats summarizes a database in the shape of the paper's Table I.
type Stats struct {
	Graphs    int     // #graphs
	AvgNodes  float64 // avg |V|
	AvgEdges  float64 // avg |E|
	NumLabels int     // #distinct node labels
}

// Stats computes dataset statistics.
func (db Database) Stats() Stats {
	var s Stats
	s.Graphs = len(db)
	labels := make(map[string]bool)
	var vs, es int
	for _, g := range db {
		vs += g.N()
		es += g.M()
		for _, l := range g.labels {
			labels[l] = true
		}
	}
	if s.Graphs > 0 {
		s.AvgNodes = float64(vs) / float64(s.Graphs)
		s.AvgEdges = float64(es) / float64(s.Graphs)
	}
	s.NumLabels = len(labels)
	return s
}
