package graph

import (
	"fmt"
	"math/rand"
)

// Generator produces random labeled graphs. It is deterministic given its
// seed, which lets datasets, workloads and experiments be reproduced.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return NewGeneratorRand(rand.New(rand.NewSource(seed)))
}

// NewGeneratorRand returns a Generator drawing from rng, which must be
// non-nil. This is the injection point the determinism policy prefers
// (see DESIGN.md): callers that thread one *rand.Rand through a whole
// experiment get a single reproducible stream instead of several
// independently seeded ones.
func NewGeneratorRand(rng *rand.Rand) *Generator {
	return &Generator{rng: rng}
}

// pickLabel draws a label index using a geometric-ish skew so that a few
// labels dominate (as in molecule datasets, where C/N/O dominate).
func (gen *Generator) pickLabel(labels []string, skew float64) string {
	if len(labels) == 1 {
		return labels[0]
	}
	if skew <= 0 {
		return labels[gen.rng.Intn(len(labels))]
	}
	// Weight label i by (1-skew)^i; sample by inverse CDF.
	x := gen.rng.Float64()
	w := 1.0
	total := 0.0
	weights := make([]float64, len(labels))
	for i := range labels {
		weights[i] = w
		total += w
		w *= 1 - skew
	}
	x *= total
	for i, wi := range weights {
		x -= wi
		if x <= 0 {
			return labels[i]
		}
	}
	return labels[len(labels)-1]
}

// RandomConnected generates a connected graph with n nodes and
// approximately m edges (at least n-1), labels drawn from labels with the
// given skew in [0,1).
func (gen *Generator) RandomConnected(n, m int, labels []string, skew float64) *Graph {
	if n <= 0 {
		return New(-1)
	}
	g := New(-1)
	for i := 0; i < n; i++ {
		g.AddNode(gen.pickLabel(labels, skew))
	}
	// Random spanning tree: attach node i to a random previous node.
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, gen.rng.Intn(i))
	}
	// Extra edges up to m.
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.M() < m {
		u := gen.rng.Intn(n)
		v := gen.rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// MoleculeLike generates a connected sparse graph shaped like a small
// organic molecule: a tree backbone plus a few ring-closing edges. n is the
// node count; rings is the number of extra cycle edges.
func (gen *Generator) MoleculeLike(n, rings int, labels []string, skew float64) *Graph {
	g := New(-1)
	for i := 0; i < n; i++ {
		g.AddNode(gen.pickLabel(labels, skew))
	}
	// Backbone: preferential chain — mostly a path with short branches,
	// like molecule skeletons.
	for i := 1; i < n; i++ {
		parent := i - 1
		if i > 2 && gen.rng.Float64() < 0.3 {
			parent = i - 1 - gen.rng.Intn(min(i-1, 3)) - 0
			if parent < 0 {
				parent = 0
			}
		}
		g.MustAddEdge(i, parent)
	}
	// Ring closures between nearby nodes (5-7 apart), as in aromatic rings.
	for r := 0; r < rings && n > 6; r++ {
		for tries := 0; tries < 16; tries++ {
			u := gen.rng.Intn(n - 5)
			span := 4 + gen.rng.Intn(3)
			v := u + span
			if v < n && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
				break
			}
		}
	}
	return g
}

// CFGLike generates a control-flow-graph-like structure: a chain of basic
// blocks with forward branches (if/else diamonds) and back edges (loops).
func (gen *Generator) CFGLike(n int, labels []string, skew float64) *Graph {
	g := New(-1)
	for i := 0; i < n; i++ {
		g.AddNode(gen.pickLabel(labels, skew))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, i-1)
	}
	// Forward branch edges (skip 2-4 blocks) and back edges (loops).
	branches := n / 4
	for b := 0; b < branches; b++ {
		u := gen.rng.Intn(n)
		d := 2 + gen.rng.Intn(3)
		v := u + d
		if gen.rng.Float64() < 0.3 { // back edge
			v = u - d
		}
		if v >= 0 && v < n && u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// EditOp identifies one of the five GED edit operation kinds.
type EditOp int

// The five edit operations of Sec. III-A.
const (
	OpNodeInsert EditOp = iota
	OpNodeDelete
	OpEdgeInsert
	OpEdgeDelete
	OpRelabel
)

// String implements fmt.Stringer.
func (op EditOp) String() string {
	switch op {
	case OpNodeInsert:
		return "node-insert"
	case OpNodeDelete:
		return "node-delete"
	case OpEdgeInsert:
		return "edge-insert"
	case OpEdgeDelete:
		return "edge-delete"
	case OpRelabel:
		return "relabel"
	default:
		return fmt.Sprintf("EditOp(%d)", int(op))
	}
}

// Mutate returns a copy of g with ops random edit operations applied. Each
// applied operation is a single GED edit, so d(g, result) <= ops. The
// result is kept connected and non-empty; labels for inserts/relabels are
// drawn from labels.
func (gen *Generator) Mutate(g *Graph, ops int, labels []string) *Graph {
	c := g.Clone()
	c.ID = -1
	for i := 0; i < ops; i++ {
		gen.mutateOnce(c, labels)
	}
	return c
}

func (gen *Generator) mutateOnce(g *Graph, labels []string) {
	for tries := 0; tries < 32; tries++ {
		switch EditOp(gen.rng.Intn(5)) {
		case OpNodeInsert:
			// Insert a leaf attached to a random node (node insert; its
			// edge counts as a separate edit in GED but attaching keeps
			// the graph connected — callers treat ops as approximate).
			u := g.AddNode(gen.pickLabel(labels, 0))
			if g.N() > 1 {
				g.MustAddEdge(u, gen.rng.Intn(g.N()-1))
			}
			return
		case OpNodeDelete:
			if g.N() <= 2 {
				continue
			}
			u := gen.rng.Intn(g.N())
			if g.Degree(u) != 1 { // only delete leaves to preserve connectivity
				continue
			}
			removeLeaf(g, u)
			return
		case OpEdgeInsert:
			if g.N() < 2 {
				continue
			}
			u := gen.rng.Intn(g.N())
			v := gen.rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
				return
			}
		case OpEdgeDelete:
			if g.M() == 0 {
				continue
			}
			es := g.Edges()
			e := es[gen.rng.Intn(len(es))]
			// Only delete cycle edges to preserve connectivity.
			if g.Degree(e[0]) > 1 && g.Degree(e[1]) > 1 && inCycle(g, e[0], e[1]) {
				removeEdge(g, e[0], e[1])
				return
			}
		case OpRelabel:
			if g.N() == 0 || len(labels) < 2 {
				continue
			}
			u := gen.rng.Intn(g.N())
			nl := labels[gen.rng.Intn(len(labels))]
			if nl != g.Label(u) {
				g.SetLabel(u, nl)
				return
			}
		}
	}
}

// removeLeaf removes degree-1 node u from g, renumbering the last node into
// its slot.
func removeLeaf(g *Graph, u int) {
	if g.Degree(u) == 1 {
		removeEdge(g, u, g.adj[u][0])
	}
	last := g.N() - 1
	if u != last {
		// Move node `last` into slot u.
		g.labels[u] = g.labels[last]
		neighbors := append([]int(nil), g.adj[last]...)
		for _, v := range neighbors {
			removeEdge(g, last, v)
		}
		g.adj[u] = nil
		for _, v := range neighbors {
			g.MustAddEdge(u, v)
		}
	}
	g.labels = g.labels[:last]
	g.adj = g.adj[:last]
}

func removeEdge(g *Graph, u, v int) {
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.edges--
}

func removeSorted(ns []int, v int) []int {
	for i, x := range ns {
		if x == v {
			return append(ns[:i], ns[i+1:]...)
		}
	}
	return ns
}

// inCycle reports whether removing edge {u,v} keeps u reachable from v.
func inCycle(g *Graph, u, v int) bool {
	seen := make(map[int]bool, g.N())
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.Neighbors(x) {
			if x == u && y == v {
				continue // skip the edge itself
			}
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
