package graph_test

import (
	"fmt"
	"os"

	"github.com/lansearch/lan/graph"
)

func ExampleGraph() {
	g := graph.New(-1)
	c := g.AddNode("C")
	n := g.AddNode("N")
	o := g.AddNode("O")
	g.MustAddEdge(c, n)
	g.MustAddEdge(n, o)
	fmt.Println(g.N(), g.M(), g.Label(n), g.Neighbors(n))
	// Output: 3 2 N [0 2]
}

func ExampleWL() {
	// A path A-B-A: the endpoints stay indistinguishable at every WL
	// iteration; the center is separated from iteration 0 on.
	g := graph.New(-1)
	g.AddNode("A")
	g.AddNode("B")
	g.AddNode("A")
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)

	wl := graph.WL(g, 2)
	fmt.Println(wl.Classes)
	fmt.Println(wl.Labels[2][0] == wl.Labels[2][2])
	// Output:
	// [2 2 2]
	// true
}

func ExampleGenerator_Mutate() {
	gen := graph.NewGenerator(7)
	base := gen.MoleculeLike(10, 1, []string{"C", "N", "O"}, 0.3)
	variant := gen.Mutate(base, 2, []string{"C", "N", "O"})
	// Two edit operations: the variant stays close in size.
	fmt.Println(base.N() == variant.N() || base.N() == variant.N()+1 || base.N()+1 == variant.N())
	// Output: true
}

func ExampleWriteText() {
	g := graph.New(0)
	g.AddNode("A")
	g.AddNode("B")
	g.MustAddEdge(0, 1)
	graph.WriteText(os.Stdout, graph.Database{g})
	// Output:
	// t # 0
	// v 0 A
	// v 1 B
	// e 0 1
}
