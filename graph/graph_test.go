package graph

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, labels ...string) *Graph {
	t.Helper()
	g := New(-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New(7)
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("A")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("node ids = %d,%d,%d; want 0,1,2", a, b, c)
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N,M = %d,%d; want 3,2", g.N(), g.M())
	}
	if !g.HasEdge(b, a) || !g.HasEdge(c, b) || g.HasEdge(a, c) {
		t.Fatalf("adjacency wrong: %v", g.Edges())
	}
	if got := g.Degree(b); got != 2 {
		t.Fatalf("Degree(b) = %d; want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(-1)
	g.AddNode("A")
	g.AddNode("B")
	cases := []struct {
		u, v int
	}{
		{0, 0},  // self loop
		{0, 2},  // out of range
		{-1, 0}, // negative
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v); err == nil {
			t.Errorf("AddEdge(%d,%d) succeeded; want error", c.u, c.v)
		}
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Errorf("duplicate edge accepted")
	}
}

func TestEdgesSortedAndUnique(t *testing.T) {
	g := New(-1)
	for i := 0; i < 5; i++ {
		g.AddNode("X")
	}
	g.MustAddEdge(3, 1)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(2, 0)
	es := g.Edges()
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v; want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges() = %v; want %v", es, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildPath(t, "A", "B", "C")
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatalf("clone not equal")
	}
	c.SetLabel(0, "Z")
	c.MustAddEdge(0, 2)
	if g.Label(0) != "A" || g.M() != 2 {
		t.Fatalf("mutating clone changed original")
	}
	if g.Equal(c) {
		t.Fatalf("Equal true after divergence")
	}
}

func TestLabelHelpers(t *testing.T) {
	g := buildPath(t, "C", "C", "N", "O", "C")
	hist := g.LabelHistogram()
	if hist["C"] != 3 || hist["N"] != 1 || hist["O"] != 1 {
		t.Fatalf("LabelHistogram = %v", hist)
	}
	set := g.LabelSet()
	if len(set) != 3 || set[0] != "C" || set[1] != "N" || set[2] != "O" {
		t.Fatalf("LabelSet = %v", set)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(-1)
	for i := 0; i < 6; i++ {
		g.AddNode("X")
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v; want 3 comps", comps)
	}
	if g.IsConnected() {
		t.Fatalf("IsConnected = true for disconnected graph")
	}
	g.MustAddEdge(2, 3)
	g.MustAddEdge(4, 5)
	if !g.IsConnected() {
		t.Fatalf("IsConnected = false after joining")
	}
}

func TestDatabaseStats(t *testing.T) {
	db := NewDatabase([]*Graph{
		buildPath(t, "A", "B"),
		buildPath(t, "A", "B", "C", "C"),
	})
	if db[0].ID != 0 || db[1].ID != 1 {
		t.Fatalf("NewDatabase did not assign ids")
	}
	s := db.Stats()
	if s.Graphs != 2 || s.AvgNodes != 3 || s.AvgEdges != 2 || s.NumLabels != 3 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestWLDistinguishesLabels(t *testing.T) {
	// Path A-B-A vs path A-A-B: WL iteration 1 must separate the centers.
	g1 := buildPath(t, "A", "B", "A")
	g2 := buildPath(t, "A", "A", "B")
	ls := WLJoint([]*Graph{g1, g2}, 2)
	// In g1 the two endpoints share a class at every level; in g2 the
	// endpoints differ at level 0 already.
	if ls[0].Labels[0][0] != ls[0].Labels[0][2] {
		t.Fatalf("g1 endpoints differ at iter 0")
	}
	if ls[1].Labels[0][0] == ls[1].Labels[0][2] {
		t.Fatalf("g2 endpoints equal at iter 0")
	}
	// Joint class space: node 0 of g1 (label A, neighbor B) and node 1 of
	// g2... check cross-graph consistency of iteration-0 classes.
	if ls[0].Labels[0][0] != ls[1].Labels[0][0] {
		t.Fatalf("shared label A got different class ids across graphs")
	}
}

func TestWLRefinementMonotone(t *testing.T) {
	gen := NewGenerator(1)
	labels := []string{"A", "B", "C"}
	for i := 0; i < 20; i++ {
		g := gen.RandomConnected(3+gen.rng.Intn(20), 25, labels, 0.3)
		wl := WL(g, 3)
		for l := 1; l < len(wl.Classes); l++ {
			if wl.Classes[l] < wl.Classes[l-1] {
				t.Fatalf("WL classes shrank: %v", wl.Classes)
			}
			// Refinement: same class at level l implies same class at l-1.
			for u := 0; u < g.N(); u++ {
				for v := u + 1; v < g.N(); v++ {
					if wl.Labels[l][u] == wl.Labels[l][v] && wl.Labels[l-1][u] != wl.Labels[l-1][v] {
						t.Fatalf("WL not a refinement at level %d", l)
					}
				}
			}
		}
	}
}

func TestHashIsomorphismInvariant(t *testing.T) {
	gen := NewGenerator(2)
	labels := []string{"A", "B", "C", "D"}
	for i := 0; i < 25; i++ {
		n := 4 + gen.rng.Intn(12)
		g := gen.RandomConnected(n, n+3, labels, 0.2)
		// Random permutation of node ids.
		perm := rand.New(rand.NewSource(int64(i))).Perm(n)
		h := New(-1)
		for u := 0; u < n; u++ {
			h.AddNode("")
		}
		for u := 0; u < n; u++ {
			h.SetLabel(perm[u], g.Label(u))
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e[0]], perm[e[1]])
		}
		if Hash(g, 3) != Hash(h, 3) {
			t.Fatalf("hash differs for isomorphic graphs (iter %d)", i)
		}
	}
}

func TestHashSeparatesDifferentGraphs(t *testing.T) {
	g1 := buildPath(t, "A", "B", "C")
	g2 := buildPath(t, "A", "C", "B")
	if Hash(g1, 2) == Hash(g2, 2) {
		t.Fatalf("hash collision for different label sequences")
	}
	g3 := buildPath(t, "A", "B", "C")
	g3.MustAddEdge(0, 2)
	if Hash(g1, 2) == Hash(g3, 2) {
		t.Fatalf("hash collision for different edge sets")
	}
}

func TestGeneratorsProduceValidConnectedGraphs(t *testing.T) {
	gen := NewGenerator(3)
	labels := []string{"C", "N", "O", "S", "P"}
	for i := 0; i < 40; i++ {
		n := 2 + gen.rng.Intn(30)
		gs := []*Graph{
			gen.RandomConnected(n, n+4, labels, 0.4),
			gen.MoleculeLike(n, 2, labels, 0.5),
			gen.CFGLike(n, labels, 0.2),
		}
		for j, g := range gs {
			if err := g.Validate(); err != nil {
				t.Fatalf("generator %d: %v", j, err)
			}
			if g.N() != n {
				t.Fatalf("generator %d: n = %d; want %d", j, g.N(), n)
			}
			if !g.IsConnected() {
				t.Fatalf("generator %d: disconnected graph", j)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42).MoleculeLike(20, 2, []string{"C", "N"}, 0.3)
	b := NewGenerator(42).MoleculeLike(20, 2, []string{"C", "N"}, 0.3)
	if !a.Equal(b) {
		t.Fatalf("same seed produced different graphs")
	}
}

func TestMutatePreservesValidityAndConnectivity(t *testing.T) {
	gen := NewGenerator(4)
	labels := []string{"A", "B", "C"}
	base := gen.MoleculeLike(15, 1, labels, 0.3)
	for i := 0; i < 50; i++ {
		m := gen.Mutate(base, 1+gen.rng.Intn(6), labels)
		if err := m.Validate(); err != nil {
			t.Fatalf("mutant invalid: %v", err)
		}
		if !m.IsConnected() {
			t.Fatalf("mutant disconnected")
		}
		if m.N() < 2 {
			t.Fatalf("mutant too small: n=%d", m.N())
		}
	}
	// Original untouched.
	if err := base.Validate(); err != nil || base.N() != 15 {
		t.Fatalf("base modified by Mutate: n=%d err=%v", base.N(), err)
	}
}

func TestRemoveLeafRenumbering(t *testing.T) {
	// Star: center 0 with leaves 1..4; remove leaf 1 — node 4 moves into
	// slot 1 and adjacency must stay consistent.
	g := New(-1)
	g.AddNode("center")
	for i := 1; i <= 4; i++ {
		g.AddNode("leaf" + string(rune('0'+i)))
		g.MustAddEdge(0, i)
	}
	removeLeaf(g, 1)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("after removeLeaf: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Label(1) != "leaf4" {
		t.Fatalf("slot 1 label = %q; want leaf4", g.Label(1))
	}
	if !g.HasEdge(0, 1) {
		t.Fatalf("moved node lost its edge")
	}
}

func TestTextRoundTrip(t *testing.T) {
	gen := NewGenerator(5)
	labels := []string{"C", "N", "O"}
	var db Database
	for i := 0; i < 10; i++ {
		db = append(db, gen.MoleculeLike(5+gen.rng.Intn(10), 1, labels, 0.3))
	}
	db = NewDatabase(db)

	var buf testBuffer
	if err := WriteText(&buf, db); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip count = %d; want %d", len(got), len(db))
	}
	for i := range db {
		if !db[i].Equal(got[i]) {
			t.Fatalf("graph %d changed in round trip", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	gen := NewGenerator(6)
	db := NewDatabase([]*Graph{
		gen.CFGLike(8, []string{"block", "call", "ret"}, 0.2),
		gen.MoleculeLike(12, 2, []string{"C", "N", "O"}, 0.4),
	})
	var buf testBuffer
	if err := WriteJSON(&buf, db); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	for i := range db {
		if !db[i].Equal(got[i]) {
			t.Fatalf("graph %d changed in JSON round trip", i)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	bad := []string{
		"v 0 A\n",             // v before t
		"t # 0\nv 1 A\n",      // non-dense id
		"t # 0\ne 0 1\n",      // edge out of range
		"t # 0\nv 0 A\nq x\n", // unknown record
	}
	for i, s := range bad {
		if _, err := ReadText(stringsReader(s)); err == nil {
			t.Errorf("case %d: no error for %q", i, s)
		}
	}
}

// quick-check: any graph built by the generator survives a text round trip.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		nn := int(n%25) + 2
		gen := NewGenerator(seed)
		g := gen.RandomConnected(nn, nn+3, []string{"A", "B", "C"}, 0.3)
		db := NewDatabase([]*Graph{g})
		var buf testBuffer
		if err := WriteText(&buf, db); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		return err == nil && len(got) == 1 && got[0].Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// testBuffer is a minimal io.ReadWriter over a byte slice.
type testBuffer struct {
	data []byte
	pos  int
}

func (b *testBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *testBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}

func stringsReader(s string) *testBuffer {
	return &testBuffer{data: []byte(s)}
}
