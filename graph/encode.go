package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a simple line-oriented exchange format compatible in
// spirit with the "t # id / v id label / e u v" format used by common graph
// database benchmarks (gSpan-style):
//
//	t # 0
//	v 0 C
//	v 1 N
//	e 0 1
//
// Graphs are separated by their "t" headers. Blank lines and lines starting
// with '%' or '//' are ignored.

// WriteText writes db in the line-oriented text format.
func WriteText(w io.Writer, db Database) error {
	bw := bufio.NewWriter(w)
	for _, g := range db {
		fmt.Fprintf(bw, "t # %d\n", g.ID)
		for u := 0; u < g.N(); u++ {
			fmt.Fprintf(bw, "v %d %s\n", u, g.Label(u))
		}
		for _, e := range g.Edges() {
			fmt.Fprintf(bw, "e %d %d\n", e[0], e[1])
		}
	}
	return bw.Flush()
}

// ReadText parses the line-oriented text format into a Database. Node ids
// inside each graph must be dense and in order (0,1,2,...).
func ReadText(r io.Reader) (Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var db Database
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "%") || strings.HasPrefix(txt, "//") {
			continue
		}
		f := strings.Fields(txt)
		switch f[0] {
		case "t":
			g = New(len(db))
			db = append(db, g)
		case "v":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: 'v' before 't'", line)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'v id label'", line)
			}
			id, err := strconv.Atoi(f[1])
			if err != nil || id != g.N() {
				return nil, fmt.Errorf("graph: line %d: non-dense node id %q (want %d)", line, f[1], g.N())
			}
			g.AddNode(f[2])
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: 'e' before 't'", line)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e u v'", line)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, txt)
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, g := range db {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// jsonGraph is the JSON wire form of a Graph.
type jsonGraph struct {
	ID     int      `json:"id"`
	Labels []string `json:"labels"`
	Edges  [][2]int `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{ID: g.ID, Labels: g.Labels(), Edges: g.Edges()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{ID: jg.ID}
	for _, l := range jg.Labels {
		g.AddNode(l)
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes db as a JSON array of graphs.
func WriteJSON(w io.Writer, db Database) error {
	enc := json.NewEncoder(w)
	return enc.Encode(db)
}

// ReadJSON parses a JSON array of graphs.
func ReadJSON(r io.Reader) (Database, error) {
	var db Database
	dec := json.NewDecoder(r)
	if err := dec.Decode(&db); err != nil {
		return nil, err
	}
	for _, g := range db {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return db, nil
}
