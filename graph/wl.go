package graph

import (
	"fmt"
	"sort"
	"strings"
)

// WLLabeling holds the result of L iterations of Weisfeiler-Lehman labeling
// (Sec. III-C, Eq. 2-3). Labels[l][u] is an integer class id such that two
// nodes share a class at iteration l iff they have equal WL labels — and
// hence, by the GIN equivalence of [Xu et al. 2019], provably equal GIN
// embeddings at layer l.
//
// Class ids are canonical per (graph set, iteration): they are assigned by
// first occurrence of the underlying WL string, so labelings computed by a
// single call are comparable across the graphs passed to that call.
type WLLabeling struct {
	// Labels[l][u] is the class of node u at iteration l, for l = 0..L.
	Labels [][]int
	// Classes[l] is the number of distinct classes at iteration l.
	Classes []int
}

// WL runs L iterations of Weisfeiler-Lehman labeling on g. Iteration 0 uses
// the node labels.
func WL(g *Graph, L int) *WLLabeling {
	return WLJoint([]*Graph{g}, L)[0]
}

// WLJoint runs WL labeling on several graphs with a shared class-id space,
// so class i at iteration l means the same WL label in every graph. This is
// what the cross-graph learning acceleration needs to compare node groups
// of a data graph and a query graph.
func WLJoint(gs []*Graph, L int) []*WLLabeling {
	out := make([]*WLLabeling, len(gs))
	cur := make([][]int, len(gs))

	// Iteration 0: classes from raw labels.
	dict := make(map[string]int)
	for i, g := range gs {
		out[i] = &WLLabeling{}
		cls := make([]int, g.N())
		for u := 0; u < g.N(); u++ {
			l := g.Label(u)
			id, ok := dict[l]
			if !ok {
				id = len(dict)
				dict[l] = id
			}
			cls[u] = id
		}
		cur[i] = cls
		out[i].Labels = append(out[i].Labels, cls)
	}
	n0 := len(dict)
	for i := range gs {
		out[i].Classes = append(out[i].Classes, n0)
	}

	var sb strings.Builder
	for l := 1; l <= L; l++ {
		dict := make(map[string]int)
		next := make([][]int, len(gs))
		for i, g := range gs {
			cls := make([]int, g.N())
			for u := 0; u < g.N(); u++ {
				sb.Reset()
				fmt.Fprintf(&sb, "%d|", cur[i][u])
				ns := make([]int, 0, g.Degree(u))
				for _, v := range g.Neighbors(u) {
					ns = append(ns, cur[i][v])
				}
				sort.Ints(ns)
				for _, c := range ns {
					fmt.Fprintf(&sb, "%d,", c)
				}
				key := sb.String()
				id, ok := dict[key]
				if !ok {
					id = len(dict)
					dict[key] = id
				}
				cls[u] = id
			}
			next[i] = cls
		}
		nl := len(dict)
		for i := range gs {
			cur[i] = next[i]
			out[i].Labels = append(out[i].Labels, next[i])
			out[i].Classes = append(out[i].Classes, nl)
		}
	}
	return out
}

// Hash returns a canonical string for g that is invariant under node
// reordering: the sorted multiset of final WL labels, refined for L
// iterations, together with node and edge counts. Two isomorphic graphs
// always hash equal; unequal hashes certify non-isomorphism.
func Hash(g *Graph, L int) string {
	wl := WL(g, L)
	final := wl.Labels[len(wl.Labels)-1]

	// Re-derive stable string forms per class by expanding iteratively,
	// because class ids are only canonical within one WL call. We rebuild
	// label strings bottom-up.
	strs := make([]string, g.N())
	for u := 0; u < g.N(); u++ {
		strs[u] = g.Label(u)
	}
	for l := 1; l <= L; l++ {
		next := make([]string, g.N())
		for u := 0; u < g.N(); u++ {
			ns := make([]string, 0, g.Degree(u))
			for _, v := range g.Neighbors(u) {
				ns = append(ns, strs[v])
			}
			sort.Strings(ns)
			next[u] = "(" + strs[u] + "|" + strings.Join(ns, ",") + ")"
		}
		strs = next
	}
	sort.Strings(strs)
	_ = final
	return fmt.Sprintf("n=%d;m=%d;%s", g.N(), g.M(), strings.Join(strs, ";"))
}
