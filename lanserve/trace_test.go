package lanserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lansearch/lan/internal/obs"
)

// TestSearchExportsTraces wires an exporter into the server and checks
// every executed search lands in the segment files with its query id.
func TestSearchExportsTraces(t *testing.T) {
	dir := t.TempDir()
	exp, err := obs.NewExporter(obs.ExportConfig{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Exporter: exp, CacheSize: -1})
	const n = 3
	for i := 0; i < n; i++ {
		if rec := doSearch(s, testQueryJSON(t, "")); rec.Code != http.StatusOK {
			t.Fatalf("search %d = %d body=%s", i, rec.Code, rec.Body)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	var ids []string
	stats, err := obs.ReadSegments(dir, func(tr *obs.Trace) error { ids = append(ids, tr.QueryID); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Traces != n {
		t.Fatalf("exported %d traces; want %d", stats.Traces, n)
	}
	for i, id := range ids {
		if !strings.HasPrefix(id, "q") {
			t.Errorf("trace %d has query id %q", i, id)
		}
	}
}

// TestErrorBodiesCarryQueryID pins the error contract: refused and failed
// searches name their query id in the JSON body so clients can quote it
// back at the server's logs and traces.
func TestErrorBodiesCarryQueryID(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doSearch(s, testQueryJSON(t, `,"routing":"warp"`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.QueryID == "" || !strings.HasPrefix(er.QueryID, "q") {
		t.Fatalf("400 body missing query_id: %s", rec.Body)
	}

	// 504: deadline expired during search.
	slow := newTestServer(t, Config{
		Index: &fakeSearcher{delay: 200 * time.Millisecond, n: 10},
	})
	rec = doSearch(slow, testQueryJSON(t, `,"timeout_ms":1`))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d; want 504", rec.Code)
	}
	er = errorResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.QueryID == "" {
		t.Fatalf("504 body missing query_id: %s", rec.Body)
	}
}

// TestDebugTraceByID resolves a query's trace from the ring and, when the
// ring has moved on, from the exported segments.
func TestDebugTraceByID(t *testing.T) {
	dir := t.TempDir()
	exp, err := obs.NewExporter(obs.ExportConfig{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	s := newTestServer(t, Config{Exporter: exp, TraceRing: 1, CacheSize: -1})

	if rec := doSearch(s, testQueryJSON(t, "")); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	// Ring hit: the first executed search is q1.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/q1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/q1 = %d body=%s", rec.Code, rec.Body)
	}
	var tr obs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil || tr.QueryID != "q1" {
		t.Fatalf("trace body = %s (%v)", rec.Body, err)
	}

	// Evict q1 from the one-slot ring with a second search, then resolve
	// q1 from the exported segments (the writer is async; poll).
	if rec := doSearch(s, testQueryJSON(t, "")); rec.Code != http.StatusOK {
		t.Fatalf("second search = %d", rec.Code)
	}
	if s.ring.Get("q1") != nil {
		t.Fatal("q1 still in the one-slot ring")
	}
	waitFor(t, func() bool {
		tr, err := obs.LookupExported(dir, "q1")
		return err == nil && tr != nil
	})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/q1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("exported lookup = %d body=%s", rec.Code, rec.Body)
	}

	// Unknown ids are a 404, not an error.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/zzz", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id = %d; want 404", rec.Code)
	}
}

// TestMetricsExemplars checks a traced search leaves its query id as the
// exemplar of the latency and NDC buckets it landed in.
func TestMetricsExemplars(t *testing.T) {
	s := newTestServer(t, Config{}) // default TraceRing traces every query
	if rec := doSearch(s, testQueryJSON(t, "")); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `# {trace_id="q1"}`) {
		t.Fatalf("exposition missing exemplar for q1:\n%s", body)
	}
	for _, family := range []string{"lanserve_request_seconds_bucket", "lanserve_query_ndc_bucket"} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, family) && strings.Contains(line, `trace_id="q1"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s carries no exemplar:\n%s", family, body)
		}
	}
}
