package lanserve

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a := &SearchResponse{Stats: SearchStats{NDC: 1}}
	b := &SearchResponse{Stats: SearchStats{NDC: 2}}
	d := &SearchResponse{Stats: SearchStats{NDC: 3}}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("d", d)
	if c.len() != 2 {
		t.Fatalf("len = %d; want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if got, ok := c.get("a"); !ok || got.Stats.NDC != 1 {
		t.Fatalf("a lost: %+v ok=%v", got, ok)
	}
	if got, ok := c.get("d"); !ok || got.Stats.NDC != 3 {
		t.Fatalf("d lost: %+v ok=%v", got, ok)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	var c *resultCache // CacheSize < 0 yields a nil cache
	c.put("k", &SearchResponse{})
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache non-empty")
	}
}

func TestCacheKeyCanonicalUnderNodeReordering(t *testing.T) {
	// The same labeled triangle built in two node orders must share a key;
	// a structurally different graph must not.
	g1 := graph.New(-1)
	g1.AddNode("A")
	g1.AddNode("B")
	g1.AddNode("C")
	g1.MustAddEdge(0, 1)
	g1.MustAddEdge(1, 2)
	g1.MustAddEdge(0, 2)

	g2 := graph.New(-1)
	g2.AddNode("C")
	g2.AddNode("A")
	g2.AddNode("B")
	g2.MustAddEdge(1, 2)
	g2.MustAddEdge(2, 0)
	g2.MustAddEdge(1, 0)

	g3 := graph.New(-1) // path, not triangle
	g3.AddNode("A")
	g3.AddNode("B")
	g3.AddNode("C")
	g3.MustAddEdge(0, 1)
	g3.MustAddEdge(1, 2)

	p := searchParams{K: 5, Beam: 10}
	k1 := cacheKey(g1, 2, 0, p)
	k2 := cacheKey(g2, 2, 0, p)
	k3 := cacheKey(g3, 2, 0, p)
	if k1 != k2 {
		t.Fatalf("isomorphic queries got distinct keys:\n%s\n%s", k1, k2)
	}
	if k1 == k3 {
		t.Fatalf("distinct queries share a key: %s", k1)
	}
	if kp := cacheKey(g1, 2, 0, searchParams{K: 6, Beam: 10}); kp == k1 {
		t.Fatal("different k shares a key")
	}
}

func TestWorkerPoolAdmissionAndTimeout(t *testing.T) {
	p := newWorkerPool(1, 1) // 1 executing + 1 queued = 2 in system
	if !p.tryAdmit() {
		t.Fatal("first admit refused")
	}
	rel1, err := p.acquireWorker(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !p.tryAdmit() { // fills the queue slot
		t.Fatal("queue slot refused")
	}
	if p.tryAdmit() { // third request: system full
		t.Fatal("overflow admitted; want refusal (429 path)")
	}

	// The queued request times out waiting for the busy worker and gives
	// its admission slot back.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.acquireWorker(ctx); err == nil {
		t.Fatal("expected timeout while queued")
	}
	if !p.tryAdmit() {
		t.Fatal("admission slot not released after queue timeout")
	}
	p.leave()

	// Releasing the worker frees both slots.
	rel1()
	if !p.tryAdmit() {
		t.Fatal("admission slot not released by worker release")
	}
	rel2, err := p.acquireWorker(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestMetricsPrometheusRendering(t *testing.T) {
	m := newMetrics()
	m.Request()
	m.Request()
	m.Error(429)
	m.Error(504)
	m.Cache(true)
	m.Cache(false)
	m.Panic()
	m.ObserveLatency(0.002)
	m.ObserveQuery(10, 4, 100)

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lanserve_requests_total 2",
		`lanserve_errors_total{code="429"} 1`,
		`lanserve_errors_total{code="504"} 1`,
		"lanserve_rejected_total 1",
		"lanserve_timeouts_total 1",
		"lanserve_panics_total 1",
		"lanserve_cache_hits_total 1",
		"lanserve_cache_misses_total 1",
		"# TYPE lanserve_request_seconds histogram",
		"lanserve_request_seconds_count 1",
		"lanserve_query_ndc_count 1",
		"lanserve_query_ndc_sum 10",
		"lanserve_query_routing_steps_count 1",
		"lanserve_query_pruning_rate_count 1",
		"lanserve_query_pruning_rate_sum 0.9",
		`_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestNewRequiresIndex(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("Config without Index accepted")
	}
}

// fakeSearcher lets handler tests run without building a real index.
type fakeSearcher struct {
	results []lan.Result
	stats   lan.Stats
	err     error
	delay   time.Duration
	n       int
}

func (f *fakeSearcher) SearchContext(ctx context.Context, q *graph.Graph, so lan.SearchOptions) ([]lan.Result, lan.Stats, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, f.stats, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, f.stats, err
	}
	return f.results, f.stats, f.err
}

func (f *fakeSearcher) Len() int { return f.n }
