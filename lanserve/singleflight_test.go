package lanserve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
)

// testFlight returns the in-progress flight for the canonical test query,
// if any — how the tests observe that followers have joined before they
// release the leader.
func testFlight(s *Server) *flight {
	q := graph.New(-1)
	q.AddNode("A")
	q.AddNode("B")
	q.MustAddEdge(0, 1)
	key := cacheKey(q, s.cfg.WLDepth, s.indexEpoch(), searchParams{
		K: 2, Beam: 2, Routing: lan.LANRoute, Initial: lan.LANIS,
	})
	s.flights.mu.Lock()
	defer s.flights.mu.Unlock()
	return s.flights.flights[key]
}

func TestSingleflightSharesInflightResult(t *testing.T) {
	gate := make(chan struct{})
	slow := &slowSearcher{gate: gate, n: 10}
	s := newTestServer(t, Config{Index: slow, Workers: 4})

	const followers = 3
	codes := make([]int, followers+1)
	resps := make([]SearchResponse, followers+1)
	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		rec := doSearch(s, testQueryJSON(t, ""))
		codes[i] = rec.Code
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &resps[i]); err != nil {
				t.Error(err)
			}
		}
	}

	// Leader first: it must own the flight before the followers arrive.
	wg.Add(1)
	go search(0)
	waitFor(t, func() bool { return slow.started.Load() == 1 })

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go search(i)
	}
	waitFor(t, func() bool {
		f := testFlight(s)
		return f != nil && f.waiters.Load() == followers
	})
	close(gate)
	wg.Wait()

	if got := slow.started.Load(); got != 1 {
		t.Fatalf("searcher ran %d times; want 1 (followers must share the flight)", got)
	}
	shared := 0
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d; want 200", i, code)
		}
		if resps[i].Stats.NDC != 1 || len(resps[i].Results) != 1 {
			t.Fatalf("request %d: response %+v does not match the leader's computation", i, resps[i])
		}
		if resps[i].Shared {
			shared++
		}
	}
	if shared != followers {
		t.Fatalf("%d shared responses; want %d", shared, followers)
	}
	if got := s.Metrics().SingleflightSharedTotal(); got != followers {
		t.Fatalf("singleflight counter = %d; want %d", got, followers)
	}
	var sb strings.Builder
	if _, err := s.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lanserve_singleflight_shared_total 3") {
		t.Fatalf("metrics missing singleflight counter:\n%s", sb.String())
	}
}

// failOnceSearcher blocks its first call on the gate and fails it; later
// calls succeed immediately.
type failOnceSearcher struct {
	gate  chan struct{}
	calls atomic.Int32
}

func (f *failOnceSearcher) SearchContext(ctx context.Context, q *graph.Graph, so lan.SearchOptions) ([]lan.Result, lan.Stats, error) {
	if f.calls.Add(1) == 1 {
		select {
		case <-f.gate:
			return nil, lan.Stats{}, context.DeadlineExceeded
		case <-ctx.Done():
			return nil, lan.Stats{}, ctx.Err()
		}
	}
	return []lan.Result{{ID: 2, Dist: 1}}, lan.Stats{NDC: 3}, nil
}

func (f *failOnceSearcher) Len() int { return 10 }

func TestSingleflightFollowerRecoversFromLeaderFailure(t *testing.T) {
	gate := make(chan struct{})
	idx := &failOnceSearcher{gate: gate}
	s := newTestServer(t, Config{Index: idx, Workers: 4})

	var wg sync.WaitGroup
	var leaderCode int
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderCode = doSearch(s, testQueryJSON(t, "")).Code
	}()
	waitFor(t, func() bool { return idx.calls.Load() == 1 })

	var followerCode int
	var followerResp SearchResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := doSearch(s, testQueryJSON(t, ""))
		followerCode = rec.Code
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &followerResp); err != nil {
				t.Error(err)
			}
		}
	}()
	waitFor(t, func() bool {
		f := testFlight(s)
		return f != nil && f.waiters.Load() == 1
	})
	close(gate)
	wg.Wait()

	if leaderCode != http.StatusGatewayTimeout {
		t.Fatalf("leader status = %d; want 504", leaderCode)
	}
	// The follower must not inherit the leader's failure: it recomputes.
	if followerCode != http.StatusOK {
		t.Fatalf("follower status = %d; want 200", followerCode)
	}
	if followerResp.Shared || followerResp.Stats.NDC != 3 {
		t.Fatalf("follower response %+v; want a fresh (unshared) computation", followerResp)
	}
	if got := idx.calls.Load(); got != 2 {
		t.Fatalf("searcher ran %d times; want 2 (leader + recovering follower)", got)
	}
	if got := s.Metrics().SingleflightSharedTotal(); got != 0 {
		t.Fatalf("singleflight counter = %d; want 0", got)
	}
}

func TestSingleflightNoCacheBypasses(t *testing.T) {
	gate := make(chan struct{})
	slow := &slowSearcher{gate: gate, n: 10}
	s := newTestServer(t, Config{Index: slow, Workers: 4})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doSearch(s, testQueryJSON(t, ""))
	}()
	waitFor(t, func() bool { return slow.started.Load() == 1 })

	// A no_cache request for the same query must start its own search
	// rather than wait on (or share) the in-flight one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		doSearch(s, testQueryJSON(t, `,"no_cache":true`))
	}()
	waitFor(t, func() bool { return slow.started.Load() == 2 })
	if f := testFlight(s); f != nil && f.waiters.Load() != 0 {
		t.Fatalf("no_cache request joined the flight (%d waiters)", f.waiters.Load())
	}
	close(gate)
	wg.Wait()
	if got := s.Metrics().SingleflightSharedTotal(); got != 0 {
		t.Fatalf("singleflight counter = %d; want 0", got)
	}
}
