package lanserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

// throttledMetric wraps a GED metric with a switchable per-call sleep, so
// tests can make queries arbitrarily slow (deadline and saturation
// scenarios) without touching the search code. DelayNS is atomic: the
// sleeping is toggled while searches run concurrently.
type throttledMetric struct {
	inner   ged.Metric
	delayNS atomic.Int64
}

func (m *throttledMetric) Distance(a, b *graph.Graph) float64 {
	if d := m.delayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return m.inner.Distance(a, b)
}

// e2eFixture is the shared built index; building takes a few seconds, so
// every e2e scenario reuses it.
var e2e struct {
	once   sync.Once
	idx    *lan.Index
	metric *throttledMetric
	test   []*graph.Graph
	err    error
}

func e2eIndex(t *testing.T) (*lan.Index, *throttledMetric, []*graph.Graph) {
	t.Helper()
	e2e.once.Do(func() {
		spec := dataset.AIDS(0.002)
		db := spec.Generate()
		queries := dataset.Workload(db, spec, 12, 5)
		train, _, test := dataset.Split(queries)
		e2e.metric = &throttledMetric{inner: ged.MetricFunc(ged.Hungarian)}
		e2e.idx, e2e.err = lan.Build(db, train, lan.Options{
			M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 7,
			QueryMetric: e2e.metric,
		})
		e2e.test = test
	})
	if e2e.err != nil {
		t.Fatalf("building e2e index: %v", e2e.err)
	}
	return e2e.idx, e2e.metric, e2e.test
}

func searchBody(t *testing.T, q *graph.Graph, k int, extra map[string]interface{}) io.Reader {
	t.Helper()
	req := map[string]interface{}{"query": q, "k": k}
	for kk, v := range extra {
		req[kk] = v
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func postSearch(t *testing.T, ts *httptest.Server, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/search", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestEndToEnd covers the PR's acceptance scenarios against a real built
// index served over real HTTP.
func TestEndToEnd(t *testing.T) {
	idx, metric, test := e2eIndex(t)
	q := test[0]

	t.Run("ResponseMatchesLibrarySearch", func(t *testing.T) {
		srv, err := New(Config{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		want, _, err := idx.Search(q, lan.SearchOptions{K: 5, Beam: 12})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postSearch(t, ts, searchBody(t, q, 5, map[string]interface{}{"beam": 12}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d body=%s", resp.StatusCode, data)
		}
		var got SearchResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("got %d results, want %d", len(got.Results), len(want))
		}
		for i := range want {
			if got.Results[i] != want[i] {
				t.Fatalf("result %d: HTTP %+v != library %+v", i, got.Results[i], want[i])
			}
		}
		if got.Stats.NDC <= 0 || got.Stats.PruningRate <= 0 {
			t.Fatalf("missing cost telemetry: %+v", got.Stats)
		}
	})

	t.Run("RepeatedQueryIsCacheHitInMetrics", func(t *testing.T) {
		srv, err := New(Config{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		for i := 0; i < 2; i++ {
			resp, data := postSearch(t, ts, searchBody(t, q, 5, nil))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status = %d body=%s", i, resp.StatusCode, data)
			}
			var sr SearchResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Cached != (i == 1) {
				t.Fatalf("request %d: cached = %v", i, sr.Cached)
			}
		}
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mdata, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if !strings.Contains(string(mdata), "lanserve_cache_hits_total 1") {
			t.Fatalf("/metrics missing the cache hit:\n%s", mdata)
		}
		if !strings.Contains(string(mdata), "lanserve_query_ndc_count 1") {
			t.Fatalf("/metrics missing the NDC histogram:\n%s", mdata)
		}
	})

	t.Run("TightDeadlineIs504WithoutBlockingPool", func(t *testing.T) {
		srv, err := New(Config{Index: idx, Workers: 1, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		// Slow every GED call down so the query cannot finish in 1ms.
		metric.delayNS.Store(int64(2 * time.Millisecond))
		defer metric.delayNS.Store(0)

		resp, data := postSearch(t, ts, searchBody(t, q, 5, map[string]interface{}{"timeout_ms": 1}))
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d body=%s; want 504", resp.StatusCode, data)
		}

		// The single worker is free again: a normal query succeeds.
		metric.delayNS.Store(0)
		resp, data = postSearch(t, ts, searchBody(t, q, 5, nil))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follow-up status = %d body=%s; want 200", resp.StatusCode, data)
		}
	})

	t.Run("SaturationYields429WhileInFlightCompletes", func(t *testing.T) {
		srv, err := New(Config{Index: idx, Workers: 1, QueueDepth: 1, CacheSize: -1, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		metric.delayNS.Store(int64(5 * time.Millisecond))
		defer metric.delayNS.Store(0)

		// Two slow requests occupy the worker and the queue slot.
		var wg sync.WaitGroup
		codes := make([]int, 2)
		for i := range codes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, _ := postSearch(t, ts, searchBody(t, q, 5, nil))
				codes[i] = resp.StatusCode
			}(i)
		}
		// Wait until both are inside the pool, then saturate.
		deadline := time.Now().Add(5 * time.Second)
		for len(srv.pool.admit) < 2 {
			if time.Now().After(deadline) {
				t.Fatal("requests never filled the pool")
			}
			time.Sleep(time.Millisecond)
		}
		resp, data := postSearch(t, ts, searchBody(t, q, 5, nil))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d body=%s; want 429", resp.StatusCode, data)
		}

		metric.delayNS.Store(0)
		wg.Wait()
		for i, code := range codes {
			if code != http.StatusOK {
				t.Fatalf("in-flight request %d = %d; want 200", i, code)
			}
		}
		var sb strings.Builder
		if _, err := srv.Metrics().WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "lanserve_rejected_total 1") {
			t.Fatalf("metrics missing rejection:\n%s", sb.String())
		}
	})
}
