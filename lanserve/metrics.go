package lanserve

import (
	"io"
	"strconv"

	"github.com/lansearch/lan/internal/obs"
)

// Metrics is the server's observability surface, built on the shared
// internal/obs registry: request/error/cache counters, admission gauges,
// a latency histogram, and the paper's per-query cost metrics (NDC,
// routing steps, pruning rate) aggregated from core.QueryStats. NDC is
// the paper's primary efficiency measure, so the serving layer exposes it
// as a first-class signal rather than burying it in logs.
//
// Each Server owns its own registry (so two servers in one process don't
// share counters); /metrics additionally renders the process-wide
// obs.Default() families. All methods are safe for concurrent use.
type Metrics struct {
	reg *obs.Registry

	requests *obs.Counter
	errors   *obs.CounterVec
	rejected *obs.Counter // 429: admission queue full
	timeouts *obs.Counter // 504: deadline expired (queued or in flight)
	panics   *obs.Counter // recovered handler panics (also counted as 500s)

	cacheHits *obs.Counter
	cacheMiss *obs.Counter
	sfShared  *obs.Counter // responses reused from an identical in-flight query

	inflight *obs.Gauge // searches currently executing on a worker
	queued   *obs.Gauge // searches admitted but waiting for a worker

	latency *obs.Histogram // seconds, full request wall time
	ndc     *obs.Histogram // GED computations per (uncached) query
	steps   *obs.Histogram // routing steps (explored PG nodes) per query
	pruning *obs.Histogram // 1 - NDC/|DB| per query

	writes       *obs.CounterVec // /insert + /delete requests by op
	writeLatency *obs.Histogram  // seconds, applied-write wall time
}

func newMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		reg:      r,
		requests: r.Counter("lanserve_requests_total", "Search requests received."),
		errors:   r.CounterVec("lanserve_errors_total", "Non-200 responses by status code.", "code"),
		rejected: r.Counter("lanserve_rejected_total", "Requests refused with 429 (admission queue full)."),
		timeouts: r.Counter("lanserve_timeouts_total", "Requests that exceeded their deadline (504)."),
		panics:   r.Counter("lanserve_panics_total", "Recovered handler panics."),

		cacheHits: r.Counter("lanserve_cache_hits_total", "Result-cache hits."),
		cacheMiss: r.Counter("lanserve_cache_misses_total", "Result-cache misses."),
		sfShared:  r.Counter("lanserve_singleflight_shared_total", "Responses reused from an identical in-flight query."),

		inflight: r.Gauge("lanserve_inflight", "Searches currently executing."),
		queued:   r.Gauge("lanserve_queued", "Searches admitted and waiting for a worker."),

		// 10us..10s in doublings: sub-millisecond resolution for cache hits
		// and tiny-index queries at the low end, heavy ensemble-GED queries
		// on large shards at the high end.
		latency: r.Histogram("lanserve_request_seconds", "Search request wall time in seconds.", obs.ExpBuckets(1e-5, 2, 21)),
		ndc:     r.Histogram("lanserve_query_ndc", "GED computations (NDC) per executed query.", obs.ExpBuckets(1, 2, 14)),
		steps:   r.Histogram("lanserve_query_routing_steps", "Routing steps (explored PG nodes) per executed query.", obs.ExpBuckets(1, 2, 12)),
		pruning: r.Histogram("lanserve_query_pruning_rate", "Fraction of the database whose GED was never computed, per executed query.", obs.LinBuckets(0.1, 0.1, 9)),

		// 10us..10s: an insert extends the HNSW (a bounded beam search per
		// layer), a delete only stamps a tombstone.
		writes:       r.CounterVec("lanserve_write_requests_total", "Write requests received by operation (insert, delete).", "op"),
		writeLatency: r.Histogram("lanserve_write_seconds", "Applied-write wall time in seconds.", obs.ExpBuckets(1e-5, 4, 11)),
	}
}

// Request counts one admitted /search request.
func (m *Metrics) Request() { m.requests.Inc() }

// Write counts one /insert or /delete request by operation.
func (m *Metrics) Write(op string) { m.writes.With(op).Inc() }

// ObserveWrite records one applied write's wall time in seconds.
func (m *Metrics) ObserveWrite(seconds float64) { m.writeLatency.Observe(seconds) }

// Error counts one non-200 response with its status code.
func (m *Metrics) Error(code int) {
	m.errors.With(strconv.Itoa(code)).Inc()
	switch code {
	case statusTooManyRequests:
		m.rejected.Inc()
	case statusGatewayTimeout:
		m.timeouts.Inc()
	}
}

// Panic counts one recovered handler panic.
func (m *Metrics) Panic() { m.panics.Inc() }

// Cache counts one result-cache lookup.
func (m *Metrics) Cache(hit bool) {
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMiss.Inc()
	}
}

// SingleflightShared counts one response reused from an identical
// in-flight query (single-flight deduplication).
func (m *Metrics) SingleflightShared() { m.sfShared.Inc() }

// SingleflightSharedTotal returns the shared-response counter (used by
// tests).
func (m *Metrics) SingleflightSharedTotal() uint64 { return m.sfShared.Value() }

// QueueEnter / QueueExit track the admitted-but-waiting gauge.
func (m *Metrics) QueueEnter() { m.queued.Inc() }

// QueueExit decrements the waiting gauge.
func (m *Metrics) QueueExit() { m.queued.Dec() }

// WorkStart / WorkEnd track the in-flight gauge.
func (m *Metrics) WorkStart() { m.inflight.Inc() }

// WorkEnd decrements the in-flight gauge.
func (m *Metrics) WorkEnd() { m.inflight.Dec() }

// ObserveLatency records one completed request's wall time in seconds.
func (m *Metrics) ObserveLatency(seconds float64) { m.latency.Observe(seconds) }

// ObserveLatencyExemplar is ObserveLatency additionally retaining traceID
// as the landing bucket's exemplar, so a latency bucket in /metrics links
// straight to /debug/trace/<id>. Used for traced requests only; untraced
// ones take the cheaper ObserveLatency.
func (m *Metrics) ObserveLatencyExemplar(seconds float64, traceID string) {
	m.latency.ObserveExemplar(seconds, traceID)
}

// ObserveQuery records the per-query cost telemetry of one executed
// (uncached) search: NDC, routing steps, and the pruning rate
// 1 - NDC/indexSize (the fraction of the database whose GED was never
// computed — the quantity LAN's learned routing exists to maximize).
func (m *Metrics) ObserveQuery(ndc, explored, indexSize int) {
	m.ndc.Observe(float64(ndc))
	m.steps.Observe(float64(explored))
	if indexSize > 0 {
		m.pruning.Observe(1 - float64(ndc)/float64(indexSize))
	}
}

// ObserveQueryExemplar is ObserveQuery with the NDC observation retaining
// traceID as its bucket's exemplar — an outlier NDC bucket then names a
// concrete trace to replay.
func (m *Metrics) ObserveQueryExemplar(ndc, explored, indexSize int, traceID string) {
	m.ndc.ObserveExemplar(float64(ndc), traceID)
	m.steps.Observe(float64(explored))
	if indexSize > 0 {
		m.pruning.Observe(1 - float64(ndc)/float64(indexSize))
	}
}

// CacheHits returns the cache-hit counter (used by tests and /readyz-style
// introspection).
func (m *Metrics) CacheHits() uint64 { return m.cacheHits.Value() }

// WriteTo renders the server's registry in the Prometheus text exposition
// format (the process-wide families are appended by the /metrics handler,
// not here, so library users composing their own exposition keep control).
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	return m.reg.WriteTo(w)
}
