package lanserve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Metrics is the server's observability registry: a fixed inventory of
// counters, gauges and histograms rendered in the Prometheus text
// exposition format by WriteTo. Everything is stdlib — no client library —
// because the inventory is small and fixed: request/error/cache counters,
// a latency histogram, and the paper's per-query cost metrics (NDC,
// routing steps, pruning rate) aggregated from core.QueryStats. NDC is the
// paper's primary efficiency measure, so the serving layer exposes it as a
// first-class signal rather than burying it in logs.
//
// All methods are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	requests  uint64 // every /search request admitted to decoding
	errors    map[int]uint64
	cacheHits uint64
	cacheMiss uint64
	sfShared  uint64 // responses reused from an identical in-flight query
	rejected  uint64 // 429: admission queue full
	timeouts  uint64 // 504: deadline expired (queued or in flight)
	panics    uint64 // recovered handler panics (also counted as 500s)
	inflight  int64  // searches currently executing on a worker
	queued    int64  // searches admitted but waiting for a worker

	latency *histogram // seconds, full request wall time
	ndc     *histogram // GED computations per (uncached) query
	steps   *histogram // routing steps (explored PG nodes) per query
	pruning *histogram // 1 - NDC/|DB| per query
}

func newMetrics() *Metrics {
	return &Metrics{
		errors: make(map[int]uint64),
		// 100us..30s: spans in-memory tiny-index queries through heavy
		// ensemble-GED queries on large shards.
		latency: newHistogram(expBuckets(1e-4, 2.5, 14)),
		ndc:     newHistogram(expBuckets(1, 2, 14)),
		steps:   newHistogram(expBuckets(1, 2, 12)),
		pruning: newHistogram(linBuckets(0.1, 0.1, 9)),
	}
}

// expBuckets returns n upper bounds start, start*factor, ...
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// linBuckets returns n upper bounds start, start+step, ...
func linBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// histogram is a Prometheus-style cumulative histogram. Guarded by the
// owning Metrics' mutex.
type histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// quantile returns the value at quantile q (0..1) estimated from the
// bucket upper bounds — the same estimate Prometheus' histogram_quantile
// gives, good enough for tests and status pages.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Request counts one admitted /search request.
func (m *Metrics) Request() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

// Error counts one non-200 response with its status code.
func (m *Metrics) Error(code int) {
	m.mu.Lock()
	m.errors[code]++
	switch code {
	case statusTooManyRequests:
		m.rejected++
	case statusGatewayTimeout:
		m.timeouts++
	}
	m.mu.Unlock()
}

// Panic counts one recovered handler panic.
func (m *Metrics) Panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// Cache counts one result-cache lookup.
func (m *Metrics) Cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMiss++
	}
	m.mu.Unlock()
}

// SingleflightShared counts one response reused from an identical
// in-flight query (single-flight deduplication).
func (m *Metrics) SingleflightShared() {
	m.mu.Lock()
	m.sfShared++
	m.mu.Unlock()
}

// SingleflightSharedTotal returns the shared-response counter (used by
// tests).
func (m *Metrics) SingleflightSharedTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sfShared
}

// QueueEnter / QueueExit track the admitted-but-waiting gauge.
func (m *Metrics) QueueEnter() { m.mu.Lock(); m.queued++; m.mu.Unlock() }

// QueueExit decrements the waiting gauge.
func (m *Metrics) QueueExit() { m.mu.Lock(); m.queued--; m.mu.Unlock() }

// WorkStart / WorkEnd track the in-flight gauge.
func (m *Metrics) WorkStart() { m.mu.Lock(); m.inflight++; m.mu.Unlock() }

// WorkEnd decrements the in-flight gauge.
func (m *Metrics) WorkEnd() { m.mu.Lock(); m.inflight--; m.mu.Unlock() }

// ObserveLatency records one completed request's wall time in seconds.
func (m *Metrics) ObserveLatency(seconds float64) {
	m.mu.Lock()
	m.latency.observe(seconds)
	m.mu.Unlock()
}

// ObserveQuery records the per-query cost telemetry of one executed
// (uncached) search: NDC, routing steps, and the pruning rate
// 1 - NDC/indexSize (the fraction of the database whose GED was never
// computed — the quantity LAN's learned routing exists to maximize).
func (m *Metrics) ObserveQuery(ndc, explored, indexSize int) {
	m.mu.Lock()
	m.ndc.observe(float64(ndc))
	m.steps.observe(float64(explored))
	if indexSize > 0 {
		m.pruning.observe(1 - float64(ndc)/float64(indexSize))
	}
	m.mu.Unlock()
}

// CacheHits returns the cache-hit counter (used by tests and /readyz-style
// introspection).
func (m *Metrics) CacheHits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits
}

// WriteTo renders the registry in the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := &countingWriter{w: w}

	fmt.Fprintf(cw, "# HELP lanserve_requests_total Search requests received.\n# TYPE lanserve_requests_total counter\nlanserve_requests_total %d\n", m.requests)

	fmt.Fprintf(cw, "# HELP lanserve_errors_total Non-200 search responses by status code.\n# TYPE lanserve_errors_total counter\n")
	codes := make([]int, 0, len(m.errors))
	for c := range m.errors {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(cw, "lanserve_errors_total{code=\"%d\"} %d\n", c, m.errors[c])
	}

	fmt.Fprintf(cw, "# HELP lanserve_rejected_total Requests refused with 429 (admission queue full).\n# TYPE lanserve_rejected_total counter\nlanserve_rejected_total %d\n", m.rejected)
	fmt.Fprintf(cw, "# HELP lanserve_timeouts_total Requests that exceeded their deadline (504).\n# TYPE lanserve_timeouts_total counter\nlanserve_timeouts_total %d\n", m.timeouts)
	fmt.Fprintf(cw, "# HELP lanserve_panics_total Recovered handler panics.\n# TYPE lanserve_panics_total counter\nlanserve_panics_total %d\n", m.panics)
	fmt.Fprintf(cw, "# HELP lanserve_cache_hits_total Result-cache hits.\n# TYPE lanserve_cache_hits_total counter\nlanserve_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(cw, "# HELP lanserve_cache_misses_total Result-cache misses.\n# TYPE lanserve_cache_misses_total counter\nlanserve_cache_misses_total %d\n", m.cacheMiss)
	fmt.Fprintf(cw, "# HELP lanserve_singleflight_shared_total Responses reused from an identical in-flight query.\n# TYPE lanserve_singleflight_shared_total counter\nlanserve_singleflight_shared_total %d\n", m.sfShared)
	fmt.Fprintf(cw, "# HELP lanserve_inflight Searches currently executing.\n# TYPE lanserve_inflight gauge\nlanserve_inflight %d\n", m.inflight)
	fmt.Fprintf(cw, "# HELP lanserve_queued Searches admitted and waiting for a worker.\n# TYPE lanserve_queued gauge\nlanserve_queued %d\n", m.queued)

	m.latency.write(cw, "lanserve_request_seconds", "Search request wall time in seconds.")
	m.ndc.write(cw, "lanserve_query_ndc", "GED computations (NDC) per executed query.")
	m.steps.write(cw, "lanserve_query_routing_steps", "Routing steps (explored PG nodes) per executed query.")
	m.pruning.write(cw, "lanserve_query_pruning_rate", "Fraction of the database whose GED was never computed, per executed query.")

	return cw.n, nil
}

// countingWriter tracks bytes written for WriteTo's contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
