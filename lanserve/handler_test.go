package lanserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
)

func testQueryJSON(t *testing.T, extra string) *bytes.Reader {
	t.Helper()
	q := `{"query":{"labels":["A","B"],"edges":[[0,1]]},"k":2` + extra + `}`
	return bytes.NewReader([]byte(q))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Index == nil {
		cfg.Index = &fakeSearcher{
			results: []lan.Result{{ID: 3, Dist: 1}, {ID: 7, Dist: 2}},
			stats:   lan.Stats{NDC: 5, Explored: 2},
			n:       50,
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doSearch(s *Server, body *bytes.Reader) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", body))
	return rec
}

func TestHandlerSearchOKAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doSearch(s, testQueryJSON(t, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || len(resp.Results) != 2 || resp.Stats.NDC != 5 {
		t.Fatalf("bad response: %+v", resp)
	}
	if resp.Stats.PruningRate != 1-5.0/50 {
		t.Fatalf("pruning rate = %v", resp.Stats.PruningRate)
	}

	// Same query again: served from cache.
	rec = doSearch(s, testQueryJSON(t, ""))
	var resp2 SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatalf("expected cache hit: %+v", resp2)
	}
	if s.Metrics().CacheHits() != 1 {
		t.Fatalf("cache hits = %d; want 1", s.Metrics().CacheHits())
	}

	// The hit is visible on /metrics.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "lanserve_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", mrec.Body)
	}
}

func TestHandlerBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []string{
		`not json`,
		`{"k":3}`, // no query
		`{"query":{"labels":[],"edges":[]},"k":3}`,    // empty graph
		`{"query":{"labels":["A"],"edges":[]},"k":0}`, // k = 0
		`{"query":{"labels":["A"],"edges":[]},"k":1,"routing":"warp"}`,
		`{"query":{"labels":["A"],"edges":[]},"k":1,"initial":"teleport"}`,
	}
	for _, body := range cases {
		rec := doSearch(s, bytes.NewReader([]byte(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d; want 400", body, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search = %d; want 405", rec.Code)
	}
}

func TestHandlerDeadlineReturns504(t *testing.T) {
	s := newTestServer(t, Config{
		Index: &fakeSearcher{delay: 200 * time.Millisecond, n: 10},
	})
	start := time.Now()
	rec := doSearch(s, testQueryJSON(t, `,"timeout_ms":1`))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body=%s; want 504", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("504 took %s; deadline not enforced", elapsed)
	}
	// The pool is free again: an unconstrained request succeeds.
	if rec := doSearch(s, testQueryJSON(t, `,"no_cache":true`)); rec.Code != http.StatusOK {
		t.Fatalf("follow-up = %d body=%s; want 200", rec.Code, rec.Body)
	}
}

func TestHandlerAdmissionControl429(t *testing.T) {
	gate := make(chan struct{})
	slow := &slowSearcher{gate: gate, n: 10}
	s := newTestServer(t, Config{Index: slow, Workers: 1, QueueDepth: 1, CacheSize: -1})

	// Fill the worker and the queue with two in-flight requests.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doSearch(s, testQueryJSON(t, "")).Code
		}(i)
	}
	waitFor(t, func() bool { return slow.started.Load() >= 1 })
	waitFor(t, func() bool { return len(s.pool.admit) == 2 })

	// The system is full: the third request is refused immediately.
	start := time.Now()
	rec := doSearch(s, testQueryJSON(t, ""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d; want 429", rec.Code)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("429 was not immediate")
	}

	// In-flight queries still complete once unblocked.
	close(gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request %d = %d; want 200", i, code)
		}
	}

	var sb strings.Builder
	if _, err := s.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lanserve_rejected_total 1") {
		t.Fatalf("metrics missing rejection:\n%s", sb.String())
	}
}

func TestHandlerPanicRecoveredAs500(t *testing.T) {
	s := newTestServer(t, Config{Index: &panickySearcher{}})
	rec := doSearch(s, testQueryJSON(t, ""))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d; want 500", rec.Code)
	}
	var sb strings.Builder
	if _, err := s.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lanserve_panics_total 1") {
		t.Fatalf("panic not counted:\n%s", sb.String())
	}
	// The server is still alive.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", rec.Code)
	}
}

func TestReadyzDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d; want 200", rec.Code)
	}
	s.BeginDrain()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d; want 503", rec.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// slowSearcher blocks until its gate closes (or the context dies).
type slowSearcher struct {
	gate    chan struct{}
	started atomic.Int32
	n       int
}

func (s *slowSearcher) SearchContext(ctx context.Context, q *graph.Graph, so lan.SearchOptions) ([]lan.Result, lan.Stats, error) {
	s.started.Add(1)
	select {
	case <-s.gate:
		return []lan.Result{{ID: 1, Dist: 0}}, lan.Stats{NDC: 1}, nil
	case <-ctx.Done():
		return nil, lan.Stats{}, ctx.Err()
	}
}

func (s *slowSearcher) Len() int { return s.n }

// panickySearcher exercises the recovery middleware.
type panickySearcher struct{}

func (p *panickySearcher) SearchContext(ctx context.Context, q *graph.Graph, so lan.SearchOptions) ([]lan.Result, lan.Stats, error) {
	panic(fmt.Sprintf("query with %d nodes hit a bug", q.N()))
}

func (p *panickySearcher) Len() int { return 1 }
