package lanserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

// fakeWriter is a Mutable whose Insert blocks until its gate closes,
// for exercising write admission without a real index.
type fakeWriter struct {
	mu      sync.Mutex
	gate    chan struct{}
	inserts int
	deletes int
}

func (f *fakeWriter) Insert(g *graph.Graph) (int, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inserts++
	return f.inserts - 1, nil
}

func (f *fakeWriter) Delete(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 0 {
		return fmt.Errorf("no graph with id %d", id)
	}
	f.deletes++
	return nil
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body))))
	return rec
}

func TestWriteEndpointsReadOnlyServer501(t *testing.T) {
	s := newTestServer(t, Config{}) // no Writer
	for _, path := range []string{"/insert", "/delete"} {
		rec := postJSON(t, s, path, `{}`)
		if rec.Code != http.StatusNotImplemented {
			t.Errorf("POST %s on read-only server = %d; want 501", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/insert", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert = %d; want 405", rec.Code)
	}
}

func TestWriteEndpointsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Writer: &fakeWriter{}})
	cases := []struct{ path, body string }{
		{"/insert", `not json`},
		{"/insert", `{}`},                                 // no graph
		{"/insert", `{"graph":{"labels":[],"edges":[]}}`}, // empty graph
		{"/delete", `not json`},
		{"/delete", `{"id":-1}`}, // writer rejects
	}
	for _, c := range cases {
		rec := postJSON(t, s, c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d; want 400", c.path, c.body, rec.Code)
		}
	}
}

func TestWriteAdmissionFullQueue429(t *testing.T) {
	gate := make(chan struct{})
	fw := &fakeWriter{gate: gate}
	s := newTestServer(t, Config{Writer: fw, WriteQueueDepth: 1})

	// One write occupies the single slot; a concurrent one is refused.
	done := make(chan int, 1)
	go func() {
		done <- postJSON(t, s, "/insert", `{"graph":{"labels":["A"],"edges":[]}}`).Code
	}()
	waitFor(t, func() bool { return len(s.writeSlots) == 1 })
	if rec := postJSON(t, s, "/delete", `{"id":0}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("write while queue full = %d; want 429", rec.Code)
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight insert = %d; want 200", code)
	}
	// The slot is free again.
	waitFor(t, func() bool { return len(s.writeSlots) == 0 })
	if rec := postJSON(t, s, "/delete", `{"id":0}`); rec.Code != http.StatusOK {
		t.Fatalf("follow-up delete = %d; want 200", rec.Code)
	}

	var sb strings.Builder
	if _, err := s.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lanserve_write_requests_total{op="insert"} 1`,
		`lanserve_write_requests_total{op="delete"} 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}

// TestWriteEndToEnd drives the full write path against a real built
// index over real HTTP: an inserted graph becomes searchable (and the
// epoch-keyed cache drops its pre-write entries), a deleted graph
// disappears from results, and the write metrics land on /metrics.
func TestWriteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real index")
	}
	spec := dataset.AIDS(0.001)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 8, 11)
	train, _, test := dataset.Split(queries)
	idx, err := lan.Build(db, train, lan.Options{
		M: 4, Dim: 6, GammaKNN: 5, Epochs: 1, Seed: 3,
		QueryMetric: ged.MetricFunc(ged.Hungarian),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	srv, err := New(Config{Index: idx, Writer: idx})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := test[0]
	search := func() SearchResponse {
		t.Helper()
		resp, data := postSearch(t, ts, searchBody(t, q, 3, map[string]interface{}{"beam": 8}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search = %d body=%s", resp.StatusCode, data)
		}
		var sr SearchResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	// Warm the cache, then prove the hit.
	search()
	if !search().Cached {
		t.Fatal("identical pre-write query was not a cache hit")
	}

	// Insert the query graph itself: GED(q, q) = 0, so it must surface
	// as the top result afterwards.
	body, err := json.Marshal(map[string]interface{}{"graph": q})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert = %d body=%s", resp.StatusCode, data)
	}
	var ins InsertResponse
	if err := json.Unmarshal(data, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != len(db) || ins.Epoch == 0 {
		t.Fatalf("insert response = %+v; want id %d, epoch > 0", ins, len(db))
	}

	// The write bumped the epoch: the cached entry is orphaned and the
	// fresh search finds the inserted graph at distance 0.
	after := search()
	if after.Cached {
		t.Fatal("post-insert search served the stale cached entry")
	}
	if len(after.Results) == 0 || after.Results[0].ID != ins.ID || after.Results[0].Dist != 0 {
		t.Fatalf("inserted graph not the top result: %+v", after.Results)
	}

	// Delete it again: gone from results, epoch bumped once more.
	body, _ = json.Marshal(map[string]int{"id": ins.ID})
	resp, err = http.Post(ts.URL+"/delete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d body=%s", resp.StatusCode, data)
	}
	var del DeleteResponse
	if err := json.Unmarshal(data, &del); err != nil {
		t.Fatal(err)
	}
	if del.Epoch <= ins.Epoch {
		t.Fatalf("delete epoch %d not past insert epoch %d", del.Epoch, ins.Epoch)
	}
	final := search()
	if final.Cached {
		t.Fatal("post-delete search served a stale cached entry")
	}
	for _, r := range final.Results {
		if r.ID == ins.ID {
			t.Fatalf("deleted graph %d still in results: %+v", ins.ID, final.Results)
		}
	}

	// Write telemetry is exposed.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`lanserve_write_requests_total{op="insert"} 1`,
		`lanserve_write_requests_total{op="delete"} 1`,
		"lanserve_write_seconds_count 2",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mdata)
		}
	}
}
