// Package lanserve is the query-serving subsystem: a stdlib-only HTTP/JSON
// server over a built LAN index (flat or sharded) with admission control,
// per-request deadlines, an LRU result cache keyed by the query's canonical
// WL hash, and first-class observability. The paper's contribution is
// cutting expensive GED calls during routing; the serving layer meters
// exactly that — NDC, routing steps and pruning rate are exported per query
// on /metrics alongside the usual request/error/latency signals.
//
// Endpoints:
//
//	POST /search   — answer one k-ANN query (JSON in/out)
//	POST /insert   — add one graph to the index (requires Config.Writer)
//	POST /delete   — tombstone one graph by id (requires Config.Writer)
//	GET  /metrics  — Prometheus text exposition
//	GET  /healthz  — process liveness (always 200)
//	GET  /readyz   — readiness; 503 while draining
//	GET  /debug/trace/last — the most recent per-query routing traces
//	     /debug/pprof/* — opt-in (Config.EnablePprof)
//
// The server is an http.Handler; cmd/lan-serve wires it to an http.Server
// with index loading and graceful shutdown.
package lanserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	runtimepprof "runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/obs"
)

// HTTP status aliases shared with metrics.go.
const (
	statusTooManyRequests = http.StatusTooManyRequests
	statusGatewayTimeout  = http.StatusGatewayTimeout
)

// Searcher is the index the server fronts. Both *lan.Index and
// *lan.ShardedIndex implement it. Implementations must be safe for
// concurrent SearchContext calls (the defaults are). An index that also
// exposes Epoch() uint64 (both defaults do) may mutate between queries:
// the result cache folds the epoch into its keys, so entries computed
// against a superseded index version are never served again and simply
// age out of the LRU. An index without Epoch must stay immutable for the
// server's lifetime.
type Searcher interface {
	SearchContext(ctx context.Context, q *graph.Graph, so lan.SearchOptions) ([]lan.Result, lan.Stats, error)
	Len() int
}

// Mutable is the write interface of an index that accepts streaming
// updates. *lan.Index implements it; snapshot-isolated reads mean a
// server may point Config.Index and Config.Writer at the same value and
// serve searches while writes land.
type Mutable interface {
	// Insert adds one graph and returns its assigned id.
	Insert(g *graph.Graph) (int, error)
	// Delete tombstones the graph with the given id.
	Delete(id int) error
}

// Config configures a Server. Index is required; every other field has a
// serving-safe default.
type Config struct {
	// Index is the built index to serve (required).
	Index Searcher
	// Writer, when set, enables POST /insert and /delete. It is normally
	// the same *lan.Index as Index — snapshot isolation keeps concurrent
	// searches consistent while writes land. Nil leaves the server
	// read-only: the write endpoints answer 501.
	Writer Mutable
	// WriteQueueDepth caps concurrent write requests; requests beyond it
	// are refused with 429 (default 8). Writes serialize on the index's
	// write lock, so the queue bounds write-path memory, not throughput.
	WriteQueueDepth int
	// Workers caps concurrently executing searches (default GOMAXPROCS).
	Workers int
	// QueueDepth caps admitted-but-waiting searches beyond Workers;
	// requests beyond Workers+QueueDepth are refused with 429 (default 64).
	QueueDepth int
	// Timeout is the per-request deadline (default 10s). A request may
	// lower it via timeout_ms but never raise it.
	Timeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries (default
	// 1024; negative disables caching).
	CacheSize int
	// WLDepth is the Weisfeiler-Lehman refinement depth of the cache key
	// (default 2). Deeper keys distinguish more non-isomorphic queries at
	// slightly higher hashing cost.
	WLDepth int
	// MaxK and MaxBeam clamp per-request parameters (defaults 100, 4096).
	MaxK, MaxBeam int
	// MaxBodyBytes caps the /search request body (default 8 MiB).
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// TraceRing is the capacity of the /debug/trace/last ring of recent
	// per-query routing traces (default 8; negative disables tracing and
	// the endpoint answers 404).
	TraceRing int
	// SlowQuery, when positive, logs the full routing trace of every
	// executed search whose total time reaches the threshold (via Logger).
	SlowQuery time.Duration
	// Logger, when set, receives structured records for failed requests,
	// recovered panics and slow queries; query-scoped records always carry
	// a query_id attribute (enforced by lan-lint). Nil means silent.
	Logger *slog.Logger
	// Exporter, when set, receives every executed search's trace for
	// asynchronous JSONL export (the exporter applies its own sampling and
	// never blocks the query path). The server does not close it; the
	// process owning the exporter does, after the server has drained.
	Exporter *obs.Exporter
}

func (c *Config) defaults() error {
	if c.Index == nil {
		return errors.New("lanserve: Config.Index is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.WLDepth <= 0 {
		c.WLDepth = 2
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.MaxBeam <= 0 {
		c.MaxBeam = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.TraceRing == 0 {
		c.TraceRing = 8
	}
	if c.WriteQueueDepth <= 0 {
		c.WriteQueueDepth = 8
	}
	return nil
}

// Server serves k-ANN queries — and, with Config.Writer, streaming
// writes — over one index.
type Server struct {
	cfg      Config
	pool     *workerPool
	cache    *resultCache
	flights  *flightGroup
	metrics  *Metrics
	ring     *obs.TraceRing
	exporter *obs.Exporter
	log      *slog.Logger
	queryID  atomic.Uint64
	handler  http.Handler
	ready    atomic.Bool

	// epoch resolves the index's current version for cache keying; nil
	// when the index does not expose one (then it must be immutable).
	epoch func() uint64
	// writeSlots is the write-admission semaphore (cap WriteQueueDepth).
	writeSlots chan struct{}
}

// New validates cfg, applies defaults and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	obs.RegisterProcess()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:        cfg,
		pool:       newWorkerPool(cfg.Workers, cfg.QueueDepth),
		cache:      newResultCache(cfg.CacheSize),
		flights:    newFlightGroup(),
		metrics:    newMetrics(),
		ring:       obs.NewTraceRing(cfg.TraceRing),
		exporter:   cfg.Exporter,
		log:        logger,
		writeSlots: make(chan struct{}, cfg.WriteQueueDepth),
	}
	if ep, ok := cfg.Index.(interface{ Epoch() uint64 }); ok {
		s.epoch = ep.Epoch
	}
	s.ready.Store(true)

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace/last", s.handleTraceLast)
	mux.HandleFunc("/debug/trace/", s.handleTraceByID)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.recovered(mux)
	return s, nil
}

// Handler returns the server's HTTP handler (panic recovery included).
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics exposes the server's registry (for embedding and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain flips /readyz to 503 so load balancers stop sending new
// traffic; call it before http.Server.Shutdown, which then drains the
// connections that are already in flight.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// recovered is the panic-to-500 middleware. Handler panics are recovered,
// counted, and answered with a JSON 500 — one bad request must not abort
// the process serving everyone else. (The lan library itself returns
// errors rather than panicking — the lan-lint libpanic policy — so this is
// defense in depth, not a license.)
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.metrics.Panic()
				s.metrics.Error(http.StatusInternalServerError)
				// A panic can escape any endpoint, before a query id exists.
				//lint:allow slogqid panic recovery covers non-query endpoints
				s.log.Error("panic recovered", "path", r.URL.Path, "panic", fmt.Sprint(v))
				writeJSONError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// SearchRequest is the JSON body of POST /search.
type SearchRequest struct {
	// Query is the query graph ({"labels": [...], "edges": [[u,v], ...]}).
	Query *graph.Graph `json:"query"`
	// K is the number of neighbors to return (required, clamped to MaxK).
	K int `json:"k"`
	// Beam is the candidate pool size (default K, clamped to MaxBeam).
	Beam int `json:"beam,omitempty"`
	// Routing is "lan" (default), "baseline" or "oracle".
	Routing string `json:"routing,omitempty"`
	// Initial is "lan" (default), "hnsw" or "rand".
	Initial string `json:"initial,omitempty"`
	// TimeoutMS lowers the server's per-request deadline for this query.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache (the response is still stored).
	NoCache bool `json:"no_cache,omitempty"`
}

// SearchResponse is the JSON body of a successful /search.
type SearchResponse struct {
	Results []lan.Result `json:"results"`
	Stats   SearchStats  `json:"stats"`
	// Cached reports whether the response was served from the result
	// cache; Stats then describe the original computation.
	Cached bool `json:"cached"`
	// Shared reports that an identical query was already in flight and
	// this response reuses its computation (single-flight deduplication);
	// Stats describe that shared computation.
	Shared bool `json:"shared,omitempty"`
}

// SearchStats is the wire form of the per-query cost breakdown.
type SearchStats struct {
	NDC           int     `json:"ndc"`
	Explored      int     `json:"routing_steps"`
	RankerCalls   int     `json:"ranker_calls"`
	ISPredictions int     `json:"is_predictions"`
	PruningRate   float64 `json:"pruning_rate"`
	DistMicros    int64   `json:"dist_us"`
	ModelMicros   int64   `json:"model_us"`
	TotalMicros   int64   `json:"total_us"`

	// Per-stage breakdown (added with internal/obs; zero-value omitted
	// fields keep old clients decoding unchanged).
	InitNDC       int     `json:"ndc_initial,omitempty"`
	RouteNDC      int     `json:"ndc_routing,omitempty"`
	BatchesOpened int     `json:"batches_opened,omitempty"`
	GammaSteps    int     `json:"gamma_steps,omitempty"`
	NeighborPrune float64 `json:"neighbor_prune_rate,omitempty"`
	DistCacheHits int     `json:"dist_cache_hits,omitempty"`
	InitMicros    int64   `json:"init_us,omitempty"`
	RouteMicros   int64   `json:"route_us,omitempty"`
}

// errorResponse is the JSON body of every non-200 /search outcome.
// QueryID is set on search failures so a refused or timed-out request can
// be correlated with server logs and exported traces.
type errorResponse struct {
	Error   string `json:"error"`
	QueryID string `json:"query_id,omitempty"`
}

// searchParams are the validated, clamped search knobs (also the cache-key
// payload).
type searchParams struct {
	K, Beam int
	Routing lan.RoutingStrategy
	Initial lan.InitialStrategy
}

func (s *Server) parseRequest(r *http.Request) (*SearchRequest, searchParams, error) {
	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return nil, searchParams{}, fmt.Errorf("bad request body: %v", err)
	}
	if req.Query == nil || req.Query.N() == 0 {
		return nil, searchParams{}, errors.New("need a non-empty query graph")
	}
	if err := req.Query.Validate(); err != nil {
		return nil, searchParams{}, fmt.Errorf("bad query graph: %v", err)
	}
	if req.K <= 0 {
		return nil, searchParams{}, errors.New("need k > 0")
	}
	p := searchParams{K: req.K, Beam: req.Beam}
	if p.K > s.cfg.MaxK {
		p.K = s.cfg.MaxK
	}
	if p.Beam < p.K {
		p.Beam = p.K
	}
	if p.Beam > s.cfg.MaxBeam {
		p.Beam = s.cfg.MaxBeam
	}
	switch req.Routing {
	case "", "lan":
		p.Routing = lan.LANRoute
	case "baseline":
		p.Routing = lan.BaselineRoute
	case "oracle":
		p.Routing = lan.OracleRoute
	default:
		return nil, searchParams{}, fmt.Errorf("unknown routing %q (want lan, baseline or oracle)", req.Routing)
	}
	switch req.Initial {
	case "", "lan":
		p.Initial = lan.LANIS
	case "hnsw":
		p.Initial = lan.HNSWIS
	case "rand":
		p.Initial = lan.RandIS
	default:
		return nil, searchParams{}, fmt.Errorf("unknown initial %q (want lan, hnsw or rand)", req.Initial)
	}
	return &req, p, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	s.metrics.Request()
	// The query id exists from the first byte of handling, so every error
	// body and log line — 400s included — can name the request.
	qid := "q" + strconv.FormatUint(s.queryID.Add(1), 10)
	fail := func(code int, msg string) {
		s.metrics.Error(code)
		s.metrics.ObserveLatency(time.Since(start).Seconds())
		s.log.Warn("search failed", "query_id", qid, "code", code, "err", msg)
		writeJSON(w, code, errorResponse{Error: msg, QueryID: qid})
	}

	req, params, err := s.parseRequest(r)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}

	// Cache lookup before admission: hits cost no worker and no GED. The
	// key carries the index epoch, so entries computed before a write are
	// dead letters afterwards (lazy invalidation — they age out of the
	// LRU instead of being swept).
	var key string
	if s.cache != nil {
		key = cacheKey(req.Query, s.cfg.WLDepth, s.indexEpoch(), params)
		if !req.NoCache {
			if resp, ok := s.cache.get(key); ok {
				s.metrics.Cache(true)
				s.metrics.ObserveLatency(time.Since(start).Seconds())
				hit := *resp
				hit.Cached = true
				writeJSON(w, http.StatusOK, &hit)
				return
			}
		}
		s.metrics.Cache(false)
	}

	// Deadline: the server's ceiling, lowered by the request if asked.
	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Single-flight deduplication: if an identical query (same cache key)
	// is already being computed, wait for its answer instead of admitting
	// a duplicate search. Sits between the cache miss and admission so it
	// costs nothing on hits and spends no worker on duplicates. NoCache
	// requests bypass it — they asked for a fresh computation.
	var (
		fl         *flight
		leaderResp *SearchResponse
	)
	defer func() {
		if fl != nil {
			// Publish on every exit path (nil = failed); a leaked flight
			// would stall followers until their deadlines.
			s.flights.complete(key, fl, leaderResp)
		}
	}()
	if s.cache != nil && !req.NoCache {
		f, leader := s.flights.join(key)
		if leader {
			fl = f
		} else {
			select {
			case <-f.done:
				if f.resp != nil {
					s.metrics.SingleflightShared()
					s.metrics.ObserveLatency(time.Since(start).Seconds())
					shared := *f.resp
					shared.Shared = true
					writeJSON(w, http.StatusOK, &shared)
					return
				}
				// The leader failed; its error may have been specific to
				// that request (deadline, disconnect), so compute our own.
			case <-ctx.Done():
				fail(http.StatusGatewayTimeout, "deadline expired while awaiting identical in-flight query")
				return
			}
		}
	}

	// Admission control: refuse instantly when the system is full.
	if !s.pool.tryAdmit() {
		fail(http.StatusTooManyRequests, "admission queue full")
		return
	}
	s.metrics.QueueEnter()
	release, err := s.pool.acquireWorker(ctx)
	s.metrics.QueueExit()
	if err != nil {
		// Deadline expired (or client left) while queued; the admission
		// slot has already been released by acquireWorker.
		fail(http.StatusGatewayTimeout, "deadline expired while queued")
		return
	}

	// Per-query trace, recorded into the /debug/trace/last ring, the
	// slow-query log and the async exporter. Tracing never changes results
	// or NDC (the recorder only observes), so cached and traced responses
	// stay identical.
	var qt *obs.Trace
	if s.ring != nil || s.cfg.SlowQuery > 0 || s.exporter != nil {
		qt = obs.NewTrace(qid)
	}

	s.metrics.WorkStart()
	var (
		res   []lan.Result
		stats lan.Stats
	)
	// pprof labels attribute CPU samples of this goroutine (and the
	// query's worker-pool goroutines inheriting the context) to the query
	// and its strategy.
	runtimepprof.Do(obs.With(ctx, qt), runtimepprof.Labels(
		"query_id", qid,
		"strategy", params.Routing.String(),
	), func(ctx context.Context) {
		res, stats, err = s.cfg.Index.SearchContext(ctx, req.Query, lan.SearchOptions{
			K: params.K, Beam: params.Beam, Routing: params.Routing, Initial: params.Initial,
		})
	})
	s.metrics.WorkEnd()
	release()
	s.ring.Add(qt)
	if s.exporter != nil {
		s.exporter.Submit(qt)
	}
	if s.cfg.SlowQuery > 0 && stats.Total >= s.cfg.SlowQuery {
		if data, jerr := qt.JSON(); jerr == nil {
			s.log.Warn("slow query",
				"query_id", qid,
				"total_us", stats.Total.Microseconds(),
				"threshold_us", s.cfg.SlowQuery.Microseconds(),
				"trace", json.RawMessage(data))
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusGatewayTimeout, "deadline expired during search")
		case errors.Is(err, context.Canceled):
			fail(http.StatusGatewayTimeout, "request canceled")
		default:
			fail(http.StatusInternalServerError, err.Error())
		}
		return
	}

	indexSize := s.cfg.Index.Len()
	pruning := 0.0
	if indexSize > 0 {
		pruning = 1 - float64(stats.NDC)/float64(indexSize)
	}
	resp := &SearchResponse{
		Results: res,
		Stats: SearchStats{
			NDC:           stats.NDC,
			Explored:      stats.Explored,
			RankerCalls:   stats.RankerCalls,
			ISPredictions: stats.ISPredictions,
			PruningRate:   pruning,
			DistMicros:    stats.DistTime.Microseconds(),
			ModelMicros:   stats.ModelTime.Microseconds(),
			TotalMicros:   stats.Total.Microseconds(),

			InitNDC:       stats.InitNDC,
			RouteNDC:      stats.RouteNDC,
			BatchesOpened: stats.BatchesOpened,
			GammaSteps:    stats.GammaSteps,
			NeighborPrune: stats.PruneRate(),
			DistCacheHits: stats.DistCacheHits,
			InitMicros:    stats.InitTime.Microseconds(),
			RouteMicros:   stats.RouteTime.Microseconds(),
		},
	}
	if s.cache != nil {
		s.cache.put(key, resp)
	}
	leaderResp = resp
	if qt != nil {
		// Traced queries leave their id as the bucket exemplar, linking
		// /metrics outliers to /debug/trace/<id>.
		s.metrics.ObserveQueryExemplar(stats.NDC, stats.Explored, indexSize, qid)
		s.metrics.ObserveLatencyExemplar(time.Since(start).Seconds(), qid)
	} else {
		s.metrics.ObserveQuery(stats.NDC, stats.Explored, indexSize)
		s.metrics.ObserveLatency(time.Since(start).Seconds())
	}
	writeJSON(w, http.StatusOK, resp)
}

// indexEpoch returns the index's current version, 0 when the index does
// not expose one (immutable by contract, so 0 is a stable key).
func (s *Server) indexEpoch() uint64 {
	if s.epoch == nil {
		return 0
	}
	return s.epoch()
}

// InsertRequest is the JSON body of POST /insert.
type InsertRequest struct {
	// Graph is the graph to add ({"labels": [...], "edges": [[u,v], ...]}).
	Graph *graph.Graph `json:"graph"`
}

// InsertResponse is the JSON body of a successful /insert.
type InsertResponse struct {
	// ID is the new graph's index-assigned id, usable in /delete and
	// matching the ids /search returns.
	ID int `json:"id"`
	// Epoch is the index version after the insert.
	Epoch uint64 `json:"epoch"`
}

// DeleteRequest is the JSON body of POST /delete.
type DeleteRequest struct {
	// ID is the id of the graph to tombstone.
	ID int `json:"id"`
}

// DeleteResponse is the JSON body of a successful /delete.
type DeleteResponse struct {
	// Epoch is the index version after the delete.
	Epoch uint64 `json:"epoch"`
}

// admitWrite claims a write slot, failing the request when Writer is
// unset (501) or the write queue is full (429). The returned release is
// nil exactly when admission failed (the response has been written).
func (s *Server) admitWrite(w http.ResponseWriter, r *http.Request, op string) func() {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return nil
	}
	s.metrics.Write(op)
	if s.cfg.Writer == nil {
		s.metrics.Error(http.StatusNotImplemented)
		writeJSONError(w, http.StatusNotImplemented, "read-only server: no writer configured")
		return nil
	}
	select {
	case s.writeSlots <- struct{}{}:
		return func() { <-s.writeSlots }
	default:
		s.metrics.Error(statusTooManyRequests)
		writeJSONError(w, statusTooManyRequests, "write queue full")
		return nil
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	release := s.admitWrite(w, r, "insert")
	if release == nil {
		return
	}
	defer release()
	start := time.Now()

	var req InsertRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.metrics.Error(http.StatusBadRequest)
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Graph == nil || req.Graph.N() == 0 {
		s.metrics.Error(http.StatusBadRequest)
		writeJSONError(w, http.StatusBadRequest, "need a non-empty graph")
		return
	}

	id, err := s.cfg.Writer.Insert(req.Graph)
	if err != nil {
		s.metrics.Error(http.StatusBadRequest)
		//lint:allow slogqid write path has no query id
		s.log.Warn("insert failed", "err", err.Error())
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	epoch := s.indexEpoch()
	s.recordWrite("insert", id, epoch, time.Since(start))
	writeJSON(w, http.StatusOK, &InsertResponse{ID: id, Epoch: epoch})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	release := s.admitWrite(w, r, "delete")
	if release == nil {
		return
	}
	defer release()
	start := time.Now()

	var req DeleteRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.metrics.Error(http.StatusBadRequest)
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}

	if err := s.cfg.Writer.Delete(req.ID); err != nil {
		// "no graph with id" and double deletes are caller mistakes, not
		// server faults.
		s.metrics.Error(http.StatusBadRequest)
		//lint:allow slogqid write path has no query id
		s.log.Warn("delete failed", "err", err.Error())
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	epoch := s.indexEpoch()
	s.recordWrite("delete", req.ID, epoch, time.Since(start))
	writeJSON(w, http.StatusOK, &DeleteResponse{Epoch: epoch})
}

// recordWrite stamps one applied write into the metrics and, when
// tracing is on, the /debug/trace/last ring (as a trace holding a single
// write event — searches and writes interleave there in arrival order).
func (s *Server) recordWrite(op string, id int, epoch uint64, took time.Duration) {
	s.metrics.ObserveWrite(took.Seconds())
	if s.ring == nil {
		return
	}
	qt := obs.NewTrace("w" + strconv.FormatUint(s.queryID.Add(1), 10))
	qt.Event(op, id, epoch)
	s.ring.Add(qt)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.metrics.WriteTo(w); err != nil {
		//lint:allow slogqid metrics exposition is not query-scoped
		s.log.Warn("metrics write failed", "err", err.Error())
		return
	}
	// Process-wide families (lan_query_*, lan_process_*, lan_build_info)
	// follow the server's own; names are disjoint, so concatenation is a
	// valid exposition.
	if _, err := obs.Default().WriteTo(w); err != nil {
		//lint:allow slogqid metrics exposition is not query-scoped
		s.log.Warn("metrics write failed", "err", err.Error())
	}
}

// handleTraceLast serves the bounded ring of the most recent per-query
// routing traces as a JSON array, newest first. 404 when tracing is
// disabled (Config.TraceRing < 0).
func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		writeJSONError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	traces := s.ring.Last()
	out := make([]json.RawMessage, 0, len(traces))
	for _, t := range traces {
		data, err := t.JSON()
		if err != nil {
			continue
		}
		out = append(out, data)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceByID serves one trace by query id: first from the in-memory
// ring, then — when an exporter is configured — from the exported JSONL
// segments on disk, so exemplar trace ids in /metrics stay resolvable
// after the ring has moved on. 404 when neither holds the id.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" || strings.Contains(id, "/") {
		writeJSONError(w, http.StatusNotFound, "not found")
		return
	}
	t := s.ring.Get(id)
	if t == nil && s.exporter != nil {
		exported, err := obs.LookupExported(s.exporter.Dir(), id)
		if err != nil {
			//lint:allow slogqid trace lookup failures name the target id, not a live query
			s.log.Warn("trace lookup failed", "trace_id", id, "err", err.Error())
			writeJSONError(w, http.StatusInternalServerError, "trace lookup failed")
			return
		}
		t = exported
	}
	if t == nil {
		writeJSONError(w, http.StatusNotFound, "no trace with id "+id)
		return
	}
	data, err := t.JSON()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
