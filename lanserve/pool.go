package lanserve

import "context"

// workerPool bounds concurrent searches with two nested semaphores:
//
//   - admit caps the total number of requests in the system (executing +
//     waiting). Admission is non-blocking: when the system is full the
//     request is refused immediately (the server turns that into a 429),
//     which keeps overload cheap — a saturated server spends no memory or
//     scheduling on work it cannot take on.
//   - work caps the searches actually executing. An admitted request waits
//     for a worker slot, but only as long as its deadline allows: the wait
//     select also watches the request context, so a queued request whose
//     deadline expires leaves the queue without ever occupying a worker.
//
// Both channels are used as counting semaphores; no goroutines are spawned
// — the request's own goroutine executes the search, so cancellation and
// panic propagation follow the standard net/http paths.
type workerPool struct {
	admit chan struct{}
	work  chan struct{}
}

func newWorkerPool(workers, queueDepth int) *workerPool {
	return &workerPool{
		admit: make(chan struct{}, workers+queueDepth),
		work:  make(chan struct{}, workers),
	}
}

// tryAdmit claims an admission slot without blocking. The caller must
// release it with leave (directly, or through the release returned by
// acquireWorker).
func (p *workerPool) tryAdmit() bool {
	select {
	case p.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

// leave releases an admission slot claimed by tryAdmit.
func (p *workerPool) leave() { <-p.admit }

// acquireWorker blocks until a worker slot frees up or ctx is done. On
// success it returns a release function covering both slots; on
// cancellation it releases the admission slot itself and returns ctx's
// error.
func (p *workerPool) acquireWorker(ctx context.Context) (release func(), err error) {
	select {
	case p.work <- struct{}{}:
		return func() {
			<-p.work
			p.leave()
		}, nil
	case <-ctx.Done():
		p.leave()
		return nil, ctx.Err()
	}
}
