package lanserve

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/lansearch/lan/graph"
)

// resultCache is a fixed-capacity LRU over finished search responses.
//
// Keys are the query graph's canonical Weisfeiler-Lehman hash (graph.Hash)
// joined with the search parameters and the index epoch, so two
// structurally identical queries — regardless of node ordering — share an
// entry. The epoch component makes invalidation lazy: every applied write
// bumps the index epoch, orphaning all earlier entries (lookups never see
// them again; the LRU evicts them in due course) without any sweep or
// coordination with the write path. An index that does not expose an
// epoch keys everything at 0 and must stay immutable. The WL hash is a
// complete isomorphism test only up to WL-equivalence at the configured
// refinement depth; graphs that WL cannot distinguish at that depth would
// share an entry, which is the standard (and in labeled ANN workloads
// vanishingly rare) approximation this keying accepts.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *SearchResponse
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// cacheKey derives the canonical key of one (query, parameters, index
// version) triple. wlDepth is the WL refinement depth of the hash.
func cacheKey(q *graph.Graph, wlDepth int, epoch uint64, so searchParams) string {
	return fmt.Sprintf("%s|k=%d|b=%d|r=%d|i=%d|e=%d", graph.Hash(q, wlDepth), so.K, so.Beam, so.Routing, so.Initial, epoch)
}

// get returns the cached response for key and refreshes its recency.
func (c *resultCache) get(key string) (*SearchResponse, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) put(key string, resp *SearchResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	c.items[key] = el
	if c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
