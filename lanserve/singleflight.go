package lanserve

import (
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical searches: when several
// requests with the same cache key arrive while none has finished, one
// (the leader) computes the answer and the rest (followers) wait for it
// instead of burning workers on the same GED computations. Flights are
// keyed by the result cache's WL-hash key, so "identical" has exactly the
// cache's meaning; the group is only consulted between a cache miss and
// admission, keeping hits as cheap as before.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation. resp is written once by the
// leader before done is closed (nil when the leader failed), so followers
// may read it without locking after <-done. waiters counts followers that
// joined — observability for tests and future gauges.
type flight struct {
	done    chan struct{}
	resp    *SearchResponse
	waiters atomic.Int32
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller is its leader.
// The leader must call complete on every exit path — including failures —
// or followers would stall until their own deadlines expire.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.waiters.Add(1)
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// complete publishes the leader's outcome (resp is nil when the search
// failed) and wakes every follower. The flight is unregistered first, so
// requests arriving after completion start a fresh flight — by then the
// result cache answers them anyway.
func (g *flightGroup) complete(key string, f *flight, resp *SearchResponse) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.resp = resp
	close(f.done)
}
