// Command lan-bench regenerates the paper's tables and figures on the
// synthetic dataset simulators.
//
// Usage:
//
//	lan-bench -exp fig5 -scale 0.01 -k 10
//	lan-bench -exp all
//
// Valid experiment ids: tab1, fig5..fig12, all.
//
// Alongside the human-readable rows, lan-bench writes a machine-readable
// summary (recall@k, mean/median NDC split per routing stage, prune-rate
// and γ-step means, per-query latency percentiles, build time and a
// process-wide routing-metrics snapshot per dataset/beam) to
// BENCH_<timestamp>.json; -json sets an explicit path, -json off disables
// it. -trace prints one sample routing trace per dataset to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-bench: ")
	p := experiments.DefaultProtocol()
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), ", "))
		beams    = flag.String("beams", "", "comma-separated beam sizes (default from protocol)")
		budget   = flag.Int("exact-budget", 150, "A* expansion budget of the query GED ensemble (0 = approximations only)")
		data     = flag.String("datasets", "", "comma-separated dataset filter (aids,linux,pubchem,syn; default all)")
		jsonPath = flag.String("json", "", `benchmark summary path ("" = BENCH_<timestamp>.json, "off" disables)`)
		trace    = flag.Bool("trace", false, "print one sample routing trace per dataset (JSON lines) to stderr")
	)
	flag.Float64Var(&p.Scale, "scale", p.Scale, "dataset scale relative to Table I")
	flag.IntVar(&p.Queries, "queries", p.Queries, "query workload size")
	flag.IntVar(&p.K, "k", p.K, "answers per query")
	flag.IntVar(&p.Dim, "dim", p.Dim, "embedding dimension")
	flag.IntVar(&p.TrainEpochs, "epochs", p.TrainEpochs, "training epochs")
	flag.IntVar(&p.Workers, "workers", p.Workers, "index-build worker goroutines (0 = NumCPU; results are identical for every setting)")
	flag.IntVar(&p.QueryWorkers, "query-workers", p.QueryWorkers, "query-path distance workers for the parallel benchmark leg (0 = NumCPU; results are identical for every setting)")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "seed")
	flag.Parse()

	if *beams != "" {
		p.Beams = nil
		for _, f := range strings.Split(*beams, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || b <= 0 {
				log.Fatalf("bad -beams entry %q", f)
			}
			p.Beams = append(p.Beams, b)
		}
	}
	p.QueryMetric = ged.Ensemble{ExactBudget: *budget, BeamWidth: 4}
	if *data != "" {
		for _, d := range strings.Split(*data, ",") {
			p.Datasets = append(p.Datasets, strings.TrimSpace(d))
		}
	}

	fmt.Printf("protocol: scale=%g queries=%d k=%d beams=%v dim=%d epochs=%d seed=%d\n\n",
		p.Scale, p.Queries, p.K, p.Beams, p.Dim, p.TrainEpochs, p.Seed)
	cache := experiments.NewEnvCache()
	if err := experiments.RunCached(os.Stdout, *exp, p, cache); err != nil {
		log.Fatal(err)
	}

	if *trace {
		if err := experiments.TraceSamples(p, cache, os.Stderr); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath == "off" {
		return
	}
	rep, err := experiments.Bench(p, cache) // reuses engines the figures built
	if err != nil {
		log.Fatal(err)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	path := *jsonPath
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("20060102T150405") + ".json"
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote benchmark summary to %s\n", path)
}
