// Command lan-bench regenerates the paper's tables and figures on the
// synthetic dataset simulators.
//
// Usage:
//
//	lan-bench -exp fig5 -scale 0.01 -k 10
//	lan-bench -exp all
//
// Valid experiment ids: tab1, fig5..fig12, scal (storage-tier
// scalability sweep: RAM vs mmap vs quantized snapshots), all.
//
// By default the query workloads come from the pinned per-dataset query
// sets in testdata/bench_queries.json, so recall and latency numbers are
// comparable across commits (scripts/bench-diff reports the deltas);
// -queryset points at a different set, and an explicit -queries (or
// -queryset off) samples a fresh workload instead. -store mmap routes
// every query measurement through a memory-mapped snapshot of the built
// index.
//
// Alongside the human-readable rows, lan-bench writes a machine-readable
// summary (recall@k, mean/median NDC split per routing stage, prune-rate
// and γ-step means, per-query latency percentiles, build time and a
// process-wide routing-metrics snapshot per dataset/beam) to
// BENCH_<timestamp>.json; -json sets an explicit path, -json off disables
// it. -trace prints one sample routing trace per dataset to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/lansearch/lan/ged"
	"github.com/lansearch/lan/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-bench: ")
	p := experiments.DefaultProtocol()
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Names(), ", "))
		beams    = flag.String("beams", "", "comma-separated beam sizes (default from protocol)")
		budget   = flag.Int("exact-budget", 150, "A* expansion budget of the query GED ensemble (0 = approximations only)")
		data     = flag.String("datasets", "", "comma-separated dataset filter (aids,linux,pubchem,syn; default all)")
		jsonPath = flag.String("json", "", `benchmark summary path ("" = BENCH_<timestamp>.json, "off" disables)`)
		trace    = flag.Bool("trace", false, "print one sample routing trace per dataset (JSON lines) to stderr")
		queryset = flag.String("queryset", "testdata/bench_queries.json", `pinned per-dataset query sets ("off" samples fresh; explicit -queries also samples fresh)`)
	)
	flag.StringVar(&p.Store, "store", "", `storage tier for query measurements: "ram" (default: serve the built engine) or "mmap" (snapshot and reopen memory-mapped)`)
	flag.StringVar(&p.TraceDir, "trace-dir", "", "run the trace-overhead leg, exporting per-query traces as JSONL segments under this directory (empty disables)")
	flag.Float64Var(&p.TraceSample, "trace-sample", 1.0, "exporter sampling fraction for the traced leg (1 = export everything)")
	flag.Float64Var(&p.Scale, "scale", p.Scale, "dataset scale relative to Table I")
	flag.IntVar(&p.Queries, "queries", p.Queries, "query workload size")
	flag.IntVar(&p.K, "k", p.K, "answers per query")
	flag.IntVar(&p.Dim, "dim", p.Dim, "embedding dimension")
	flag.IntVar(&p.TrainEpochs, "epochs", p.TrainEpochs, "training epochs")
	flag.IntVar(&p.Workers, "workers", p.Workers, "index-build worker goroutines (0 = NumCPU; results are identical for every setting)")
	flag.IntVar(&p.QueryWorkers, "query-workers", p.QueryWorkers, "query-path distance workers for the parallel benchmark leg (0 = NumCPU; results are identical for every setting)")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "seed")
	flag.Parse()

	if *beams != "" {
		p.Beams = nil
		for _, f := range strings.Split(*beams, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || b <= 0 {
				log.Fatalf("bad -beams entry %q", f)
			}
			p.Beams = append(p.Beams, b)
		}
	}
	p.QueryMetric = ged.Ensemble{ExactBudget: *budget, BeamWidth: 4}
	if p.Store != "" && p.Store != "ram" && p.Store != "mmap" {
		log.Fatalf("bad -store %q (want ram or mmap)", p.Store)
	}
	// Pinned query sets regenerate the same workload run after run, which
	// is what makes BENCH json files diffable across commits. An explicit
	// -queries asks for a different workload size, so it falls back to
	// fresh sampling (the pinned sets have a fixed size).
	queriesFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "queries" {
			queriesFlagSet = true
		}
	})
	if *queryset != "off" && !queriesFlagSet {
		if buf, err := os.ReadFile(*queryset); err == nil {
			if err := json.Unmarshal(buf, &p.QuerySets); err != nil {
				log.Fatalf("bad query set %s: %v", *queryset, err)
			}
		} else if *queryset != "testdata/bench_queries.json" {
			// The default path is best-effort (absent outside the repo
			// checkout); an explicit one must exist.
			log.Fatalf("-queryset %s: %v", *queryset, err)
		}
	}
	if *data != "" {
		for _, d := range strings.Split(*data, ",") {
			p.Datasets = append(p.Datasets, strings.TrimSpace(d))
		}
	}

	fmt.Printf("protocol: scale=%g queries=%d k=%d beams=%v dim=%d epochs=%d seed=%d\n\n",
		p.Scale, p.Queries, p.K, p.Beams, p.Dim, p.TrainEpochs, p.Seed)
	cache := experiments.NewEnvCache()
	if err := experiments.RunCached(os.Stdout, *exp, p, cache); err != nil {
		log.Fatal(err)
	}

	if *trace {
		if err := experiments.TraceSamples(p, cache, os.Stderr); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath == "off" {
		return
	}
	rep, err := experiments.Bench(p, cache) // reuses engines the figures built
	if err != nil {
		log.Fatal(err)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	path := *jsonPath
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("20060102T150405") + ".json"
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote benchmark summary to %s\n", path)
}
