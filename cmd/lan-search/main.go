// Command lan-search answers k-ANN queries against a trained LAN index.
//
// Usage:
//
//	lan-search -db aids.txt -index aids.lan -queries test-queries.txt -k 10 -beam 32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/lanio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-search: ")
	var (
		dbPath  = flag.String("db", "", "database file")
		idxPath = flag.String("index", "", "trained index snapshot from lan-train")
		qPath   = flag.String("queries", "", "query file")
		k       = flag.Int("k", 10, "neighbors per query")
		beam    = flag.Int("beam", 0, "candidate pool size (default k)")
		routing = flag.String("routing", "lan", "routing: lan, baseline, oracle")
		initial = flag.String("initial", "lan", "initial node: lan, hnsw, rand")
		trace   = flag.Bool("trace", false, "print a per-query routing trace (JSON, one line per query) to stderr")
		store   = flag.String("store", "mmap", "storage tier for binary snapshots: ram or mmap (JSON indexes are always ram)")
	)
	flag.Parse()
	if *idxPath == "" || *qPath == "" {
		log.Fatal("need -index and -queries (-db too unless the index is a binary snapshot)")
	}

	var db graph.Database
	if *dbPath != "" {
		var err error
		db, err = lanio.ReadDatabase(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	idx, err := lanio.OpenIndex(*idxPath, db, lan.Options{Store: *store})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	queries, err := lanio.ReadQueries(*qPath)
	if err != nil {
		log.Fatal(err)
	}

	so := lan.SearchOptions{K: *k, Beam: *beam}
	switch *routing {
	case "lan":
		so.Routing = lan.LANRoute
	case "baseline":
		so.Routing = lan.BaselineRoute
	case "oracle":
		so.Routing = lan.OracleRoute
	default:
		log.Fatalf("unknown -routing %q", *routing)
	}
	switch *initial {
	case "lan":
		so.Initial = lan.LANIS
	case "hnsw":
		so.Initial = lan.HNSWIS
	case "rand":
		so.Initial = lan.RandIS
	default:
		log.Fatalf("unknown -initial %q", *initial)
	}

	var totalNDC int
	start := time.Now()
	for qi, q := range queries {
		ctx := context.Background()
		var qt *lan.Trace
		if *trace {
			qt = lan.NewTrace(fmt.Sprintf("q%d", qi))
			ctx = lan.WithTrace(ctx, qt)
		}
		res, stats, err := idx.SearchContext(ctx, q, so)
		if err != nil {
			log.Fatal(err)
		}
		if qt != nil {
			if data, jerr := qt.JSON(); jerr == nil {
				fmt.Fprintf(os.Stderr, "%s\n", data)
			}
		}
		totalNDC += stats.NDC
		fmt.Printf("query %d (n=%d, m=%d): ", qi, q.N(), q.M())
		for _, r := range res {
			fmt.Printf("%d:%.0f ", r.ID, r.Dist)
		}
		fmt.Printf("[ndc=%d %s]\n", stats.NDC, stats.Total.Round(time.Microsecond))
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "%d queries in %s (%.2f QPS, avg NDC %.1f)\n",
		len(queries), elapsed.Round(time.Millisecond),
		float64(len(queries))/elapsed.Seconds(),
		float64(totalNDC)/float64(len(queries)))
}
