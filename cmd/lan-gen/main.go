// Command lan-gen materializes one of the synthetic benchmark datasets
// (Table I simulators) and an accompanying query workload to disk in the
// line-oriented graph text format.
//
// Usage:
//
//	lan-gen -dataset aids -scale 0.02 -out aids.txt -queries 200 -queries-out aids-queries.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-gen: ")
	var (
		name       = flag.String("dataset", "aids", "dataset to simulate: aids, linux, pubchem, syn")
		scale      = flag.Float64("scale", 0.01, "fraction of the paper's dataset size")
		out        = flag.String("out", "", "output file for the database (default stdout)")
		queries    = flag.Int("queries", 0, "also emit this many workload queries")
		queriesOut = flag.String("queries-out", "", "output file for the query workload")
		seed       = flag.Int64("seed", 1, "workload sampling seed")
	)
	flag.Parse()

	spec, err := specByName(*name, *scale)
	if err != nil {
		log.Fatal(err)
	}
	db := spec.Generate()
	if err := writeDB(*out, db); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "generated %s: %d graphs, avg |V| %.1f, avg |E| %.1f, %d labels\n",
		spec.Name, st.Graphs, st.AvgNodes, st.AvgEdges, st.NumLabels)

	if *queries > 0 {
		qs := dataset.Workload(db, spec, *queries, *seed)
		if err := writeDB(*queriesOut, graph.Database(qs)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %d workload queries\n", len(qs))
	}
}

func specByName(name string, scale float64) (dataset.Spec, error) {
	switch name {
	case "aids":
		return dataset.AIDS(scale), nil
	case "linux":
		return dataset.LINUX(scale), nil
	case "pubchem":
		return dataset.PubChem(scale), nil
	case "syn":
		return dataset.SYN(scale), nil
	default:
		return dataset.Spec{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func writeDB(path string, db graph.Database) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteText(w, db)
}
