// Command lan-train builds and trains a LAN index over a graph database
// file and writes the trained index snapshot to disk.
//
// Usage:
//
//	lan-train -db aids.txt -queries aids-queries.txt -out aids.lan -dim 16 -epochs 10
//
// A .lansnap output path writes the self-contained binary snapshot
// instead of the JSON index — the format lan-search/lan-serve can open
// with -store mmap (no -db needed) — with -precision selecting the
// stored embedding precision (f64, f32, int8; final distances are exact
// under every setting).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/lanio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-train: ")
	var (
		dbPath  = flag.String("db", "", "database file (graph text format)")
		qPath   = flag.String("queries", "", "training query workload file")
		outPath = flag.String("out", "index.lan", "output index snapshot (.lansnap writes the self-contained binary format)")
		prec    = flag.String("precision", "f64", "embedding precision in .lansnap output: f64, f32 or int8 (final distances stay exact)")
		dim     = flag.Int("dim", 16, "embedding dimension")
		m       = flag.Int("m", 8, "proximity graph degree parameter")
		epochs  = flag.Int("epochs", 10, "training epochs")
		gamma   = flag.Int("gamma-knn", 20, "gamma* covers this many NNs for 90% of training queries")
		workers = flag.Int("workers", 0, "index-build worker goroutines (0 = NumCPU; results are identical for every setting)")
		seed    = flag.Int64("seed", 1, "build seed")
	)
	flag.Parse()
	if *dbPath == "" || *qPath == "" {
		log.Fatal("need -db and -queries")
	}

	db, err := lanio.ReadDatabase(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	queriesDB, err := lanio.ReadDatabase(*qPath)
	if err != nil {
		log.Fatal(err)
	}
	queries := make([]*graph.Graph, len(queriesDB))
	for i, q := range queriesDB {
		q.ID = -1
		queries[i] = q
	}

	start := time.Now()
	idx, err := lanio.BuildIndex(db, queries, lanio.BuildParams{
		Dim: *dim, M: *m, Epochs: *epochs, GammaKNN: *gamma, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built index over %d graphs in %s (gamma* = %.0f)\n",
		idx.Len(), time.Since(start).Round(time.Millisecond), idx.GammaStar())

	if strings.HasSuffix(*outPath, ".lansnap") {
		if err := idx.SaveSnapshot(*outPath, lan.SnapshotOptions{Precision: *prec}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (binary snapshot, %s embeddings)\n", *outPath, *prec)
		return
	}
	f, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := idx.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
}
