// Command lan-lint runs the project's static-analysis suite (package
// internal/analysis) over the given package patterns and exits nonzero
// when any finding survives the //lint:allow suppressions. It enforces
// the determinism and robustness invariants LAN's exactness claims rest
// on; see DESIGN.md, "Static analysis & determinism policy".
//
// Usage:
//
//	lan-lint [-run floatcmp,globalrand,libpanic,matdim] [packages...]
//
// With no package arguments it analyzes ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lansearch/lan/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lan-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(relativize(cwd, f.String()))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lan-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relativize trims the working directory prefix from a finding line so
// output is readable and stable across checkouts.
func relativize(cwd, s string) string {
	return strings.TrimPrefix(s, cwd+string(os.PathSeparator))
}
