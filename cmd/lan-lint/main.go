// Command lan-lint runs the project's static-analysis suite (package
// internal/analysis) over the given package patterns and exits nonzero
// when any finding survives the //lint:allow suppressions. It enforces
// the determinism and robustness invariants LAN's exactness claims rest
// on; see DESIGN.md, "Static analysis & determinism policy".
//
// Usage:
//
//	lan-lint [-run ctxprop,hotalloc,...] [-json] [-counts] [packages...]
//
// With no package arguments it analyzes ./... — including this command
// and the analysis package themselves, so the lint is self-hosting.
// -json emits the findings as a JSON array on stdout (for CI annotation
// tooling); -counts prints a per-analyzer finding tally to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lansearch/lan/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	counts := flag.Bool("counts", false, "print a per-analyzer finding tally to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lan-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     relativize(cwd, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(relativize(cwd, f.String()))
		}
	}
	if *counts {
		tally := make(map[string]int)
		for _, f := range findings {
			tally[f.Analyzer]++
		}
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "%-12s %d\n", a.Name, tally[a.Name])
		}
		if n := tally["framework"]; n > 0 {
			fmt.Fprintf(os.Stderr, "%-12s %d\n", "framework", n)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lan-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relativize trims the working directory prefix from a path or finding
// line so output is readable and stable across checkouts.
func relativize(cwd, s string) string {
	return strings.TrimPrefix(s, cwd+string(os.PathSeparator))
}
