// Command lan-serve serves k-ANN queries over a trained LAN index via
// HTTP/JSON, with admission control, result caching and Prometheus
// metrics (see the lanserve package).
//
// Usage:
//
//	lan-serve -db aids.txt -index aids.lan -addr :8080
//	curl -d '{"query":{"labels":["C","O"],"edges":[[0,1]]},"k":5}' localhost:8080/search
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/trace/last
//
// The database and index files come from lan-gen and lan-train. On
// SIGINT/SIGTERM the server stops accepting work (/readyz turns 503),
// drains in-flight connections and exits within -shutdown-grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/lanio"
	"github.com/lansearch/lan/lanserve"
)

// fatal logs one error record and exits (the slog replacement for
// log.Fatal at startup, before the server owns any state to drain).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		dbPath    = flag.String("db", "", "database file (graph text format, or .json)")
		idxPath   = flag.String("index", "", "trained index snapshot from lan-train")
		workers   = flag.Int("workers", 0, "concurrent searches (default GOMAXPROCS)")
		qWorkers  = flag.Int("query-workers", 1, "distance-evaluation goroutines per query (1 = sequential; raise only when -workers is below the core count — results are identical either way)")
		queue     = flag.Int("queue", 64, "admission queue depth beyond -workers; overflow gets 429")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request deadline ceiling")
		cacheSz   = flag.Int("cache", 1024, "result-cache entries (negative disables)")
		maxK      = flag.Int("max-k", 100, "largest k accepted per request")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof/")
		grace     = flag.Duration("shutdown-grace", 5*time.Second, "drain window after SIGTERM")
		quietLog  = flag.Bool("quiet", false, "suppress per-request error logging")
		traceN    = flag.Int("trace-ring", 8, "per-query traces kept for /debug/trace/last (negative disables tracing)")
		slowQ     = flag.Duration("slow-query", 0, "log the full trace of queries at least this slow (0 disables)")
		writable  = flag.Bool("writable", false, "enable POST /insert and /delete (streaming writes against the served index)")
		storeTier = flag.String("store", "mmap", "storage tier for binary snapshots: ram or mmap (JSON indexes are always ram)")
		traceDir  = flag.String("trace-dir", "", "export sampled query traces as JSONL segments into this directory (empty disables)")
		traceRate = flag.Float64("trace-sample", 1.0, "fraction of queries exported to -trace-dir (slow queries always export)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "lan-serve")
	if *idxPath == "" {
		fatal(logger, "need -index (-db too unless the index is a binary snapshot)")
	}
	if *writable && *storeTier == lan.StoreMMap {
		// Catch the conflict at startup instead of serving an endpoint
		// whose every request would fail with ErrReadOnly. A binary
		// snapshot can still be served writable via -store ram; JSON
		// indexes are unaffected (always RAM-resident).
		if snap, err := lan.IsSnapshotFile(*idxPath); err == nil && snap {
			fatal(logger, "-writable needs a RAM-resident index; pass -store ram (mmap-backed indexes are read-only)")
		}
	}

	var db graph.Database
	if *dbPath != "" {
		var err error
		db, err = lanio.ReadDatabase(*dbPath)
		if err != nil {
			fatal(logger, "read database", "err", err.Error())
		}
	}
	start := time.Now()
	// Workers also bounds the snapshot-load fan-out: snapshots without
	// precomputed node embeddings recompute them across this many
	// goroutines.
	idx, err := lanio.OpenIndex(*idxPath, db, lan.Options{Workers: *workers, QueryWorkers: *qWorkers, Store: *storeTier})
	if err != nil {
		fatal(logger, "open index", "err", err.Error())
	}
	defer idx.Close()
	logger.Info("index loaded",
		"graphs", idx.Len(),
		"load_time", time.Since(start).Round(time.Millisecond).String(),
		"gamma_star", idx.GammaStar(),
		"store_tier", *storeTier,
		"epoch", idx.Epoch())

	cfg := lanserve.Config{
		Index:       idx,
		Workers:     *workers,
		QueueDepth:  *queue,
		Timeout:     *timeout,
		CacheSize:   *cacheSz,
		MaxK:        *maxK,
		EnablePprof: *pprofOn,
		TraceRing:   *traceN,
		SlowQuery:   *slowQ,
	}
	if *writable {
		cfg.Writer = idx
	}
	if !*quietLog {
		cfg.Logger = logger
	}
	if *traceDir != "" {
		exp, err := lan.NewTraceExporter(lan.TraceExportConfig{
			Dir:    *traceDir,
			Sample: *traceRate,
			SlowUS: slowQ.Microseconds(),
		})
		if err != nil {
			fatal(logger, "open trace exporter", "err", err.Error())
		}
		// Closed after the server drains, so every submitted trace is
		// flushed before exit.
		defer func() {
			if err := exp.Close(); err != nil {
				//lint:allow slogqid exporter shutdown is not query-scoped
				logger.Warn("trace exporter close", "err", err.Error())
			}
		}()
		cfg.Exporter = exp
		logger.Info("trace export enabled", "trace_dir", *traceDir, "sample", *traceRate)
	}
	srv, err := lanserve.New(cfg)
	if err != nil {
		fatal(logger, "configure server", "err", err.Error())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen", "addr", *addr, "err", err.Error())
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// callers (the serve-smoke driver, scripts) learn the actual port.
	logger.Info(fmt.Sprintf("listening on %s", ln.Addr()), "store_tier", *storeTier, "epoch", idx.Epoch())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(logger, "serve", "err", err.Error())
	case <-ctx.Done():
	}
	logger.Info("shutting down", "grace", grace.String())
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("forced shutdown", "err", err.Error())
		if cerr := httpSrv.Close(); cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
			logger.Error("close", "err", cerr.Error())
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "lan-serve: bye")
}
