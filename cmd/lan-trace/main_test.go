package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/lansearch/lan/internal/obs"
)

// exportFixture writes n traces (with span trees) into a fresh segment
// directory and returns it.
func exportFixture(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	exp, err := obs.NewExporter(obs.ExportConfig{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr := obs.NewTrace(fmt.Sprintf("q%02d", i))
		tr.SetConfig("lan", "lan", 5, 10)
		tr.SetEntry(3)
		tr.Step(3, 4.0, 10, 6, 4.0, 6)
		tr.Step(9, 2.0, 8, 2, 2.0, 8)
		tr.Gamma(2)
		init := tr.StartSpan("initial")
		tr.RecordSpan("embed", time.Now(), 200*time.Microsecond, 0, 1)
		tr.EndSpan(init, 4)
		routing := tr.StartSpan("routing")
		tr.RecordSpan("store_fetch", time.Now(), 50*time.Microsecond, 0, 6)
		tr.EndSpan(routing, 4)
		tr.Finalize(8, 5, time.Duration(i+1)*time.Millisecond)
		exp.Submit(tr)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestReadFileRoundTrip pins that the CLI's reader hands back every span
// field the exporter wrote — the offline analyzer must see exactly what
// the query path recorded.
func TestReadFileRoundTrip(t *testing.T) {
	dir := exportFixture(t, 1)
	names, err := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v, %v", names, err)
	}
	var got []*obs.Trace
	stats, err := readFile(names[0], func(tr *obs.Trace) error { got = append(got, tr); return nil })
	if err != nil || stats.Traces != 1 {
		t.Fatalf("readFile: %+v, %v", stats, err)
	}
	tr := got[0]
	if tr.QueryID != "q00" || tr.K != 5 || tr.Entry != 3 || len(tr.Steps) != 2 || len(tr.Gammas) != 1 {
		t.Fatalf("trace fields lost: %+v", tr)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("span forest lost: %+v", tr.Spans)
	}
	init, routing := tr.Spans[0], tr.Spans[1]
	if init.Name != "initial" || init.NDC != 4 || len(init.Children) != 1 || init.Children[0].Name != "embed" || init.Children[0].US != 200 || init.Children[0].N != 1 {
		t.Errorf("initial span lost fields: %+v children %+v", init, init.Children)
	}
	if routing.Name != "routing" || len(routing.Children) != 1 || routing.Children[0].Name != "store_fetch" || routing.Children[0].N != 6 {
		t.Errorf("routing span lost fields: %+v children %+v", routing, routing.Children)
	}
}

// TestReadFileBareJSONL reads the lan-bench -trace format: trace JSON
// lines with no segment header.
func TestReadFileBareJSONL(t *testing.T) {
	tr := obs.NewTrace("bare")
	tr.Step(1, 2.0, 3, 2, 2.0, 3)
	tr.Finalize(3, 1, time.Millisecond)
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []*obs.Trace
	stats, err := readFile(path, func(tr *obs.Trace) error { got = append(got, tr); return nil })
	if err != nil || stats.Traces != 1 || got[0].QueryID != "bare" {
		t.Fatalf("bare replay: %+v, %v, %v", stats, got, err)
	}
}

// TestSummarize pins the analysis output on a known fixture: counts,
// per-stage lines, distributions and the slowest span tree.
func TestSummarize(t *testing.T) {
	dir := exportFixture(t, 4)
	var traces []*obs.Trace
	stats, err := obs.ReadSegments(dir, func(tr *obs.Trace) error { traces = append(traces, tr); return nil })
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := summarize(&sb, traces, stats, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"traces: 4  segments: 1  truncated tails skipped: 0",
		"total:   us p50=2000",    // totals 1..4ms, nearest-rank p50 = 2ms
		"ndc p50=8",               // every fixture trace finalizes NDC=8
		"gammas:  steps p50=1",    // one γ per trace
		"opened/ranked: p50=0.44", // (6+2)/(10+8)
		"initial",                 // stage table rows
		"routing",
		"embed",
		"store_fetch",
		"batch_total=24", // 4 store_fetch leaves × n=6
		"slowest 2:",
		"q03  total=4000us  ndc=8  steps=2  results=5", // slowest first
		"store_fetch", // span tree includes leaves
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q\n%s", want, out)
		}
	}
	// The slowest section lists q03 before q02.
	if strings.Index(out, "q03") > strings.Index(out, "q02") || !strings.Contains(out, "q02") {
		t.Errorf("slowest traces not ordered by total time:\n%s", out)
	}
}

// TestSummarizeEmpty keeps the no-traces path quiet and error-free.
func TestSummarizeEmpty(t *testing.T) {
	var sb strings.Builder
	if err := summarize(&sb, nil, obs.ReplayStats{}, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traces: 0") {
		t.Errorf("empty summary: %q", sb.String())
	}
}
