// Command lan-trace replays query traces exported by lan-serve/lan-bench
// (-trace-dir) and prints an offline analysis: per-stage latency and NDC
// percentiles, γ-step and opened-vs-ranked distributions, and the span
// trees of the slowest queries.
//
// Usage:
//
//	lan-trace -dir traces/             # a segment directory
//	lan-trace traces/traces-000000.jsonl
//	lan-trace -dir traces/ -slowest 5
//
// Segment files carry a versioned header line ({"format":"lan.trace",...});
// a truncated final record — a crash mid-write — is skipped and counted,
// never an error. Bare positional files without the header are read as
// plain trace JSONL (the lan-bench -trace stderr format).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/lansearch/lan/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lan-trace: ")
	var (
		dir     = flag.String("dir", "", "trace segment directory to replay")
		slowest = flag.Int("slowest", 3, "print the span trees of the N slowest traces (0 disables)")
	)
	flag.Parse()
	if *dir == "" && flag.NArg() == 0 {
		log.Fatal("need -dir or segment files as arguments")
	}

	var traces []*obs.Trace
	var stats obs.ReplayStats
	collect := func(t *obs.Trace) error { traces = append(traces, t); return nil }
	if *dir != "" {
		s, err := obs.ReadSegments(*dir, collect)
		if err != nil {
			log.Fatal(err)
		}
		stats = s
	}
	for _, path := range flag.Args() {
		s, err := readFile(path, collect)
		if err != nil {
			log.Fatal(err)
		}
		stats.Segments += s.Segments
		stats.Traces += s.Traces
		stats.Truncated += s.Truncated
	}
	if err := summarize(os.Stdout, traces, stats, *slowest); err != nil {
		log.Fatal(err)
	}
}

// readFile replays one file: a headered segment via the crash-tolerant
// reader, a bare trace-JSONL file (lan-bench -trace output) line by line.
func readFile(path string, fn func(*obs.Trace) error) (obs.ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.ReplayStats{}, err
	}
	first, err := bufio.NewReader(f).ReadBytes('\n')
	f.Close()
	headered := err == nil && strings.Contains(string(first), `"format"`)
	if headered {
		return obs.ReadSegmentFile(path, fn)
	}
	stats := obs.ReplayStats{Segments: 1}
	g, err := os.Open(path)
	if err != nil {
		return stats, err
	}
	defer g.Close()
	sc := bufio.NewScanner(g)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		t := new(obs.Trace)
		if err := json.Unmarshal([]byte(line), t); err != nil {
			return stats, fmt.Errorf("%s: %v", path, err)
		}
		stats.Traces++
		if err := fn(t); err != nil {
			return stats, err
		}
	}
	return stats, sc.Err()
}

// stageAgg accumulates one span name's samples across all traces.
type stageAgg struct {
	us    []float64
	ndc   []float64
	n     int // summed batch sizes (embed neighbors, fetched graphs)
	count int
}

// summarize prints the offline analysis of the replayed traces.
func summarize(w io.Writer, traces []*obs.Trace, stats obs.ReplayStats, slowest int) error {
	fmt.Fprintf(w, "traces: %d  segments: %d  truncated tails skipped: %d\n",
		len(traces), stats.Segments, stats.Truncated)
	if len(traces) == 0 {
		return nil
	}

	var totalUS, totalNDC, gammaSteps, openedFrac []float64
	stages := map[string]*stageAgg{}
	var order []string
	var walk func(spans []*obs.Span)
	walk = func(spans []*obs.Span) {
		for _, s := range spans {
			agg := stages[s.Name]
			if agg == nil {
				agg = &stageAgg{}
				stages[s.Name] = agg
				order = append(order, s.Name)
			}
			agg.us = append(agg.us, float64(s.US))
			agg.ndc = append(agg.ndc, float64(s.NDC))
			agg.n += s.N
			agg.count++
			walk(s.Children)
		}
	}
	for _, t := range traces {
		totalUS = append(totalUS, float64(t.TotalUS))
		totalNDC = append(totalNDC, float64(t.NDC))
		gammaSteps = append(gammaSteps, float64(len(t.Gammas)))
		var ranked, opened int
		for _, st := range t.Steps {
			ranked += st.Ranked
			opened += st.Opened
		}
		if ranked > 0 {
			openedFrac = append(openedFrac, float64(opened)/float64(ranked))
		}
		walk(t.Spans)
		for _, sh := range t.Shards {
			walk(sh.Spans)
		}
	}

	fmt.Fprintf(w, "total:   us %s   ndc %s\n", pcts(totalUS, "%.0f"), pcts(totalNDC, "%.0f"))
	fmt.Fprintf(w, "gammas:  steps %s\n", pcts(gammaSteps, "%.0f"))
	if len(openedFrac) > 0 {
		fmt.Fprintf(w, "opened/ranked: %s  (fraction of ranked neighbors whose distance was computed)\n",
			pcts(openedFrac, "%.2f"))
	}

	fmt.Fprintln(w, "stages:")
	for _, name := range order {
		a := stages[name]
		line := fmt.Sprintf("  %-12s n=%-6d us %s   ndc %s", name, a.count, pcts(a.us, "%.0f"), pcts(a.ndc, "%.0f"))
		if a.n > 0 {
			line += fmt.Sprintf("   batch_total=%d", a.n)
		}
		fmt.Fprintln(w, line)
	}

	if slowest > 0 {
		byTotal := append([]*obs.Trace(nil), traces...)
		sort.SliceStable(byTotal, func(i, j int) bool { return byTotal[i].TotalUS > byTotal[j].TotalUS })
		if slowest > len(byTotal) {
			slowest = len(byTotal)
		}
		fmt.Fprintf(w, "slowest %d:\n", slowest)
		for _, t := range byTotal[:slowest] {
			fmt.Fprintf(w, "  %s  total=%dus  ndc=%d  steps=%d  results=%d\n",
				t.QueryID, t.TotalUS, t.NDC, len(t.Steps), t.Results)
			printSpans(w, t.Spans, "    ")
			for i, sh := range t.Shards {
				fmt.Fprintf(w, "    shard %d (%s):\n", i, sh.QueryID)
				printSpans(w, sh.Spans, "      ")
			}
		}
	}
	return nil
}

// printSpans renders a span forest as an indented tree.
func printSpans(w io.Writer, spans []*obs.Span, indent string) {
	for _, s := range spans {
		line := fmt.Sprintf("%s%s  +%dus  %dus", indent, s.Name, s.StartUS, s.US)
		if s.NDC > 0 {
			line += fmt.Sprintf("  ndc=%d", s.NDC)
		}
		if s.N > 0 {
			line += fmt.Sprintf("  n=%d", s.N)
		}
		fmt.Fprintln(w, line)
		printSpans(w, s.Children, indent+"  ")
	}
}

// pcts formats the p50/p90/p99 of xs with the given verb.
func pcts(xs []float64, verb string) string {
	if len(xs) == 0 {
		return "-"
	}
	f := func(q float64) string { return fmt.Sprintf(verb, percentile(xs, q)) }
	return fmt.Sprintf("p50=%s p90=%s p99=%s", f(0.5), f(0.9), f(0.99))
}

// percentile returns the nearest-rank q-quantile of xs, input unmodified.
func percentile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(q*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
