package lanio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

func writeTempDB(t *testing.T, name string, db graph.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if name[len(name)-5:] == ".json" {
		if err := graph.WriteJSON(f, db); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := graph.WriteText(f, db); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestReadDatabaseTextAndJSON(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	for _, name := range []string{"db.txt", "db.json"} {
		path := writeTempDB(t, name, db)
		got, err := ReadDatabase(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(db) {
			t.Fatalf("%s: %d graphs; want %d", name, len(got), len(db))
		}
		for i := range db {
			if !db[i].Equal(got[i]) {
				t.Fatalf("%s: graph %d differs", name, i)
			}
		}
	}
}

func TestReadDatabaseMissingFile(t *testing.T) {
	if _, err := ReadDatabase(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadQueriesStripsIDs(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	path := writeTempDB(t, "q.txt", db)
	qs, err := ReadQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.ID != -1 {
			t.Fatalf("query %d kept ID %d", i, q.ID)
		}
	}
}

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 3)
	train, _, test := dataset.Split(queries)
	idx, err := BuildIndex(db, train, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 3})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}

	path := filepath.Join(t.TempDir(), "idx.lan")
	if err := SaveIndex(path, idx); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	// Atomic write: no leftover temp files next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after SaveIndex: %v", entries)
	}

	loaded, err := LoadIndex(path, db, lan.Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len = %d; want %d", loaded.Len(), idx.Len())
	}
	for qi, q := range test {
		want, _, err := idx.Search(q, lan.SearchOptions{K: 3, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.Search(q, lan.SearchOptions{K: 3, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results; want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotFormatVersions pins the on-disk compatibility contract: a
// never-mutated index saves as format version 1 (byte-compatible with
// pre-mutation readers), a mutated index saves as version 2 carrying its
// epoch and validity stamps through a round trip, and snapshots from a
// future format are rejected with a version-naming error instead of a
// garbage decode.
func TestSnapshotFormatVersions(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 5)
	train, _, test := dataset.Split(queries)
	idx, err := BuildIndex(db, train, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	version := func(path string) int {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var hdr struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(raw, &hdr); err != nil {
			t.Fatal(err)
		}
		return hdr.Version
	}

	// Fresh build: version 1 on the wire and after reload.
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.lan")
	if err := SaveIndex(v1, idx); err != nil {
		t.Fatal(err)
	}
	if got := version(v1); got != 1 {
		t.Fatalf("unmutated snapshot version = %d; want 1", got)
	}
	loaded1, err := LoadIndex(v1, db, lan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded1.FormatVersion() != 1 {
		t.Fatalf("FormatVersion = %d; want 1", loaded1.FormatVersion())
	}

	// Mutate (one insert, one delete), then save: version 2 carrying the
	// write history. Quiesce first so the background optimizer cannot
	// bump the epoch between save and comparison.
	insID, err := idx.Insert(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(0); err != nil {
		t.Fatal(err)
	}
	idx.Quiesce()
	v2 := filepath.Join(dir, "v2.lan")
	if err := SaveIndex(v2, idx); err != nil {
		t.Fatal(err)
	}
	if got := version(v2); got != 2 {
		t.Fatalf("mutated snapshot version = %d; want 2", got)
	}
	loaded2, err := LoadIndex(v2, idx.Database(), lan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded2.Close()
	if loaded2.FormatVersion() != 2 {
		t.Fatalf("FormatVersion = %d; want 2", loaded2.FormatVersion())
	}
	if loaded2.Epoch() != idx.Epoch() || loaded2.Len() != idx.Len() {
		t.Fatalf("round trip: epoch %d/%d, len %d/%d", loaded2.Epoch(), idx.Epoch(), loaded2.Len(), idx.Len())
	}
	// The inserted graph survived the round trip as a searchable member…
	res, _, err := loaded2.Search(test[0], lan.SearchOptions{K: 3, Beam: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != insID || res[0].Dist != 0 {
		t.Fatalf("inserted graph lost in round trip: %+v", res)
	}
	// …and the deleted one is still dead (a second delete is an error).
	if err := loaded2.Delete(0); err == nil {
		t.Fatal("graph 0 came back from the dead after the round trip")
	}

	// A snapshot from the future is refused, naming the version.
	v3 := filepath.Join(dir, "v3.lan")
	if err := os.WriteFile(v3, []byte(`{"version": 3}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(v3, db, lan.Options{}); err == nil || !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("future snapshot not rejected clearly: %v", err)
	}
}

func TestSaveIndexUnwritableDir(t *testing.T) {
	spec := dataset.AIDS(0.001)
	db := spec.Generate()
	idx, err := BuildIndex(db, dataset.Workload(db, spec, 4, 1), BuildParams{Dim: 4, M: 3, Epochs: 1, GammaKNN: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(filepath.Join(t.TempDir(), "missing", "idx.lan"), idx); err == nil {
		t.Fatal("SaveIndex into a missing directory succeeded")
	}
}

func TestBuildIndexFromParams(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 1)
	idx, err := BuildIndex(db, queries, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if idx.Len() != len(db) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if _, err := BuildIndex(db, nil, BuildParams{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
