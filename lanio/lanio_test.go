package lanio

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

func writeTempDB(t *testing.T, name string, db graph.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if name[len(name)-5:] == ".json" {
		if err := graph.WriteJSON(f, db); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := graph.WriteText(f, db); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestReadDatabaseTextAndJSON(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	for _, name := range []string{"db.txt", "db.json"} {
		path := writeTempDB(t, name, db)
		got, err := ReadDatabase(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(db) {
			t.Fatalf("%s: %d graphs; want %d", name, len(got), len(db))
		}
		for i := range db {
			if !db[i].Equal(got[i]) {
				t.Fatalf("%s: graph %d differs", name, i)
			}
		}
	}
}

func TestReadDatabaseMissingFile(t *testing.T) {
	if _, err := ReadDatabase(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadQueriesStripsIDs(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	path := writeTempDB(t, "q.txt", db)
	qs, err := ReadQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.ID != -1 {
			t.Fatalf("query %d kept ID %d", i, q.ID)
		}
	}
}

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 3)
	train, _, test := dataset.Split(queries)
	idx, err := BuildIndex(db, train, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 3})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}

	path := filepath.Join(t.TempDir(), "idx.lan")
	if err := SaveIndex(path, idx); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	// Atomic write: no leftover temp files next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after SaveIndex: %v", entries)
	}

	loaded, err := LoadIndex(path, db, lan.Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len = %d; want %d", loaded.Len(), idx.Len())
	}
	for qi, q := range test {
		want, _, err := idx.Search(q, lan.SearchOptions{K: 3, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.Search(q, lan.SearchOptions{K: 3, Beam: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results; want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestSaveIndexUnwritableDir(t *testing.T) {
	spec := dataset.AIDS(0.001)
	db := spec.Generate()
	idx, err := BuildIndex(db, dataset.Workload(db, spec, 4, 1), BuildParams{Dim: 4, M: 3, Epochs: 1, GammaKNN: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(filepath.Join(t.TempDir(), "missing", "idx.lan"), idx); err == nil {
		t.Fatal("SaveIndex into a missing directory succeeded")
	}
}

func TestBuildIndexFromParams(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 1)
	idx, err := BuildIndex(db, queries, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if idx.Len() != len(db) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if _, err := BuildIndex(db, nil, BuildParams{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
