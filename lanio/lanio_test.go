package lanio

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

func writeTempDB(t *testing.T, name string, db graph.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if name[len(name)-5:] == ".json" {
		if err := graph.WriteJSON(f, db); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := graph.WriteText(f, db); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestReadDatabaseTextAndJSON(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	for _, name := range []string{"db.txt", "db.json"} {
		path := writeTempDB(t, name, db)
		got, err := ReadDatabase(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(db) {
			t.Fatalf("%s: %d graphs; want %d", name, len(got), len(db))
		}
		for i := range db {
			if !db[i].Equal(got[i]) {
				t.Fatalf("%s: graph %d differs", name, i)
			}
		}
	}
}

func TestReadDatabaseMissingFile(t *testing.T) {
	if _, err := ReadDatabase(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadQueriesStripsIDs(t *testing.T) {
	db := dataset.AIDS(0.001).Generate()
	path := writeTempDB(t, "q.txt", db)
	qs, err := ReadQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.ID != -1 {
			t.Fatalf("query %d kept ID %d", i, q.ID)
		}
	}
}

func TestBuildIndexFromParams(t *testing.T) {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 1)
	idx, err := BuildIndex(db, queries, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if idx.Len() != len(db) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if _, err := BuildIndex(db, nil, BuildParams{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
