// Package lanio provides the file-level conveniences shared by the
// command-line tools: loading graph databases and query workloads from
// disk and building lan indexes from flag-shaped parameters.
package lanio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
)

// ReadDatabase loads a graph database from a file in the line-oriented
// text format (or JSON when the file name ends in .json).
func ReadDatabase(path string) (graph.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return graph.ReadJSON(f)
	}
	return graph.ReadText(f)
}

// ReadQueries loads a workload file and strips database ids so the graphs
// are free-standing queries.
func ReadQueries(path string) ([]*graph.Graph, error) {
	db, err := ReadDatabase(path)
	if err != nil {
		return nil, err
	}
	out := make([]*graph.Graph, len(db))
	for i, q := range db {
		q.ID = -1
		out[i] = q
	}
	return out, nil
}

// BuildParams are the flag-shaped build knobs of lan-train.
type BuildParams struct {
	Dim      int
	M        int
	Epochs   int
	GammaKNN int
	// Workers bounds index-build concurrency (0 = NumCPU); the built
	// index is bit-identical for every setting.
	Workers int
	Seed    int64
}

// BuildIndex builds a lan.Index from flag-shaped parameters.
func BuildIndex(db graph.Database, queries []*graph.Graph, p BuildParams) (*lan.Index, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("lanio: empty training workload")
	}
	return lan.Build(db, queries, lan.Options{
		Dim: p.Dim, M: p.M, Epochs: p.Epochs, GammaKNN: p.GammaKNN,
		Workers: p.Workers, Seed: p.Seed,
	})
}

// SaveIndex writes a trained index snapshot to path (atomically: the
// snapshot lands under a temporary name and is renamed into place, so a
// crash mid-write never leaves a truncated index for lan-serve to load).
func SaveIndex(path string, idx *lan.Index) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := idx.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenIndex opens an index file of either supported format, sniffing
// the content: binary snapshots (written by lan.Index.SaveSnapshot) are
// self-contained — db may be nil — and open through the storage tier
// o.Store selects; anything else is treated as a JSON snapshot restored
// over db with LoadIndex. Binary snapshots from a newer format version
// are rejected by name (lan.ErrFutureVersion) instead of falling
// through to a JSON parse error.
func OpenIndex(path string, db graph.Database, o lan.Options) (*lan.Index, error) {
	snap, err := lan.IsSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	if snap {
		return lan.OpenSnapshot(path, o)
	}
	if db == nil {
		return nil, fmt.Errorf("lanio: %s is a JSON index snapshot and needs its database (binary snapshots made with SaveSnapshot are self-contained)", path)
	}
	return LoadIndex(path, db, o)
}

// LoadIndex restores an index snapshot from path over db (the database
// lan-train built it on, reloaded with ReadDatabase). Options supply the
// GED metrics; the zero value matches lan-train's defaults.
func LoadIndex(path string, db graph.Database, o lan.Options) (*lan.Index, error) {
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("lanio: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lan.ReadIndex(db, f, o)
}
