package lanio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
)

// snapshotFixture builds a small index and saves it both ways: a JSON
// index (database supplied separately) and a self-contained binary
// snapshot.
func snapshotFixture(t *testing.T) (idx *lan.Index, db graph.Database, test []*graph.Graph, jsonPath, binPath string) {
	t.Helper()
	spec := dataset.AIDS(0.002)
	db = spec.Generate()
	queries := dataset.Workload(db, spec, 10, 7)
	train, _, test := dataset.Split(queries)
	idx, err := BuildIndex(db, train, BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 21})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	dir := t.TempDir()
	jsonPath = filepath.Join(dir, "idx.lan")
	if err := SaveIndex(jsonPath, idx); err != nil {
		t.Fatal(err)
	}
	binPath = filepath.Join(dir, "idx.lansnap")
	if err := idx.SaveSnapshot(binPath, lan.SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	return idx, db, test, jsonPath, binPath
}

// TestOpenIndexFormatNegotiation pins the sniffing contract: OpenIndex
// routes a binary snapshot to the self-contained opener (no database
// needed), routes a JSON index to LoadIndex when the database is
// supplied, and names the problem when it is not.
func TestOpenIndexFormatNegotiation(t *testing.T) {
	idx, db, test, jsonPath, binPath := snapshotFixture(t)

	so := lan.SearchOptions{K: 3, Beam: 8}
	want, _, err := idx.Search(test[0], so)
	if err != nil {
		t.Fatal(err)
	}

	// Binary snapshot: db optional, both tiers.
	for _, store := range []string{"", lan.StoreRAM, lan.StoreMMap} {
		opened, err := OpenIndex(binPath, nil, lan.Options{Store: store})
		if err != nil {
			t.Fatalf("OpenIndex(binary, store=%q): %v", store, err)
		}
		got, _, err := opened.Search(test[0], so)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("store=%q: %d results; want %d", store, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("store=%q result %d: %+v != %+v", store, i, got[i], want[i])
			}
		}
		opened.Close()
	}

	// JSON index with its database: the LoadIndex path.
	opened, err := OpenIndex(jsonPath, db, lan.Options{})
	if err != nil {
		t.Fatalf("OpenIndex(json, db): %v", err)
	}
	if opened.Len() != idx.Len() {
		t.Fatalf("json reload Len = %d; want %d", opened.Len(), idx.Len())
	}

	// JSON index without a database: a named refusal, not a nil-deref.
	if _, err := OpenIndex(jsonPath, nil, lan.Options{}); err == nil || !strings.Contains(err.Error(), "database") {
		t.Fatalf("OpenIndex(json, nil db): err = %v; want a needs-its-database error", err)
	}
}

// TestOpenIndexDamagedSnapshots pins the failure modes of binary
// snapshots at the tool boundary: truncation and bit corruption surface
// as named errors (never a panic), and snapshots from a future format
// version are refused by name.
func TestOpenIndexDamagedSnapshots(t *testing.T) {
	_, _, _, _, binPath := snapshotFixture(t)
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	truncated := filepath.Join(dir, "truncated.lansnap")
	if err := os.WriteFile(truncated, raw[:len(raw)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndex(truncated, nil, lan.Options{}); !errors.Is(err, lan.ErrCorrupt) {
		t.Fatalf("truncated: err = %v; want ErrCorrupt", err)
	}

	// Flip a byte in the meta section (just past the fixed-size header):
	// meta is structurally verified at open on both tiers, unlike the
	// graph payload whose checksum the mmap tier defers so opening does
	// not page the whole file.
	corrupt := filepath.Join(dir, "corrupt.lansnap")
	flipped := append([]byte(nil), raw...)
	flipped[200] ^= 0xff
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, store := range []string{lan.StoreMMap, lan.StoreRAM} {
		if _, err := OpenIndex(corrupt, nil, lan.Options{Store: store}); !errors.Is(err, lan.ErrCorrupt) {
			t.Fatalf("corrupt (%s): err = %v; want ErrCorrupt", store, err)
		}
	}

	future := filepath.Join(dir, "future.lansnap")
	bumped := append([]byte(nil), raw...)
	bumped[7] = '9' // magic is "LANSNAP" + version digit
	if err := os.WriteFile(future, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndex(future, nil, lan.Options{}); !errors.Is(err, lan.ErrFutureVersion) {
		t.Fatalf("future: err = %v; want ErrFutureVersion", err)
	}
}
