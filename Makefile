# Development entry points. Everything is stdlib Go; no tools beyond the
# toolchain are required.

GO ?= go

.PHONY: all build vet test bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus ablations; see DESIGN.md.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the paper's evaluation on the dataset simulators.
experiments:
	$(GO) run ./cmd/lan-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cheminformatics
	$(GO) run ./examples/codeclone
	$(GO) run ./examples/scalability

clean:
	$(GO) clean ./...
