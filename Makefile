# Development entry points. Everything is stdlib Go; no tools beyond the
# toolchain are required.

GO ?= go

.PHONY: all build vet lint lint-fix lint-baseline test race bench bench-diff bench-smoke experiments examples serve-smoke store-smoke mutate-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Repo-specific invariants (context propagation, hot-path allocations,
# atomic-field hygiene, goroutine leaks, float equality, global rand,
# library panics, matrix dimensions, metric naming); see DESIGN.md
# "Static analysis & determinism policy".
lint:
	$(GO) run ./cmd/lan-lint ./...

# Format the tree, then lint with a per-analyzer tally — the loop for
# working a finding list down to zero.
lint-fix:
	gofmt -w .
	$(GO) run ./cmd/lan-lint -counts ./...

# Golden-file check: lan-lint output must match the committed (empty)
# baseline in scripts/lint-baseline.txt.
lint-baseline:
	scripts/lint-baseline

test:
	$(GO) test ./...

# Race-detect the concurrent paths (sharded search, distance-table and
# ground-truth fan-outs) on the fast test subset.
race:
	$(GO) test -race -short ./...

# Micro-benchmarks (mat kernels, GED beam kernel, parallel vs sequential
# PG build, pool resize, root package ablations) plus the end-to-end
# lan-bench run, which writes a BENCH_<timestamp>.json summary with build
# and query speedups and latency percentiles; see DESIGN.md "Performance
# architecture".
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/mat ./internal/pg ./ged .
	$(GO) run ./cmd/lan-bench -exp tab1

# Benchmark smoke for CI: every benchmark runs exactly once so a
# regression that panics or deadlocks is caught without paying for
# statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/mat ./internal/pg ./ged

# Regenerate the paper's evaluation on the dataset simulators.
experiments:
	$(GO) run ./cmd/lan-bench -exp all

# Markdown report of the newest BENCH_*.json against the previous one:
# recall/QPS/NDC deltas per cell, build times, storage-tier sweep.
# Report-only (always exits 0 on well-formed input).
bench-diff:
	$(GO) run ./scripts/bench-diff

# Boot lan-serve on a tiny generated database, hit /search and /metrics,
# and verify it drains within 5s of SIGTERM.
serve-smoke:
	$(GO) run ./scripts/serve-smoke

# Storage-tier smoke: save a binary snapshot, serve it with -store mmap
# and -store ram, and require bit-identical /search answers from both
# (plus the -writable refusal on the read-only mmap tier).
store-smoke:
	$(GO) run ./scripts/store-smoke

# Churn soak for the mutable index: concurrent searches, streaming
# inserts and deletes against one index (with a pinned snapshot checked
# for bit-identity throughout), then lan-serve's -writable endpoints,
# epoch-keyed cache invalidation and write metrics over HTTP.
mutate-smoke:
	$(GO) run ./scripts/mutate-smoke

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cheminformatics
	$(GO) run ./examples/codeclone
	$(GO) run ./examples/scalability

clean:
	$(GO) clean ./...
