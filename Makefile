# Development entry points. Everything is stdlib Go; no tools beyond the
# toolchain are required.

GO ?= go

.PHONY: all build vet lint test race bench experiments examples serve-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Repo-specific invariants (float equality, global rand, library panics,
# matrix dimensions); see DESIGN.md "Static analysis & determinism policy".
lint:
	$(GO) run ./cmd/lan-lint ./...

test:
	$(GO) test ./...

# Race-detect the concurrent paths (sharded search, distance-table and
# ground-truth fan-outs) on the fast test subset.
race:
	$(GO) test -race -short ./...

# One benchmark per paper table/figure plus ablations; see DESIGN.md.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the paper's evaluation on the dataset simulators.
experiments:
	$(GO) run ./cmd/lan-bench -exp all

# Boot lan-serve on a tiny generated database, hit /search and /metrics,
# and verify it drains within 5s of SIGTERM.
serve-smoke:
	$(GO) run ./scripts/serve-smoke

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cheminformatics
	$(GO) run ./examples/codeclone
	$(GO) run ./examples/scalability

clean:
	$(GO) clean ./...
