// Command mutate-smoke is the write-path soak behind `make mutate-smoke`
// and the CI "Mutate smoke" step. It runs two legs:
//
// In-process, it churns a freshly built index — concurrent searchers,
// a streaming inserter and a streaming deleter — for a few wall-seconds,
// with one snapshot pinned before the churn whose answers must stay
// bit-identical throughout. After the churn it quiesces the optimizer,
// compacts the tombstones and re-checks search sanity.
//
// Over HTTP, it boots lan-serve with -writable, drives POST /insert and
// /delete, and verifies the epoch advances, the result cache is
// invalidated (epoch-keyed), and the write metric families are exposed.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// works as a CI gate without extra tooling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/lanio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mutate-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mutate-smoke: PASS")
}

func run() error {
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 10, 1)
	if err := churnSoak(db, queries); err != nil {
		return fmt.Errorf("churn soak: %w", err)
	}
	if err := serveWrites(db, queries); err != nil {
		return fmt.Errorf("serve writes: %w", err)
	}
	return nil
}

// churnSoak hammers one index with concurrent reads and writes, keeping a
// pre-churn snapshot pinned the whole time.
func churnSoak(db graph.Database, queries []*graph.Graph) error {
	idx, err := lanio.BuildIndex(db, queries, lanio.BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	defer idx.Close()

	pinned := idx.Snapshot()
	q := queries[0]
	wantRes, wantStats, err := pinned.Search(q, lan.SearchOptions{K: 3, Beam: 10})
	if err != nil {
		return err
	}

	deadline := time.Now().Add(2 * time.Second)
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	wg.Add(1)
	go func() { // streaming inserts
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if _, err := idx.Insert(queries[i%len(queries)]); err != nil {
				fail(fmt.Errorf("insert: %w", err))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // streaming deletes over the pre-churn id range
		defer wg.Done()
		for id := 0; id < len(db)/2 && time.Now().Before(deadline); id++ {
			if err := idx.Delete(id); err != nil {
				fail(fmt.Errorf("delete %d: %w", id, err))
				return
			}
		}
	}()
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) { // concurrent searchers, one re-checking the pin
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				qi := queries[(s+i)%len(queries)]
				if s == 0 {
					res, stats, err := pinned.Search(q, lan.SearchOptions{K: 3, Beam: 10})
					if err != nil {
						fail(err)
						return
					}
					if len(res) != len(wantRes) || stats.NDC != wantStats.NDC {
						fail(fmt.Errorf("pinned snapshot drifted mid-churn"))
						return
					}
					for j := range wantRes {
						if res[j] != wantRes[j] {
							fail(fmt.Errorf("pinned result %d drifted: %+v != %+v", j, res[j], wantRes[j]))
							return
						}
					}
					continue
				}
				res, _, err := idx.Search(qi, lan.SearchOptions{K: 3, Beam: 10})
				if err != nil {
					fail(fmt.Errorf("search: %w", err))
					return
				}
				if len(res) == 0 {
					fail(fmt.Errorf("search returned nothing mid-churn"))
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}

	if idx.Epoch() == 0 {
		return fmt.Errorf("churn left the epoch at 0")
	}
	idx.Quiesce()
	if _, err := idx.Compact(); err != nil {
		return fmt.Errorf("compact: %w", err)
	}
	res, _, err := idx.Search(q, lan.SearchOptions{K: 3, Beam: 10})
	if err != nil {
		return fmt.Errorf("post-churn search: %w", err)
	}
	if len(res) != 3 {
		return fmt.Errorf("post-churn search: %d results; want 3", len(res))
	}
	fmt.Printf("mutate-smoke: churned to epoch %d, %d live graphs\n", idx.Epoch(), idx.Len())
	return nil
}

// serveWrites boots lan-serve -writable and drives the write endpoints.
func serveWrites(db graph.Database, queries []*graph.Graph) error {
	dir, err := os.MkdirTemp("", "mutate-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	dbPath := filepath.Join(dir, "db.txt")
	f, err := os.Create(dbPath)
	if err != nil {
		return err
	}
	if err := graph.WriteText(f, db); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	idx, err := lanio.BuildIndex(db, queries, lanio.BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		return err
	}
	idxPath := filepath.Join(dir, "idx.lan")
	if err := lanio.SaveIndex(idxPath, idx); err != nil {
		return err
	}

	bin := filepath.Join(dir, "lan-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/lan-serve").CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/lan-serve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-db", dbPath, "-index", idxPath, "-addr", "127.0.0.1:0", "-writable", "-shutdown-grace", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill() // no-op if the SIGTERM path already reaped it

	addrRe := regexp.MustCompile(`listening on (\S+:\d+)`)
	addrCh := make(chan string, 1)
	logDone := make(chan struct{})
	//lint:allow goleak exits at scanner EOF when the child process closes its stderr pipe
	go func() {
		defer close(logDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "  [lan-serve] %s\n", line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server never reported its listen address")
	}

	if err := writeChecks(base, queries[0], len(db)); err != nil {
		return err
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("server did not exit within 5s of SIGTERM")
	}
	<-logDone
	return nil
}

// writeChecks drives /insert and /delete and verifies epoch advance,
// cache invalidation and the write metric families.
func writeChecks(base string, q *graph.Graph, dbSize int) error {
	client := &http.Client{Timeout: 10 * time.Second}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/readyz never turned 200: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	q.ID = -1
	searchBody, err := json.Marshal(map[string]interface{}{"query": q, "k": 3})
	if err != nil {
		return err
	}
	search := func() (cached bool, err error) {
		resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(searchBody))
		if err != nil {
			return false, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("/search: status %d: %s", resp.StatusCode, data)
		}
		var sr struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(data, &sr); err != nil {
			return false, err
		}
		return sr.Cached, nil
	}

	// Warm the cache, then verify the hit.
	if _, err := search(); err != nil {
		return err
	}
	if cached, err := search(); err != nil || !cached {
		return fmt.Errorf("second search not cached (err=%v)", err)
	}

	// Insert: new id at the end of the id space, epoch > 0.
	insBody, err := json.Marshal(map[string]interface{}{"graph": q})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/insert", "application/json", bytes.NewReader(insBody))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/insert: status %d: %s", resp.StatusCode, data)
	}
	var ins struct {
		ID    int    `json:"id"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(data, &ins); err != nil {
		return err
	}
	if ins.ID != dbSize || ins.Epoch == 0 {
		return fmt.Errorf("/insert: id %d epoch %d; want id %d, epoch > 0", ins.ID, ins.Epoch, dbSize)
	}

	// The insert moved the epoch, so the cached entry is orphaned.
	if cached, err := search(); err != nil || cached {
		return fmt.Errorf("search after insert still cached (err=%v): epoch-keyed invalidation broken", err)
	}

	// Delete graph 0; the epoch advances again.
	delBody := []byte(`{"id": 0}`)
	resp, err = client.Post(base+"/delete", "application/json", bytes.NewReader(delBody))
	if err != nil {
		return err
	}
	data, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/delete: status %d: %s", resp.StatusCode, data)
	}
	var del struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(data, &del); err != nil {
		return err
	}
	if del.Epoch <= ins.Epoch {
		return fmt.Errorf("/delete: epoch %d did not advance past %d", del.Epoch, ins.Epoch)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	data, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		`lanserve_write_requests_total{op="insert"} 1`,
		`lanserve_write_requests_total{op="delete"} 1`,
		"lanserve_write_seconds_count 2",
		"lan_mutate_inserts_total 1",
		"lan_mutate_deletes_total 1",
		"lan_mutate_apply_seconds_count 2",
	} {
		if !strings.Contains(string(data), want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, data)
		}
	}
	return nil
}
