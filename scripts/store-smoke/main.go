// Command store-smoke is the end-to-end check of the pluggable storage
// tier behind `make store-smoke` and the CI "Store smoke" step. It
// builds a tiny index, writes it as a self-contained binary snapshot,
// boots lan-serve twice on that one file — once with -store mmap, once
// with -store ram — and insists every /search answer (ids and exact
// distances) is identical between the tiers. It also pins the read-only
// contract: the mmap server refuses to start with -writable.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// works as a CI gate without extra tooling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"syscall"
	"time"

	"github.com/lansearch/lan"
	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/lanio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("store-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store-smoke: PASS")
}

type searchResult struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

func run() error {
	dir, err := os.MkdirTemp("", "store-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	queries := dataset.Workload(db, spec, 12, 2)
	idx, err := lanio.BuildIndex(db, queries[:8], lanio.BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 6})
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	snapPath := filepath.Join(dir, "idx.lansnap")
	if err := idx.SaveSnapshot(snapPath, lan.SnapshotOptions{}); err != nil {
		return fmt.Errorf("SaveSnapshot: %w", err)
	}

	bin := filepath.Join(dir, "lan-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/lan-serve").CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/lan-serve: %v\n%s", err, out)
	}

	// The read-only contract: a snapshot served off the mapping cannot
	// take writes, and the server says so instead of booting.
	refuse := exec.Command(bin, "-index", snapPath, "-store", "mmap", "-writable", "-addr", "127.0.0.1:0")
	if out, err := refuse.CombinedOutput(); err == nil {
		return fmt.Errorf("-writable with -store mmap was accepted:\n%s", out)
	} else if !strings.Contains(string(out), "read-only") && !strings.Contains(string(out), "-store ram") {
		return fmt.Errorf("-writable with -store mmap refused without naming the fix:\n%s", out)
	}

	// Serve the same snapshot on both tiers and collect every answer.
	answers := make(map[string][][]searchResult, 2)
	for _, store := range []string{"mmap", "ram"} {
		res, err := serveAndSearch(bin, snapPath, store, queries[8:])
		if err != nil {
			return fmt.Errorf("store=%s: %w", store, err)
		}
		answers[store] = res
	}

	for qi := range answers["mmap"] {
		if !reflect.DeepEqual(answers["mmap"][qi], answers["ram"][qi]) {
			return fmt.Errorf("query %d: tiers diverge\nmmap: %v\nram:  %v",
				qi, answers["mmap"][qi], answers["ram"][qi])
		}
	}
	fmt.Printf("store-smoke: %d queries bit-identical across ram and mmap tiers\n", len(answers["mmap"]))
	return nil
}

// serveAndSearch boots lan-serve on the snapshot with the given storage
// tier, answers each query through /search, and shuts the server down.
func serveAndSearch(bin, snapPath, store string, queries []*graph.Graph) ([][]searchResult, error) {
	cmd := exec.Command(bin, "-index", snapPath, "-store", store, "-addr", "127.0.0.1:0", "-shutdown-grace", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	defer cmd.Process.Kill() // no-op if the SIGTERM path already reaped it

	addrRe := regexp.MustCompile(`listening on (\S+:\d+)`)
	addrCh := make(chan string, 1)
	//lint:allow goleak exits at scanner EOF when the child process closes its stderr pipe
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "  [lan-serve %s] %s\n", store, line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("server never reported its listen address")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("/readyz never turned 200: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	out := make([][]searchResult, 0, len(queries))
	for qi, q := range queries {
		q.ID = -1
		body, err := json.Marshal(map[string]interface{}{"query": q, "k": 3, "beam": 8})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/search #%d: status %d: %s", qi, resp.StatusCode, data)
		}
		var sr struct {
			Results []searchResult `json:"results"`
		}
		if err := json.Unmarshal(data, &sr); err != nil {
			return nil, fmt.Errorf("/search #%d: bad JSON: %v", qi, err)
		}
		if len(sr.Results) == 0 {
			return nil, fmt.Errorf("/search #%d: no results", qi)
		}
		out = append(out, sr.Results)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return nil, fmt.Errorf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("server did not exit within 5s of SIGTERM")
	}
	return out, nil
}
