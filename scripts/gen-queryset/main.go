// Command gen-queryset regenerates testdata/bench_queries.json: the
// pinned per-dataset query workloads lan-bench runs by default, so that
// recall and latency numbers stay comparable across commits (see
// scripts/bench-diff). Each entry pins one query as (base graph id,
// edit-op count, private generator seed); dataset.FixedWorkload turns
// them back into the exact same query graphs run after run.
//
// Re-run after changing the default protocol's scale, seed or workload
// size — the sets are keyed by the generated dataset names, and base ids
// only fit the dataset size they were sampled against (lan-bench falls
// back to fresh sampling on mismatch).
//
// Usage:
//
//	go run ./scripts/gen-queryset [-out testdata/bench_queries.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen-queryset: ")
	out := flag.String("out", "testdata/bench_queries.json", "output path")
	flag.Parse()

	p := experiments.DefaultProtocol()
	sets := make(map[string][]dataset.QuerySpec)
	for _, spec := range p.Specs() {
		// Workload samples with seed p.Seed+7; pinning from the same seed
		// keeps the base-id and op-count streams identical to what a fresh
		// sample at the default protocol would draw.
		sets[spec.Name] = dataset.SampleQuerySpecs(spec.Graphs, p.Queries, p.Seed+7)
		fmt.Printf("%-16s %d queries over %d graphs\n", spec.Name, p.Queries, spec.Graphs)
	}

	buf, err := json.MarshalIndent(sets, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
