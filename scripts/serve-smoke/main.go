// Command serve-smoke is the end-to-end smoke check behind `make
// serve-smoke` and the CI "Serve smoke" step. It builds the lan-serve
// binary, prepares a tiny database and trained index on disk, boots the
// server on an ephemeral port, exercises /readyz, /search (twice, so the
// second hit must come from the result cache), /metrics (server and
// process-wide obs families alike) and /debug/trace/last, then delivers
// SIGTERM and insists the server drains and exits within 5 seconds.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// works as a CI gate without extra tooling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"github.com/lansearch/lan/graph"
	"github.com/lansearch/lan/internal/dataset"
	"github.com/lansearch/lan/lanio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serve-smoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "serve-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A tiny database and index on disk, exactly as lan-gen + lan-train
	// would produce them.
	spec := dataset.AIDS(0.002)
	db := spec.Generate()
	dbPath := filepath.Join(dir, "db.txt")
	f, err := os.Create(dbPath)
	if err != nil {
		return err
	}
	if err := graph.WriteText(f, db); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	queries := dataset.Workload(db, spec, 10, 1)
	idx, err := lanio.BuildIndex(db, queries, lanio.BuildParams{Dim: 6, M: 4, Epochs: 1, GammaKNN: 5, Seed: 1})
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	idxPath := filepath.Join(dir, "idx.lan")
	if err := lanio.SaveIndex(idxPath, idx); err != nil {
		return err
	}

	bin := filepath.Join(dir, "lan-serve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/lan-serve").CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/lan-serve: %v\n%s", err, out)
	}

	traceDir := filepath.Join(dir, "traces")
	cmd := exec.Command(bin, "-db", dbPath, "-index", idxPath, "-addr", "127.0.0.1:0",
		"-shutdown-grace", "5s", "-trace-dir", traceDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill() // no-op if the SIGTERM path already reaped it

	// The server logs "listening on 127.0.0.1:<port>" once bound; everything
	// after that is streamed through for the CI log.
	addrRe := regexp.MustCompile(`listening on (\S+:\d+)`)
	addrCh := make(chan string, 1)
	logDone := make(chan struct{})
	//lint:allow goleak exits at scanner EOF when the child process closes its stderr pipe
	go func() {
		defer close(logDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "  [lan-serve] %s\n", line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server never reported its listen address")
	}

	if err := checks(base, queries[0]); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit cleanly within 5s.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("server did not exit within 5s of SIGTERM")
	}
	<-logDone

	// Shutdown flushed the exporter; the segments on disk must replay
	// through lan-trace into a non-empty offline summary, closing the
	// trace pipeline end to end.
	if err := traceChecks(dir, traceDir); err != nil {
		return err
	}
	// CI persists the exported segments (SERVE_SMOKE_ARTIFACTS names a
	// directory) so a red run's traces survive the temp-dir cleanup.
	if dst := os.Getenv("SERVE_SMOKE_ARTIFACTS"); dst != "" {
		if err := copyDir(traceDir, filepath.Join(dst, "traces")); err != nil {
			return fmt.Errorf("persisting trace artifacts: %w", err)
		}
	}
	return nil
}

// traceChecks builds lan-trace and replays the exported segments: the one
// executed search (the cache hit never reached the engine) must come back
// with its stage spans.
func traceChecks(dir, traceDir string) error {
	bin := filepath.Join(dir, "lan-trace")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/lan-trace").CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/lan-trace: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-dir", traceDir).CombinedOutput()
	if err != nil {
		return fmt.Errorf("lan-trace -dir %s: %v\n%s", traceDir, err, out)
	}
	fmt.Fprintf(os.Stderr, "  [lan-trace] %s\n", strings.ReplaceAll(strings.TrimSpace(string(out)), "\n", "\n  [lan-trace] "))
	for _, want := range []string{"traces: 1", "stages:", "initial", "routing"} {
		if !strings.Contains(string(out), want) {
			return fmt.Errorf("lan-trace summary missing %q:\n%s", want, out)
		}
	}
	return nil
}

// copyDir copies a flat artifact directory (the exporter writes no
// subdirectories).
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// checks drives the live server through the readiness, search, cache and
// metrics assertions.
func checks(base string, q *graph.Graph) error {
	client := &http.Client{Timeout: 10 * time.Second}

	// Readiness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/readyz never turned 200: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Two identical searches: both succeed, the second is a cache hit.
	q.ID = -1
	body, err := json.Marshal(map[string]interface{}{"query": q, "k": 3})
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("/search #%d: status %d: %s", i+1, resp.StatusCode, data)
		}
		var sr struct {
			Results []struct {
				ID   int     `json:"id"`
				Dist float64 `json:"dist"`
			} `json:"results"`
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(data, &sr); err != nil {
			return fmt.Errorf("/search #%d: bad JSON: %v", i+1, err)
		}
		if len(sr.Results) != 3 {
			return fmt.Errorf("/search #%d: %d results; want 3", i+1, len(sr.Results))
		}
		if sr.Cached != (i == 1) {
			return fmt.Errorf("/search #%d: cached = %v", i+1, sr.Cached)
		}
	}

	// Metrics reflect the traffic above; alongside the server's own
	// families, the process-wide engine and runtime families registered by
	// internal/obs must appear in the same exposition.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"lanserve_requests_total 2",
		"lanserve_cache_hits_total 1",
		"lanserve_query_ndc_count 1",       // the cache hit ran no search
		"lanserve_request_seconds_count 2", // but both requests count latency
		"lanserve_query_pruning_rate_count 1",
		"lan_query_searches_total 1",
		"lan_query_ndc_initial_total",
		"lan_query_ndc_routing_total",
		"lan_route_gamma_steps_count",
		"lan_distcache_hits_total",
		"lan_ged_beam_arena_reused_total",
		"lan_process_goroutines",
		"lan_process_uptime_seconds",
		"lan_build_info{",
	} {
		if !strings.Contains(string(data), want) {
			return fmt.Errorf("/metrics missing %q:\n%s", want, data)
		}
	}

	// The executed search (and only it — the cache hit never reached the
	// engine) must be in the trace ring, finalized with results and NDC.
	resp, err = client.Get(base + "/debug/trace/last")
	if err != nil {
		return err
	}
	data, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace/last: status %d: %s", resp.StatusCode, data)
	}
	var traces []struct {
		QueryID string `json:"query_id"`
		Routing string `json:"routing"`
		NDC     int    `json:"ndc"`
		Results int    `json:"results"`
		Steps   []struct {
			Node int `json:"node"`
		} `json:"steps"`
	}
	if err := json.Unmarshal(data, &traces); err != nil {
		return fmt.Errorf("/debug/trace/last: bad JSON: %v\n%s", err, data)
	}
	if len(traces) != 1 {
		return fmt.Errorf("/debug/trace/last: %d traces; want 1 (cache hits record none)", len(traces))
	}
	tr := traces[0]
	if tr.QueryID == "" || tr.Routing != "lan" || tr.NDC <= 0 || tr.Results != 3 || len(tr.Steps) == 0 {
		return fmt.Errorf("/debug/trace/last: incomplete trace: %s", data)
	}
	return nil
}
