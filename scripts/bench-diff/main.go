// Command bench-diff compares two lan-bench BENCH_*.json summaries and
// prints the deltas as a markdown report: recall, QPS and NDC per
// (dataset, beam) cell, build times per dataset, and the storage-tier
// sweep when both runs carry one. It is a report, not a gate — the exit
// code is always 0 (only malformed input fails), so CI can surface the
// numbers on every pull request without flaking on machine noise.
//
// Usage:
//
//	go run ./scripts/bench-diff                # two newest BENCH_*.json in .
//	go run ./scripts/bench-diff -new fresh.json  # fresh run vs newest committed
//	go run ./scripts/bench-diff -old a.json -new b.json
//
// With no flags the newest BENCH_*.json is "new" and the second-newest is
// "old" — i.e. "what did the latest run change". With only -new, "old"
// defaults to the newest committed BENCH_*.json, the common CI shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"github.com/lansearch/lan/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-diff: ")
	var (
		oldPath = flag.String("old", "", "baseline BENCH json (default: newest committed BENCH_*.json that is not -new)")
		newPath = flag.String("new", "", "candidate BENCH json (default: newest BENCH_*.json)")
		dir     = flag.String("dir", ".", "directory scanned for BENCH_*.json defaults")
	)
	flag.Parse()

	committed, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(committed) // timestamps in the name sort chronologically

	if *newPath == "" {
		if len(committed) == 0 {
			log.Fatalf("no BENCH_*.json in %s and no -new given", *dir)
		}
		*newPath = committed[len(committed)-1]
	}
	if *oldPath == "" {
		for i := len(committed) - 1; i >= 0; i-- {
			if sameFile(committed[i], *newPath) {
				continue
			}
			*oldPath = committed[i]
			break
		}
		if *oldPath == "" {
			log.Fatalf("no baseline BENCH_*.json in %s distinct from %s", *dir, *newPath)
		}
	}

	oldRep, err := read(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := read(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("### Benchmark diff\n\n")
	fmt.Printf("baseline `%s` (%s) → candidate `%s` (%s)\n\n",
		filepath.Base(*oldPath), orDash(oldRep.GeneratedAt), filepath.Base(*newPath), orDash(newRep.GeneratedAt))
	//lint:allow floatcmp Scale is a configured protocol constant round-tripped through JSON, never computed
	if oldRep.Scale != newRep.Scale || oldRep.K != newRep.K || oldRep.Seed != newRep.Seed {
		fmt.Printf("> ⚠ protocol mismatch (scale %g→%g, k %d→%d, seed %d→%d): deltas compare different workloads\n\n",
			oldRep.Scale, newRep.Scale, oldRep.K, newRep.K, oldRep.Seed, newRep.Seed)
	}
	if oldRep.Store != newRep.Store {
		fmt.Printf("> ⚠ storage tier changed: %q → %q\n\n", orDash(oldRep.Store), orDash(newRep.Store))
	}

	diffPoints(oldRep, newRep)
	diffBuilds(oldRep, newRep)
	diffStore(oldRep, newRep)
}

func read(path string) (*experiments.BenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// key aligns rows across runs.
type key struct {
	dataset string
	beam    int
}

func diffPoints(oldRep, newRep *experiments.BenchReport) {
	olds := make(map[key]experiments.BenchPoint, len(oldRep.Points))
	for _, p := range oldRep.Points {
		olds[key{p.Dataset, p.Beam}] = p
	}
	fmt.Printf("| dataset | beam | recall | Δ | QPS | Δ%% | NDC mean | Δ%% |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, np := range newRep.Points {
		k := key{np.Dataset, np.Beam}
		op, ok := olds[k]
		if !ok {
			fmt.Printf("| %s | %d | %.3f | new | %.2f | new | %.1f | new |\n",
				np.Dataset, np.Beam, np.RecallAtK, np.QPS, np.NDCMean)
			continue
		}
		delete(olds, k)
		fmt.Printf("| %s | %d | %.3f | %+.3f | %.2f | %s | %.1f | %s |\n",
			np.Dataset, np.Beam,
			np.RecallAtK, np.RecallAtK-op.RecallAtK,
			np.QPS, pct(np.QPS, op.QPS),
			np.NDCMean, pct(np.NDCMean, op.NDCMean))
	}
	for _, k := range sortedKeys(olds) {
		fmt.Printf("| %s | %d | - | dropped | - | - | - | - |\n", k.dataset, k.beam)
	}
	fmt.Println()
}

func sortedKeys(m map[key]experiments.BenchPoint) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].dataset != out[j].dataset {
			return out[i].dataset < out[j].dataset
		}
		return out[i].beam < out[j].beam
	})
	return out
}

func diffBuilds(oldRep, newRep *experiments.BenchReport) {
	olds := make(map[string]experiments.BuildPoint, len(oldRep.Builds))
	for _, b := range oldRep.Builds {
		olds[b.Dataset] = b
	}
	if len(newRep.Builds) == 0 {
		return
	}
	fmt.Printf("| dataset | build s | Δ%% | parallel speedup | identical |\n")
	fmt.Printf("|---|---|---|---|---|\n")
	for _, nb := range newRep.Builds {
		ob, ok := olds[nb.Dataset]
		d := "new"
		if ok {
			d = pct(nb.ParallelSeconds, ob.ParallelSeconds)
		}
		fmt.Printf("| %s | %.2f | %s | %.2fx | %v |\n",
			nb.Dataset, nb.ParallelSeconds, d, nb.Speedup, nb.Identical)
	}
	fmt.Println()
}

func diffStore(oldRep, newRep *experiments.BenchReport) {
	if len(newRep.StorePoints) == 0 {
		return
	}
	type skey struct {
		dataset string
		quant   string
	}
	olds := make(map[skey]experiments.StorePoint, len(oldRep.StorePoints))
	for _, s := range oldRep.StorePoints {
		olds[skey{s.Dataset, s.Quant}] = s
	}
	fmt.Printf("**Storage tiers** (RAM vs mmap, identical = bit-identical answers)\n\n")
	fmt.Printf("| dataset | quant | snapshot | identical | recall ε | mmap QPS | Δ%% | mmap RSS | RAM RSS |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|---|\n")
	for _, ns := range newRep.StorePoints {
		d := "new"
		if os, ok := olds[skey{ns.Dataset, ns.Quant}]; ok {
			d = pct(ns.MMapQPS, os.MMapQPS)
		}
		fmt.Printf("| %s | %s | %s | %v | %.3f | %.2f | %s | %s | %s |\n",
			ns.Dataset, ns.Quant, bytesh(uint64(ns.SnapshotBytes)), ns.Identical, ns.RecallEpsilon,
			ns.MMapQPS, d, bytesh(ns.MMapRSSBytes), bytesh(ns.RAMRSSBytes))
	}
	fmt.Println()
}

// pct renders the relative change new/old as a signed percentage.
func pct(now, before float64) string {
	if before == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (now/before-1)*100)
}

func bytesh(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
